//! The wire protocol: typed request/response structs shared by the
//! daemon and the `hpa-sdk` client, with hand-rolled JSON codecs.
//!
//! Every type encodes with `to_json` and decodes with `from_json` over
//! [`hpa_obs::json::Json`]; the daemon and the SDK link the *same*
//! definitions, so a protocol change is a single-crate edit and the
//! round-trip tests below are the compatibility contract. 64-bit values
//! that must survive exactly (cache keys, stats digests) travel as
//! `0x`-prefixed hex strings, never as JSON numbers.

use hpa_core::{MachineWidth, Scheme};
use hpa_obs::json::{escape_into, Json};
use hpa_sim::SampleUnits;
use hpa_workloads::Scale;
use std::fmt::Write as _;

/// What a job simulates: a built-in workload, assembled source text, or a
/// raw RISC-V binary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JobProgram {
    /// One of the twelve built-in benchmarks at a given scale.
    Workload {
        /// Benchmark name (see `hpa list`).
        name: String,
        /// Iteration scale.
        scale: Scale,
    },
    /// Assembly source text, assembled server-side.
    Source(String),
    /// A compiled RV64I(+M) ELF image, loaded and translated server-side
    /// by the `hpa-rv` frontend. Travels as plain lowercase hex.
    Binary(Vec<u8>),
}

/// A simulation job: program, machine, scheme set, seed and mode.
#[derive(Clone, PartialEq, Debug)]
pub struct JobRequest {
    /// The program to simulate.
    pub program: JobProgram,
    /// Machine width (the paper's 4- or 8-wide organization).
    pub width: MachineWidth,
    /// Schemes to simulate, one cell each.
    pub schemes: Vec<Scheme>,
    /// Seed (places sampled-mode windows; part of the cache key in every
    /// mode).
    pub seed: u64,
    /// Sampled mode (`W:D:F` units); `None` runs full detail.
    pub sampled: Option<SampleUnits>,
    /// Milliseconds after submission by which the job must have
    /// *started*; a job still queued past this is `expired`.
    pub deadline_ms: Option<u64>,
    /// Watchdog: a cell exceeding this many cycles is failed as a
    /// structured deadlock instead of wedging a worker.
    pub cycle_budget: u64,
    /// Override for the simulator's PC-indexed side-table size (must be a
    /// power of two; a bad value panics the constructor, which the
    /// fault-isolation tests exploit deliberately).
    pub pc_table_entries: Option<usize>,
}

/// Default watchdog budget: generous for every built-in workload at
/// every scale, small enough that a wedged cell fails in seconds.
pub const DEFAULT_CYCLE_BUDGET: u64 = 500_000_000;

impl JobRequest {
    /// A full-detail job for one workload under one scheme with
    /// defaults everywhere else.
    #[must_use]
    pub fn workload(name: &str, scale: Scale, scheme: Scheme) -> JobRequest {
        JobRequest {
            program: JobProgram::Workload { name: name.to_string(), scale },
            width: MachineWidth::Four,
            schemes: vec![scheme],
            seed: 0,
            sampled: None,
            deadline_ms: None,
            cycle_budget: DEFAULT_CYCLE_BUDGET,
            pc_table_entries: None,
        }
    }

    /// A full-detail job for a raw RISC-V ELF image under one scheme
    /// with defaults everywhere else.
    #[must_use]
    pub fn binary(bytes: Vec<u8>, scheme: Scheme) -> JobRequest {
        JobRequest {
            program: JobProgram::Binary(bytes),
            width: MachineWidth::Four,
            schemes: vec![scheme],
            seed: 0,
            sampled: None,
            deadline_ms: None,
            cycle_budget: DEFAULT_CYCLE_BUDGET,
            pc_table_entries: None,
        }
    }

    /// Renders the request as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        match &self.program {
            JobProgram::Workload { name, scale } => {
                out.push_str("\"workload\":\"");
                escape_into(&mut out, name);
                let _ = write!(out, "\",\"scale\":\"{}\"", scale.key());
            }
            JobProgram::Source(text) => {
                out.push_str("\"source\":\"");
                escape_into(&mut out, text);
                out.push('"');
            }
            JobProgram::Binary(bytes) => {
                out.push_str("\"binary\":\"");
                out.push_str(&bytes_to_hex(bytes));
                out.push('"');
            }
        }
        let _ = write!(out, ",\"width\":{}", self.width.base_config().width);
        out.push_str(",\"schemes\":[");
        for (k, s) in self.schemes.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", s.key());
        }
        let _ = write!(out, "],\"seed\":{}", self.seed);
        if let Some(units) = self.sampled {
            let _ = write!(out, ",\"sampled\":\"{units}\"");
        }
        if let Some(ms) = self.deadline_ms {
            let _ = write!(out, ",\"deadline_ms\":{ms}");
        }
        let _ = write!(out, ",\"cycle_budget\":{}", self.cycle_budget);
        if let Some(n) = self.pc_table_entries {
            let _ = write!(out, ",\"pc_table_entries\":{n}");
        }
        out.push('}');
        out
    }

    /// Decodes a request.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<JobRequest, String> {
        let program = match (v.get("workload"), v.get("source"), v.get("binary")) {
            (Some(w), None, None) => {
                let name = w.as_str().ok_or_else(|| "`workload` must be a string".to_string())?;
                let scale = match v.get("scale") {
                    None => Scale::Default,
                    Some(s) => {
                        let key =
                            s.as_str().ok_or_else(|| "`scale` must be a string".to_string())?;
                        Scale::from_key(key).ok_or_else(|| format!("unknown scale `{key}`"))?
                    }
                };
                JobProgram::Workload { name: name.to_string(), scale }
            }
            (None, Some(s), None) => JobProgram::Source(
                s.as_str().ok_or_else(|| "`source` must be a string".to_string())?.to_string(),
            ),
            (None, None, Some(b)) => {
                let hex = b.as_str().ok_or_else(|| "`binary` must be a string".to_string())?;
                JobProgram::Binary(
                    bytes_from_hex(hex)
                        .ok_or_else(|| "`binary` must be an even-length hex string".to_string())?,
                )
            }
            _ => {
                return Err(
                    "exactly one of `workload` / `source` / `binary` is required".to_string()
                )
            }
        };
        let width = match v.get("width").and_then(Json::as_u64) {
            None | Some(4) => MachineWidth::Four,
            Some(8) => MachineWidth::Eight,
            Some(o) => return Err(format!("bad width {o} (want 4 or 8)")),
        };
        let schemes = match v.get("schemes") {
            None => vec![Scheme::Base],
            Some(arr) => {
                let items = arr.as_arr().ok_or_else(|| "`schemes` must be an array".to_string())?;
                if items.is_empty() {
                    return Err("`schemes` must not be empty".to_string());
                }
                items
                    .iter()
                    .map(|s| {
                        let key = s
                            .as_str()
                            .ok_or_else(|| "`schemes` entries must be strings".to_string())?;
                        Scheme::from_key(key).ok_or_else(|| format!("unknown scheme `{key}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        let sampled = match v.get("sampled") {
            None => None,
            Some(s) => {
                let text = s.as_str().ok_or_else(|| "`sampled` must be a string".to_string())?;
                Some(SampleUnits::parse(text)?)
            }
        };
        Ok(JobRequest {
            program,
            width,
            schemes,
            seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
            sampled,
            deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
            cycle_budget: v
                .get("cycle_budget")
                .and_then(Json::as_u64)
                .unwrap_or(DEFAULT_CYCLE_BUDGET),
            pc_table_entries: v.get("pc_table_entries").and_then(Json::as_u64).map(|n| n as usize),
        })
    }
}

/// The job lifecycle state machine:
/// `queued → running → done | failed`, with `queued → expired` when the
/// deadline passes first and `queued → done` directly on a full cache
/// hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; results available.
    Done,
    /// A cell faulted or panicked; the error is recorded.
    Failed,
    /// Still queued when the deadline passed; never ran.
    Expired,
}

impl JobStatus {
    /// The wire key.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Expired => "expired",
        }
    }

    /// Parses a wire key.
    #[must_use]
    pub fn from_key(key: &str) -> Option<JobStatus> {
        [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Expired,
        ]
        .into_iter()
        .find(|s| s.key() == key)
    }

    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed | JobStatus::Expired)
    }
}

/// Response to `POST /submit`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubmitResponse {
    /// Monotonic job id.
    pub job_id: u64,
    /// `queued`, or `done` when every cell was a cache hit.
    pub status: JobStatus,
    /// Whether the whole job was served from the result cache.
    pub cached: bool,
}

impl SubmitResponse {
    /// Renders the response as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"job_id\":{},\"status\":\"{}\",\"cached\":{}}}",
            self.job_id,
            self.status.key(),
            self.cached
        )
    }

    /// Decodes a response.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<SubmitResponse, String> {
        Ok(SubmitResponse {
            job_id: v
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing `job_id`".to_string())?,
            status: parse_status(v)?,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

fn parse_status(v: &Json) -> Result<JobStatus, String> {
    let key =
        v.get("status").and_then(Json::as_str).ok_or_else(|| "missing `status`".to_string())?;
    JobStatus::from_key(key).ok_or_else(|| format!("unknown status `{key}`"))
}

/// Response to `GET /status/<id>`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatusResponse {
    /// The job id queried.
    pub job_id: u64,
    /// Current state.
    pub status: JobStatus,
    /// Whether the job was served entirely from the cache.
    pub cached: bool,
    /// The failure/expiry description, for terminal error states.
    pub error: Option<String>,
}

impl StatusResponse {
    /// Renders the response as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"job_id\":{},\"status\":\"{}\",\"cached\":{}",
            self.job_id,
            self.status.key(),
            self.cached
        );
        if let Some(e) = &self.error {
            out.push_str(",\"error\":\"");
            escape_into(&mut out, e);
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Decodes a response.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<StatusResponse, String> {
        Ok(StatusResponse {
            job_id: v
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing `job_id`".to_string())?,
            status: parse_status(v)?,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// One scheme cell of a finished job.
///
/// The `payload` is the cache unit: the exact JSON text stored in (and
/// served from) the content-addressed result cache, so a cache hit is
/// bit-identical to the original run by construction. `cached` lives
/// *outside* the payload — it describes this request, not the result.
#[derive(Clone, PartialEq, Debug)]
pub struct CellResult {
    /// The scheme this cell simulated.
    pub scheme: Scheme,
    /// Whether this cell was served from the result cache.
    pub cached: bool,
    /// The canonical result payload (see [`CellResult::payload_json`]).
    payload: String,
}

impl CellResult {
    /// Wraps a freshly rendered (or cache-loaded) payload.
    #[must_use]
    pub fn new(scheme: Scheme, cached: bool, payload: String) -> CellResult {
        CellResult { scheme, cached, payload }
    }

    /// The verbatim payload text — the unit of cache storage and the
    /// thing to compare for bit-identity.
    #[must_use]
    pub fn payload_json(&self) -> &str {
        &self.payload
    }

    /// Parses the payload (`None` if it is not valid JSON — never the
    /// case for daemon-produced payloads).
    #[must_use]
    pub fn payload(&self) -> Option<Json> {
        hpa_obs::json::parse(&self.payload).ok()
    }

    /// The FNV-1a digest of the full `SimStats` debug formatting, from
    /// the payload's `stats_digest` hex field.
    #[must_use]
    pub fn stats_digest(&self) -> Option<u64> {
        parse_hex(self.payload()?.get("stats_digest")?.as_str()?)
    }

    /// The cell's content-addressed cache key.
    #[must_use]
    pub fn cache_key(&self) -> Option<u64> {
        parse_hex(self.payload()?.get("cache_key")?.as_str()?)
    }

    /// The cell's IPC (full-detail) or mean IPC (sampled).
    #[must_use]
    pub fn ipc(&self) -> Option<f64> {
        self.payload()?.get("ipc")?.as_f64()
    }
}

/// Parses a `0x`-prefixed hex u64.
#[must_use]
pub fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s.strip_prefix("0x")?, 16).ok()
}

/// Renders a byte blob as plain lowercase hex (no `0x` prefix — the
/// prefix convention marks exact 64-bit values, not blobs).
#[must_use]
pub fn bytes_to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Parses [`bytes_to_hex`] output (either case); `None` on odd length or
/// a non-hex digit.
#[must_use]
pub fn bytes_from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    // from_str_radix alone would also accept `+`/`-` signs.
    if !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let text = std::str::from_utf8(pair).ok()?;
            u8::from_str_radix(text, 16).ok()
        })
        .collect()
}

/// Renders a cell array (`[{scheme, cached, result}, ...]`) into `out`.
/// Payloads are embedded verbatim: they are already JSON, and
/// re-rendering could perturb byte identity with the cache. Shared by
/// `/result` responses and the job journal's `done` records.
pub fn render_cells_into(out: &mut String, cells: &[CellResult]) {
    out.push('[');
    for (k, c) in cells.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"scheme\":\"{}\",\"cached\":{},\"result\":{}}}",
            c.scheme.key(),
            c.cached,
            c.payload
        );
    }
    out.push(']');
}

/// Decodes a cell array rendered by [`render_cells_into`].
///
/// # Errors
///
/// A description of the first missing or malformed field.
pub fn parse_cells_json(arr: &Json) -> Result<Vec<CellResult>, String> {
    let items = arr.as_arr().ok_or_else(|| "`cells` must be an array".to_string())?;
    items
        .iter()
        .map(|c| {
            let key = c
                .get("scheme")
                .and_then(Json::as_str)
                .ok_or_else(|| "cell missing `scheme`".to_string())?;
            let scheme = Scheme::from_key(key).ok_or_else(|| format!("unknown scheme `{key}`"))?;
            let payload =
                c.get("result").ok_or_else(|| "cell missing `result`".to_string())?.render();
            Ok(CellResult {
                scheme,
                cached: c.get("cached").and_then(Json::as_bool).unwrap_or(false),
                payload,
            })
        })
        .collect()
}

/// Formats a u64 as the wire's `0x`-prefixed, zero-padded hex.
#[must_use]
pub fn format_hex(v: u64) -> String {
    format!("{v:#018x}")
}

/// Response to `GET /result/<id>`.
#[derive(Clone, PartialEq, Debug)]
pub struct ResultResponse {
    /// The job id queried.
    pub job_id: u64,
    /// Terminal state (or the current state for an unfinished job, with
    /// no cells).
    pub status: JobStatus,
    /// Whether every cell was a cache hit.
    pub cached: bool,
    /// The failure/expiry description, for terminal error states.
    pub error: Option<String>,
    /// One result per requested scheme, in request order (empty unless
    /// `done`).
    pub cells: Vec<CellResult>,
}

impl ResultResponse {
    /// Renders the response as JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"job_id\":{},\"status\":\"{}\",\"cached\":{}",
            self.job_id,
            self.status.key(),
            self.cached
        );
        if let Some(e) = &self.error {
            out.push_str(",\"error\":\"");
            escape_into(&mut out, e);
            out.push('"');
        }
        out.push_str(",\"cells\":");
        render_cells_into(&mut out, &self.cells);
        out.push('}');
        out
    }

    /// Decodes a response.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<ResultResponse, String> {
        let cells = match v.get("cells") {
            None => Vec::new(),
            Some(arr) => parse_cells_json(arr)?,
        };
        Ok(ResultResponse {
            job_id: v
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing `job_id`".to_string())?,
            status: parse_status(v)?,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            error: v.get("error").and_then(Json::as_str).map(str::to_string),
            cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(r: &JobRequest) {
        let v = hpa_obs::json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(&JobRequest::from_json(&v).expect("decodes"), r);
    }

    #[test]
    fn job_request_round_trips() {
        round_trip_request(&JobRequest::workload("gcc", Scale::Tiny, Scheme::Base));
        round_trip_request(&JobRequest {
            program: JobProgram::Source("loop:\n  addi r1, r1, 1\n  halt\n".into()),
            width: MachineWidth::Eight,
            schemes: vec![Scheme::Combined, Scheme::TagElimination],
            seed: 99,
            sampled: Some(SampleUnits::parse("500:1000:4000").unwrap()),
            deadline_ms: Some(2_000),
            cycle_budget: 123,
            pc_table_entries: Some(256),
        });
        round_trip_request(&JobRequest::binary(
            vec![0x7f, b'E', b'L', b'F', 0, 255, 16],
            Scheme::Combined,
        ));
    }

    #[test]
    fn job_request_rejects_bad_fields() {
        let bad = |s: &str| JobRequest::from_json(&hpa_obs::json::parse(s).unwrap());
        assert!(bad("{}").is_err(), "no program");
        assert!(bad(r#"{"workload":"gcc","source":"x"}"#).is_err(), "both programs");
        assert!(bad(r#"{"workload":"gcc","binary":"7f"}"#).is_err(), "workload + binary");
        assert!(bad(r#"{"source":"x","binary":"7f"}"#).is_err(), "source + binary");
        assert!(bad(r#"{"binary":"7f4"}"#).is_err(), "odd-length hex");
        assert!(bad(r#"{"binary":"7g"}"#).is_err(), "non-hex digit");
        assert!(bad(r#"{"workload":"gcc","width":6}"#).is_err(), "bad width");
        assert!(bad(r#"{"workload":"gcc","schemes":[]}"#).is_err(), "empty schemes");
        assert!(bad(r#"{"workload":"gcc","schemes":["nonesuch"]}"#).is_err(), "bad scheme");
        assert!(bad(r#"{"workload":"gcc","scale":"huge"}"#).is_err(), "bad scale");
        assert!(bad(r#"{"workload":"gcc","sampled":"1:2"}"#).is_err(), "bad units");
    }

    #[test]
    fn job_request_defaults() {
        let v = hpa_obs::json::parse(r#"{"workload":"mcf"}"#).unwrap();
        let r = JobRequest::from_json(&v).unwrap();
        assert_eq!(r.width, MachineWidth::Four);
        assert_eq!(r.schemes, vec![Scheme::Base]);
        assert_eq!(r.seed, 0);
        assert_eq!(r.cycle_budget, DEFAULT_CYCLE_BUDGET);
        assert!(r.sampled.is_none() && r.deadline_ms.is_none() && r.pc_table_entries.is_none());
        assert!(matches!(r.program, JobProgram::Workload { scale: Scale::Default, .. }));
    }

    #[test]
    fn status_keys_round_trip_and_terminality() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Done,
            JobStatus::Failed,
            JobStatus::Expired,
        ] {
            assert_eq!(JobStatus::from_key(s.key()), Some(s));
        }
        assert!(!JobStatus::Queued.is_terminal() && !JobStatus::Running.is_terminal());
        assert!(JobStatus::Done.is_terminal() && JobStatus::Expired.is_terminal());
    }

    #[test]
    fn responses_round_trip() {
        let submit = SubmitResponse { job_id: 7, status: JobStatus::Done, cached: true };
        let v = hpa_obs::json::parse(&submit.to_json()).unwrap();
        assert_eq!(SubmitResponse::from_json(&v).unwrap(), submit);

        let status = StatusResponse {
            job_id: 8,
            status: JobStatus::Failed,
            cached: false,
            error: Some("cell panicked: \"quoted\"".into()),
        };
        let v = hpa_obs::json::parse(&status.to_json()).unwrap();
        assert_eq!(StatusResponse::from_json(&v).unwrap(), status);

        let result = ResultResponse {
            job_id: 9,
            status: JobStatus::Done,
            cached: false,
            error: None,
            cells: vec![CellResult::new(
                Scheme::Base,
                true,
                r#"{"cache_key":"0x00000000000000ff","stats_digest":"0xfedcba9876543210","ipc":1.5}"#
                    .to_string(),
            )],
        };
        let v = hpa_obs::json::parse(&result.to_json()).unwrap();
        let back = ResultResponse::from_json(&v).unwrap();
        assert_eq!(back.cells.len(), 1);
        assert_eq!(back.cells[0].scheme, Scheme::Base);
        assert!(back.cells[0].cached);
        assert_eq!(back.cells[0].cache_key(), Some(0xff));
        assert_eq!(back.cells[0].stats_digest(), Some(0xfedc_ba98_7654_3210));
        assert_eq!(back.cells[0].ipc(), Some(1.5));
    }

    #[test]
    fn hex_round_trips_full_range() {
        for v in [0, 1, u64::MAX, 0x8000_0000_0000_0000] {
            assert_eq!(parse_hex(&format_hex(v)), Some(v));
        }
        assert_eq!(parse_hex("123"), None, "missing 0x prefix");
    }

    #[test]
    fn byte_hex_round_trips() {
        for bytes in [vec![], vec![0u8], vec![0x7f, 0x45, 0x4c, 0x46, 0x00, 0xff]] {
            assert_eq!(bytes_from_hex(&bytes_to_hex(&bytes)), Some(bytes));
        }
        assert_eq!(bytes_from_hex("ABcd"), Some(vec![0xab, 0xcd]), "either case");
        assert_eq!(bytes_from_hex("abc"), None, "odd length");
        assert_eq!(bytes_from_hex("zz"), None, "non-hex");
        assert_eq!(bytes_from_hex("+1"), None, "sign accepted by from_str_radix alone");
    }
}
