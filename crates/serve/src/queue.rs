//! The job queue: a Mutex + Condvar FIFO of job ids with a drain mode
//! for graceful shutdown.
//!
//! The queue intentionally holds only ids — job state lives in the
//! server's job table — so pushing, popping and draining never contend
//! with result rendering or simulation. Workers block in [`JobQueue::pop`];
//! [`JobQueue::drain`] wakes them all, after which `pop` keeps handing
//! out the remaining backlog (drain *finishes* queued work, it does not
//! abandon it) and returns `None` only once the queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState {
    pending: VecDeque<u64>,
    draining: bool,
}

/// A blocking FIFO of job ids with graceful-drain semantics.
pub struct JobQueue {
    state: Mutex<QueueState>,
    wakeup: Condvar,
}

impl Default for JobQueue {
    fn default() -> JobQueue {
        JobQueue::new()
    }
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState { pending: VecDeque::new(), draining: false }),
            wakeup: Condvar::new(),
        }
    }

    /// Enqueues a job id and wakes one worker. Returns the queue depth
    /// *after* the push (for the queue-depth histogram). Pushing to a
    /// draining queue still enqueues — submissions are rejected at the
    /// route layer during drain, but a racing push must not be lost.
    pub fn push(&self, id: u64) -> usize {
        self.push_bounded(id, None).expect("unbounded push cannot be rejected")
    }

    /// Like [`JobQueue::push`], but rejects the push when the queue
    /// already holds `max` ids, returning the current depth instead.
    /// The check and the push happen under one lock acquisition, so the
    /// bound holds exactly even under racing submits — this is the
    /// admission-control primitive.
    ///
    /// # Errors
    ///
    /// The current depth, when it is at or over the bound.
    pub fn push_bounded(&self, id: u64, max: Option<usize>) -> Result<usize, usize> {
        let mut s = self.state.lock().expect("queue state");
        if let Some(max) = max {
            if s.pending.len() >= max {
                return Err(s.pending.len());
            }
        }
        s.pending.push_back(id);
        let depth = s.pending.len();
        drop(s);
        self.wakeup.notify_one();
        Ok(depth)
    }

    /// Blocks until a job id is available and returns it, or returns
    /// `None` once the queue is draining *and* empty.
    #[must_use]
    pub fn pop(&self) -> Option<u64> {
        let mut s = self.state.lock().expect("queue state");
        loop {
            if let Some(id) = s.pending.pop_front() {
                return Some(id);
            }
            if s.draining {
                return None;
            }
            s = self.wakeup.wait(s).expect("queue state");
        }
    }

    /// Switches to drain mode and wakes every worker: the backlog still
    /// runs, then each worker's `pop` returns `None` and it exits.
    pub fn drain(&self) {
        self.state.lock().expect("queue state").draining = true;
        self.wakeup.notify_all();
    }

    /// Whether [`JobQueue::drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue state").draining
    }

    /// Current number of queued (not yet popped) jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue state").pending.len()
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_within_one_consumer() {
        let q = JobQueue::new();
        assert_eq!(q.push(1), 1);
        assert_eq!(q.push(2), 2);
        assert_eq!(q.push(3), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.drain();
        assert_eq!(q.pop(), Some(3), "drain finishes the backlog");
        assert_eq!(q.pop(), None, "then signals exit");
    }

    #[test]
    fn drain_wakes_blocked_workers() {
        let q = JobQueue::new();
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for id in 0..10 {
                q.push(id);
            }
            // Workers may still be mid-pop; drain must both flush the
            // backlog through them and then release all three.
            q.drain();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 10);
        assert!(q.is_empty() && q.is_draining());
    }

    #[test]
    fn bounded_push_rejects_at_the_cap_and_admits_after_a_pop() {
        let q = JobQueue::new();
        assert_eq!(q.push_bounded(1, Some(2)), Ok(1));
        assert_eq!(q.push_bounded(2, Some(2)), Ok(2));
        assert_eq!(q.push_bounded(3, Some(2)), Err(2), "at the cap: rejected with the depth");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push_bounded(3, Some(2)), Ok(2), "space freed by the pop");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3), "FIFO order survives a rejected push");
    }

    #[test]
    fn bounded_push_holds_the_cap_exactly_under_contention() {
        // 8 racing submitters, cap 5: exactly 5 must win, and the queue
        // can never exceed the bound at any interleaving.
        let q = JobQueue::new();
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for id in 0..8 {
                let (q, admitted) = (&q, &admitted);
                scope.spawn(move || {
                    if q.push_bounded(id, Some(5)).is_ok() {
                        admitted.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 5);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn shutdown_wakes_workers_blocked_on_an_empty_queue() {
        // The condvar-wakeup edge: workers block in `pop` with nothing
        // ever pushed; `drain` alone must release all of them. A missed
        // notify_all here wedges this test forever (harness timeout).
        let q = JobQueue::new();
        let released = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    assert_eq!(q.pop(), None);
                    released.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Give the workers a moment to actually block on the condvar
            // so the drain exercises the wakeup path, not the fast path.
            std::thread::sleep(std::time::Duration::from_millis(50));
            q.drain();
        });
        assert_eq!(released.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_push_pop_under_drain_loses_nothing() {
        // Pushes racing the drain call itself: every id pushed before or
        // during the drain is still handed out exactly once (drain
        // finishes the backlog; it never abandons it).
        let q = JobQueue::new();
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(id) = q.pop() {
                        seen.lock().unwrap().push(id);
                    }
                });
            }
            let pushers: Vec<_> = [0u64, 1]
                .into_iter()
                .map(|half| {
                    let q = &q;
                    scope.spawn(move || {
                        for id in half * 50..(half + 1) * 50 {
                            q.push(id);
                        }
                    })
                })
                .collect();
            for p in pushers {
                p.join().expect("pusher");
            }
            // Drain races the poppers mid-backlog: it must flush every
            // remaining id through them before releasing them.
            q.drain();
        });
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn every_pushed_id_is_popped_exactly_once_under_contention() {
        let q = JobQueue::new();
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(id) = q.pop() {
                        seen.lock().unwrap().push(id);
                    }
                });
            }
            scope.spawn(|| {
                for id in 0..100 {
                    q.push(id);
                }
                q.drain();
            });
        });
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }
}
