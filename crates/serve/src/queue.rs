//! The job queue: a Mutex + Condvar FIFO of job ids with a drain mode
//! for graceful shutdown.
//!
//! The queue intentionally holds only ids — job state lives in the
//! server's job table — so pushing, popping and draining never contend
//! with result rendering or simulation. Workers block in [`JobQueue::pop`];
//! [`JobQueue::drain`] wakes them all, after which `pop` keeps handing
//! out the remaining backlog (drain *finishes* queued work, it does not
//! abandon it) and returns `None` only once the queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState {
    pending: VecDeque<u64>,
    draining: bool,
}

/// A blocking FIFO of job ids with graceful-drain semantics.
pub struct JobQueue {
    state: Mutex<QueueState>,
    wakeup: Condvar,
}

impl Default for JobQueue {
    fn default() -> JobQueue {
        JobQueue::new()
    }
}

impl JobQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(QueueState { pending: VecDeque::new(), draining: false }),
            wakeup: Condvar::new(),
        }
    }

    /// Enqueues a job id and wakes one worker. Returns the queue depth
    /// *after* the push (for the queue-depth histogram). Pushing to a
    /// draining queue still enqueues — submissions are rejected at the
    /// route layer during drain, but a racing push must not be lost.
    pub fn push(&self, id: u64) -> usize {
        let mut s = self.state.lock().expect("queue state");
        s.pending.push_back(id);
        let depth = s.pending.len();
        drop(s);
        self.wakeup.notify_one();
        depth
    }

    /// Blocks until a job id is available and returns it, or returns
    /// `None` once the queue is draining *and* empty.
    #[must_use]
    pub fn pop(&self) -> Option<u64> {
        let mut s = self.state.lock().expect("queue state");
        loop {
            if let Some(id) = s.pending.pop_front() {
                return Some(id);
            }
            if s.draining {
                return None;
            }
            s = self.wakeup.wait(s).expect("queue state");
        }
    }

    /// Switches to drain mode and wakes every worker: the backlog still
    /// runs, then each worker's `pop` returns `None` and it exits.
    pub fn drain(&self) {
        self.state.lock().expect("queue state").draining = true;
        self.wakeup.notify_all();
    }

    /// Whether [`JobQueue::drain`] has been called.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.state.lock().expect("queue state").draining
    }

    /// Current number of queued (not yet popped) jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue state").pending.len()
    }

    /// Whether no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_within_one_consumer() {
        let q = JobQueue::new();
        assert_eq!(q.push(1), 1);
        assert_eq!(q.push(2), 2);
        assert_eq!(q.push(3), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.drain();
        assert_eq!(q.pop(), Some(3), "drain finishes the backlog");
        assert_eq!(q.pop(), None, "then signals exit");
    }

    #[test]
    fn drain_wakes_blocked_workers() {
        let q = JobQueue::new();
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while q.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for id in 0..10 {
                q.push(id);
            }
            // Workers may still be mid-pop; drain must both flush the
            // backlog through them and then release all three.
            q.drain();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 10);
        assert!(q.is_empty() && q.is_draining());
    }

    #[test]
    fn every_pushed_id_is_popped_exactly_once_under_contention() {
        let q = JobQueue::new();
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(id) = q.pop() {
                        seen.lock().unwrap().push(id);
                    }
                });
            }
            scope.spawn(|| {
                for id in 0..100 {
                    q.push(id);
                }
                q.drain();
            });
        });
        let mut ids = seen.into_inner().unwrap();
        ids.sort_unstable();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }
}
