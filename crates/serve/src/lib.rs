//! # hpa-serve — simulation-as-a-service daemon
//!
//! Every simulation in this workspace is fully deterministic from its
//! inputs — that is what the determinism/differential suites prove — so
//! simulation results are *content-addressable*: identical `(program,
//! config, scheme, seed, mode)` means identical results, bit for bit.
//! This crate turns that property into a service:
//!
//! * [`server`] — `hpa serve`: a hand-rolled HTTP/JSON daemon over
//!   [`std::net::TcpListener`] (the workspace carries no dependencies)
//!   with a job queue, a worker pool executing cells under
//!   `catch_unwind` isolation and a cycle-budget watchdog, deadlines,
//!   and graceful drain-on-shutdown;
//! * [`cache`] — the content-addressed result cache: an FNV-1a digest
//!   of a canonical byte encoding of the simulation inputs keys an
//!   on-disk store (one atomically renamed file per entry) fronted by
//!   an in-memory index, so resubmitting a job answers from the cache
//!   without simulating — bit-identical by construction, because the
//!   cached value *is* the original rendered payload;
//! * [`proto`] — the typed wire protocol, shared with the `hpa-sdk`
//!   client crate so both sides cannot drift;
//! * [`queue`] — the Mutex + Condvar job FIFO with drain semantics and
//!   a bounded-admission push;
//! * [`http`] — the minimal HTTP/1.1 subset both sides speak;
//! * [`journal`] — the write-ahead job journal: checksum-framed JSONL
//!   replayed on startup so a `kill -9` loses no accepted job, torture-
//!   tested against truncation and bit flips;
//! * [`chaos`] — a seeded fault-injecting TCP proxy (drop / delay /
//!   truncate / corrupt) for deterministic network-failure testing.
//!
//! Wire protocol, job state machine, cache-key encoding and the
//! durability/degradation rules are documented in `DESIGN.md` §12.
//!
//! # Example
//!
//! ```no_run
//! use hpa_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServerConfig::default()
//! })?;
//! println!("listening on {}", server.local_addr()?);
//! server.run()?; // blocks until POST /shutdown
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod http;
pub mod journal;
pub mod proto;
pub mod queue;
pub mod server;

pub use cache::{cell_key, ResultCache};
pub use chaos::ChaosProxy;
pub use journal::{Journal, Record, Replay, ReplayedJob};
pub use proto::{
    CellResult, JobProgram, JobRequest, JobStatus, ResultResponse, StatusResponse, SubmitResponse,
};
pub use queue::JobQueue;
pub use server::{Server, ServerConfig};
