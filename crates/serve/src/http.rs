//! A deliberately tiny HTTP/1.1 subset over [`std::net::TcpStream`].
//!
//! The daemon speaks exactly what its clients need and nothing more: one
//! request per connection (`Connection: close` both ways), JSON bodies,
//! `Content-Length` framing, no chunked encoding, no keep-alive, no TLS.
//! Both sides of the protocol live here — the server reads requests and
//! writes responses, the SDK writes requests and reads responses — so a
//! framing change cannot desynchronize them.

use std::io::{self, BufRead, Write};

/// Bound on header-section and body sizes: big enough for any assembled
/// workload source, small enough that a malicious peer cannot balloon the
/// daemon's memory.
pub const MAX_BODY: usize = 8 << 20;

/// Bound on the number of headers per message. The protocol itself only
/// ever sends three; a peer streaming an endless header section is
/// cut off here instead of pinning a worker thread forever.
pub const MAX_HEADERS: usize = 64;

/// A parsed request: method, path and (possibly empty) body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// `GET` / `POST` (anything else is rejected at the route layer).
    pub method: String,
    /// The path, e.g. `/status/42`. Query strings are not supported.
    pub path: String,
    /// The request body.
    pub body: String,
}

/// A response: status code and JSON body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The response body (always JSON in this protocol).
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    #[must_use]
    pub fn ok(body: String) -> Response {
        Response { status: 200, body }
    }

    /// An error response with a `{"error": ...}` body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":\"");
        hpa_obs::json::escape_into(&mut body, message);
        body.push_str("\"}");
        Response { status, body }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("http: {what}"))
}

/// Marker prefix distinguishing "you sent too much" from "you sent
/// garbage" inside the single `InvalidData` error kind, so the server
/// can answer `413` rather than a generic `400`.
const TOO_LARGE: &str = "too large: ";

fn too_large(what: &str) -> io::Error {
    bad(&format!("{TOO_LARGE}{what}"))
}

/// Maps a [`read_request`] error to the structured response the peer
/// should see: `413` for oversize framing (body or header section past
/// [`MAX_BODY`], header count past [`MAX_HEADERS`]), `400` for anything
/// else malformed. The error text rides along in the JSON body so a
/// client can log *why* it was rejected.
#[must_use]
pub fn rejection(err: &io::Error) -> Response {
    let text = err.to_string();
    let status = if text.contains(TOO_LARGE) { 413 } else { 400 };
    Response::error(status, &text)
}

/// Reads one CRLF- (or LF-) terminated line without the terminator.
fn read_line(reader: &mut impl BufRead) -> io::Result<String> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(bad("unexpected end of stream"));
    }
    if line.len() > MAX_BODY {
        return Err(too_large("header line"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Reads headers up to the blank line, returning the `Content-Length`.
fn read_headers(reader: &mut impl BufRead) -> io::Result<usize> {
    let mut content_length = 0usize;
    // One extra iteration: the blank terminator line also costs a read.
    for _ in 0..=MAX_HEADERS {
        let line = read_line(reader)?;
        if line.is_empty() {
            return Ok(content_length);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.trim().parse::<usize>().map_err(|_| bad("bad content-length"))?;
            if content_length > MAX_BODY {
                return Err(too_large("body"));
            }
        }
    }
    Err(too_large("header count"))
}

fn read_body(reader: &mut impl BufRead, len: usize) -> io::Result<String> {
    let mut buf = vec![0u8; len];
    io::Read::read_exact(reader, &mut buf)?;
    String::from_utf8(buf).map_err(|_| bad("body is not utf-8"))
}

/// Reads one request (server side).
///
/// # Errors
///
/// I/O errors, or `InvalidData` for malformed or oversized framing.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Request> {
    let line = read_line(reader)?;
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported http version"));
    }
    let len = read_headers(reader)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body: read_body(reader, len)?,
    })
}

/// Writes one request (client side).
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_request(writer: &mut impl Write, req: &Request) -> io::Result<()> {
    write!(
        writer,
        "{} {} HTTP/1.1\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        req.method,
        req.path,
        req.body.len(),
        req.body
    )?;
    writer.flush()
}

/// Reads one response (client side).
///
/// # Errors
///
/// I/O errors, or `InvalidData` for malformed or oversized framing.
pub fn read_response(reader: &mut impl BufRead) -> io::Result<Response> {
    let line = read_line(reader)?;
    let mut parts = line.split_ascii_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(bad("malformed status line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported http version"));
    }
    let status = status.parse::<u16>().map_err(|_| bad("bad status code"))?;
    let len = read_headers(reader)?;
    Ok(Response { status, body: read_body(reader, len)? })
}

/// Writes one response (server side).
///
/// # Errors
///
/// I/O errors from the underlying stream.
pub fn write_response(writer: &mut impl Write, resp: &Response) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        resp.status,
        reason(resp.status),
        resp.body.len(),
        resp.body
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips_through_a_buffer() {
        let req = Request {
            method: "POST".into(),
            path: "/submit".into(),
            body: "{\"workload\":\"gcc\"}".into(),
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let back = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn response_round_trips_through_a_buffer() {
        for resp in [
            Response::ok("{\"job_id\":1}".into()),
            Response::error(404, "no such job"),
            Response { status: 200, body: String::new() },
        ] {
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).unwrap();
            let back = read_response(&mut BufReader::new(&wire[..])).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn empty_body_request_has_zero_length() {
        let req = Request { method: "GET".into(), path: "/health".into(), body: String::new() };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("content-length: 0"));
        assert_eq!(read_request(&mut BufReader::new(&wire[..])).unwrap(), req);
    }

    #[test]
    fn malformed_framing_is_rejected() {
        let cases: &[&[u8]] = &[
            b"",
            b"GET\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: zzz\r\n\r\n",
            b"GET /x SPDY/99\r\n\r\n",
            b"GET /x HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
        ];
        for case in cases {
            assert!(read_request(&mut BufReader::new(*case)).is_err(), "{case:?}");
        }
        assert!(read_response(&mut BufReader::new(&b"HTTP/1.1 abc\r\n\r\n"[..])).is_err());
    }

    #[test]
    fn oversize_framing_maps_to_413_and_garbage_to_400() {
        // Oversize: declared body over the cap, and a runaway header section.
        let oversize = format!("POST /submit HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY + 1);
        let err = read_request(&mut BufReader::new(oversize.as_bytes())).unwrap_err();
        assert_eq!(rejection(&err).status, 413, "{err}");

        let mut runaway = String::from("GET /health HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS + 1 {
            runaway.push_str(&format!("x-pad-{i}: 1\r\n"));
        }
        runaway.push_str("\r\n");
        let err = read_request(&mut BufReader::new(runaway.as_bytes())).unwrap_err();
        assert_eq!(rejection(&err).status, 413, "{err}");

        // Garbage: malformed request line, broken header, premature EOF
        // mid-body, and an empty stream all map to 400, never a panic.
        let garbage: &[&[u8]] = &[
            b"\x7f\x00\x01 \x02\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"POST /submit HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort",
            b"GET /x HTTP/1.1\r\ncontent-length: -1\r\n\r\n",
            b"",
        ];
        for case in garbage {
            let err = read_request(&mut BufReader::new(*case)).unwrap_err();
            let resp = rejection(&err);
            assert_eq!(resp.status, 400, "{case:?} -> {err}");
            assert!(resp.body.starts_with("{\"error\":"), "structured body: {}", resp.body);
        }
    }

    #[test]
    fn exactly_max_headers_is_still_accepted() {
        let mut wire = String::from("GET /health HTTP/1.1\r\n");
        // MAX_HEADERS total, the last one carrying the length.
        for i in 0..MAX_HEADERS - 1 {
            wire.push_str(&format!("x-pad-{i}: 1\r\n"));
        }
        wire.push_str("content-length: 2\r\n\r\nok");
        let req = read_request(&mut BufReader::new(wire.as_bytes())).unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn lf_only_line_endings_are_tolerated() {
        let wire = b"POST /submit HTTP/1.1\ncontent-length: 2\n\nok";
        let req = read_request(&mut BufReader::new(&wire[..])).unwrap();
        assert_eq!(req.body, "ok");
    }

    #[test]
    fn error_response_escapes_the_message() {
        let resp = Response::error(400, "bad \"quoted\" thing");
        assert_eq!(resp.body, "{\"error\":\"bad \\\"quoted\\\" thing\"}");
        let parsed = hpa_obs::json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("error").and_then(|v| v.as_str()), Some("bad \"quoted\" thing"));
    }
}
