//! The daemon: a job table, worker pool and HTTP front end over the
//! result cache.
//!
//! Architecture (one paragraph): the accept loop runs on the caller's
//! thread and handles each connection inline — every handler is cheap
//! (`/submit` only validates, probes the cache and enqueues; polls only
//! read the job table) so there is no per-connection thread. Simulation
//! happens on `workers` threads that block on the [`JobQueue`]; each
//! cell of a job runs under `catch_unwind` isolation (via
//! [`hpa_core::pool::parallel_map_isolated`]) so a planted panic fails
//! one job, never the daemon, and a cycle-budget watchdog turns hangs
//! into structured deadlock faults. `POST /shutdown` drains: submissions
//! start bouncing with 503, the backlog still runs to completion (or to
//! its deadlines), workers exit, the cache index is flushed, and
//! [`Server::run`] returns.

use crate::cache::{cell_key, ResultCache};
use crate::http::{self, Request, Response};
use crate::journal::{Journal, Record, ReplayedJob};
use crate::proto::{
    format_hex, CellResult, JobProgram, JobRequest, JobStatus, ResultResponse, StatusResponse,
    SubmitResponse,
};
use crate::queue::JobQueue;
use hpa_asm::Program;
use hpa_core::pool::parallel_map_isolated;
use hpa_core::Scheme;
use hpa_obs::digest::debug_digest;
use hpa_obs::json::escape_into;
use hpa_obs::ServeCounters;
use hpa_sim::{SampledEstimate, SampledRunner, SimConfig, SimStats, Simulator};
use hpa_workloads::{workload, CHECKSUM_REG};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080` (port 0 picks an ephemeral
    /// port; read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// On-disk cache directory; `None` keeps the cache memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Write-ahead journal directory; `None` disables durability.
    pub journal_dir: Option<PathBuf>,
    /// Admission-control bound on queued jobs; `None` is unbounded.
    pub max_queue: Option<usize>,
    /// Result-cache entry bound (insertion-order eviction past it).
    pub cache_max_entries: Option<usize>,
    /// Result-cache payload-byte bound (insertion-order eviction).
    pub cache_max_bytes: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8080".to_string(),
            workers: hpa_core::default_jobs().min(4),
            cache_dir: None,
            journal_dir: None,
            max_queue: None,
            cache_max_entries: None,
            cache_max_bytes: None,
        }
    }
}

/// One job's full lifecycle record.
struct Job {
    /// `None` only for journal-rehydrated terminal jobs whose `submitted`
    /// record was lost to corruption — their results still serve.
    request: Option<JobRequest>,
    status: JobStatus,
    cached: bool,
    error: Option<String>,
    cells: Vec<CellResult>,
    submitted: Instant,
    deadline: Option<Instant>,
}

/// The lazy-expiry message (also journaled, so replay reproduces it).
const EXPIRY_ERROR: &str = "deadline passed before the job started";

impl Job {
    /// Lazily expires a job still queued past its deadline; returns
    /// whether this call performed the transition.
    fn expire_if_due(&mut self, now: Instant) -> bool {
        if self.status == JobStatus::Queued && self.deadline.is_some_and(|d| now >= d) {
            self.status = JobStatus::Expired;
            self.error = Some(EXPIRY_ERROR.to_string());
            return true;
        }
        false
    }
}

/// Bookkeeping after a lazy expiry (caller must have released the jobs
/// lock): counter bump plus a journaled terminal record.
fn record_expiry(state: &ServerState, id: u64) {
    state.counters.lock().expect("serve counters").jobs_expired += 1;
    if let Some(journal) = &state.journal {
        journal.append(&Record::Expired { id, error: EXPIRY_ERROR.to_string() }, true);
    }
}

struct ServerState {
    jobs: Mutex<HashMap<u64, Job>>,
    next_id: AtomicU64,
    queue: JobQueue,
    cache: ResultCache,
    counters: Mutex<ServeCounters>,
    shutdown: AtomicBool,
    /// Write-ahead journal (`None` without `--journal-dir`). Lock order:
    /// appends always happen *after* the jobs/counters locks are
    /// released; the journal's own mutex is innermost and leaf-only.
    journal: Option<Journal>,
    /// Admission-control bound on queued jobs.
    max_queue: Option<usize>,
    /// Worker-pool size, for deriving `retry_after_ms` from queue depth.
    workers: usize,
}

/// The simulation daemon. [`Server::bind`] claims the socket (so the
/// caller can learn an ephemeral port before serving); [`Server::run`]
/// blocks until a graceful shutdown completes.
pub struct Server {
    listener: TcpListener,
    state: ServerState,
    workers: usize,
    /// Human-readable summary of the startup journal replay (`None`
    /// without a journal), for the CLI to print.
    replay_summary: Option<String>,
}

impl Server {
    /// Binds the listener, opens the cache, and — with a journal
    /// configured — replays it: terminal jobs rehydrate the job table and
    /// the result cache, incomplete jobs re-enqueue in original submit
    /// order (their deadline clocks restart at recovery time).
    ///
    /// # Errors
    ///
    /// Socket bind or cache/journal-directory creation failures. Corrupt
    /// journal *content* is never an error — damaged records are skipped
    /// and counted in `journal_records_skipped`.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let cache = ResultCache::open_bounded(
            config.cache_dir,
            config.cache_max_entries,
            config.cache_max_bytes,
        )?;
        let workers = config.workers.max(1);
        let mut server = Server {
            listener,
            state: ServerState {
                jobs: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(1),
                queue: JobQueue::new(),
                cache,
                counters: Mutex::new(ServeCounters::default()),
                shutdown: AtomicBool::new(false),
                journal: None,
                max_queue: config.max_queue,
                workers,
            },
            workers,
            replay_summary: None,
        };
        if let Some(dir) = &config.journal_dir {
            let (journal, replay) = Journal::open(dir)?;
            let now = Instant::now();
            let mut requeued = 0u64;
            let mut rehydrated = 0u64;
            let mut jobs = server.state.jobs.lock().expect("job table");
            for (id, replayed) in replay.jobs {
                let job = match replayed {
                    ReplayedJob::Pending(request) => {
                        // The original deadline was wall-clock-relative to
                        // a process that no longer exists; restart it.
                        let deadline =
                            request.deadline_ms.map(|ms| now + Duration::from_millis(ms));
                        requeued += 1;
                        Job {
                            request: Some(request),
                            status: JobStatus::Queued,
                            cached: false,
                            error: None,
                            cells: Vec::new(),
                            submitted: now,
                            deadline,
                        }
                    }
                    ReplayedJob::Done { cached, cells } => {
                        for cell in &cells {
                            if let Some(key) = cell.cache_key() {
                                server.state.cache.put(key, cell.payload_json());
                            }
                        }
                        rehydrated += 1;
                        Job {
                            request: None,
                            status: JobStatus::Done,
                            cached,
                            error: None,
                            cells,
                            submitted: now,
                            deadline: None,
                        }
                    }
                    ReplayedJob::Failed(error) => {
                        rehydrated += 1;
                        terminal_job(JobStatus::Failed, error, now)
                    }
                    ReplayedJob::Expired(error) => {
                        rehydrated += 1;
                        terminal_job(JobStatus::Expired, error, now)
                    }
                };
                let requeue = job.status == JobStatus::Queued;
                jobs.insert(id, job);
                if requeue {
                    server.state.queue.push(id);
                }
            }
            drop(jobs);
            server.state.next_id.store(replay.next_id, Ordering::SeqCst);
            {
                let mut counters = server.state.counters.lock().expect("serve counters");
                counters.journal_records_skipped = replay.skipped;
                counters.journal_jobs_requeued = requeued;
                counters.journal_jobs_rehydrated = rehydrated;
            }
            server.replay_summary = Some(format!(
                "journal: replayed {} record(s): {requeued} requeued, \
                 {rehydrated} rehydrated, {} skipped",
                replay.records, replay.skipped
            ));
            server.state.journal = Some(journal);
        }
        Ok(server)
    }

    /// The startup journal-replay summary, when a journal is configured.
    #[must_use]
    pub fn replay_summary(&self) -> Option<&str> {
        self.replay_summary.as_deref()
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `POST /shutdown`: accept loop on this thread,
    /// simulation on the worker pool. On shutdown the queued backlog
    /// still runs (jobs whose deadlines pass while queued expire
    /// instead), then the cache index is flushed and the call returns.
    ///
    /// # Errors
    ///
    /// Only fatal listener errors; per-connection failures are contained.
    pub fn run(self) -> io::Result<()> {
        let state = &self.state;
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(move || worker_loop(state));
            }
            for stream in self.listener.incoming() {
                match stream {
                    Ok(stream) => handle_connection(state, stream),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        // Tear down the workers before surfacing the error.
                        state.queue.drain();
                        return Err(e);
                    }
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            state.queue.drain();
            Ok(())
        })?;
        self.state.cache.flush();
        Ok(())
    }
}

/// A journal-rehydrated terminal job (failed or expired).
fn terminal_job(status: JobStatus, error: String, now: Instant) -> Job {
    Job {
        request: None,
        status,
        cached: false,
        error: Some(error),
        cells: Vec::new(),
        submitted: now,
        deadline: None,
    }
}

/// One worker: pop ids until drain completes, expiring overdue jobs and
/// executing the rest.
fn worker_loop(state: &ServerState) {
    while let Some(id) = state.queue.pop() {
        execute_job(state, id);
    }
}

/// Reads one request off a fresh connection, routes it, writes the
/// response. All errors are contained: a malformed or timed-out request
/// can never take the daemon down.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    // A stalled peer must not wedge the accept loop.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let response = match http::read_request(&mut reader) {
        Ok(req) => route(state, &req),
        // Structured rejection: 413 for oversize framing, 400 otherwise.
        Err(e) => http::rejection(&e),
    };
    let mut stream = stream;
    let _ = http::write_response(&mut stream, &response);
}

/// Dispatches one request to its handler.
fn route(state: &ServerState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/submit") => handle_submit(state, &req.body),
        ("POST", "/shutdown") => {
            // Drain first so workers start finishing the backlog, then
            // flip the accept-loop flag: this handler's own connection is
            // the one whose completion breaks the loop.
            state.queue.drain();
            state.shutdown.store(true, Ordering::SeqCst);
            Response::ok("{\"ok\":true}".to_string())
        }
        ("GET", "/health") => handle_health(state),
        ("GET", path) => {
            if let Some(id) = parse_id(path, "/status/") {
                handle_status(state, id)
            } else if let Some(id) = parse_id(path, "/result/") {
                handle_result(state, id)
            } else {
                Response::error(404, &format!("no such path `{path}`"))
            }
        }
        (method, path) => Response::error(405, &format!("{method} {path} not supported")),
    }
}

fn parse_id(path: &str, prefix: &str) -> Option<u64> {
    path.strip_prefix(prefix)?.parse().ok()
}

/// `POST /submit`: validate, probe the cache, and either answer
/// immediately (every cell cached), enqueue, or bounce with a structured
/// 429 when admission control says the queue is full.
fn handle_submit(state: &ServerState, body: &str) -> Response {
    if state.queue.is_draining() {
        return Response::error(503, "server is draining");
    }
    // Cheap admission pre-check before any parsing or journaling: an
    // overloaded daemon sheds load at the door. (The authoritative check
    // is the atomic `push_bounded` below; this one just keeps the
    // rejected path from paying for validation and an fsync.)
    if let Some(max) = state.max_queue {
        let depth = state.queue.len();
        if depth >= max {
            return reject_overflow(state, depth);
        }
    }
    let parsed = match hpa_obs::json::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e),
    };
    let request = match JobRequest::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &e),
    };
    // Validate the program *now* so a typo'd workload name or unparsable
    // source is a 400, not a failed job discovered by polling.
    let resolved = match resolve_program(&request) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &e),
    };

    let now = Instant::now();
    let deadline = request.deadline_ms.map(|ms| now + Duration::from_millis(ms));
    let id = state.next_id.fetch_add(1, Ordering::SeqCst);

    // Submit-time fast path: if every cell is already cached the job is
    // `done` before it is ever queued — the response itself says
    // `cached: true` and no simulation (or worker round-trip) happens.
    let mut cells = Vec::with_capacity(request.schemes.len());
    for &scheme in &request.schemes {
        let config = cell_config(&request, scheme);
        let key = cell_key(&resolved.program, &config, scheme, request.seed, request.sampled);
        match state.cache.get(key) {
            Some(payload) => cells.push(CellResult::new(scheme, true, payload)),
            None => {
                cells.clear();
                break;
            }
        }
    }
    let all_cached = !cells.is_empty();
    let n_cells = request.schemes.len() as u64;

    let status = if all_cached { JobStatus::Done } else { JobStatus::Queued };
    // Journal `submitted` (fsync'd) *before* the job becomes visible —
    // once the 200 goes out, a kill -9 cannot lose the job. Appends
    // happen outside the jobs/counters locks (lock-order discipline).
    if let Some(journal) = &state.journal {
        journal.append(&Record::Submitted { id, request: request.clone() }, true);
        if all_cached {
            journal.append(&Record::Done { id, cached: true, cells: cells.clone() }, true);
        }
    }
    let job = Job {
        request: Some(request),
        status,
        cached: all_cached,
        error: None,
        cells,
        submitted: now,
        deadline,
    };
    state.jobs.lock().expect("job table").insert(id, job);

    if all_cached {
        let mut counters = state.counters.lock().expect("serve counters");
        counters.cache_hits += n_cells;
        counters.jobs_done += 1;
        counters.record_latency_ms(0);
        drop(counters);
        return SubmitResponse { job_id: id, status: JobStatus::Done, cached: true }
            .into_response();
    }

    match state.queue.push_bounded(id, state.max_queue) {
        Ok(depth) => {
            state.counters.lock().expect("serve counters").queue_depth.record(depth as u64);
            SubmitResponse { job_id: id, status: JobStatus::Queued, cached: false }.into_response()
        }
        Err(depth) => {
            // Lost the admission race after the `submitted` record was
            // already durable: retract the job. The journaled `expired`
            // record keeps replay consistent (a harmless terminal entry).
            state.jobs.lock().expect("job table").remove(&id);
            if let Some(journal) = &state.journal {
                journal
                    .append(&Record::Expired { id, error: "rejected: queue full".into() }, false);
            }
            reject_overflow(state, depth)
        }
    }
}

/// Builds the structured 429: the error plus a `retry_after_ms` hint
/// derived from the mean observed job latency and the backlog depth
/// relative to the worker pool (how many "waves" of work are queued).
fn reject_overflow(state: &ServerState, depth: usize) -> Response {
    let mut counters = state.counters.lock().expect("serve counters");
    counters.jobs_rejected += 1;
    // 500 ms before any job has finished: long enough to matter, short
    // enough that a freshly started daemon is retried promptly.
    let mean = counters.mean_latency_ms().unwrap_or(500).max(1);
    drop(counters);
    let waves = (depth as u64).div_ceil(state.workers as u64).max(1);
    let retry_after_ms = (mean * waves).clamp(100, 60_000);
    let mut body = String::from("{\"error\":\"");
    escape_into(&mut body, &format!("queue full: {depth} job(s) queued"));
    let _ = write!(body, "\",\"retry_after_ms\":{retry_after_ms}}}");
    Response { status: 429, body }
}

impl SubmitResponse {
    fn into_response(self) -> Response {
        Response::ok(self.to_json())
    }
}

fn handle_status(state: &ServerState, id: u64) -> Response {
    let mut jobs = state.jobs.lock().expect("job table");
    let Some(job) = jobs.get_mut(&id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    let expired = job.expire_if_due(Instant::now());
    let resp = StatusResponse {
        job_id: id,
        status: job.status,
        cached: job.cached,
        error: job.error.clone(),
    };
    drop(jobs);
    if expired {
        record_expiry(state, id);
    }
    Response::ok(resp.to_json())
}

fn handle_result(state: &ServerState, id: u64) -> Response {
    let mut jobs = state.jobs.lock().expect("job table");
    let Some(job) = jobs.get_mut(&id) else {
        return Response::error(404, &format!("no job {id}"));
    };
    let expired = job.expire_if_due(Instant::now());
    let resp = ResultResponse {
        job_id: id,
        status: job.status,
        cached: job.cached,
        error: job.error.clone(),
        cells: if job.status == JobStatus::Done { job.cells.clone() } else { Vec::new() },
    };
    drop(jobs);
    if expired {
        record_expiry(state, id);
    }
    Response::ok(resp.to_json())
}

fn handle_health(state: &ServerState) -> Response {
    let counters = {
        let mut counters = state.counters.lock().expect("serve counters");
        // Eviction bookkeeping lives in the cache; mirror it here so one
        // endpoint reports everything.
        counters.cache_evictions = state.cache.evictions();
        counters.to_json()
    };
    let body = format!(
        "{{\"ok\":true,\"draining\":{},\"queue_depth\":{},\"max_queue\":{},\
         \"cache_entries\":{},\"cache_bytes\":{},\"counters\":{}}}",
        state.queue.is_draining(),
        state.queue.len(),
        state.max_queue.map_or_else(|| "null".to_string(), |m| m.to_string()),
        state.cache.len(),
        state.cache.bytes(),
        counters
    );
    Response::ok(body)
}

/// A job's program resolved to executable form.
#[derive(Debug)]
struct ResolvedProgram {
    program: Program,
    /// The reference checksum, for built-in workloads (source programs
    /// have no oracle — they run unverified).
    checksum: Option<u64>,
}

fn resolve_program(request: &JobRequest) -> Result<ResolvedProgram, String> {
    match &request.program {
        JobProgram::Workload { name, scale } => {
            let w = workload(name, *scale)
                .ok_or_else(|| format!("unknown workload `{name}`; see `hpa list`"))?;
            Ok(ResolvedProgram { program: w.program, checksum: Some(w.expected_checksum) })
        }
        JobProgram::Source(text) => {
            let program = hpa_asm::parse_program(text).map_err(|e| format!("assembly: {e}"))?;
            Ok(ResolvedProgram { program, checksum: None })
        }
        JobProgram::Binary(bytes) => {
            let image = hpa_core::rv::load_elf(bytes).map_err(|e| format!("elf: {e}"))?;
            let program = hpa_core::rv::translate(&image).map_err(|e| format!("translate: {e}"))?;
            Ok(ResolvedProgram { program, checksum: None })
        }
    }
}

/// The final configuration for one cell: scheme applied to the width's
/// base config, plus the request's overrides.
fn cell_config(request: &JobRequest, scheme: Scheme) -> SimConfig {
    let mut config = scheme.configure(request.width);
    if let Some(n) = request.pc_table_entries {
        config = config.with_pc_table_entries(n);
    }
    config
}

/// Runs one popped job to a terminal state.
fn execute_job(state: &ServerState, id: u64) {
    // Claim the job: skip if it expired while queued, otherwise mark it
    // running and snapshot the request (workers never hold the table
    // lock while simulating).
    let request = {
        let mut jobs = state.jobs.lock().expect("job table");
        let Some(job) = jobs.get_mut(&id) else { return };
        if job.expire_if_due(Instant::now()) {
            drop(jobs);
            record_expiry(state, id);
            return;
        }
        if job.status != JobStatus::Queued {
            return;
        }
        let Some(request) = job.request.clone() else { return };
        job.status = JobStatus::Running;
        request
    };
    if let Some(journal) = &state.journal {
        // A recovery hint only, so no fsync: losing it merely means the
        // job replays as queued instead of "was running".
        journal.append(&Record::Started { id }, false);
    }

    let resolved = match resolve_program(&request) {
        Ok(r) => r,
        // Unreachable in practice: submit validated the program. Kept as
        // a failure path rather than a panic for defense in depth.
        Err(e) => return finish_job(state, id, Err(e)),
    };

    // Each cell runs panic-isolated (`jobs = 1` keeps the map inline on
    // this worker thread — isolation without nested fan-out; job-level
    // parallelism comes from the worker pool).
    let mut hits = 0u64;
    let mut misses = 0u64;
    let outcomes = parallel_map_isolated(&request.schemes, 1, |_, &scheme| {
        let config = cell_config(&request, scheme);
        let key = cell_key(&resolved.program, &config, scheme, request.seed, request.sampled);
        match state.cache.get(key) {
            Some(payload) => Ok((CellResult::new(scheme, true, payload), true)),
            None => run_cell(&request, &resolved, scheme, &config, key)
                .map(|payload| {
                    state.cache.put(key, &payload);
                    (CellResult::new(scheme, false, payload), false)
                })
                .map_err(|e| format!("scheme `{}`: {e}", scheme.key())),
        }
    });

    let mut cells = Vec::with_capacity(outcomes.len());
    let mut failure = None;
    for (outcome, &scheme) in outcomes.into_iter().zip(&request.schemes) {
        match outcome {
            Ok(Ok((cell, was_hit))) => {
                if was_hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                cells.push(cell);
            }
            Ok(Err(e)) => {
                failure.get_or_insert(e);
            }
            Err(panic) => {
                failure.get_or_insert(format!(
                    "scheme `{}`: cell panicked: {}",
                    scheme.key(),
                    panic.message
                ));
            }
        }
    }

    {
        let mut counters = state.counters.lock().expect("serve counters");
        counters.cache_hits += hits;
        counters.cache_misses += misses;
    }
    match failure {
        None => finish_job(state, id, Ok(cells)),
        Some(e) => finish_job(state, id, Err(e)),
    }
}

/// Records a job's terminal state, its latency, and the journal's
/// terminal record — then rotates the journal if it has grown past the
/// threshold.
fn finish_job(state: &ServerState, id: u64, outcome: Result<Vec<CellResult>, String>) {
    let (latency_ms, terminal) = {
        let mut jobs = state.jobs.lock().expect("job table");
        let Some(job) = jobs.get_mut(&id) else { return };
        let terminal = match outcome {
            Ok(cells) => {
                job.cached = cells.iter().all(|c| c.cached);
                job.cells = cells.clone();
                job.status = JobStatus::Done;
                Record::Done { id, cached: job.cached, cells }
            }
            Err(e) => {
                job.status = JobStatus::Failed;
                job.error = Some(e.clone());
                Record::Failed { id, error: e }
            }
        };
        (job.submitted.elapsed().as_millis() as u64, terminal)
    };
    let done = matches!(terminal, Record::Done { .. });
    {
        let mut counters = state.counters.lock().expect("serve counters");
        if done {
            counters.jobs_done += 1;
        } else {
            counters.jobs_failed += 1;
        }
        counters.record_latency_ms(latency_ms);
    }
    if let Some(journal) = &state.journal {
        journal.append(&terminal, true);
        if journal.should_rotate() {
            journal.rewrite(&live_records(state));
        }
    }
}

/// Snapshots the job table as journal records (sorted by id, which is
/// submit order) for a rotation rewrite.
fn live_records(state: &ServerState) -> Vec<Record> {
    let jobs = state.jobs.lock().expect("job table");
    let mut records: Vec<Record> = jobs
        .iter()
        .filter_map(|(&id, job)| match job.status {
            JobStatus::Queued | JobStatus::Running => {
                job.request.clone().map(|request| Record::Submitted { id, request })
            }
            JobStatus::Done => {
                Some(Record::Done { id, cached: job.cached, cells: job.cells.clone() })
            }
            JobStatus::Failed => {
                Some(Record::Failed { id, error: job.error.clone().unwrap_or_default() })
            }
            JobStatus::Expired => {
                Some(Record::Expired { id, error: job.error.clone().unwrap_or_default() })
            }
        })
        .collect();
    drop(jobs);
    records.sort_by_key(Record::id);
    records
}

/// Simulates one cache-missing cell and renders its payload.
fn run_cell(
    request: &JobRequest,
    resolved: &ResolvedProgram,
    scheme: Scheme,
    config: &SimConfig,
    key: u64,
) -> Result<String, String> {
    match request.sampled {
        None => {
            let mut sim = Simulator::new(&resolved.program, config.clone());
            sim.set_cycle_budget(request.cycle_budget);
            sim.try_run().map_err(|fault| fault.to_string())?;
            verify_checksum(resolved, sim.emulator().reg(CHECKSUM_REG))?;
            Ok(render_payload(request, scheme, key, sim.stats(), None))
        }
        Some(units) => {
            // The cycle-budget watchdog does not reach inside the sampled
            // runner's windows; its own deadlock detector bounds them.
            let runner = SampledRunner::new(config.clone(), units).with_seed(request.seed);
            let outcome = runner.run(&resolved.program).map_err(|fault| fault.to_string())?;
            verify_checksum(resolved, outcome.emulator.reg(CHECKSUM_REG))?;
            let estimate = outcome.estimate;
            // Mirror `run_workload_sampled`: stats carry the summed
            // measured-window counters, so the digest is comparable with
            // a direct `hpa bench --sampled` run.
            let stats = SimStats {
                committed: estimate.samples.iter().map(|s| s.committed).sum(),
                cycles: estimate.samples.iter().map(|s| s.cycles).sum(),
                ..SimStats::default()
            };
            Ok(render_payload(request, scheme, key, &stats, Some(&estimate)))
        }
    }
}

fn verify_checksum(resolved: &ResolvedProgram, actual: u64) -> Result<(), String> {
    match resolved.checksum {
        Some(expected) if actual != expected => {
            Err(format!("checksum mismatch: got {actual:#x}, expected {expected:#x}"))
        }
        _ => Ok(()),
    }
}

/// Renders one cell's canonical payload — the unit of cache storage.
/// Deterministic by construction: every field is derived from the
/// deterministic simulation, floats use Rust's shortest round-trip
/// formatting, and field order is fixed.
fn render_payload(
    request: &JobRequest,
    scheme: Scheme,
    key: u64,
    stats: &SimStats,
    sampled: Option<&SampledEstimate>,
) -> String {
    let mut out = String::with_capacity(768);
    out.push('{');
    match &request.program {
        JobProgram::Workload { name, scale } => {
            out.push_str("\"workload\":\"");
            escape_into(&mut out, name);
            let _ = write!(out, "\",\"scale\":\"{}\"", scale.key());
        }
        JobProgram::Source(_) => out.push_str("\"program\":\"source\""),
        JobProgram::Binary(_) => out.push_str("\"program\":\"binary\""),
    }
    let _ = write!(
        out,
        ",\"scheme\":\"{}\",\"width\":{},\"seed\":{}",
        scheme.key(),
        request.width.base_config().width,
        request.seed
    );
    match request.sampled {
        None => out.push_str(",\"mode\":\"full\""),
        Some(units) => {
            let _ = write!(out, ",\"mode\":\"sampled:{units}\"");
        }
    }
    let _ = write!(
        out,
        ",\"cache_key\":\"{}\",\"stats_digest\":\"{}\"",
        format_hex(key),
        format_hex(debug_digest(stats))
    );
    let ipc = sampled.map_or_else(|| stats.ipc(), |e| e.mean_ipc);
    let _ =
        write!(out, ",\"ipc\":{ipc},\"cycles\":{},\"committed\":{}", stats.cycles, stats.committed);
    if let Some(e) = sampled {
        let _ = write!(
            out,
            ",\"sampled\":{{\"mean_ipc\":{},\"ci_half_width\":{},\"samples\":{},\
             \"detailed_insts\":{},\"total_insts\":{}}}",
            e.mean_ipc,
            e.ci_half_width,
            e.samples.len(),
            e.detailed_insts,
            e.total_insts
        );
    }
    let _ = write!(out, ",\"stats\":{}", stats.to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_workloads::Scale;

    fn tiny_request() -> JobRequest {
        JobRequest::workload("gcc", Scale::Tiny, Scheme::Base)
    }

    #[test]
    fn payload_is_valid_json_with_exact_digest() {
        let request = tiny_request();
        let resolved = resolve_program(&request).unwrap();
        let config = cell_config(&request, Scheme::Base);
        let key = cell_key(&resolved.program, &config, Scheme::Base, 0, None);
        let payload = run_cell(&request, &resolved, Scheme::Base, &config, key).unwrap();
        let v = hpa_obs::json::parse(&payload).expect("valid JSON");
        assert_eq!(v.get("workload").and_then(|x| x.as_str()), Some("gcc"));
        assert_eq!(v.get("mode").and_then(|x| x.as_str()), Some("full"));
        let cell = CellResult::new(Scheme::Base, false, payload);
        assert_eq!(cell.cache_key(), Some(key));
        // The payload digest equals a from-scratch run's stats digest.
        let mut sim = Simulator::new(&resolved.program, config);
        sim.try_run().unwrap();
        assert_eq!(cell.stats_digest(), Some(debug_digest(sim.stats())));
        assert!(cell.ipc().unwrap() > 0.0);
    }

    #[test]
    fn run_cell_is_deterministic() {
        let request = tiny_request();
        let resolved = resolve_program(&request).unwrap();
        let config = cell_config(&request, Scheme::Combined);
        let key = cell_key(&resolved.program, &config, Scheme::Combined, 0, None);
        let a = run_cell(&request, &resolved, Scheme::Combined, &config, key).unwrap();
        let b = run_cell(&request, &resolved, Scheme::Combined, &config, key).unwrap();
        assert_eq!(a, b, "payload is byte-identical across runs");
    }

    #[test]
    fn tiny_cycle_budget_is_a_structured_failure() {
        let mut request = tiny_request();
        request.cycle_budget = 10;
        let resolved = resolve_program(&request).unwrap();
        let config = cell_config(&request, Scheme::Base);
        let e = run_cell(&request, &resolved, Scheme::Base, &config, 0)
            .expect_err("10 cycles cannot finish gcc");
        assert!(e.contains("deadlock") || e.contains("budget") || e.contains("cycle"), "{e}");
    }

    #[test]
    fn unknown_workload_and_bad_source_fail_resolution() {
        let mut request = tiny_request();
        request.program = JobProgram::Workload { name: "nonesuch".into(), scale: Scale::Tiny };
        assert!(resolve_program(&request).unwrap_err().contains("nonesuch"));
        request.program = JobProgram::Source("this is not assembly !!".into());
        assert!(resolve_program(&request).unwrap_err().contains("assembly"));
        request.program = JobProgram::Binary(vec![0x7f, b'E', b'L', b'F', 9, 9]);
        assert!(resolve_program(&request).unwrap_err().contains("elf"));
    }

    #[test]
    fn binary_programs_resolve_and_run_without_a_checksum_oracle() {
        let mut request = tiny_request();
        request.program = JobProgram::Binary(hpa_core::rv::fixtures::SIEVE_ELF.to_vec());
        let resolved = resolve_program(&request).expect("checked-in fixture resolves");
        assert_eq!(resolved.checksum, None);
        let config = cell_config(&request, Scheme::Base);
        let key = cell_key(&resolved.program, &config, Scheme::Base, 0, None);
        let payload = run_cell(&request, &resolved, Scheme::Base, &config, key).unwrap();
        let v = hpa_obs::json::parse(&payload).unwrap();
        assert_eq!(v.get("program").and_then(|x| x.as_str()), Some("binary"));
        assert!(v.get("cycles").and_then(|x| x.as_u64()).unwrap() > 0);
    }

    #[test]
    fn source_programs_run_without_a_checksum_oracle() {
        let mut request = tiny_request();
        request.program = JobProgram::Source(
            "li r1, #5\nloop:\n  add r2, #1, r2\n  sub r1, #1, r1\n  bgt r1, loop\n  halt\n"
                .to_string(),
        );
        let resolved = resolve_program(&request).expect("valid source");
        assert_eq!(resolved.checksum, None);
        let config = cell_config(&request, Scheme::Base);
        let key = cell_key(&resolved.program, &config, Scheme::Base, 0, None);
        let payload = run_cell(&request, &resolved, Scheme::Base, &config, key).unwrap();
        let v = hpa_obs::json::parse(&payload).unwrap();
        assert_eq!(v.get("program").and_then(|x| x.as_str()), Some("source"));
        assert!(v.get("cycles").and_then(|x| x.as_u64()).unwrap() > 0);
    }
}
