//! The content-addressed result cache.
//!
//! Every simulation in this workspace is fully deterministic from
//! `(program, config, scheme, seed, mode)` — the determinism suite pins
//! serial, parallel and observed runs bit-identical. That makes results
//! cacheable by *content*: the cache key is an FNV-1a digest of a
//! canonical byte encoding of those five inputs (spec in `DESIGN.md`
//! §12), and the cached value is the cell's rendered JSON payload,
//! stored verbatim so a hit is bit-identical to the original run by
//! construction.
//!
//! The canonical encoding digests the program's *encoded instruction
//! words and data image*, never its `Debug` formatting — `Program` holds
//! a label `HashMap` whose iteration order is unstable, while the binary
//! encoding is exactly what the emulator executes. `SimConfig`'s `Debug`
//! output *is* used (it is a plain struct of scalars, deterministic) so
//! any config knob — width, RUU size, wakeup scheme, PC-table size —
//! perturbs the key without this module naming every field.
//!
//! The on-disk store is one file per entry, `<dir>/<0x-key>.json`,
//! written to a temp file and atomically renamed into place so a crash
//! mid-write can never leave a half-written entry for a later server to
//! serve. Writes are write-through; the in-memory index fronts reads.

use crate::proto::format_hex;
use hpa_asm::Program;
use hpa_core::Scheme;
use hpa_obs::digest::fnv1a;
use hpa_sim::{SampleUnits, SimConfig};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version tag leading the canonical encoding; bump it to invalidate
/// every existing cache entry when the encoding or payload shape changes.
const MAGIC: &[u8] = b"hpa-serve-cache-v1\n";

/// Computes the content-addressed key for one simulation cell.
///
/// `config` must be the *final* configuration the cell will run —
/// scheme and overrides already applied — so that every knob that can
/// change the result is inside the digest.
#[must_use]
pub fn cell_key(
    program: &Program,
    config: &SimConfig,
    scheme: Scheme,
    seed: u64,
    sampled: Option<SampleUnits>,
) -> u64 {
    let mut bytes = Vec::with_capacity(4096);
    bytes.extend_from_slice(MAGIC);

    // Program text: encoded instruction words, length-prefixed.
    let words = program.to_words();
    bytes.extend_from_slice(&(words.len() as u64).to_le_bytes());
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    // Program data image: (base address, bytes) per segment, in the
    // program's own segment order (part of its identity).
    bytes.extend_from_slice(&(program.data_segments().len() as u64).to_le_bytes());
    for (base, data) in program.data_segments() {
        bytes.extend_from_slice(&base.to_le_bytes());
        bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
        bytes.extend_from_slice(data);
    }

    // Configuration: the deterministic Debug rendering, length-prefixed.
    let config_text = format!("{config:?}");
    bytes.extend_from_slice(&(config_text.len() as u64).to_le_bytes());
    bytes.extend_from_slice(config_text.as_bytes());

    // Scheme key (the config alone does not name the scheme: two schemes
    // could in principle map to one config, and the payload echoes the
    // scheme name, so it is part of the content).
    let key = scheme.key();
    bytes.extend_from_slice(&(key.len() as u64).to_le_bytes());
    bytes.extend_from_slice(key.as_bytes());

    // Seed. Always included — full-detail runs ignore it today, but the
    // key schema must not change if that ever changes, and `submit
    // --seed` changing the key is part of the cache-key contract.
    bytes.extend_from_slice(&seed.to_le_bytes());

    // Mode: 0 = full detail, 1 = sampled followed by the W:D:F text.
    match sampled {
        None => bytes.push(0),
        Some(units) => {
            bytes.push(1);
            let text = units.to_string();
            bytes.extend_from_slice(&(text.len() as u64).to_le_bytes());
            bytes.extend_from_slice(text.as_bytes());
        }
    }

    fnv1a(&bytes)
}

/// The index plus the bookkeeping eviction needs: insertion order and
/// total payload bytes.
#[derive(Default)]
struct CacheState {
    map: HashMap<u64, String>,
    /// Keys in insertion order (oldest first); the eviction order. Keys
    /// are unique here — `insert` only appends on a fresh map entry.
    order: VecDeque<u64>,
    /// Sum of payload byte lengths across the index.
    bytes: u64,
    /// Entries evicted over this cache's lifetime (served by `/health`).
    evictions: u64,
}

/// The result cache: an in-memory index over an optional on-disk store,
/// bounded (when configured) by entry count and payload bytes with
/// insertion-order eviction.
pub struct ResultCache {
    dir: Option<PathBuf>,
    max_entries: Option<usize>,
    max_bytes: Option<u64>,
    state: Mutex<CacheState>,
}

impl ResultCache {
    /// Opens an unbounded cache; see [`ResultCache::open_bounded`].
    ///
    /// # Errors
    ///
    /// Only directory creation errors.
    pub fn open(dir: Option<PathBuf>) -> io::Result<ResultCache> {
        ResultCache::open_bounded(dir, None, None)
    }

    /// Opens a cache. With a directory, existing `<0x-key>.json` entries
    /// are loaded into the index (unreadable or misnamed files are
    /// skipped — the cache is advisory, never load-bearing); the
    /// directory is created if missing. With `None`, the cache is
    /// memory-only and dies with the server.
    ///
    /// `max_entries` / `max_bytes` bound the index for long-lived
    /// daemons: inserting past either bound evicts oldest-inserted
    /// entries first (and prunes their disk files). Bounds are applied
    /// to a reloaded store too, in directory-iteration order.
    ///
    /// # Errors
    ///
    /// Only directory creation errors; a present-but-odd entry never
    /// fails the open.
    pub fn open_bounded(
        dir: Option<PathBuf>,
        max_entries: Option<usize>,
        max_bytes: Option<u64>,
    ) -> io::Result<ResultCache> {
        let cache =
            ResultCache { dir, max_entries, max_bytes, state: Mutex::new(CacheState::default()) };
        if let Some(dir) = cache.dir.clone() {
            std::fs::create_dir_all(&dir)?;
            let mut state = cache.state.lock().expect("cache index");
            for entry in std::fs::read_dir(&dir)? {
                let Ok(entry) = entry else { continue };
                let path = entry.path();
                let Some(key) = entry_key(&path) else { continue };
                if let Ok(payload) = std::fs::read_to_string(&path) {
                    cache.insert_locked(&mut state, key, payload);
                }
            }
        }
        Ok(cache)
    }

    /// The payload for a key, if cached.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<String> {
        self.state.lock().expect("cache index").map.get(&key).cloned()
    }

    /// Stores a payload under a key: into the index, and — when the
    /// cache is disk-backed — write-through to a temp file renamed
    /// atomically into place. A disk failure downgrades the entry to
    /// memory-only rather than failing the job that produced it.
    /// Inserting past a configured bound evicts oldest entries (index
    /// and disk file both).
    pub fn put(&self, key: u64, payload: &str) {
        {
            let mut state = self.state.lock().expect("cache index");
            self.insert_locked(&mut state, key, payload.to_string());
        }
        if let Some(dir) = &self.dir {
            // Temp name is unique per key; concurrent puts of the *same*
            // key write identical bytes, so either rename winning is fine.
            let tmp = dir.join(format!(".{}.tmp", format_hex(key)));
            let final_path = dir.join(format!("{}.json", format_hex(key)));
            let _ = std::fs::write(&tmp, payload).and_then(|()| std::fs::rename(&tmp, &final_path));
        }
    }

    /// Inserts into the index and evicts down to the configured bounds,
    /// oldest insertion first. A single entry larger than `max_bytes`
    /// can evict everything including itself — correct (the bound
    /// holds), just wasteful, and only reachable with a tiny bound.
    fn insert_locked(&self, state: &mut CacheState, key: u64, payload: String) {
        let len = payload.len() as u64;
        match state.map.insert(key, payload) {
            None => {
                state.order.push_back(key);
                state.bytes += len;
            }
            // Overwrite (same content by construction): adjust bytes,
            // keep the original insertion position.
            Some(old) => state.bytes += len.saturating_sub(old.len() as u64),
        }
        while self.max_entries.is_some_and(|m| state.map.len() > m)
            || self.max_bytes.is_some_and(|m| state.bytes > m)
        {
            let Some(oldest) = state.order.pop_front() else { break };
            if let Some(evicted) = state.map.remove(&oldest) {
                state.bytes -= evicted.len() as u64;
                state.evictions += 1;
                if let Some(dir) = &self.dir {
                    let _ = std::fs::remove_file(dir.join(format!("{}.json", format_hex(oldest))));
                }
            }
        }
    }

    /// Number of indexed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("cache index").map.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes currently indexed.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.state.lock().expect("cache index").bytes
    }

    /// Entries evicted by the size bounds over this cache's lifetime.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.state.lock().expect("cache index").evictions
    }

    /// Flushes the index to disk. Writes are already write-through, so
    /// this re-persists any entry whose earlier disk write failed (it
    /// was downgraded to memory-only) and is otherwise a no-op; called
    /// on graceful shutdown.
    pub fn flush(&self) {
        let Some(dir) = &self.dir else { return };
        let state = self.state.lock().expect("cache index");
        for (&key, payload) in state.map.iter() {
            let final_path = dir.join(format!("{}.json", format_hex(key)));
            if final_path.exists() {
                continue;
            }
            let tmp = dir.join(format!(".{}.tmp", format_hex(key)));
            let _ = std::fs::write(&tmp, payload).and_then(|()| std::fs::rename(&tmp, &final_path));
        }
    }

    /// A one-line summary for logs.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{} entries", self.len());
        match &self.dir {
            Some(dir) => {
                let _ = write!(out, " in {}", dir.display());
            }
            None => out.push_str(" (memory only)"),
        }
        out
    }
}

/// Parses `<0x-key>.json` file names back to keys; `None` for anything
/// else (temp files, strays).
fn entry_key(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_suffix(".json")?;
    crate::proto::parse_hex(hex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_core::MachineWidth;
    use hpa_workloads::{workload, Scale};

    fn key_for(name: &str, scheme: Scheme, seed: u64, sampled: Option<SampleUnits>) -> u64 {
        let w = workload(name, Scale::Tiny).expect("known workload");
        cell_key(&w.program, &scheme.configure(MachineWidth::Four), scheme, seed, sampled)
    }

    #[test]
    fn key_is_stable_across_calls_and_rebuilds() {
        // The same logical cell must hash identically no matter when or
        // where the program was built (no HashMap order, no addresses).
        let a = key_for("gcc", Scheme::Base, 7, None);
        let b = key_for("gcc", Scheme::Base, 7, None);
        assert_eq!(a, b);
    }

    #[test]
    fn every_single_field_change_changes_the_key() {
        let base = key_for("gcc", Scheme::Base, 7, None);
        let variants = [
            key_for("mcf", Scheme::Base, 7, None),
            key_for("gcc", Scheme::Combined, 7, None),
            key_for("gcc", Scheme::Base, 8, None),
            key_for("gcc", Scheme::Base, 7, SampleUnits::parse("500:1000:4000").ok()),
            {
                let w = workload("gcc", Scale::Default).unwrap();
                cell_key(
                    &w.program,
                    &Scheme::Base.configure(MachineWidth::Four),
                    Scheme::Base,
                    7,
                    None,
                )
            },
            {
                let w = workload("gcc", Scale::Tiny).unwrap();
                cell_key(
                    &w.program,
                    &Scheme::Base.configure(MachineWidth::Eight),
                    Scheme::Base,
                    7,
                    None,
                )
            },
            {
                let w = workload("gcc", Scale::Tiny).unwrap();
                let config = Scheme::Base.configure(MachineWidth::Four).with_pc_table_entries(8192);
                cell_key(&w.program, &config, Scheme::Base, 7, None)
            },
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, *v, "variant {i} collided with the base key");
        }
        // And the variants are distinct among themselves.
        let mut sorted = variants.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), variants.len());
    }

    #[test]
    fn sampled_units_are_part_of_the_key() {
        let a = key_for("gcc", Scheme::Base, 7, SampleUnits::parse("500:1000:4000").ok());
        let b = key_for("gcc", Scheme::Base, 7, SampleUnits::parse("500:1000:8000").ok());
        assert_ne!(a, b);
    }

    #[test]
    fn memory_cache_round_trips() {
        let cache = ResultCache::open(None).unwrap();
        assert!(cache.is_empty());
        assert_eq!(cache.get(42), None);
        cache.put(42, "{\"ipc\":1.5}");
        assert_eq!(cache.get(42).as_deref(), Some("{\"ipc\":1.5}"));
        assert_eq!(cache.len(), 1);
        assert!(cache.describe().contains("memory only"));
    }

    #[test]
    fn entry_bound_evicts_in_insertion_order() {
        let cache = ResultCache::open_bounded(None, Some(2), None).unwrap();
        cache.put(1, "one");
        cache.put(2, "two");
        cache.put(3, "three");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.get(1), None, "oldest insertion goes first");
        assert!(cache.get(2).is_some() && cache.get(3).is_some());
        // Overwriting an existing key does not count as an insertion.
        cache.put(3, "three");
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.bytes(), "two".len() as u64 + "three".len() as u64);
    }

    #[test]
    fn byte_bound_evicts_until_under_and_prunes_disk() {
        let dir = std::env::temp_dir().join(format!("hpa-cache-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open_bounded(Some(dir.clone()), None, Some(10)).unwrap();
        cache.put(1, "aaaa"); // 4 bytes
        cache.put(2, "bbbb"); // 8 bytes
        assert_eq!(cache.evictions(), 0);
        cache.put(3, "cccc"); // 12 bytes -> evict key 1
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.bytes(), 8);
        assert!(
            !dir.join(format!("{}.json", format_hex(1))).exists(),
            "eviction prunes the disk store"
        );
        assert!(dir.join(format!("{}.json", format_hex(2))).exists());
        // A reload of the pruned store honors the bound too.
        drop(cache);
        let cache = ResultCache::open_bounded(Some(dir.clone()), Some(1), None).unwrap();
        assert_eq!(cache.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_persists_and_reloads() {
        let dir = std::env::temp_dir().join(format!("hpa-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = ResultCache::open(Some(dir.clone())).unwrap();
            cache.put(0xabc, "{\"cycles\":100}");
            cache.put(0xdef, "{\"cycles\":200}");
            cache.flush();
        }
        // A fresh cache over the same directory sees both entries; a
        // stray non-entry file is ignored.
        std::fs::write(dir.join("not-an-entry.txt"), "junk").unwrap();
        let cache = ResultCache::open(Some(dir.clone())).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(0xabc).as_deref(), Some("{\"cycles\":100}"));
        assert_eq!(cache.get(0xdef).as_deref(), Some("{\"cycles\":200}"));
        // No temp files were left behind by the atomic writes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
