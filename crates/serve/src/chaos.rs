//! A deterministic fault-injecting TCP proxy for chaos testing.
//!
//! [`ChaosProxy`] sits between an SDK client and the daemon and damages
//! traffic on purpose: connections are dropped outright, delayed,
//! truncated mid-response, or bit-corrupted. Every decision derives from
//! a [`SplitMix64`] stream seeded with `seed + connection index`, so a
//! given seed always produces the same fault sequence — the chaos suite
//! is as reproducible as the simulations it torments (the same
//! discipline `faultsim` applies to microarchitectural fault injection).
//!
//! Faults target the *response* direction (server → client) except for
//! [`Fault::Drop`], which kills the connection before the daemon ever
//! sees it. Corrupting the request direction would merely manufacture
//! server-side 400s — permanent, non-retryable errors — where the point
//! is to prove the client's retry/backoff loop and the daemon's
//! robustness against a hostile *network*, not a hostile client.

use hpa_workloads::SplitMix64;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The per-connection fault classes, derived from the seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Pass traffic through untouched.
    Clean,
    /// Close the client connection without contacting the upstream.
    Drop,
    /// Forward both directions, but only after a short delay (ms).
    Delay(u64),
    /// Forward the response, then cut it off after this many bytes.
    TruncateResponse(usize),
    /// Flip one bit in the first chunk of the response.
    CorruptResponse,
}

/// Derives the fault for connection number `index` under `seed`.
/// Exposed so tests can assert the schedule is deterministic.
#[must_use]
pub fn fault_for(seed: u64, index: u64) -> Fault {
    let mut rng = SplitMix64::new(seed.wrapping_add(index.wrapping_mul(0x9E37)));
    match rng.below(100) {
        0..=39 => Fault::Clean,
        40..=54 => Fault::Drop,
        55..=69 => Fault::Delay(1 + rng.below(40)),
        70..=84 => Fault::TruncateResponse(1 + rng.below(40) as usize),
        _ => Fault::CorruptResponse,
    }
}

/// A running proxy: accepts on an ephemeral local port and forwards to
/// the upstream address, injecting the seeded fault schedule.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `upstream` with the given seed.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn start(upstream: SocketAddr, seed: u64) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut index = 0u64;
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = stream else { continue };
                let fault = fault_for(seed, index);
                index += 1;
                std::thread::spawn(move || proxy_connection(client, upstream, fault));
            }
        });
        Ok(ChaosProxy { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The proxy's listen address (point the SDK client here).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting. In-flight connections finish (or hit their
    /// stream timeouts) on their own threads.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one last connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves one proxied connection under its assigned fault.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault) {
    if fault == Fault::Drop {
        // Dropping the stream sends RST/FIN; the client sees an I/O
        // error (and retries).
        return;
    }
    if let Fault::Delay(ms) = fault {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let Ok(server) = TcpStream::connect(upstream) else { return };
    // A wedged peer must not leak proxy threads past the test.
    for s in [&client, &server] {
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let _ = s.set_write_timeout(Some(Duration::from_secs(5)));
    }
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else { return };
    // Request direction: always verbatim (see module docs).
    let up = std::thread::spawn(move || copy_stream(client_r, server, Damage::None));
    let damage = match fault {
        Fault::TruncateResponse(after) => Damage::Truncate(after),
        Fault::CorruptResponse => Damage::FlipBit,
        _ => Damage::None,
    };
    copy_stream(server_r, client, damage);
    let _ = up.join();
}

enum Damage {
    None,
    /// Stop forwarding after this many bytes and close.
    Truncate(usize),
    /// XOR bit 4 of the first byte of the first chunk.
    FlipBit,
}

/// Pumps bytes from `from` to `to`, applying `damage`, until EOF or an
/// error on either side (both of which end the pump quietly).
fn copy_stream(mut from: TcpStream, mut to: TcpStream, damage: Damage) {
    let mut budget = match damage {
        Damage::Truncate(n) => Some(n),
        _ => None,
    };
    let mut first = true;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let mut chunk = &mut buf[..n];
        if let Some(left) = &mut budget {
            if *left == 0 {
                break;
            }
            let take = (*left).min(chunk.len());
            chunk = &mut chunk[..take];
            *left -= take;
        }
        if first && matches!(damage, Damage::FlipBit) {
            chunk[0] ^= 0x10;
        }
        first = false;
        if to.write_all(chunk).is_err() {
            break;
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_seed_sensitive() {
        let a: Vec<Fault> = (0..32).map(|i| fault_for(7, i)).collect();
        let b: Vec<Fault> = (0..32).map(|i| fault_for(7, i)).collect();
        let c: Vec<Fault> = (0..32).map(|i| fault_for(8, i)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        // Every class shows up somewhere in a modest window.
        let has = |f: fn(&Fault) -> bool| (0..256).any(|i| f(&fault_for(7, i)));
        assert!(has(|f| *f == Fault::Clean));
        assert!(has(|f| *f == Fault::Drop));
        assert!(has(|f| matches!(f, Fault::Delay(_))));
        assert!(has(|f| matches!(f, Fault::TruncateResponse(_))));
        assert!(has(|f| *f == Fault::CorruptResponse));
    }

    #[test]
    fn clean_connections_pass_bytes_through_verbatim() {
        // An echo upstream: read everything, write it back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        // Find a seed whose connection 0 is Clean.
        let seed = (0..64).find(|&s| fault_for(s, 0) == Fault::Clean).unwrap();
        let mut proxy = ChaosProxy::start(upstream_addr, seed).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping-through-proxy").unwrap();
        let mut back = Vec::new();
        conn.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"ping-through-proxy");
        echo.join().unwrap();
        proxy.stop();
    }

    #[test]
    fn dropped_connections_error_out_instead_of_wedging() {
        // Upstream that would answer — but the proxy drops first.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let seed = (0..64).find(|&s| fault_for(s, 0) == Fault::Drop).unwrap();
        let mut proxy = ChaosProxy::start(upstream_addr, seed).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = conn.write_all(b"hello");
        let mut back = Vec::new();
        // Either an error or an immediate EOF — never a hang.
        let n = conn.read_to_end(&mut back).unwrap_or(0);
        assert_eq!(n, 0, "a dropped connection must carry no data");
        proxy.stop();
    }
}
