//! The write-ahead job journal: crash durability for the daemon.
//!
//! Every job transition is appended to `<dir>/journal.jsonl` as one
//! checksum-framed line *before* the transition is acknowledged to the
//! client (`submitted` records are additionally fsync'd, so an accepted
//! job survives a `kill -9` the instant the 200 goes out). On startup
//! [`Journal::open`] replays the file: completed jobs rehydrate the job
//! table and the content-addressed result cache, incomplete jobs
//! re-enqueue in their original submit order, and the whole file is then
//! compacted to the live state via temp-file + atomic rename — the same
//! rotation that also runs whenever the appended bytes pass
//! [`ROTATE_BYTES`].
//!
//! # Framing
//!
//! One record per line: `<len> <0x-fnv1a> <json>\n`, where `len` is the
//! byte length of `<json>` and the checksum is FNV-1a over exactly those
//! bytes. Replay is adversarial by construction: a truncated tail, a
//! bit-flipped byte, a merged line or plain garbage fails the length or
//! checksum test and the record is *skipped and counted*
//! ([`Replay::skipped`]) — never a panic, never a wedged daemon. The
//! torture tests below truncate a valid journal at every byte offset and
//! flip every byte in turn to pin that property.
//!
//! # Record grammar
//!
//! | `type`      | fields                      | meaning                        |
//! |-------------|-----------------------------|--------------------------------|
//! | `submitted` | `id`, `request`             | job accepted (fsync'd)         |
//! | `started`   | `id`                        | a worker claimed the job       |
//! | `done`      | `id`, `cached`, `cells`     | terminal: results (fsync'd)    |
//! | `failed`    | `id`, `error`               | terminal: fault/panic (fsync'd)|
//! | `expired`   | `id`, `error`               | terminal: never ran            |
//!
//! Replay rules: the *last intact* record per id wins; a terminal record
//! without its `submitted` line (lost to corruption) still rehydrates —
//! results are never discarded because an earlier record died. A
//! `submitted`/`started` with no terminal record re-enqueues.

use crate::proto::{format_hex, parse_cells_json, render_cells_into, CellResult, JobRequest};
use hpa_obs::digest::fnv1a;
use hpa_obs::json::{escape_into, Json};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Appended-bytes threshold past which the journal is rewritten to the
/// live job set (temp + atomic rename). Generous: terminal records carry
/// full result payloads (~1 KiB per cell), so this is thousands of jobs.
pub const ROTATE_BYTES: u64 = 8 << 20;

/// One journal record: a job id plus the transition it durably logs.
#[derive(Clone, PartialEq, Debug)]
pub enum Record {
    /// The job was accepted (always the first record for an id).
    Submitted {
        /// The job id.
        id: u64,
        /// The full request, so replay can re-run the job.
        request: JobRequest,
    },
    /// A worker claimed the job (recovery hint; not a state change).
    Started {
        /// The job id.
        id: u64,
    },
    /// The job finished with results.
    Done {
        /// The job id.
        id: u64,
        /// Whether every cell was served from the cache.
        cached: bool,
        /// One result per requested scheme, in request order.
        cells: Vec<CellResult>,
    },
    /// The job failed (cell fault or panic).
    Failed {
        /// The job id.
        id: u64,
        /// The failure description.
        error: String,
    },
    /// The job expired while queued (or was rejected at admission after
    /// its `submitted` record was already durable).
    Expired {
        /// The job id.
        id: u64,
        /// The expiry description.
        error: String,
    },
}

impl Record {
    /// The job id this record describes.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            Record::Submitted { id, .. }
            | Record::Started { id }
            | Record::Done { id, .. }
            | Record::Failed { id, .. }
            | Record::Expired { id, .. } => id,
        }
    }

    /// Renders the record's JSON body (the checksummed unit).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            Record::Submitted { id, request } => {
                let _ = write!(out, "{{\"type\":\"submitted\",\"id\":{id},\"request\":");
                out.push_str(&request.to_json());
                out.push('}');
            }
            Record::Started { id } => {
                let _ = write!(out, "{{\"type\":\"started\",\"id\":{id}}}");
            }
            Record::Done { id, cached, cells } => {
                let _ = write!(out, "{{\"type\":\"done\",\"id\":{id},\"cached\":{cached},");
                out.push_str("\"cells\":");
                render_cells_into(&mut out, cells);
                out.push('}');
            }
            Record::Failed { id, error } => {
                let _ = write!(out, "{{\"type\":\"failed\",\"id\":{id},\"error\":\"");
                escape_into(&mut out, error);
                out.push_str("\"}");
            }
            Record::Expired { id, error } => {
                let _ = write!(out, "{{\"type\":\"expired\",\"id\":{id},\"error\":\"");
                escape_into(&mut out, error);
                out.push_str("\"}");
            }
        }
        out
    }

    /// Decodes a record from its JSON body.
    ///
    /// # Errors
    ///
    /// A description of the first missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Record, String> {
        let id = v.get("id").and_then(Json::as_u64).ok_or_else(|| "missing `id`".to_string())?;
        let kind =
            v.get("type").and_then(Json::as_str).ok_or_else(|| "missing `type`".to_string())?;
        match kind {
            "submitted" => {
                let request = v.get("request").ok_or_else(|| "missing `request`".to_string())?;
                Ok(Record::Submitted { id, request: JobRequest::from_json(request)? })
            }
            "started" => Ok(Record::Started { id }),
            "done" => Ok(Record::Done {
                id,
                cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
                cells: parse_cells_json(
                    v.get("cells").ok_or_else(|| "missing `cells`".to_string())?,
                )?,
            }),
            "failed" => Ok(Record::Failed { id, error: record_error(v)? }),
            "expired" => Ok(Record::Expired { id, error: record_error(v)? }),
            other => Err(format!("unknown record type `{other}`")),
        }
    }
}

fn record_error(v: &Json) -> Result<String, String> {
    Ok(v.get("error")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing `error`".to_string())?
        .to_string())
}

/// One replayed job's effective state: the last intact record wins.
#[derive(Clone, PartialEq, Debug)]
pub enum ReplayedJob {
    /// Submitted (and possibly started) but never finished: re-enqueue.
    Pending(JobRequest),
    /// Finished with results: rehydrate the table and the cache.
    Done {
        /// Whether every cell was originally a cache hit.
        cached: bool,
        /// The job's cells, payloads verbatim.
        cells: Vec<CellResult>,
    },
    /// Failed terminally: rehydrate the terminal record.
    Failed(String),
    /// Expired terminally: rehydrate the terminal record.
    Expired(String),
}

/// What [`Journal::open`] recovered from an existing journal.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Replay {
    /// Replayed jobs in original submit order (first-record order for
    /// orphaned terminal records).
    pub jobs: Vec<(u64, ReplayedJob)>,
    /// The next job id to allocate (max replayed id + 1, min 1).
    pub next_id: u64,
    /// Intact records replayed.
    pub records: u64,
    /// Corrupt, truncated or unparsable records skipped (never fatal).
    pub skipped: u64,
}

/// The append-only journal over one `journal.jsonl` file.
pub struct Journal {
    inner: Mutex<Inner>,
}

struct Inner {
    path: PathBuf,
    file: File,
    /// Bytes appended since the last rewrite; drives rotation.
    appended: u64,
}

/// Frames one record body into its on-disk line.
fn frame(json: &str) -> String {
    format!("{} {} {json}\n", json.len(), format_hex(fnv1a(json.as_bytes())))
}

/// Parses one framed line (without its `\n`) back to a record body,
/// validating length and checksum. `None` for any damage.
fn unframe(line: &[u8]) -> Option<&[u8]> {
    let mut parts = line.splitn(3, |&b| b == b' ');
    let len: usize = std::str::from_utf8(parts.next()?).ok()?.parse().ok()?;
    let checksum = crate::proto::parse_hex(std::str::from_utf8(parts.next()?).ok()?)?;
    let body = parts.next()?;
    (body.len() == len && fnv1a(body) == checksum).then_some(body)
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, replays any
    /// existing records, and compacts the file to the replayed live
    /// state. Corrupt or truncated records are skipped and counted in
    /// [`Replay::skipped`]; they can never fail the open.
    ///
    /// # Errors
    ///
    /// Directory creation or file open/rename failures only.
    pub fn open(dir: &Path) -> io::Result<(Journal, Replay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("journal.jsonl");
        let replay = match std::fs::File::open(&path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                replay_bytes(&bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                Replay { next_id: 1, ..Replay::default() }
            }
            Err(e) => return Err(e),
        };
        // Compact: rewrite exactly the live state (dropping superseded
        // and corrupt records) via temp + atomic rename, so the journal
        // cannot grow without bound across restarts and a damaged file
        // is healed the moment it is replayed.
        let records: Vec<Record> = replay
            .jobs
            .iter()
            .map(|(id, job)| match job {
                ReplayedJob::Pending(request) => {
                    Record::Submitted { id: *id, request: request.clone() }
                }
                ReplayedJob::Done { cached, cells } => {
                    Record::Done { id: *id, cached: *cached, cells: cells.clone() }
                }
                ReplayedJob::Failed(e) => Record::Failed { id: *id, error: e.clone() },
                ReplayedJob::Expired(e) => Record::Expired { id: *id, error: e.clone() },
            })
            .collect();
        write_records(&path, &records)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((Journal { inner: Mutex::new(Inner { path, file, appended: 0 }) }, replay))
    }

    /// Appends one record; with `durable`, fsyncs before returning so
    /// the record survives a crash of the whole machine, not just the
    /// process. Disk errors are swallowed (journaling is best-effort
    /// protection; it must never fail the job it protects).
    pub fn append(&self, record: &Record, durable: bool) {
        let line = frame(&record.to_json());
        let mut inner = self.inner.lock().expect("journal");
        let _ = inner.file.write_all(line.as_bytes());
        if durable {
            let _ = inner.file.sync_data();
        }
        inner.appended += line.len() as u64;
    }

    /// Whether enough bytes have been appended since the last rewrite
    /// that the caller should [`Journal::rewrite`] with the live state.
    #[must_use]
    pub fn should_rotate(&self) -> bool {
        self.inner.lock().expect("journal").appended > ROTATE_BYTES
    }

    /// Replaces the journal with exactly `records` (temp + atomic
    /// rename) and resets the rotation counter. Failures leave the old
    /// journal in place — rotation is an optimization, not a
    /// correctness step.
    pub fn rewrite(&self, records: &[Record]) {
        let mut inner = self.inner.lock().expect("journal");
        if let Ok(file) = write_records(&inner.path, records) {
            inner.file = file;
            inner.appended = 0;
        }
    }
}

/// Writes `records` to `path` via temp + rename; returns the re-opened
/// append handle.
fn write_records(path: &Path, records: &[Record]) -> io::Result<File> {
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut f = File::create(&tmp)?;
        for r in records {
            f.write_all(frame(&r.to_json()).as_bytes())?;
        }
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    OpenOptions::new().append(true).open(path)
}

/// Replays raw journal bytes into per-job effective states.
fn replay_bytes(bytes: &[u8]) -> Replay {
    let mut replay = Replay { next_id: 1, ..Replay::default() };
    let mut chunks = bytes.split(|&b| b == b'\n').peekable();
    while let Some(chunk) = chunks.next() {
        let is_tail = chunks.peek().is_none();
        if chunk.is_empty() {
            continue; // the terminator after the last record
        }
        // The final chunk had no `\n`: a crash mid-append truncated it.
        // (A truncated line also fails the frame check; `is_tail` only
        // distinguishes the log message, not the outcome.)
        let record = unframe(chunk)
            .and_then(|body| std::str::from_utf8(body).ok())
            .and_then(|s| hpa_obs::json::parse(s).ok())
            .and_then(|v| Record::from_json(&v).ok());
        let Some(record) = record else {
            let _ = is_tail;
            replay.skipped += 1;
            continue;
        };
        replay.records += 1;
        replay.next_id = replay.next_id.max(record.id() + 1);
        apply(&mut replay.jobs, record);
    }
    replay
}

/// Folds one intact record into the per-job state list, preserving
/// first-record order.
fn apply(jobs: &mut Vec<(u64, ReplayedJob)>, record: Record) {
    let id = record.id();
    let state = match record {
        // A duplicate `submitted` (or one arriving after a terminal
        // record during an unclean rotation race) must not resurrect the
        // job; only a first `submitted` creates a pending entry.
        Record::Submitted { request, .. } => {
            if jobs.iter().all(|(j, _)| *j != id) {
                jobs.push((id, ReplayedJob::Pending(request)));
            }
            return;
        }
        Record::Started { .. } => return, // recovery hint only
        Record::Done { cached, cells, .. } => ReplayedJob::Done { cached, cells },
        Record::Failed { error, .. } => ReplayedJob::Failed(error),
        Record::Expired { error, .. } => ReplayedJob::Expired(error),
    };
    match jobs.iter_mut().find(|(j, _)| *j == id) {
        Some((_, slot)) => *slot = state,
        // Orphaned terminal record (its `submitted` line was lost):
        // results still rehydrate.
        None => jobs.push((id, state)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_core::Scheme;
    use hpa_workloads::Scale;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hpa-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request(seed: u64) -> JobRequest {
        let mut r = JobRequest::workload("gcc", Scale::Tiny, Scheme::Base);
        r.seed = seed;
        r
    }

    fn done_record(id: u64) -> Record {
        Record::Done {
            id,
            cached: false,
            cells: vec![CellResult::new(
                Scheme::Base,
                false,
                r#"{"cache_key":"0x00000000000000ff","stats_digest":"0x0000000000000001","ipc":1.5}"#
                    .to_string(),
            )],
        }
    }

    #[test]
    fn records_round_trip_through_json() {
        let cases = [
            Record::Submitted { id: 1, request: request(7) },
            Record::Started { id: 2 },
            done_record(3),
            Record::Failed { id: 4, error: "cell panicked: \"quoted\"".into() },
            Record::Expired { id: 5, error: "deadline passed".into() },
        ];
        for r in cases {
            let v = hpa_obs::json::parse(&r.to_json()).expect("valid JSON");
            assert_eq!(Record::from_json(&v).expect("decodes"), r);
        }
    }

    #[test]
    fn open_replay_reenqueues_incomplete_and_rehydrates_done() {
        let dir = tmp_dir("replay");
        {
            let (journal, replay) = Journal::open(&dir).unwrap();
            assert_eq!(replay, Replay { next_id: 1, ..Replay::default() });
            journal.append(&Record::Submitted { id: 1, request: request(1) }, true);
            journal.append(&Record::Started { id: 1 }, false);
            journal.append(&done_record(1), true);
            journal.append(&Record::Submitted { id: 2, request: request(2) }, true);
            journal.append(&Record::Started { id: 2 }, false);
            journal.append(&Record::Submitted { id: 3, request: request(3) }, true);
            journal.append(&Record::Failed { id: 4, error: "boom".into() }, true);
        }
        let (_journal, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.skipped, 0);
        assert_eq!(replay.next_id, 5);
        let ids: Vec<u64> = replay.jobs.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "original submit order is preserved");
        assert!(matches!(replay.jobs[0].1, ReplayedJob::Done { .. }));
        assert!(matches!(replay.jobs[1].1, ReplayedJob::Pending(_)), "started-but-unfinished");
        assert!(matches!(replay.jobs[2].1, ReplayedJob::Pending(_)), "queued-but-unfinished");
        assert!(matches!(replay.jobs[3].1, ReplayedJob::Failed(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_compacts_the_file_to_live_state() {
        let dir = tmp_dir("compact");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal.append(&Record::Submitted { id: 1, request: request(1) }, true);
            journal.append(&Record::Started { id: 1 }, false);
            journal.append(&done_record(1), true);
        }
        // Second open compacts 3 records to 1 (the terminal `done`).
        let _ = Journal::open(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 1, "{text}");
        assert!(text.contains("\"type\":\"done\""), "{text}");
        // And the compacted file replays identically.
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert!(matches!(replay.jobs[0].1, ReplayedJob::Done { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_offset_never_panics_and_keeps_the_prefix() {
        let mut bytes = Vec::new();
        for record in [Record::Submitted { id: 1, request: request(1) }, done_record(1)] {
            bytes.extend_from_slice(frame(&record.to_json()).as_bytes());
        }
        let full = replay_bytes(&bytes);
        assert_eq!(full.records, 2);
        let first_len = frame(&Record::Submitted { id: 1, request: request(1) }.to_json()).len();
        for cut in 0..bytes.len() {
            let replay = replay_bytes(&bytes[..cut]);
            // The intact prefix always survives; the cut record is
            // skipped (or simply absent when cut at a line boundary).
            assert!(replay.records <= 2, "cut at {cut}");
            assert!(replay.skipped <= 1, "cut at {cut}");
            if cut >= first_len {
                // A cut at len-1 only sheds the trailing newline; the
                // second record is still a complete (unterminated) line.
                let expected = if cut >= bytes.len() - 1 { 2 } else { 1 };
                assert_eq!(replay.records, expected, "cut at {cut}");
                assert!(matches!(replay.jobs[0], (1, _)), "cut at {cut}");
            }
        }
        // A cut strictly inside the second record keeps job 1 pending.
        let replay = replay_bytes(&bytes[..first_len + 10]);
        assert_eq!(replay.records, 1);
        assert_eq!(replay.skipped, 1, "the truncated tail is counted");
        assert!(matches!(replay.jobs[0].1, ReplayedJob::Pending(_)));
    }

    #[test]
    fn every_single_bit_flip_is_skipped_never_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(
            frame(&Record::Submitted { id: 1, request: request(1) }.to_json()).as_bytes(),
        );
        bytes.extend_from_slice(frame(&done_record(1).to_json()).as_bytes());
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x10;
            let replay = replay_bytes(&damaged); // must not panic
            assert!(replay.records + replay.skipped >= 1, "flip at byte {i}");
            assert!(replay.skipped >= 1, "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn garbage_and_orphan_terminal_records_are_handled() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"this is not a journal line\n");
        bytes.extend_from_slice(b"12 0xnothex {}\n");
        // An orphan `done` (its `submitted` was lost) still rehydrates.
        bytes.extend_from_slice(frame(&done_record(9).to_json()).as_bytes());
        let replay = replay_bytes(&bytes);
        assert_eq!(replay.skipped, 2);
        assert_eq!(replay.records, 1);
        assert_eq!(replay.next_id, 10);
        assert!(matches!(replay.jobs[..], [(9, ReplayedJob::Done { .. })]));
    }

    #[test]
    fn rewrite_rotates_via_temp_and_rename() {
        let dir = tmp_dir("rotate");
        let (journal, _) = Journal::open(&dir).unwrap();
        for i in 0..50 {
            journal.append(&Record::Submitted { id: i, request: request(i) }, false);
            journal.append(&Record::Expired { id: i, error: "old".into() }, false);
        }
        assert!(!journal.should_rotate(), "50 tiny records are under the threshold");
        journal.rewrite(&[Record::Submitted { id: 99, request: request(99) }]);
        let text = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 1);
        drop(journal);
        let (_, replay) = Journal::open(&dir).unwrap();
        assert!(matches!(replay.jobs[..], [(99, ReplayedJob::Pending(_))]));
        assert!(
            !dir.join("journal.jsonl.tmp").exists(),
            "rotation must not leave a temp file behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
