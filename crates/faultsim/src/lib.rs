//! # hpa-faultsim — deterministic fault-injection campaign engine
//!
//! The paper's central claim is that sequential wakeup and sequential
//! register access are *speculation-free*: a mispredicted last-arriving
//! operand or a stale bypass bit costs a cycle, never a wrong result. This
//! crate turns that claim into a testable resilience property. A
//! **campaign** injects seeded hardware faults into the scheduler's
//! internal structures — the fast/slow wakeup buses, the last-arriving
//! predictor, the `now` bypass-match bits, the register-file read ports
//! and the destination-tag broadcast network ([`FaultClass`]) — and
//! classifies every injected run AVF-style ([`Classification`]):
//!
//! * **Detected** — the lockstep oracle, the strict invariant sweep, or
//!   the cycle-budget watchdog fired;
//! * **Masked** — the run completed with architectural state identical to
//!   an independent reference emulation;
//! * **SDC** — silent data corruption: clean run, wrong final state. For
//!   the speculation-free fault classes this must be **zero**; any SDC is
//!   auto-shrunk through the differential shrinker into a corpus
//!   reproducer.
//!
//! The runner is hardened: cells execute behind per-job panic isolation
//! ([`hpa_core::parallel_map_isolated`]), hangs are converted into
//! structured deadlocks by a per-run cycle budget, and transiently failing
//! cells retry with a fresh derived seed. Every campaign is reproducible
//! from its [`CampaignSpec`] alone — programs and injection parameters all
//! derive from the master seed.
//!
//! ```
//! use hpa_faultsim::{run_campaign, CampaignSpec};
//!
//! let spec = CampaignSpec::parse("programs=1, classes=read-port-storm, schemes=base", 42)
//!     .expect("valid spec");
//! let report = run_campaign(&spec);
//! assert_eq!(report.sdc(), 0, "speculation-free structures never corrupt silently");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod classify;
mod model;
mod report;

pub use campaign::{run_campaign, CampaignSpec};
pub use classify::{classify_injected, Classification};
pub use model::FaultClass;
pub use report::{CampaignReport, CellOutcome, PanicEvent};
