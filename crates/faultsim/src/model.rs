//! The fault taxonomy: which scheduler structures a campaign corrupts,
//! and how a class is instantiated into concrete injection parameters.

use hpa_core::sim::FaultInjection;
use hpa_core::workloads::SplitMix64;

/// A class of hardware fault the campaign engine can inject. Each class
/// targets one of the structures the paper's speculation-free claim rests
/// on; a concrete [`FaultInjection`] is derived deterministically from the
/// campaign seed via [`FaultClass::instantiate`], so any cell is
/// reproducible from `(seed, program, scheme, class, attempt)` alone.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultClass {
    /// A spurious fast-bus wakeup: an operand is marked ready with no
    /// producer broadcast behind it.
    SpuriousWakeup,
    /// A dropped fast-bus wakeup: a consumer never hears the tag.
    DroppedWakeup,
    /// A slow-bus rebroadcast delayed by one extra cycle.
    DelayedSlowBus,
    /// A bit-flip in the last-arriving operand predictor table.
    LastArrivalFlip,
    /// Stale `nowL`/`nowR` bypass-match bits under sequential RF access.
    StaleNowBits,
    /// A register-file read-port conflict storm.
    ReadPortStorm,
    /// A single-bit corruption of an in-flight destination tag.
    TagBitFlip,
    /// Classifier self-test only (not a campaign default): silently halt
    /// early, producing genuine silent data corruption that only the
    /// final-state cross-check can see.
    PrematureHalt,
}

impl FaultClass {
    /// The default campaign classes — every fault model the tentpole
    /// taxonomy names. [`FaultClass::PrematureHalt`] is deliberately
    /// excluded: it exists to prove the SDC classifier works, not to
    /// exercise the pipeline.
    pub const CAMPAIGN: [FaultClass; 7] = [
        FaultClass::SpuriousWakeup,
        FaultClass::DroppedWakeup,
        FaultClass::DelayedSlowBus,
        FaultClass::LastArrivalFlip,
        FaultClass::StaleNowBits,
        FaultClass::ReadPortStorm,
        FaultClass::TagBitFlip,
    ];

    /// Stable textual key (used in campaign specs and `RESILIENCE.json`).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            FaultClass::SpuriousWakeup => "spurious-wakeup",
            FaultClass::DroppedWakeup => "dropped-wakeup",
            FaultClass::DelayedSlowBus => "delayed-slow-bus",
            FaultClass::LastArrivalFlip => "last-arrival-flip",
            FaultClass::StaleNowBits => "stale-now-bits",
            FaultClass::ReadPortStorm => "read-port-storm",
            FaultClass::TagBitFlip => "tag-bit-flip",
            FaultClass::PrematureHalt => "premature-halt",
        }
    }

    /// Parses a key produced by [`FaultClass::key`].
    #[must_use]
    pub fn from_key(key: &str) -> Option<FaultClass> {
        match key {
            "spurious-wakeup" => Some(FaultClass::SpuriousWakeup),
            "dropped-wakeup" => Some(FaultClass::DroppedWakeup),
            "delayed-slow-bus" => Some(FaultClass::DelayedSlowBus),
            "last-arrival-flip" => Some(FaultClass::LastArrivalFlip),
            "stale-now-bits" => Some(FaultClass::StaleNowBits),
            "read-port-storm" => Some(FaultClass::ReadPortStorm),
            "tag-bit-flip" => Some(FaultClass::TagBitFlip),
            "premature-halt" => Some(FaultClass::PrematureHalt),
            _ => None,
        }
    }

    /// May this class silently corrupt architectural state? Classes built
    /// on the speculation-free structures must never — a campaign treats
    /// any SDC from them as a simulator bug.
    #[must_use]
    pub fn sdc_expected(self) -> bool {
        matches!(self, FaultClass::PrematureHalt)
    }

    /// Draws concrete injection parameters from the cell's seeded stream.
    /// Trigger counts are kept small so the injection lands inside the
    /// short generated programs.
    #[must_use]
    pub fn instantiate(self, rng: &mut SplitMix64) -> FaultInjection {
        match self {
            FaultClass::SpuriousWakeup => FaultInjection::SpuriousWakeup { nth: 1 + rng.below(60) },
            FaultClass::DroppedWakeup => FaultInjection::DroppedWakeup { nth: 1 + rng.below(60) },
            FaultClass::DelayedSlowBus => FaultInjection::DelayedSlowBus { nth: 1 + rng.below(60) },
            FaultClass::LastArrivalFlip => {
                FaultInjection::LastArrivalFlip { nth: 1 + rng.below(40) }
            }
            FaultClass::StaleNowBits => FaultInjection::StaleNowBits { nth: 1 + rng.below(20) },
            FaultClass::ReadPortStorm => FaultInjection::ReadPortStorm {
                from_cycle: 5 + rng.below(120),
                cycles: 1 + rng.below(32),
            },
            FaultClass::TagBitFlip => {
                FaultInjection::TagBitFlip { nth: 1 + rng.below(60), bit: rng.below(6) as u32 }
            }
            FaultClass::PrematureHalt => {
                FaultInjection::PrematureHalt { at_commit: 2 + rng.below(12) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for class in FaultClass::CAMPAIGN.into_iter().chain([FaultClass::PrematureHalt]) {
            assert_eq!(FaultClass::from_key(class.key()), Some(class));
        }
        assert_eq!(FaultClass::from_key("nonesuch"), None);
    }

    #[test]
    fn instantiation_is_deterministic() {
        for class in FaultClass::CAMPAIGN {
            let a = class.instantiate(&mut SplitMix64::new(7));
            let b = class.instantiate(&mut SplitMix64::new(7));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn only_the_self_test_class_may_produce_sdc() {
        assert!(FaultClass::CAMPAIGN.iter().all(|c| !c.sdc_expected()));
        assert!(FaultClass::PrematureHalt.sdc_expected());
    }
}
