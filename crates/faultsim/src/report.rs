//! Campaign results: aggregation, the human-readable table, and the
//! `RESILIENCE.json` rendering (hand-rolled — the workspace is
//! dependency-free, so no serde).

use crate::classify::Classification;
use crate::model::FaultClass;
use hpa_core::Scheme;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The outcome of one completed `(program, scheme, fault-class)` cell.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellOutcome {
    /// Index of the generated program.
    pub program: u64,
    /// The scheme the cell ran under.
    pub scheme: Scheme,
    /// The injected fault class.
    pub class: FaultClass,
    /// Debug rendering of the concrete injection parameters.
    pub injection: String,
    /// AVF classification of the run.
    pub classification: Classification,
    /// Attempts consumed (1 = first try; >1 means a transient harness
    /// failure was retried with a fresh derived seed).
    pub attempts: u32,
    /// Where the shrunk reproducer was written, for SDC cells with a
    /// corpus directory configured.
    pub reproducer: Option<PathBuf>,
}

/// A panic caught at the job boundary during the campaign.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PanicEvent {
    /// Row-major cell index within the campaign matrix.
    pub cell: usize,
    /// The attempt (0-based) that panicked.
    pub attempt: u32,
    /// The panic payload rendered as text.
    pub message: String,
    /// Whether a retry later completed the cell.
    pub recovered: bool,
}

/// Everything a campaign run produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignReport {
    /// The campaign master seed.
    pub seed: u64,
    /// Number of generated programs.
    pub programs: u64,
    /// Every completed cell, in row-major `(program, scheme, class)` order.
    pub cells: Vec<CellOutcome>,
    /// Cells that failed every attempt (descriptors, not outcomes).
    pub aborted: Vec<(u64, Scheme, FaultClass)>,
    /// Panics caught at the job boundary (recovered or not).
    pub panics: Vec<PanicEvent>,
}

impl CampaignReport {
    /// Completed cells classified Detected.
    #[must_use]
    pub fn detected(&self) -> usize {
        self.count(|c| matches!(c, Classification::Detected { .. }))
    }

    /// Completed cells classified Masked.
    #[must_use]
    pub fn masked(&self) -> usize {
        self.count(|c| matches!(c, Classification::Masked))
    }

    /// Completed cells classified SDC.
    #[must_use]
    pub fn sdc(&self) -> usize {
        self.count(|c| matches!(c, Classification::Sdc { .. }))
    }

    fn count(&self, pred: impl Fn(&Classification) -> bool) -> usize {
        self.cells.iter().filter(|c| pred(&c.classification)).count()
    }

    fn schemes(&self) -> Vec<Scheme> {
        let mut out: Vec<Scheme> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.scheme) {
                out.push(c.scheme);
            }
        }
        out
    }

    fn classes(&self) -> Vec<FaultClass> {
        let mut out: Vec<FaultClass> = Vec::new();
        for c in &self.cells {
            if !out.contains(&c.class) {
                out.push(c.class);
            }
        }
        out
    }

    fn tally(&self, scheme: Scheme, class: FaultClass) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for c in self.cells.iter().filter(|c| c.scheme == scheme && c.class == class) {
            match c.classification {
                Classification::Detected { .. } => t.0 += 1,
                Classification::Masked => t.1 += 1,
                Classification::Sdc { .. } => t.2 += 1,
            }
        }
        t
    }

    /// The human-readable per-scheme resilience table.
    #[must_use]
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault-injection campaign: seed {}, {} programs, {} runs \
             ({} detected, {} masked, {} sdc, {} aborted)",
            self.seed,
            self.programs,
            self.cells.len(),
            self.detected(),
            self.masked(),
            self.sdc(),
            self.aborted.len(),
        );
        let classes = self.classes();
        for scheme in self.schemes() {
            let runs = self.cells.iter().filter(|c| c.scheme == scheme).count();
            let _ = writeln!(out, "\nscheme `{}` ({} runs)", scheme.key(), runs);
            let _ =
                writeln!(out, "  {:<20} {:>8} {:>8} {:>5}", "class", "detected", "masked", "sdc");
            for class in &classes {
                let (d, m, s) = self.tally(scheme, *class);
                if d + m + s == 0 {
                    continue;
                }
                let _ = writeln!(out, "  {:<20} {d:>8} {m:>8} {s:>5}", class.key());
            }
        }
        for c in
            self.cells.iter().filter(|c| matches!(c.classification, Classification::Sdc { .. }))
        {
            let Classification::Sdc { reason } = &c.classification else { continue };
            let _ = writeln!(
                out,
                "\nSDC: program {} scheme `{}` class `{}` ({}): {}",
                c.program,
                c.scheme.key(),
                c.class.key(),
                c.injection,
                reason
            );
            if let Some(p) = &c.reproducer {
                let _ = writeln!(out, "  reproducer: {}", p.display());
            }
        }
        for p in &self.panics {
            let _ = writeln!(
                out,
                "\njob error: cell {} attempt {} panicked ({}): {}",
                p.cell,
                p.attempt,
                if p.recovered { "recovered by retry" } else { "NOT recovered" },
                p.message
            );
        }
        for (pi, scheme, class) in &self.aborted {
            let _ = writeln!(
                out,
                "\naborted cell: program {pi} scheme `{}` class `{}` failed every attempt",
                scheme.key(),
                class.key()
            );
        }
        out
    }

    /// The machine-readable `RESILIENCE.json` document.
    #[must_use]
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"programs\": {},", self.programs);
        let _ = writeln!(out, "  \"runs\": {},", self.cells.len());
        let _ = writeln!(out, "  \"detected\": {},", self.detected());
        let _ = writeln!(out, "  \"masked\": {},", self.masked());
        let _ = writeln!(out, "  \"sdc\": {},", self.sdc());
        let _ = writeln!(out, "  \"aborted\": {},", self.aborted.len());
        out.push_str("  \"schemes\": [\n");
        let schemes = self.schemes();
        let classes = self.classes();
        for (i, scheme) in schemes.iter().enumerate() {
            let _ = writeln!(out, "    {{\"scheme\": \"{}\", \"classes\": [", scheme.key());
            let mut rows = Vec::new();
            for class in &classes {
                let (d, m, s) = self.tally(*scheme, *class);
                if d + m + s == 0 {
                    continue;
                }
                rows.push(format!(
                    "      {{\"class\": \"{}\", \"detected\": {d}, \"masked\": {m}, \"sdc\": {s}}}",
                    class.key()
                ));
            }
            out.push_str(&rows.join(",\n"));
            out.push('\n');
            let _ = writeln!(out, "    ]}}{}", if i + 1 < schemes.len() { "," } else { "" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"sdc_cells\": [\n");
        let sdc_rows: Vec<String> = self
            .cells
            .iter()
            .filter_map(|c| {
                let Classification::Sdc { reason } = &c.classification else { return None };
                Some(format!(
                    "    {{\"program\": {}, \"scheme\": \"{}\", \"class\": \"{}\", \
                     \"injection\": \"{}\", \"reason\": \"{}\", \"reproducer\": {}}}",
                    c.program,
                    c.scheme.key(),
                    c.class.key(),
                    json_escape(&c.injection),
                    json_escape(reason),
                    match &c.reproducer {
                        Some(p) => format!("\"{}\"", json_escape(&p.display().to_string())),
                        None => "null".to_string(),
                    }
                ))
            })
            .collect();
        out.push_str(&sdc_rows.join(",\n"));
        if !sdc_rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"panics\": [\n");
        let panic_rows: Vec<String> = self
            .panics
            .iter()
            .map(|p| {
                format!(
                    "    {{\"cell\": {}, \"attempt\": {}, \"recovered\": {}, \"message\": \"{}\"}}",
                    p.cell,
                    p.attempt,
                    p.recovered,
                    json_escape(&p.message)
                )
            })
            .collect();
        out.push_str(&panic_rows.join(",\n"));
        if !panic_rows.is_empty() {
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignReport {
        CampaignReport {
            seed: 42,
            programs: 1,
            cells: vec![
                CellOutcome {
                    program: 0,
                    scheme: Scheme::Base,
                    class: FaultClass::SpuriousWakeup,
                    injection: "SpuriousWakeup { nth: 3 }".to_string(),
                    classification: Classification::Detected { reason: "oracle".to_string() },
                    attempts: 1,
                    reproducer: None,
                },
                CellOutcome {
                    program: 0,
                    scheme: Scheme::Base,
                    class: FaultClass::DelayedSlowBus,
                    injection: "DelayedSlowBus { nth: 1 }".to_string(),
                    classification: Classification::Masked,
                    attempts: 2,
                    reproducer: None,
                },
                CellOutcome {
                    program: 0,
                    scheme: Scheme::Combined,
                    class: FaultClass::PrematureHalt,
                    injection: "PrematureHalt { at_commit: 4 }".to_string(),
                    classification: Classification::Sdc { reason: "r3 \"differs\"".to_string() },
                    attempts: 1,
                    reproducer: None,
                },
            ],
            aborted: vec![(0, Scheme::Combined, FaultClass::TagBitFlip)],
            panics: vec![PanicEvent {
                cell: 7,
                attempt: 0,
                message: "planted".to_string(),
                recovered: true,
            }],
        }
    }

    #[test]
    fn counts_and_table() {
        let r = sample();
        assert_eq!((r.detected(), r.masked(), r.sdc()), (1, 1, 1));
        let t = r.table();
        assert!(t.contains("scheme `base`"));
        assert!(t.contains("spurious-wakeup"));
        assert!(t.contains("SDC: program 0 scheme `combined`"));
        assert!(t.contains("recovered by retry"));
        assert!(t.contains("aborted cell"));
    }

    #[test]
    fn json_is_well_formed_enough_to_round_trip_quotes() {
        let j = sample().json();
        assert!(j.contains("\"seed\": 42"));
        assert!(j.contains("\"sdc\": 1"));
        // The embedded quote in the SDC reason must be escaped.
        assert!(j.contains("r3 \\\"differs\\\""));
        // Balanced braces/brackets as a cheap structural check.
        let opens = j.matches('{').count() + j.matches('[').count();
        let closes = j.matches('}').count() + j.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
