//! Campaign specification, the hardened runner, and SDC auto-shrinking.

use crate::classify::{classify_injected, Classification};
use crate::model::FaultClass;
use crate::report::{CampaignReport, CellOutcome, PanicEvent};
use hpa_core::workloads::SplitMix64;
use hpa_core::{default_jobs, parallel_map_isolated, Scheme};
use hpa_verify::{shrink, write_reproducer, GenProgram, Variant, FUZZ_SCHEMES};
use std::path::PathBuf;

/// At most this many SDC cells are shrunk and persisted per campaign —
/// shrinking re-simulates heavily, and one reproducer per defect is
/// normally all a debugging session needs.
const MAX_SHRUNK: usize = 4;

/// A fully-resolved campaign descriptor. Every run of the campaign is
/// reproducible from this value alone: programs, injection parameters and
/// retry seeds all derive from `seed` and the cell's matrix position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CampaignSpec {
    /// Number of seeded random programs.
    pub programs: u64,
    /// Schemes each program runs under.
    pub schemes: Vec<Scheme>,
    /// Fault classes injected into each `(program, scheme)` pair.
    pub classes: Vec<FaultClass>,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Watchdog cycle budget per run: a hang becomes a structured,
    /// Detected deadlock at this cycle count.
    pub cycle_budget: u64,
    /// Retries per cell after a caught panic (fresh derived seed each).
    pub retries: u32,
    /// Deliberately panic this row-major cell index on its first attempt
    /// (robustness self-test: the panic must surface as a recovered
    /// `JobError`, not kill the campaign).
    pub plant_panic: Option<usize>,
    /// Where shrunk SDC reproducers are written (`None` to skip).
    pub corpus_dir: Option<PathBuf>,
}

impl CampaignSpec {
    /// The default (`mini`) campaign: 5 programs × the 4 differential
    /// schemes × all 7 fault classes = 140 injected runs.
    #[must_use]
    pub fn mini(seed: u64) -> CampaignSpec {
        CampaignSpec {
            programs: 5,
            schemes: FUZZ_SCHEMES.to_vec(),
            classes: FaultClass::CAMPAIGN.to_vec(),
            seed,
            jobs: default_jobs(),
            cycle_budget: 50_000,
            retries: 1,
            plant_panic: None,
            corpus_dir: None,
        }
    }

    /// Parses a campaign spec string: a preset (`mini`, `full`) and/or
    /// comma-separated `key=value` overrides.
    ///
    /// Keys: `programs=N`, `budget=N`, `retries=N`, `classes=a+b+...`,
    /// `schemes=a+b+...`, `plant-panic=N`, `plant-sdc`.
    ///
    /// # Errors
    ///
    /// A message naming the offending item.
    pub fn parse(spec: &str, seed: u64) -> Result<CampaignSpec, String> {
        let mut out = CampaignSpec::mini(seed);
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match item.split_once('=') {
                None => match item {
                    "mini" => {}
                    "full" => out.programs = 25,
                    // Self-test: add the one class that *does* corrupt
                    // silently, to prove the SDC classifier and shrinker
                    // react.
                    "plant-sdc" => out.classes.push(FaultClass::PrematureHalt),
                    other => return Err(format!("unknown campaign item `{other}`")),
                },
                Some((key, value)) => match key {
                    "programs" => {
                        out.programs = parse_num(key, value)?;
                        if out.programs == 0 {
                            return Err("programs must be positive".to_string());
                        }
                    }
                    "budget" => {
                        out.cycle_budget = parse_num(key, value)?;
                        if out.cycle_budget == 0 {
                            return Err("budget must be positive".to_string());
                        }
                    }
                    "retries" => out.retries = parse_num::<u32>(key, value)?,
                    "plant-panic" => out.plant_panic = Some(parse_num(key, value)?),
                    "classes" => {
                        out.classes = value
                            .split('+')
                            .map(|k| {
                                FaultClass::from_key(k.trim())
                                    .ok_or_else(|| format!("unknown fault class `{k}`"))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "schemes" => {
                        out.schemes = value
                            .split('+')
                            .map(|k| {
                                Scheme::from_key(k.trim())
                                    .ok_or_else(|| format!("unknown scheme `{k}`"))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    other => return Err(format!("unknown campaign key `{other}`")),
                },
            }
        }
        if out.schemes.is_empty() || out.classes.is_empty() {
            return Err("campaign needs at least one scheme and one fault class".to_string());
        }
        Ok(out)
    }

    /// Total cells in the campaign matrix.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.programs as usize * self.schemes.len() * self.classes.len()
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad value `{value}` for `{key}`"))
}

/// One `(program, scheme, class)` point of the campaign matrix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Cell {
    program: u64,
    scheme: Scheme,
    class: FaultClass,
}

/// The per-program generator stream, shared with the fuzzer's convention
/// so a campaign program index always draws the same program.
fn program_rng(seed: u64, index: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The per-cell injection stream. `attempt` participates so a bounded
/// retry after a transient harness failure draws fresh parameters.
fn cell_rng(seed: u64, cell_index: usize, attempt: u32) -> SplitMix64 {
    SplitMix64::new(
        seed ^ (cell_index as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB),
    )
}

/// All campaign cells run at the fuzzer's default variant; scheme timing
/// differences come from the scheme axis itself.
fn campaign_variant() -> Variant {
    Variant {
        width: hpa_core::MachineWidth::Four,
        selective_recovery: false,
        small_pc_table: false,
    }
}

/// Runs the campaign described by `spec`.
///
/// The runner is hardened end-to-end: every cell executes behind
/// [`parallel_map_isolated`] (a panic becomes a structured [`PanicEvent`]
/// instead of killing the matrix), hangs are cut by the per-run cycle
/// budget, and failed cells are retried up to `spec.retries` times with a
/// fresh derived seed before being reported as aborted. Any SDC cell is
/// auto-shrunk through the differential shrinker and written to the
/// corpus directory.
#[must_use]
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    let gens: Vec<GenProgram> =
        (0..spec.programs).map(|pi| GenProgram::random(&mut program_rng(spec.seed, pi))).collect();
    let programs: Vec<_> = gens.iter().map(GenProgram::lower).collect();

    let mut cells = Vec::with_capacity(spec.runs());
    for pi in 0..spec.programs {
        for &scheme in &spec.schemes {
            for &class in &spec.classes {
                cells.push(Cell { program: pi, scheme, class });
            }
        }
    }

    let mut results: Vec<Option<CellOutcome>> = vec![None; cells.len()];
    let mut panics: Vec<PanicEvent> = Vec::new();
    let mut pending: Vec<usize> = (0..cells.len()).collect();
    for attempt in 0..=spec.retries {
        if pending.is_empty() {
            break;
        }
        let outs = parallel_map_isolated(&pending, spec.jobs, |_, &idx| {
            if attempt == 0 && spec.plant_panic == Some(idx) {
                panic!("planted campaign panic in cell {idx}");
            }
            let cell = cells[idx];
            let injection = cell.class.instantiate(&mut cell_rng(spec.seed, idx, attempt));
            let config = campaign_variant().configure(cell.scheme);
            let classification = classify_injected(
                &programs[cell.program as usize],
                config,
                injection,
                spec.cycle_budget,
            );
            CellOutcome {
                program: cell.program,
                scheme: cell.scheme,
                class: cell.class,
                injection: format!("{injection:?}"),
                classification,
                attempts: attempt + 1,
                reproducer: None,
            }
        });
        let mut still = Vec::new();
        for (&idx, out) in pending.iter().zip(outs) {
            match out {
                Ok(outcome) => results[idx] = Some(outcome),
                Err(e) => {
                    panics.push(PanicEvent {
                        cell: idx,
                        attempt,
                        message: e.message,
                        recovered: false,
                    });
                    still.push(idx);
                }
            }
        }
        pending = still;
    }
    for p in &mut panics {
        p.recovered = results[p.cell].is_some();
    }
    let aborted: Vec<(u64, Scheme, FaultClass)> =
        pending.iter().map(|&i| (cells[i].program, cells[i].scheme, cells[i].class)).collect();

    // SDC post-processing: shrink the offending program while the same
    // injection still classifies as SDC, then persist a reproducer.
    let mut cells_out: Vec<CellOutcome> = results.into_iter().flatten().collect();
    let mut shrunk = 0usize;
    for out in &mut cells_out {
        if !matches!(out.classification, Classification::Sdc { .. }) || shrunk >= MAX_SHRUNK {
            continue;
        }
        shrunk += 1;
        if let Some(dir) = &spec.corpus_dir {
            let injection = cell_rng_injection(spec, out);
            let config = || campaign_variant().configure(out.scheme);
            let is_sdc = |g: &GenProgram| {
                matches!(
                    classify_injected(&g.lower(), config(), injection, spec.cycle_budget),
                    Classification::Sdc { .. }
                )
            };
            let gen = &gens[out.program as usize];
            let small = if is_sdc(gen) { shrink(gen, is_sdc) } else { gen.clone() };
            let stem = format!(
                "fault-{:016x}-p{}-{}-{}",
                spec.seed,
                out.program,
                out.scheme.key(),
                out.class.key()
            );
            out.reproducer =
                write_reproducer(dir, &stem, &small.lower(), out.scheme, campaign_variant()).ok();
        }
    }

    CampaignReport { seed: spec.seed, programs: spec.programs, cells: cells_out, aborted, panics }
}

/// Re-derives the concrete injection a completed cell ran with (its
/// matrix index and successful attempt follow from the outcome).
fn cell_rng_injection(spec: &CampaignSpec, out: &CellOutcome) -> hpa_core::sim::FaultInjection {
    let idx = cell_index(spec, out);
    out.class.instantiate(&mut cell_rng(spec.seed, idx, out.attempts - 1))
}

fn cell_index(spec: &CampaignSpec, out: &CellOutcome) -> usize {
    let si = spec.schemes.iter().position(|&s| s == out.scheme).expect("scheme in spec");
    let ci = spec.classes.iter().position(|&c| c == out.class).expect("class in spec");
    (out.program as usize * spec.schemes.len() + si) * spec.classes.len() + ci
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec(seed: u64) -> CampaignSpec {
        CampaignSpec {
            programs: 1,
            schemes: vec![Scheme::Base, Scheme::Combined],
            classes: vec![FaultClass::SpuriousWakeup, FaultClass::ReadPortStorm],
            seed,
            jobs: 2,
            cycle_budget: 50_000,
            retries: 1,
            plant_panic: None,
            corpus_dir: None,
        }
    }

    #[test]
    fn spec_parsing_presets_and_overrides() {
        let mini = CampaignSpec::parse("mini", 42).expect("parses");
        assert_eq!(mini.programs, 5);
        assert_eq!(mini.runs(), 5 * 4 * 7);
        let full = CampaignSpec::parse("full", 1).expect("parses");
        assert_eq!(full.programs, 25);
        let custom = CampaignSpec::parse(
            "programs=2, budget=1000, retries=3, classes=tag-bit-flip+dropped-wakeup, \
             schemes=base, plant-panic=0",
            9,
        )
        .expect("parses");
        assert_eq!(custom.programs, 2);
        assert_eq!(custom.cycle_budget, 1000);
        assert_eq!(custom.retries, 3);
        assert_eq!(custom.classes, vec![FaultClass::TagBitFlip, FaultClass::DroppedWakeup]);
        assert_eq!(custom.schemes, vec![Scheme::Base]);
        assert_eq!(custom.plant_panic, Some(0));
        assert_eq!(custom.runs(), 4);
    }

    #[test]
    fn spec_parsing_rejects_junk() {
        assert!(CampaignSpec::parse("nonesuch", 1).is_err());
        assert!(CampaignSpec::parse("programs=zero", 1).is_err());
        assert!(CampaignSpec::parse("programs=0", 1).is_err());
        assert!(CampaignSpec::parse("classes=bogus", 1).is_err());
        assert!(CampaignSpec::parse("schemes=", 1).is_err());
    }

    #[test]
    fn campaign_is_deterministic() {
        let spec = quick_spec(11);
        let a = run_campaign(&spec);
        let b = run_campaign(&spec);
        assert_eq!(a, b);
        assert_eq!(a.cells.len(), spec.runs());
        assert!(a.aborted.is_empty());
    }

    #[test]
    fn campaign_fault_classes_never_corrupt_silently() {
        let report = run_campaign(&quick_spec(5));
        assert_eq!(report.sdc(), 0, "speculation-free classes produced SDC: {report:?}");
    }

    #[test]
    fn planted_panic_is_reported_and_recovered() {
        let mut spec = quick_spec(7);
        spec.plant_panic = Some(1);
        let report = run_campaign(&spec);
        // The panic surfaced as a structured event...
        assert_eq!(report.panics.len(), 1);
        assert_eq!(report.panics[0].cell, 1);
        assert!(report.panics[0].message.contains("planted campaign panic"));
        // ...the retry recovered the cell, and nothing aborted.
        assert!(report.panics[0].recovered);
        assert_eq!(report.cells.len(), spec.runs());
        assert!(report.aborted.is_empty());
    }

    #[test]
    fn planted_panic_without_retries_aborts_only_that_cell() {
        let mut spec = quick_spec(7);
        spec.plant_panic = Some(2);
        spec.retries = 0;
        let report = run_campaign(&spec);
        assert_eq!(report.aborted.len(), 1);
        assert_eq!(report.cells.len(), spec.runs() - 1);
        assert!(!report.panics[0].recovered);
    }

    #[test]
    fn planted_sdc_is_classified_shrunk_and_persisted() {
        let dir = std::env::temp_dir().join("hpa-faultsim-sdc-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = quick_spec(3);
        spec.schemes = vec![Scheme::Base];
        spec.classes = vec![FaultClass::PrematureHalt];
        spec.corpus_dir = Some(dir.clone());
        let report = run_campaign(&spec);
        assert!(report.sdc() >= 1, "planted SDC not classified: {report:?}");
        let sdc_cell = report
            .cells
            .iter()
            .find(|c| matches!(c.classification, Classification::Sdc { .. }))
            .expect("sdc cell");
        let path = sdc_cell.reproducer.as_ref().expect("reproducer written");
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
