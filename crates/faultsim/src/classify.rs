//! AVF-style classification of one injected run.

use hpa_core::asm::Program;
use hpa_core::emu::{Emulator, RunOutcome};
use hpa_core::sim::{FaultInjection, SimConfig, Simulator};
use hpa_verify::{ArchState, LockstepOracle};

/// Step budget for the independent reference emulation (matches the
/// lockstep oracle's budget; campaign programs are tiny).
const REFERENCE_BUDGET: u64 = 10_000_000;

/// What one injected run did to the architecture, in the AVF taxonomy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Classification {
    /// The verification net fired: the lockstep oracle, the strict
    /// invariant sweep, an emulator fault, or the deadlock watchdog.
    Detected {
        /// The structured fault, rendered.
        reason: String,
    },
    /// The run completed and the final architectural state is identical
    /// to the reference emulation — the fault was absorbed.
    Masked,
    /// Silent data corruption: the run completed cleanly but the final
    /// architectural state differs from the reference. Must never happen
    /// for the speculation-free fault classes.
    Sdc {
        /// First architectural difference found.
        reason: String,
    },
}

impl Classification {
    /// Stable textual key (used in `RESILIENCE.json`).
    #[must_use]
    pub fn key(&self) -> &'static str {
        match self {
            Classification::Detected { .. } => "detected",
            Classification::Masked => "masked",
            Classification::Sdc { .. } => "sdc",
        }
    }
}

/// Runs `program` under `config` with `injection` planted, the lockstep
/// oracle attached, strict invariants on, and a `cycle_budget` watchdog,
/// then classifies the outcome.
///
/// The watchdog is what makes hang-class faults (e.g. a dropped wakeup)
/// terminate: a run that exceeds the budget comes back as a structured
/// deadlock, i.e. **Detected**.
#[must_use]
pub fn classify_injected(
    program: &Program,
    config: SimConfig,
    injection: FaultInjection,
    cycle_budget: u64,
) -> Classification {
    let mut sim = Simulator::new(program, config);
    sim.set_commit_hook(Box::new(LockstepOracle::new(program)));
    sim.set_strict_invariants(true);
    sim.set_cycle_budget(cycle_budget);
    sim.inject_fault(injection);
    if let Err(fault) = sim.try_run() {
        return Classification::Detected { reason: fault.to_string() };
    }

    // The run finished cleanly; only the final-state cross-check against
    // an independent emulation can still unmask silent corruption.
    let mut reference = Emulator::new(program);
    match reference.run(REFERENCE_BUDGET) {
        Ok(RunOutcome::Halted { .. }) => {}
        Ok(RunOutcome::BudgetExhausted { .. }) => {
            // Campaign programs are generated to halt; a non-halting
            // reference is a harness defect, surfaced loudly rather than
            // misfiled as masked or SDC.
            return Classification::Detected {
                reason: format!("harness: reference emulation exceeded {REFERENCE_BUDGET} steps"),
            };
        }
        Err(e) => {
            return Classification::Detected {
                reason: format!("harness: reference emulation faulted: {e}"),
            };
        }
    }
    let sim_state = ArchState::capture(sim.emulator());
    let ref_state = ArchState::capture(&reference);
    match sim_state.first_difference(&ref_state, "simulator", "reference") {
        Some(reason) => Classification::Sdc { reason },
        None => Classification::Masked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_core::workloads::SplitMix64;
    use hpa_core::{MachineWidth, Scheme};
    use hpa_verify::GenProgram;

    fn gen_program(seed: u64) -> Program {
        GenProgram::random(&mut SplitMix64::new(seed)).lower()
    }

    #[test]
    fn clean_run_is_masked() {
        // A storm scheduled far past the program's lifetime never fires.
        let c = classify_injected(
            &gen_program(3),
            Scheme::Combined.configure(MachineWidth::Four),
            FaultInjection::ReadPortStorm { from_cycle: u64::MAX / 2, cycles: 1 },
            200_000,
        );
        assert_eq!(c, Classification::Masked);
    }

    #[test]
    fn spurious_wakeup_is_detected() {
        // The PR 3 mutation-test fault: strict invariants or the oracle
        // must fire on a wrongly-ready operand.
        let c = classify_injected(
            &gen_program(3),
            Scheme::Combined.configure(MachineWidth::Four),
            FaultInjection::SpuriousWakeup { nth: 3 },
            200_000,
        );
        assert!(matches!(c, Classification::Detected { .. }), "got {c:?}");
    }

    #[test]
    fn premature_halt_is_silent_corruption() {
        // The classifier's own mutation test: a silently-truncated run
        // must be filed as SDC, not masked.
        let c = classify_injected(
            &gen_program(3),
            Scheme::Base.configure(MachineWidth::Four),
            FaultInjection::PrematureHalt { at_commit: 3 },
            200_000,
        );
        assert!(matches!(c, Classification::Sdc { .. }), "got {c:?}");
    }

    #[test]
    fn watchdog_converts_a_hang_into_detected() {
        // An impossibly small cycle budget: the watchdog must fire and
        // classify the run as detected rather than spinning.
        let c = classify_injected(
            &gen_program(3),
            Scheme::Base.configure(MachineWidth::Four),
            FaultInjection::ReadPortStorm { from_cycle: 0, cycles: u64::MAX / 2 },
            64,
        );
        match c {
            Classification::Detected { reason } => {
                assert!(reason.contains("cycle budget"), "reason: {reason}");
            }
            other => panic!("expected detected deadlock, got {other:?}"),
        }
    }
}
