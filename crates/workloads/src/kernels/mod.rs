//! The twelve benchmark kernels.
//!
//! Shared conventions:
//!
//! * data segments start at [`crate::DATA_BASE`];
//! * the final checksum is left in [`crate::CHECKSUM_REG`] (`r10`) and the
//!   host-side reference computes the identical value with
//!   `checksum = checksum * 31 + value` steps ([`Checksum`]);
//! * `r26` is the link register for calls, matching Alpha convention;
//! * loop heads are padded with the occasional 2-source-format alignment
//!   nop, mirroring the DEC-compiler padding whose decode-time elimination
//!   the paper's Figure 3 reports.

pub mod bzip;
pub mod crafty;
pub mod eon;
pub mod gap;
pub mod gcc;
pub mod gzip;
pub mod mcf;
pub mod parser;
pub mod perl;
pub mod twolf;
pub mod vortex;
pub mod vpr;

use crate::CHECKSUM_REG;
use hpa_asm::Asm;
use hpa_isa::Reg;

/// Host-side mirror of the in-kernel checksum accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct Checksum(pub u64);

impl Checksum {
    /// Mixes one value, exactly like the emitted `mul r10, r10, #31; add
    /// r10, r10, value` pair.
    pub fn mix(&mut self, value: u64) {
        self.0 = self.0.wrapping_mul(31).wrapping_add(value);
    }
}

/// Emits the in-kernel mix step for a value held in `val`.
pub(crate) fn emit_mix(a: &mut Asm, val: Reg) {
    a.mul(CHECKSUM_REG, CHECKSUM_REG, 31);
    a.add(CHECKSUM_REG, CHECKSUM_REG, val);
}

/// Emits `n` alignment nops (2-source-format, decode-eliminated).
pub(crate) fn emit_align(a: &mut Asm, n: usize) {
    for _ in 0..n {
        a.nop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_matches_emitted_arithmetic() {
        let mut c = Checksum::default();
        c.mix(5);
        c.mix(7);
        assert_eq!(c.0, 5 * 31 + 7);
    }
}
