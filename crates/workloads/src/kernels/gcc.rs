//! `gcc` stand-in: tokenizing and evaluating arithmetic expressions with a
//! precedence (shunting-yard) evaluator — compiler front-end style
//! byte-dispatch and stack manipulation.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const R_P: Reg = Reg::R1; // input cursor
const R_C: Reg = Reg::R2; // current character
const R_VSP: Reg = Reg::R3; // value stack pointer (grows up, 8B slots)
const R_OSP: Reg = Reg::R4; // operator stack pointer (grows up, 1B slots)
const R_VA: Reg = Reg::R5; // operand a
const R_VB: Reg = Reg::R6; // operand b
const R_OP: Reg = Reg::R7; // operator byte
const R_TMP: Reg = Reg::R8;
const R_TMP2: Reg = Reg::R9;
const R_EXPRS: Reg = Reg::R12; // remaining expression count

/// Generates one random expression with single-digit literals, `+`, `*`
/// and balanced parentheses, terminated by `=`.
fn generate_expr(rng: &mut SplitMix64, len_budget: usize, out: &mut Vec<u8>) {
    // term := digit | '(' expr ')' ; expr := term (op term)*
    fn term(rng: &mut SplitMix64, depth: usize, budget: &mut isize, out: &mut Vec<u8>) {
        if depth < 4 && *budget > 8 && rng.below(4) == 0 {
            out.push(b'(');
            *budget -= 2;
            expr(rng, depth + 1, budget, out);
            out.push(b')');
        } else {
            out.push(b'0' + rng.below(10) as u8);
            *budget -= 1;
        }
    }
    fn expr(rng: &mut SplitMix64, depth: usize, budget: &mut isize, out: &mut Vec<u8>) {
        term(rng, depth, budget, out);
        while *budget > 2 && rng.below(3) != 0 {
            out.push(if rng.below(2) == 0 { b'+' } else { b'*' });
            *budget -= 1;
            term(rng, depth, budget, out);
        }
    }
    let mut budget = len_budget as isize;
    expr(rng, 0, &mut budget, out);
    out.push(b'=');
}

fn precedence(op: u8) -> u8 {
    match op {
        b'*' => 2,
        b'+' => 1,
        _ => 0, // '('
    }
}

fn apply(op: u8, a: u64, b: u64) -> u64 {
    match op {
        b'*' => a.wrapping_mul(b),
        _ => a.wrapping_add(b),
    }
}

/// Host-side reference evaluator over the whole input stream.
fn reference(input: &[u8]) -> u64 {
    let mut cs = Checksum::default();
    let mut vals: Vec<u64> = Vec::new();
    let mut ops: Vec<u8> = Vec::new();
    let pop_apply = |vals: &mut Vec<u64>, ops: &mut Vec<u8>| {
        let op = ops.pop().expect("op");
        let b = vals.pop().expect("b");
        let a = vals.pop().expect("a");
        vals.push(apply(op, a, b));
    };
    for &c in input {
        match c {
            b'0'..=b'9' => vals.push(u64::from(c - b'0')),
            b'(' => ops.push(c),
            b')' => {
                while *ops.last().expect("matching paren") != b'(' {
                    pop_apply(&mut vals, &mut ops);
                }
                ops.pop();
            }
            b'+' | b'*' => {
                while ops.last().is_some_and(|&top| precedence(top) >= precedence(c)) {
                    pop_apply(&mut vals, &mut ops);
                }
                ops.push(c);
            }
            b'=' => {
                while !ops.is_empty() {
                    pop_apply(&mut vals, &mut ops);
                }
                cs.mix(vals.pop().expect("result"));
                assert!(vals.is_empty());
            }
            _ => unreachable!("generator emits only expression bytes"),
        }
    }
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let expr_count = 96 * scale.factor(8);
    let mut rng = SplitMix64::new(0x6CC0);
    let mut input = Vec::new();
    for _ in 0..expr_count {
        generate_expr(&mut rng, 48, &mut input);
    }
    let expected = reference(&input);

    let text = DATA_BASE;
    let vstack = DATA_BASE + (1 << 20); // value stack arena
    let ostack = vstack + (64 << 10); // operator stack arena

    let mut a = Asm::new();
    a.data_bytes(text, &input);

    a.li(R_P, text as i64);
    a.li(R_EXPRS, expr_count as i64);
    a.li(R_VSP, vstack as i64);
    a.li(R_OSP, ostack as i64);
    a.li(CHECKSUM_REG, 0);

    a.label("next");
    emit_align(&mut a, 1);
    a.ldbu(R_C, R_P, 0);
    a.add(R_P, R_P, 1);
    // Digit?
    a.sub(R_TMP, R_C, i32::from(b'0'));
    a.blt(R_TMP, "notdigit");
    a.cmple(R_TMP2, R_TMP, 9);
    a.beq(R_TMP2, "notdigit");
    // push value (R_TMP holds c - '0')
    a.stq(R_TMP, R_VSP, 0);
    a.add(R_VSP, R_VSP, 8);
    a.br("next");

    a.label("notdigit");
    a.sub(R_TMP, R_C, i32::from(b'('));
    a.bne(R_TMP, "notopen");
    a.stb(R_C, R_OSP, 0);
    a.add(R_OSP, R_OSP, 1);
    a.br("next");

    a.label("notopen");
    a.sub(R_TMP, R_C, i32::from(b')'));
    a.bne(R_TMP, "notclose");
    a.label("drain_paren");
    a.ldbu(R_OP, R_OSP, -1);
    a.sub(R_TMP, R_OP, i32::from(b'('));
    a.beq(R_TMP, "pop_paren");
    a.bsr(Reg::R26, "apply");
    a.br("drain_paren");
    a.label("pop_paren");
    a.sub(R_OSP, R_OSP, 1);
    a.br("next");

    a.label("notclose");
    a.sub(R_TMP, R_C, i32::from(b'='));
    a.bne(R_TMP, "operator");
    // '=': drain all ops, mix the result.
    a.label("drain_all");
    a.li(R_TMP, ostack as i64);
    a.cmpule(R_TMP2, R_OSP, R_TMP);
    a.bne(R_TMP2, "expr_done");
    a.bsr(Reg::R26, "apply");
    a.br("drain_all");
    a.label("expr_done");
    a.sub(R_VSP, R_VSP, 8);
    a.ldq(R_VA, R_VSP, 0);
    emit_mix(&mut a, R_VA);
    a.sub(R_EXPRS, R_EXPRS, 1);
    a.bgt(R_EXPRS, "next");
    a.halt();

    // '+' or '*': pop while top precedence >= this precedence.
    a.label("operator");
    // prec(c): '*' -> 2, '+' -> 1 (R_TMP2).
    a.sub(R_TMP, R_C, i32::from(b'*'));
    a.li(R_TMP2, 1);
    a.bne(R_TMP, "prec_done");
    a.li(R_TMP2, 2);
    a.label("prec_done");
    a.label("drain_prec");
    a.li(R_TMP, ostack as i64);
    a.cmpule(R_TMP, R_OSP, R_TMP);
    a.bne(R_TMP, "push_op");
    a.ldbu(R_OP, R_OSP, -1);
    // prec(top) in R_TMP: '(' -> 0, '+' -> 1, '*' -> 2
    a.sub(R_TMP, R_OP, i32::from(b'('));
    a.beq(R_TMP, "push_op");
    a.sub(R_TMP, R_OP, i32::from(b'*'));
    a.beq(R_TMP, "top_is_mul");
    a.li(R_TMP, 1);
    a.br("cmp_prec");
    a.label("top_is_mul");
    a.li(R_TMP, 2);
    a.label("cmp_prec");
    a.cmplt(R_TMP, R_TMP, R_TMP2); // top < new ?
    a.bne(R_TMP, "push_op");
    a.bsr(Reg::R26, "apply");
    a.br("drain_prec");
    a.label("push_op");
    a.stb(R_C, R_OSP, 0);
    a.add(R_OSP, R_OSP, 1);
    a.br("next");

    // apply: pop op and two values, push result. Clobbers R_OP, R_VA,
    // R_VB, R_TMP.
    a.label("apply");
    a.sub(R_OSP, R_OSP, 1);
    a.ldbu(R_OP, R_OSP, 0);
    a.sub(R_VSP, R_VSP, 8);
    a.ldq(R_VB, R_VSP, 0);
    a.ldq(R_VA, R_VSP, -8);
    a.sub(R_TMP, R_OP, i32::from(b'*'));
    a.bne(R_TMP, "apply_add");
    a.mul(R_VA, R_VA, R_VB);
    a.br("apply_store");
    a.label("apply_add");
    a.add(R_VA, R_VA, R_VB);
    a.label("apply_store");
    a.stq(R_VA, R_VSP, -8);
    a.ret(Reg::R26);

    Workload {
        name: "gcc",
        description: "expression tokenizer + shunting-yard evaluator (compiler front end)",
        program: a.assemble().expect("gcc kernel assembles"),
        expected_checksum: expected,
        budget: 400 * input.len() as u64 + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn reference_respects_precedence() {
        assert_eq!(reference(b"2+3*4="), Checksum::default().0 * 31 + 14);
        let mut cs = Checksum::default();
        cs.mix(20);
        assert_eq!(reference(b"(2+3)*4="), cs.0);
    }

    #[test]
    fn generator_emits_balanced_expressions() {
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        for _ in 0..50 {
            generate_expr(&mut rng, 48, &mut out);
        }
        let mut depth = 0i32;
        for &c in &out {
            match c {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        // Reference evaluates without panicking.
        let _ = reference(&out);
    }
}
