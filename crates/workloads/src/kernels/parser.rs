//! `parser` stand-in: a chained hash-table dictionary processing a word
//! stream — the dictionary lookup/link machinery at the core of the link
//! grammar parser.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const BUCKETS: u64 = 256;
const VOCAB: usize = 512;
/// Node layout: word_ptr (8), len (8), count (8), next (8).
const NODE_BYTES: u64 = 32;

const R_P: Reg = Reg::R1; // stream cursor
#[allow(dead_code)]
const R_END: Reg = Reg::R2;
const R_LEN: Reg = Reg::R3;
const R_WORD: Reg = Reg::R4; // start of current word's bytes
const R_H: Reg = Reg::R5;
const R_NODE: Reg = Reg::R6;
const R_ARENA: Reg = Reg::R7; // bump pointer
const R_BKT: Reg = Reg::R8; // bucket slot address
const R_ADDR: Reg = Reg::R9;
const R_TMP: Reg = Reg::R11;
const R_C: Reg = Reg::R12;
const R_C2: Reg = Reg::R13;
const R_K: Reg = Reg::R14;
const R_NLEN: Reg = Reg::R15;
const R_NODES: Reg = Reg::R16; // node count

fn generate_stream(words: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(0x9A25);
    let vocab: Vec<Vec<u8>> = (0..VOCAB)
        .map(|_| {
            let len = 2 + rng.below(7) as usize;
            (0..len).map(|_| b'a' + rng.byte() % 26).collect()
        })
        .collect();
    let mut out = Vec::new();
    for _ in 0..words {
        // Zipf-ish skew: min of two uniform draws.
        let idx = (rng.below(VOCAB as u64).min(rng.below(VOCAB as u64))) as usize;
        let w = &vocab[idx];
        out.push(w.len() as u8);
        out.extend_from_slice(w);
    }
    out.push(0); // terminator
    out
}

fn djb2(word: &[u8]) -> u64 {
    let mut h: u64 = 5381;
    for &c in word {
        h = (h << 5).wrapping_add(h).wrapping_add(u64::from(c));
    }
    h
}

fn reference(stream: &[u8]) -> u64 {
    struct Node {
        word: Vec<u8>,
        count: u64,
    }
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); BUCKETS as usize]; // front = head
    let mut nodes: Vec<Node> = Vec::new();
    let mut p = 0usize;
    loop {
        let len = stream[p] as usize;
        if len == 0 {
            break;
        }
        let word = &stream[p + 1..p + 1 + len];
        p += 1 + len;
        let b = (djb2(word) & (BUCKETS - 1)) as usize;
        let found = buckets[b].iter().find(|&&n| nodes[n].word == word).copied();
        match found {
            Some(n) => nodes[n].count += 1,
            None => {
                nodes.push(Node { word: word.to_vec(), count: 1 });
                buckets[b].insert(0, nodes.len() - 1);
            }
        }
    }
    let mut cs = Checksum::default();
    for n in &nodes {
        cs.mix(n.count);
        cs.mix(n.word.len() as u64);
    }
    cs.mix(nodes.len() as u64);
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let words = 1024 * scale.factor(8) as usize;
    let stream = generate_stream(words);
    let expected = reference(&stream);

    let stream_base = DATA_BASE;
    let bucket_base = DATA_BASE + (1 << 20); // 256 x 8B, zero = empty
    let arena_base = bucket_base + BUCKETS * 8;
    let arena_end_reg_hint = arena_base; // first node goes here

    let mut a = Asm::new();
    a.data_bytes(stream_base, &stream);

    a.li(R_P, stream_base as i64);
    a.li(R_ARENA, arena_end_reg_hint as i64);
    a.li(R_NODES, 0);
    a.li(CHECKSUM_REG, 0);

    a.label("word");
    emit_align(&mut a, 1);
    a.ldbu(R_LEN, R_P, 0);
    a.beq(R_LEN, "fold");
    a.add(R_WORD, R_P, 1);
    a.add(R_P, R_WORD, R_LEN);
    // djb2 hash.
    a.li(R_H, 5381);
    a.li(R_K, 0);
    a.label("hash");
    a.add(R_ADDR, R_WORD, R_K);
    a.ldbu(R_C, R_ADDR, 0);
    a.sll(R_TMP, R_H, 5);
    a.add(R_H, R_TMP, R_H);
    a.add(R_H, R_H, R_C);
    a.add(R_K, R_K, 1);
    a.cmplt(R_TMP, R_K, R_LEN);
    a.bne(R_TMP, "hash");
    // bucket slot address.
    a.and_(R_H, R_H, (BUCKETS - 1) as i32);
    a.li(R_TMP, bucket_base as i64);
    a.s8add(R_BKT, R_H, R_TMP);
    a.ldq(R_NODE, R_BKT, 0);
    // Chain walk.
    a.label("chain");
    a.beq(R_NODE, "miss");
    a.ldq(R_NLEN, R_NODE, 8);
    a.sub(R_TMP, R_NLEN, R_LEN);
    a.bne(R_TMP, "nextnode");
    // Byte-compare the stored word with the current one.
    a.ldq(R_ADDR, R_NODE, 0); // stored word ptr
    a.li(R_K, 0);
    a.label("cmp");
    a.cmplt(R_TMP, R_K, R_LEN);
    a.beq(R_TMP, "hit"); // all bytes equal
    a.add(R_TMP, R_ADDR, R_K);
    a.ldbu(R_C, R_TMP, 0);
    a.add(R_TMP, R_WORD, R_K);
    a.ldbu(R_C2, R_TMP, 0);
    a.sub(R_TMP, R_C, R_C2);
    a.bne(R_TMP, "nextnode");
    a.add(R_K, R_K, 1);
    a.br("cmp");
    a.label("nextnode");
    a.ldq(R_NODE, R_NODE, 24);
    a.br("chain");

    a.label("hit");
    a.ldq(R_TMP, R_NODE, 16);
    a.add(R_TMP, R_TMP, 1);
    a.stq(R_TMP, R_NODE, 16);
    a.br("word");

    a.label("miss");
    // Allocate a node: {word_ptr, len, count=1, next=old head}.
    a.stq(R_WORD, R_ARENA, 0);
    a.stq(R_LEN, R_ARENA, 8);
    a.li(R_TMP, 1);
    a.stq(R_TMP, R_ARENA, 16);
    a.ldq(R_TMP, R_BKT, 0);
    a.stq(R_TMP, R_ARENA, 24);
    a.stq(R_ARENA, R_BKT, 0);
    a.add(R_ARENA, R_ARENA, NODE_BYTES as i32);
    a.add(R_NODES, R_NODES, 1);
    a.br("word");

    // Fold: walk the arena in allocation order.
    a.label("fold");
    a.li(R_NODE, arena_end_reg_hint as i64);
    a.label("foldloop");
    a.cmpult(R_TMP, R_NODE, R_ARENA);
    a.beq(R_TMP, "folddone");
    a.ldq(R_TMP, R_NODE, 16);
    emit_mix(&mut a, R_TMP);
    a.ldq(R_TMP, R_NODE, 8);
    emit_mix(&mut a, R_TMP);
    a.add(R_NODE, R_NODE, NODE_BYTES as i32);
    a.br("foldloop");
    a.label("folddone");
    emit_mix(&mut a, R_NODES);
    a.halt();

    Workload {
        name: "parser",
        description: "chained hash-table dictionary over a skewed word stream",
        program: a.assemble().expect("parser kernel assembles"),
        expected_checksum: expected,
        budget: 600 * words as u64 + 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn reference_counts_duplicates() {
        // Stream: "ab" twice and "cde" once.
        let stream = [2, b'a', b'b', 3, b'c', b'd', b'e', 2, b'a', b'b', 0];
        let mut cs = Checksum::default();
        cs.mix(2); // "ab" count
        cs.mix(2); // "ab" len
        cs.mix(1); // "cde" count
        cs.mix(3); // "cde" len
        cs.mix(2); // node count
        assert_eq!(reference(&stream), cs.0);
    }

    #[test]
    fn djb2_matches_known_value() {
        // djb2("a") = 5381*33 + 97
        assert_eq!(djb2(b"a"), 5381 * 33 + 97);
    }
}
