//! `twolf` stand-in: simulated-annealing standard-cell placement — the
//! pick/swap/evaluate-delta/accept loop that dominates TimberWolf.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

/// Number of cells (power of two so cell picking is a mask).
const CELLS: u64 = 256;
const GRID: u64 = 256;

const R_A: Reg = Reg::R1;
const R_B: Reg = Reg::R2;
const R_T1: Reg = Reg::R9;
const R_T2: Reg = Reg::R11;
const R_T3: Reg = Reg::R12;
const R_T4: Reg = Reg::R13;
const R_ITER: Reg = Reg::R14;
const R_STATE: Reg = Reg::R15;
const R_PX: Reg = Reg::R16;
const R_PY: Reg = Reg::R17;
const R_OLD: Reg = Reg::R18;
const R_NEW: Reg = Reg::R19;
const R_THRESH: Reg = Reg::R20;
const R_ARG: Reg = Reg::R22;
const R_RET: Reg = Reg::R23;
const R_DELTA: Reg = Reg::R24;
const R_ACCEPTS: Reg = Reg::R25;

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

struct Placement {
    px: Vec<u64>,
    py: Vec<u64>,
}

fn initial_placement() -> Placement {
    let mut state = 0x7770_1F2Eu64;
    let mut next = || {
        state = xorshift(state);
        state % GRID
    };
    let px = (0..CELLS).map(|_| next()).collect();
    let py = (0..CELLS).map(|_| next()).collect();
    Placement { px, py }
}

/// Half-perimeter cost of chain net `i` (connecting cells `i` and `i+1`).
fn net_cost(p: &Placement, i: i64) -> u64 {
    if i < 0 || i as u64 >= CELLS - 1 {
        return 0;
    }
    let i = i as usize;
    p.px[i].abs_diff(p.px[i + 1]) + p.py[i].abs_diff(p.py[i + 1])
}

fn reference(iters: u64) -> u64 {
    let mut p = initial_placement();
    let mut state = 0xA11E_A11Eu64;
    let mut accepts = 0u64;
    for iter in (1..=iters).rev() {
        state = xorshift(state);
        let a = (state & (CELLS - 1)) as usize;
        state = xorshift(state);
        let b = (state & (CELLS - 1)) as usize;
        let nets = [a as i64 - 1, a as i64, b as i64 - 1, b as i64];
        let old: u64 = nets.iter().map(|&n| net_cost(&p, n)).sum();
        p.px.swap(a, b);
        p.py.swap(a, b);
        let new: u64 = nets.iter().map(|&n| net_cost(&p, n)).sum();
        let delta = new as i64 - old as i64;
        let threshold = (iter >> 3) as i64;
        if delta <= threshold {
            accepts += 1;
        } else {
            p.px.swap(a, b);
            p.py.swap(a, b);
        }
    }
    let mut total = 0u64;
    for i in 0..CELLS as i64 {
        total += net_cost(&p, i);
    }
    let mut cs = Checksum::default();
    cs.mix(accepts);
    cs.mix(total);
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let iters = 2048 * scale.factor(4);
    let expected = reference(iters);
    let p = initial_placement();

    let px_base = DATA_BASE;
    let py_base = DATA_BASE + CELLS * 8;

    let mut a = Asm::new();
    a.data_u64s(px_base, &p.px);
    a.data_u64s(py_base, &p.py);

    a.li(R_PX, px_base as i64);
    a.li(R_PY, py_base as i64);
    a.li(R_STATE, 0xA11E_A11E);
    a.li(R_ITER, iters as i64);
    a.li(R_ACCEPTS, 0);
    a.br("start");

    // netcost subroutine: R_ARG = net index, result in R_RET.
    // Clobbers R_T1..R_T4.
    a.label("netcost");
    a.li(R_RET, 0);
    a.blt(R_ARG, "nc_done");
    a.cmplt(R_T1, R_ARG, (CELLS - 1) as i32);
    a.beq(R_T1, "nc_done");
    a.s8add(R_T1, R_ARG, R_PX);
    a.ldq(R_T2, R_T1, 0);
    a.ldq(R_T3, R_T1, 8);
    a.sub(R_T2, R_T2, R_T3);
    a.sra(R_T3, R_T2, 63);
    a.xor(R_T2, R_T2, R_T3);
    a.sub(R_T2, R_T2, R_T3); // |px[i] - px[i+1]|
    a.s8add(R_T1, R_ARG, R_PY);
    a.ldq(R_T4, R_T1, 0);
    a.ldq(R_T3, R_T1, 8);
    a.sub(R_T4, R_T4, R_T3);
    a.sra(R_T3, R_T4, 63);
    a.xor(R_T4, R_T4, R_T3);
    a.sub(R_T4, R_T4, R_T3);
    a.add(R_RET, R_T2, R_T4);
    a.label("nc_done");
    a.ret(Reg::R26);

    // swap subroutine: exchange positions of cells R_A and R_B.
    a.label("swap");
    a.s8add(R_T1, R_A, R_PX);
    a.s8add(R_T2, R_B, R_PX);
    a.ldq(R_T3, R_T1, 0);
    a.ldq(R_T4, R_T2, 0);
    a.stq(R_T4, R_T1, 0);
    a.stq(R_T3, R_T2, 0);
    a.s8add(R_T1, R_A, R_PY);
    a.s8add(R_T2, R_B, R_PY);
    a.ldq(R_T3, R_T1, 0);
    a.ldq(R_T4, R_T2, 0);
    a.stq(R_T4, R_T1, 0);
    a.stq(R_T3, R_T2, 0);
    a.ret(Reg::R26);

    // four_nets subroutine: R_RET accumulates the cost of the four nets
    // around cells A and B into R_NEW (caller moves it).
    a.label("four_nets");
    a.mov(Reg::R27, Reg::R26); // save outer link
    a.li(R_NEW, 0);
    for (cell, off) in [(R_A, -1), (R_A, 0), (R_B, -1), (R_B, 0)] {
        a.add(R_ARG, cell, off);
        a.bsr(Reg::R26, "netcost");
        a.add(R_NEW, R_NEW, R_RET);
    }
    a.ret(Reg::R27);

    a.label("start");
    a.label("anneal");
    emit_align(&mut a, 1);
    // a = xorshift(state) & mask; b likewise.
    for reg in [R_A, R_B] {
        a.sll(R_T1, R_STATE, 13);
        a.xor(R_STATE, R_STATE, R_T1);
        a.srl(R_T1, R_STATE, 7);
        a.xor(R_STATE, R_STATE, R_T1);
        a.sll(R_T1, R_STATE, 17);
        a.xor(R_STATE, R_STATE, R_T1);
        a.and_(reg, R_STATE, (CELLS - 1) as i32);
    }
    a.bsr(Reg::R26, "four_nets");
    a.mov(R_OLD, R_NEW);
    a.bsr(Reg::R26, "swap");
    a.bsr(Reg::R26, "four_nets");
    a.sub(R_DELTA, R_NEW, R_OLD);
    a.srl(R_THRESH, R_ITER, 3);
    a.cmple(R_T1, R_DELTA, R_THRESH);
    a.beq(R_T1, "reject");
    a.add(R_ACCEPTS, R_ACCEPTS, 1);
    a.br("next");
    a.label("reject");
    a.bsr(Reg::R26, "swap"); // undo
    a.label("next");
    a.sub(R_ITER, R_ITER, 1);
    a.bgt(R_ITER, "anneal");

    // Final cost over all nets.
    a.li(R_OLD, 0); // reuse as total
    a.li(R_A, 0);
    a.label("total");
    a.mov(R_ARG, R_A);
    a.bsr(Reg::R26, "netcost");
    a.add(R_OLD, R_OLD, R_RET);
    a.add(R_A, R_A, 1);
    a.cmplt(R_T1, R_A, CELLS as i32);
    a.bne(R_T1, "total");

    a.li(CHECKSUM_REG, 0);
    emit_mix(&mut a, R_ACCEPTS);
    emit_mix(&mut a, R_OLD);
    a.halt();

    Workload {
        name: "twolf",
        description: "simulated-annealing placement: swap, delta-cost, accept/reject",
        program: a.assemble().expect("twolf kernel assembles"),
        expected_checksum: expected,
        budget: 400 * iters + 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn net_cost_clips_range() {
        let p = initial_placement();
        assert_eq!(net_cost(&p, -1), 0);
        assert_eq!(net_cost(&p, CELLS as i64 - 1), 0);
        assert!(net_cost(&p, 0) < 2 * GRID);
    }

    #[test]
    fn annealing_accepts_some_and_rejects_some() {
        // Run the reference bookkeeping and make sure both paths trigger.
        let mut p = initial_placement();
        let mut state = 0xA11E_A11Eu64;
        let (mut accepts, mut rejects) = (0u64, 0u64);
        for iter in (1..=2048u64).rev() {
            state = xorshift(state);
            let a = (state & (CELLS - 1)) as usize;
            state = xorshift(state);
            let b = (state & (CELLS - 1)) as usize;
            let nets = [a as i64 - 1, a as i64, b as i64 - 1, b as i64];
            let old: u64 = nets.iter().map(|&n| net_cost(&p, n)).sum();
            p.px.swap(a, b);
            p.py.swap(a, b);
            let new: u64 = nets.iter().map(|&n| net_cost(&p, n)).sum();
            if (new as i64 - old as i64) <= (iter >> 3) as i64 {
                accepts += 1;
            } else {
                p.px.swap(a, b);
                p.py.swap(a, b);
                rejects += 1;
            }
        }
        assert!(accepts > 100, "accepts={accepts}");
        assert!(rejects > 100, "rejects={rejects}");
    }
}
