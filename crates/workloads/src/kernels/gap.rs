//! `gap` stand-in: multi-limb (bignum) multiply-accumulate with carry
//! propagation plus a Euclid GCD phase — the arithmetic core of a
//! computational group-theory system.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, Workload, CHECKSUM_REG};
use hpa_asm::Asm;
use hpa_isa::Reg;

const M32: u64 = 0xFFFF_FFFF;
const LCG_MUL: i64 = 1_103_515_245;
const LCG_ADD: i64 = 12_345;

// Register map (phase 1). The accumulator itself lives in memory —
// GAP's bignums are memory-resident — and is loaded/updated/stored limb
// by limb each iteration.
const R_S: Reg = Reg::R1; // 32-bit LCG scalar
const R_LCGM: Reg = Reg::R2; // LCG multiplier constant
const R_M32: Reg = Reg::R3; // 32-bit mask
const R_P: Reg = Reg::R4; // partial product
const R_CARRY: Reg = Reg::R5;
const R_N: Reg = Reg::R6; // loop counter
const R_ACCB: Reg = Reg::R18; // accumulator base address
const R_L: Reg = Reg::R19; // limb loaded from memory
const R_A: [Reg; 4] = [Reg::R14, Reg::R15, Reg::R16, Reg::R17];

// Register map (phase 2).
const R_X: Reg = Reg::R7;
const R_Y: Reg = Reg::R8;
const R_T: Reg = Reg::R9;
const R_STATE: Reg = Reg::R12; // xorshift state
const R_K: Reg = Reg::R13;
const R_TMP: Reg = Reg::R11;

const A_INIT: [u64; 4] = [0x89AB_CDEF, 0x0123_4567, 0xDEAD_BEEF, 0x0BAD_F00D];

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn reference(mac_iters: u64, gcd_pairs: u64) -> u64 {
    // Phase 1: acc += A * s for a stream of 32-bit scalars.
    let mut s: u64 = 1;
    let mut acc = [0u64; 8];
    for _ in 0..mac_iters {
        s = (s.wrapping_mul(LCG_MUL as u64).wrapping_add(LCG_ADD as u64)) & M32;
        let mut carry = 0u64;
        for i in 0..4 {
            let p = A_INIT[i] * s + acc[i] + carry;
            acc[i] = p & M32;
            carry = p >> 32;
        }
        for limb in acc.iter_mut().skip(4) {
            let p = *limb + carry;
            *limb = p & M32;
            carry = p >> 32;
        }
    }
    let mut cs = Checksum::default();
    for limb in acc {
        cs.mix(limb);
    }
    // Phase 2: GCDs of pseudo-random 63-bit pairs.
    let mut state: u64 = 0x6A09_E667_F3BC_C908;
    for _ in 0..gcd_pairs {
        state = xorshift(state);
        let mut x = state >> 1;
        state = xorshift(state);
        let mut y = state >> 1;
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        cs.mix(x);
    }
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let mac_iters = 2048 * scale.factor(8);
    let gcd_pairs = 24 * scale.factor(8);
    let expected = reference(mac_iters, gcd_pairs);

    let acc_base = crate::DATA_BASE; // 8 zero-initialized limbs
    let mut a = Asm::new();
    a.li(R_S, 1);
    a.li(R_LCGM, LCG_MUL);
    a.li(R_M32, M32 as i64);
    a.li(R_N, mac_iters as i64);
    a.li(R_ACCB, acc_base as i64);
    for (i, &r) in R_A.iter().enumerate() {
        a.li(r, A_INIT[i] as i64);
    }

    a.label("mac");
    emit_align(&mut a, 1);
    // s = (s * 1103515245 + 12345) & 0xFFFFFFFF
    a.mul(R_S, R_S, R_LCGM);
    a.add(R_S, R_S, LCG_ADD as i32);
    a.and_(R_S, R_S, R_M32);
    // Multiply-accumulate across the four A limbs (read-modify-write the
    // memory-resident accumulator, as GAP's kernels do).
    a.li(R_CARRY, 0);
    for i in 0..4i16 {
        a.ldq(R_L, R_ACCB, 8 * i);
        a.mul(R_P, R_A[i as usize], R_S);
        a.add(R_P, R_P, R_L);
        a.add(R_P, R_P, R_CARRY);
        a.and_(R_L, R_P, R_M32);
        a.stq(R_L, R_ACCB, 8 * i);
        a.srl(R_CARRY, R_P, 32);
    }
    // Carry propagation through the upper limbs.
    for i in 4..8i16 {
        a.ldq(R_L, R_ACCB, 8 * i);
        a.add(R_P, R_L, R_CARRY);
        a.and_(R_L, R_P, R_M32);
        a.stq(R_L, R_ACCB, 8 * i);
        a.srl(R_CARRY, R_P, 32);
    }
    a.sub(R_N, R_N, 1);
    a.bgt(R_N, "mac");

    a.li(CHECKSUM_REG, 0);
    for i in 0..8i16 {
        a.ldq(R_L, R_ACCB, 8 * i);
        emit_mix(&mut a, R_L);
    }

    // Phase 2: Euclid with the 20-cycle divide unit.
    a.li(R_STATE, 0x6A09_E667_F3BC_C908u64 as i64);
    a.li(R_K, gcd_pairs as i64);
    a.label("pair");
    for reg in [R_X, R_Y] {
        // xorshift64 step into R_STATE, then take 63 bits.
        a.sll(R_TMP, R_STATE, 13);
        a.xor(R_STATE, R_STATE, R_TMP);
        a.srl(R_TMP, R_STATE, 7);
        a.xor(R_STATE, R_STATE, R_TMP);
        a.sll(R_TMP, R_STATE, 17);
        a.xor(R_STATE, R_STATE, R_TMP);
        a.srl(reg, R_STATE, 1);
    }
    a.label("euclid");
    a.beq(R_Y, "gcddone");
    a.rem(R_T, R_X, R_Y);
    a.mov(R_X, R_Y);
    a.mov(R_Y, R_T);
    a.br("euclid");
    a.label("gcddone");
    emit_mix(&mut a, R_X);
    a.sub(R_K, R_K, 1);
    a.bgt(R_K, "pair");
    a.halt();

    Workload {
        name: "gap",
        description: "multi-limb multiply-accumulate + Euclid GCD (bignum arithmetic)",
        program: a.assemble().expect("gap kernel assembles"),
        expected_checksum: expected,
        budget: 80 * mac_iters + 800 * gcd_pairs + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn reference_carries_propagate() {
        // One MAC iteration by hand: s1 = (1103515245 + 12345) & M32.
        let s = (LCG_MUL as u64 + LCG_ADD as u64) & M32;
        let p0 = A_INIT[0] * s;
        let mut cs_limb0 = p0 & M32;
        let _ = &mut cs_limb0;
        let r = reference(1, 0);
        // The full checksum mixes all 8 limbs; just pin the first limb's
        // contribution by recomputing the whole thing independently.
        let mut acc = [0u64; 8];
        let mut carry = 0;
        for i in 0..4 {
            let p = A_INIT[i] * s + acc[i] + carry;
            acc[i] = p & M32;
            carry = p >> 32;
        }
        for limb in acc.iter_mut().skip(4) {
            let p = *limb + carry;
            *limb = p & M32;
            carry = p >> 32;
        }
        let mut cs = Checksum::default();
        for limb in acc {
            cs.mix(limb);
        }
        assert_eq!(r, cs.0);
    }

    #[test]
    fn xorshift_is_nonzero_and_varies() {
        let a = xorshift(1);
        let b = xorshift(a);
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
