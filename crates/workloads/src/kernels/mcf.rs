//! `mcf` stand-in: Bellman–Ford edge relaxation over a sparse random
//! network. mcf's network-simplex solver is dominated by exactly this kind
//! of irregular, cache-hostile traversal of node/arc arrays, which is why
//! it has the lowest IPC in the paper's Table 2; the graph here is sized
//! past the L2 to reproduce that character.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const ROUNDS: u64 = 2;
const BIG: u64 = 1 << 40;

const R_E: Reg = Reg::R1; // edge cursor (byte offset style: index)
const R_EEND: Reg = Reg::R2;
const R_SRC: Reg = Reg::R3;
const R_DST: Reg = Reg::R4;
const R_W: Reg = Reg::R5;
const R_DIST: Reg = Reg::R6; // dist array base
const R_DS: Reg = Reg::R7; // dist[src]
const R_DD: Reg = Reg::R8; // dist[dst]
const R_ADDR: Reg = Reg::R9;
const R_TMP: Reg = Reg::R11;
const R_ROUND: Reg = Reg::R12;
const R_V: Reg = Reg::R13;

struct Graph {
    v: u64,
    src: Vec<u32>,
    dst: Vec<u32>,
    w: Vec<u32>,
}

fn generate_graph(v: u64) -> Graph {
    let e = v * 4;
    let mut rng = SplitMix64::new(0x3CF0);
    let mut src = Vec::with_capacity(e as usize);
    let mut dst = Vec::with_capacity(e as usize);
    let mut w = Vec::with_capacity(e as usize);
    for i in 0..e {
        // Guarantee some edges out of node 0 so distances propagate.
        src.push(if i % 97 == 0 { 0 } else { rng.below(v) as u32 });
        dst.push(rng.below(v) as u32);
        w.push(1 + rng.below(100) as u32);
    }
    Graph { v, src, dst, w }
}

fn reference(g: &Graph) -> u64 {
    let mut dist = vec![BIG; g.v as usize];
    dist[0] = 0;
    for _ in 0..ROUNDS {
        for i in 0..g.src.len() {
            let d = dist[g.src[i] as usize] + u64::from(g.w[i]);
            if d < dist[g.dst[i] as usize] {
                dist[g.dst[i] as usize] = d;
            }
        }
    }
    let mut cs = Checksum::default();
    let mut i = 0usize;
    while i < dist.len() {
        cs.mix(dist[i]);
        i += 64;
    }
    cs.0
}

fn u32s_to_bytes(v: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 4);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let v = 2048 * scale.factor(8);
    let g = generate_graph(v);
    let expected = reference(&g);
    let e = g.src.len() as u64;

    let dist_base = DATA_BASE;
    let src_base = dist_base + v * 8;
    let dst_base = src_base + e * 4;
    let w_base = dst_base + e * 4;

    let mut dist_init = vec![BIG; v as usize];
    dist_init[0] = 0;

    let mut a = Asm::new();
    a.data_u64s(dist_base, &dist_init);
    a.data_bytes(src_base, &u32s_to_bytes(&g.src));
    a.data_bytes(dst_base, &u32s_to_bytes(&g.dst));
    a.data_bytes(w_base, &u32s_to_bytes(&g.w));

    a.li(R_DIST, dist_base as i64);
    a.li(R_ROUND, ROUNDS as i64);
    a.label("round");
    a.li(R_E, 0);
    a.li(R_EEND, e as i64);
    a.label("edge");
    emit_align(&mut a, 1);
    // src/dst/w are parallel u32 arrays indexed by R_E.
    a.s4add(R_ADDR, R_E, Reg::R31); // R_ADDR = 4*e
    a.li(R_TMP, src_base as i64);
    a.add(R_TMP, R_TMP, R_ADDR);
    a.ldl(R_SRC, R_TMP, 0);
    a.li(R_TMP, dst_base as i64);
    a.add(R_TMP, R_TMP, R_ADDR);
    a.ldl(R_DST, R_TMP, 0);
    a.li(R_TMP, w_base as i64);
    a.add(R_TMP, R_TMP, R_ADDR);
    a.ldl(R_W, R_TMP, 0);
    // d = dist[src] + w
    a.s8add(R_ADDR, R_SRC, R_DIST);
    a.ldq(R_DS, R_ADDR, 0);
    a.add(R_DS, R_DS, R_W);
    // if d < dist[dst]: dist[dst] = d
    a.s8add(R_ADDR, R_DST, R_DIST);
    a.ldq(R_DD, R_ADDR, 0);
    a.cmpult(R_TMP, R_DS, R_DD);
    a.beq(R_TMP, "norelax");
    a.stq(R_DS, R_ADDR, 0);
    a.label("norelax");
    a.add(R_E, R_E, 1);
    a.cmplt(R_TMP, R_E, R_EEND);
    a.bne(R_TMP, "edge");
    a.sub(R_ROUND, R_ROUND, 1);
    a.bgt(R_ROUND, "round");

    // Checksum every 64th distance.
    a.li(CHECKSUM_REG, 0);
    a.li(R_E, 0);
    a.li(R_V, v as i64);
    a.label("fold");
    a.s8add(R_ADDR, R_E, R_DIST);
    a.ldq(R_DS, R_ADDR, 0);
    emit_mix(&mut a, R_DS);
    a.add(R_E, R_E, 64);
    a.cmplt(R_TMP, R_E, R_V);
    a.bne(R_TMP, "fold");
    a.halt();

    Workload {
        name: "mcf",
        description: "Bellman-Ford relaxation over an L2-sized sparse network",
        program: a.assemble().expect("mcf kernel assembles"),
        expected_checksum: expected,
        budget: 60 * e * ROUNDS + 40 * v + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn reference_relaxes_from_source() {
        let g = Graph { v: 4, src: vec![0, 1], dst: vec![1, 2], w: vec![5, 7] };
        let mut dist = vec![BIG; 4];
        dist[0] = 0;
        for _ in 0..ROUNDS {
            for i in 0..g.src.len() {
                let d = dist[g.src[i] as usize] + u64::from(g.w[i]);
                if d < dist[g.dst[i] as usize] {
                    dist[g.dst[i] as usize] = d;
                }
            }
        }
        assert_eq!(dist, vec![0, 5, 12, BIG]);
        let _ = reference(&g);
    }

    #[test]
    fn default_scale_exceeds_l2_footprint() {
        let v = 2048 * Scale::Default.factor(8);
        let bytes = v * 8 + v * 4 * 12;
        assert!(bytes > 512 << 10, "working set {bytes}B must exceed the 512KB L2");
    }
}
