//! `bzip` stand-in: run-length coding of a move-to-front transform,
//! the core symbol-ranking step of the bzip2 pipeline.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const R_P: Reg = Reg::R1; // input cursor
const R_END: Reg = Reg::R2;
const R_TBL: Reg = Reg::R3; // MTF table base
const R_B: Reg = Reg::R4; // current input byte
const R_I: Reg = Reg::R5; // MTF rank
const R_T: Reg = Reg::R6; // table byte
const R_PREV: Reg = Reg::R7; // previous rank (RLE state)
const R_RUN: Reg = Reg::R8; // current run length
const R_ADDR: Reg = Reg::R9;
const R_TMP: Reg = Reg::R11;
const R_J: Reg = Reg::R12;

/// Generates a run-heavy input over a 16-symbol alphabet.
fn generate_input(len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(0xB21F);
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        // Bias toward few symbols (min of two draws) and runs of 1–8.
        let sym = rng.below(16).min(rng.below(16)) as u8;
        let run = 1 + rng.below(8) as usize;
        for _ in 0..run.min(len - out.len()) {
            out.push(sym);
        }
    }
    out
}

/// Host-side reference: MTF + RLE checksum.
fn reference(input: &[u8]) -> u64 {
    let mut tbl: Vec<u8> = (0..=255).collect();
    let mut cs = Checksum::default();
    let mut prev: i64 = -1;
    let mut run: u64 = 0;
    for &b in input {
        let i = tbl.iter().position(|&x| x == b).expect("byte in table");
        tbl[..=i].rotate_right(1);
        if i as i64 == prev {
            run += 1;
        } else {
            if run > 0 {
                cs.mix(prev as u64);
                cs.mix(run);
            }
            prev = i as i64;
            run = 1;
        }
    }
    cs.mix(prev as u64);
    cs.mix(run);
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let len = 2048 * scale.factor(8) as usize;
    let input = generate_input(len);
    let expected = reference(&input);

    let tbl = DATA_BASE + len as u64;
    let mut a = Asm::new();
    a.data_bytes(DATA_BASE, &input);

    // Initialize the MTF table to the identity permutation.
    a.li(R_TBL, tbl as i64);
    a.li(R_I, 0);
    a.label("init");
    a.add(R_ADDR, R_TBL, R_I);
    a.stb(R_I, R_ADDR, 0);
    a.add(R_I, R_I, 1);
    a.cmplt(R_TMP, R_I, 256);
    a.bne(R_TMP, "init");

    a.li(R_P, DATA_BASE as i64);
    a.li(R_END, (DATA_BASE + len as u64) as i64);
    a.li(R_PREV, -1);
    a.li(R_RUN, 0);
    a.li(CHECKSUM_REG, 0);

    a.label("outer");
    emit_align(&mut a, 1);
    a.ldbu(R_B, R_P, 0);
    // Linear scan for the byte's current rank.
    a.li(R_I, 0);
    a.label("scan");
    a.add(R_ADDR, R_TBL, R_I);
    a.ldbu(R_T, R_ADDR, 0);
    a.sub(R_TMP, R_T, R_B);
    a.beq(R_TMP, "found");
    a.add(R_I, R_I, 1);
    a.br("scan");

    a.label("found");
    // Shift tbl[0..rank) up one slot, then install the byte at the front.
    a.mov(R_J, R_I);
    a.label("shift");
    a.ble(R_J, "shiftdone");
    a.add(R_ADDR, R_TBL, R_J);
    a.ldbu(R_T, R_ADDR, -1);
    a.stb(R_T, R_ADDR, 0);
    a.sub(R_J, R_J, 1);
    a.br("shift");
    a.label("shiftdone");
    a.stb(R_B, R_TBL, 0);

    // RLE over the rank stream.
    a.sub(R_TMP, R_I, R_PREV);
    a.bne(R_TMP, "newsym");
    a.add(R_RUN, R_RUN, 1);
    a.br("next");
    a.label("newsym");
    a.ble(R_RUN, "skipmix");
    emit_mix(&mut a, R_PREV);
    emit_mix(&mut a, R_RUN);
    a.label("skipmix");
    a.mov(R_PREV, R_I);
    a.li(R_RUN, 1);

    a.label("next");
    a.add(R_P, R_P, 1);
    a.cmpult(R_TMP, R_P, R_END);
    a.bne(R_TMP, "outer");

    // Flush the final run.
    emit_mix(&mut a, R_PREV);
    emit_mix(&mut a, R_RUN);
    a.halt();

    Workload {
        name: "bzip",
        description: "move-to-front transform + run-length coding (bzip2 symbol ranking)",
        program: a.assemble().expect("bzip kernel assembles"),
        expected_checksum: expected,
        budget: 300 * len as u64 + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        let executed = w.verify().expect("verify");
        assert!(executed > 10_000, "tiny run is non-trivial: {executed}");
    }

    #[test]
    fn reference_rle_basics() {
        // Input "aaab" over rank stream: a->rank of 'a', then 0,0, then 'b'.
        let cs = reference(&[5, 5, 5, 6]);
        // Hand-compute: tbl identity. b=5 -> i=5; runs: (5,1) then (0,2)
        // for the two repeats (rank 0), then b=6 -> i=6 (6 shifted? after
        // MTF of 5, table = [5,0,1,2,3,4,6,...], so 6 is at rank 6).
        let mut c = Checksum::default();
        c.mix(5);
        c.mix(1);
        c.mix(0);
        c.mix(2);
        c.mix(6);
        c.mix(1);
        assert_eq!(cs, c.0);
    }

    #[test]
    fn input_is_deterministic() {
        assert_eq!(generate_input(64), generate_input(64));
    }
}
