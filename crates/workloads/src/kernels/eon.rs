//! `eon` stand-in: floating-point ray–sphere intersection testing, the
//! inner loop of a ray tracer (eon is the only C++/graphics code in
//! CINT2000; its hot loops are dense FP arithmetic like this).

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::{FReg, Reg};

const SPHERES: usize = 16;

const R_RAY: Reg = Reg::R1;
const R_RAYEND: Reg = Reg::R2;
const R_SPH: Reg = Reg::R3;
const R_SPHEND: Reg = Reg::R4;
const R_HITS: Reg = Reg::R5;
const R_SUM: Reg = Reg::R6;
const R_TMP: Reg = Reg::R11;
const R_OUT: Reg = Reg::R12;

const F_DX: FReg = FReg::F1;
const F_DY: FReg = FReg::F2;
const F_DZ: FReg = FReg::F3;
const F_DD: FReg = FReg::F4;
const F_CX: FReg = FReg::F5;
const F_CY: FReg = FReg::F6;
const F_CZ: FReg = FReg::F7;
const F_R2: FReg = FReg::F8;
const F_B: FReg = FReg::F9;
const F_C2: FReg = FReg::F10;
const F_T1: FReg = FReg::F11;
const F_T2: FReg = FReg::F12;
const F_SUM: FReg = FReg::F13;

struct Scene {
    spheres: Vec<[f64; 4]>, // cx, cy, cz, r^2
    rays: Vec<[f64; 3]>,    // direction; origin is fixed at (0,0,0)
}

fn generate_scene(ray_count: usize) -> Scene {
    let mut rng = SplitMix64::new(0xE0E0);
    let mut unit = |span: f64| (rng.below(2001) as f64 - 1000.0) / 1000.0 * span;
    let spheres = (0..SPHERES)
        .map(|_| {
            let (cx, cy, cz) = (unit(8.0), unit(8.0), unit(8.0) + 10.0);
            let r = 1.0 + unit(1.0).abs() * 2.0;
            [cx, cy, cz, r * r]
        })
        .collect();
    let mut rng2 = SplitMix64::new(0xE0E1);
    let mut unit2 = |span: f64| (rng2.below(2001) as f64 - 1000.0) / 1000.0 * span;
    let rays = (0..ray_count).map(|_| [unit2(1.0), unit2(1.0), unit2(1.0) + 1.0]).collect();
    Scene { spheres, rays }
}

/// Host-side reference with the exact operation order of the kernel, so
/// the IEEE results are bit-identical.
fn reference(scene: &Scene) -> u64 {
    let mut hits: u64 = 0;
    let mut sum: f64 = 0.0;
    for d in &scene.rays {
        let dd = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
        for s in &scene.spheres {
            let b = d[0] * s[0] + d[1] * s[1] + d[2] * s[2];
            let c2 = s[0] * s[0] + s[1] * s[1] + s[2] * s[2];
            let disc = b * b - (c2 - s[3]) * dd;
            if disc > 0.0 && b > 0.0 {
                hits += 1;
                sum += disc;
            }
        }
    }
    let mut cs = Checksum::default();
    cs.mix(hits);
    cs.mix(sum as i64 as u64);
    cs.0
}

fn pack(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let ray_count = 256 * scale.factor(16) as usize;
    let scene = generate_scene(ray_count);
    let expected = reference(&scene);

    let sph_base = DATA_BASE;
    let ray_base = sph_base + (SPHERES * 4 * 8) as u64;

    let mut a = Asm::new();
    a.data_u64s(sph_base, &pack(&scene.spheres.concat()));
    a.data_u64s(ray_base, &pack(&scene.rays.concat()));

    let out_base = ray_base + (ray_count * 3 * 8) as u64;
    a.li(R_RAY, ray_base as i64);
    a.li(R_RAYEND, out_base as i64);
    a.li(R_OUT, out_base as i64);
    a.li(R_HITS, 0);
    a.fsub(F_SUM, FReg::ZERO, FReg::ZERO); // 0.0

    a.label("ray");
    emit_align(&mut a, 1);
    a.ldt(F_DX, R_RAY, 0);
    a.ldt(F_DY, R_RAY, 8);
    a.ldt(F_DZ, R_RAY, 16);
    // dd = dx*dx + dy*dy + dz*dz, accumulated serially — FP addition is
    // not associative, so a compiler emits exactly this dependence chain.
    a.fmul(F_DD, F_DX, F_DX);
    a.fmul(F_T1, F_DY, F_DY);
    a.fadd(F_DD, F_DD, F_T1);
    a.fmul(F_T2, F_DZ, F_DZ);
    a.fadd(F_DD, F_DD, F_T2);

    a.li(R_SPH, sph_base as i64);
    a.li(R_SPHEND, ray_base as i64);
    a.label("sphere");
    a.ldt(F_CX, R_SPH, 0);
    a.ldt(F_CY, R_SPH, 8);
    a.ldt(F_CZ, R_SPH, 16);
    a.ldt(F_R2, R_SPH, 24);
    // b = d . c (serial accumulation)
    a.fmul(F_B, F_DX, F_CX);
    a.fmul(F_T1, F_DY, F_CY);
    a.fadd(F_B, F_B, F_T1);
    a.fmul(F_T2, F_DZ, F_CZ);
    a.fadd(F_B, F_B, F_T2);
    // c2 = c . c (serial accumulation)
    a.fmul(F_C2, F_CX, F_CX);
    a.fmul(F_T1, F_CY, F_CY);
    a.fadd(F_C2, F_C2, F_T1);
    a.fmul(F_T2, F_CZ, F_CZ);
    a.fadd(F_C2, F_C2, F_T2);
    // disc = b*b - (c2 - r2)*dd
    a.fsub(F_C2, F_C2, F_R2);
    a.fmul(F_C2, F_C2, F_DD);
    a.fmul(F_T1, F_B, F_B);
    a.fsub(F_T1, F_T1, F_C2);
    a.fble(F_T1, "miss");
    a.fble(F_B, "miss");
    a.add(R_HITS, R_HITS, 1);
    a.fadd(F_SUM, F_SUM, F_T1);
    a.label("miss");
    a.add(R_SPH, R_SPH, 32);
    a.cmpult(R_TMP, R_SPH, R_SPHEND);
    a.bne(R_TMP, "sphere");

    // Emit the running shade accumulator per ray (framebuffer-style
    // memory traffic; write-only, so the checksum is unaffected).
    a.stt(F_SUM, R_OUT, 0);
    a.stl(R_HITS, R_OUT, 8);
    a.add(R_OUT, R_OUT, 16);
    a.add(R_RAY, R_RAY, 24);
    a.cmpult(R_TMP, R_RAY, R_RAYEND);
    a.bne(R_TMP, "ray");

    a.li(CHECKSUM_REG, 0);
    emit_mix(&mut a, R_HITS);
    a.ftoi(R_SUM, F_SUM);
    emit_mix(&mut a, R_SUM);
    a.halt();

    Workload {
        name: "eon",
        description: "floating-point ray-sphere intersection inner loop",
        program: a.assemble().expect("eon kernel assembles"),
        expected_checksum: expected,
        budget: 60 * (ray_count * SPHERES) as u64 + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn scene_produces_hits_and_misses() {
        let scene = generate_scene(256);
        let mut hits = 0u64;
        for d in &scene.rays {
            let dd = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            for s in &scene.spheres {
                let b = d[0] * s[0] + d[1] * s[1] + d[2] * s[2];
                let c2 = s[0] * s[0] + s[1] * s[1] + s[2] * s[2];
                if b * b - (c2 - s[3]) * dd > 0.0 && b > 0.0 {
                    hits += 1;
                }
            }
        }
        let total = (scene.rays.len() * scene.spheres.len()) as u64;
        assert!(hits > total / 50, "some rays hit ({hits}/{total})");
        assert!(hits < total, "not everything hits");
    }
}
