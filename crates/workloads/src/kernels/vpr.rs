//! `vpr` stand-in: breadth-first maze routing on an obstructed grid — the
//! wavefront-expansion router at the heart of VPR's route phase.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const W: u64 = 32;
const CELLS: u64 = W * W;

const R_ROUTE: Reg = Reg::R1; // remaining routes
const R_PAIRS: Reg = Reg::R2; // (src,dst) pair cursor
const R_SRC: Reg = Reg::R3;
const R_DST: Reg = Reg::R4;
const R_HEAD: Reg = Reg::R5; // queue head ptr
const R_TAIL: Reg = Reg::R6; // queue tail ptr
const R_CUR: Reg = Reg::R7;
const R_D: Reg = Reg::R8; // dist of current + 1
const R_ADDR: Reg = Reg::R9;
const R_TMP: Reg = Reg::R11;
const R_NBR: Reg = Reg::R12;
const R_X: Reg = Reg::R13;
const R_DIST: Reg = Reg::R14; // dist array base
const R_OBST: Reg = Reg::R15; // obstacle array base
const R_QUEUE: Reg = Reg::R16;
const R_I: Reg = Reg::R17;

struct Maze {
    obstacles: Vec<u8>,
    pairs: Vec<(u64, u64)>,
}

fn generate_maze(routes: usize) -> Maze {
    let mut rng = SplitMix64::new(0x7690);
    let mut obstacles: Vec<u8> = (0..CELLS).map(|_| u8::from(rng.below(4) == 0)).collect();
    let mut pairs = Vec::with_capacity(routes);
    for _ in 0..routes {
        let src = rng.below(CELLS);
        let dst = rng.below(CELLS);
        obstacles[src as usize] = 0;
        obstacles[dst as usize] = 0;
        pairs.push((src, dst));
    }
    Maze { obstacles, pairs }
}

/// BFS distance from src to dst, or 0 if unreachable (src==dst gives 0 too;
/// the kernel mixes dist+1 to distinguish "found at 0" from "unreachable").
fn bfs(obstacles: &[u8], src: u64, dst: u64) -> Option<u64> {
    let mut dist = vec![0u64; CELLS as usize]; // dist + 1; 0 = unvisited
    let mut queue = Vec::with_capacity(CELLS as usize);
    dist[src as usize] = 1;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let cur = queue[head];
        head += 1;
        if cur == dst {
            return Some(dist[cur as usize] - 1);
        }
        let d = dist[cur as usize] + 1;
        let x = cur % W;
        let try_nbr = |n: u64, dist: &mut Vec<u64>, queue: &mut Vec<u64>| {
            if dist[n as usize] == 0 && obstacles[n as usize] == 0 {
                dist[n as usize] = d;
                queue.push(n);
            }
        };
        if cur >= W {
            try_nbr(cur - W, &mut dist, &mut queue);
        }
        if cur + W < CELLS {
            try_nbr(cur + W, &mut dist, &mut queue);
        }
        if x > 0 {
            try_nbr(cur - 1, &mut dist, &mut queue);
        }
        if x + 1 < W {
            try_nbr(cur + 1, &mut dist, &mut queue);
        }
    }
    None
}

fn reference(maze: &Maze) -> u64 {
    let mut cs = Checksum::default();
    for &(src, dst) in &maze.pairs {
        match bfs(&maze.obstacles, src, dst) {
            Some(d) => cs.mix(d + 1),
            None => cs.mix(0),
        }
    }
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let routes = 16 * scale.factor(4) as usize;
    let maze = generate_maze(routes);
    let expected = reference(&maze);

    let obst_base = DATA_BASE;
    let pairs_base = obst_base + CELLS;
    let dist_base = DATA_BASE + (1 << 20);
    let queue_base = dist_base + CELLS * 8;

    let mut pair_words = Vec::with_capacity(routes * 2);
    for &(s, d) in &maze.pairs {
        pair_words.push(s);
        pair_words.push(d);
    }

    let mut a = Asm::new();
    a.data_bytes(obst_base, &maze.obstacles);
    a.data_u64s(pairs_base, &pair_words);

    a.li(R_OBST, obst_base as i64);
    a.li(R_DIST, dist_base as i64);
    a.li(R_QUEUE, queue_base as i64);
    a.li(R_PAIRS, pairs_base as i64);
    a.li(R_ROUTE, routes as i64);
    a.li(CHECKSUM_REG, 0);

    a.label("route");
    emit_align(&mut a, 1);
    a.ldq(R_SRC, R_PAIRS, 0);
    a.ldq(R_DST, R_PAIRS, 8);
    a.add(R_PAIRS, R_PAIRS, 16);
    // Clear the dist array.
    a.li(R_I, 0);
    a.label("clear");
    a.s8add(R_ADDR, R_I, R_DIST);
    a.stq(Reg::R31, R_ADDR, 0);
    a.add(R_I, R_I, 1);
    a.cmplt(R_TMP, R_I, CELLS as i32);
    a.bne(R_TMP, "clear");
    // Seed the queue with src.
    a.s8add(R_ADDR, R_SRC, R_DIST);
    a.li(R_TMP, 1);
    a.stq(R_TMP, R_ADDR, 0);
    a.stq(R_SRC, R_QUEUE, 0);
    a.mov(R_HEAD, R_QUEUE);
    a.add(R_TAIL, R_QUEUE, 8);

    a.label("bfs");
    a.cmpult(R_TMP, R_HEAD, R_TAIL);
    a.beq(R_TMP, "unreachable");
    a.ldq(R_CUR, R_HEAD, 0);
    a.add(R_HEAD, R_HEAD, 8);
    // Found?
    a.sub(R_TMP, R_CUR, R_DST);
    a.beq(R_TMP, "found");
    // d = dist[cur] + 1
    a.s8add(R_ADDR, R_CUR, R_DIST);
    a.ldq(R_D, R_ADDR, 0);
    a.add(R_D, R_D, 1);
    a.and_(R_X, R_CUR, (W - 1) as i32);

    // Up neighbor: cur - W if cur >= W.
    a.cmpult(R_TMP, R_CUR, W as i32);
    a.bne(R_TMP, "no_up");
    a.sub(R_NBR, R_CUR, W as i32);
    a.bsr(Reg::R26, "try_nbr");
    a.label("no_up");
    // Down: cur + W if cur + W < CELLS.
    a.add(R_NBR, R_CUR, W as i32);
    a.cmpult(R_TMP, R_NBR, CELLS as i32);
    a.beq(R_TMP, "no_down");
    a.bsr(Reg::R26, "try_nbr");
    a.label("no_down");
    // Left: cur - 1 if x > 0.
    a.beq(R_X, "no_left");
    a.sub(R_NBR, R_CUR, 1);
    a.bsr(Reg::R26, "try_nbr");
    a.label("no_left");
    // Right: cur + 1 if x + 1 < W.
    a.sub(R_TMP, R_X, (W - 1) as i32);
    a.beq(R_TMP, "no_right");
    a.add(R_NBR, R_CUR, 1);
    a.bsr(Reg::R26, "try_nbr");
    a.label("no_right");
    a.br("bfs");

    // try_nbr: if dist[R_NBR] == 0 and not blocked, set dist and enqueue.
    a.label("try_nbr");
    a.s8add(R_ADDR, R_NBR, R_DIST);
    a.ldq(R_TMP, R_ADDR, 0);
    a.bne(R_TMP, "nbr_done");
    a.add(R_TMP, R_OBST, R_NBR);
    a.ldbu(R_TMP, R_TMP, 0);
    a.bne(R_TMP, "nbr_done");
    a.stq(R_D, R_ADDR, 0);
    a.stq(R_NBR, R_TAIL, 0);
    a.add(R_TAIL, R_TAIL, 8);
    a.label("nbr_done");
    a.ret(Reg::R26);

    a.label("found");
    a.s8add(R_ADDR, R_CUR, R_DIST);
    a.ldq(R_TMP, R_ADDR, 0); // dist + 1
    emit_mix(&mut a, R_TMP);
    a.br("route_done");
    a.label("unreachable");
    a.li(R_TMP, 0);
    emit_mix(&mut a, R_TMP);
    a.label("route_done");
    a.sub(R_ROUTE, R_ROUTE, 1);
    a.bgt(R_ROUTE, "route");
    a.halt();

    Workload {
        name: "vpr",
        description: "BFS wavefront maze routing on an obstructed grid",
        program: a.assemble().expect("vpr kernel assembles"),
        expected_checksum: expected,
        budget: routes as u64 * 80 * CELLS + 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn bfs_on_open_grid_is_manhattan() {
        let open = vec![0u8; CELLS as usize];
        // src (0,0), dst (3,2) -> distance 5.
        assert_eq!(bfs(&open, 0, 2 * W + 3), Some(5));
        assert_eq!(bfs(&open, 7, 7), Some(0));
    }

    #[test]
    fn bfs_respects_walls() {
        // Wall down column x=1 blocks (0,0) from (0,2) except around edges;
        // block the whole column to make dst unreachable.
        let mut obst = vec![0u8; CELLS as usize];
        for y in 0..W {
            obst[(y * W + 1) as usize] = 1;
        }
        assert_eq!(bfs(&obst, 0, 2), None);
    }

    #[test]
    fn routes_mix_reachable_and_not() {
        let maze = generate_maze(64);
        let found =
            maze.pairs.iter().filter(|&&(s, d)| bfs(&maze.obstacles, s, d).is_some()).count();
        assert!(found > 32, "most routes complete: {found}");
    }
}
