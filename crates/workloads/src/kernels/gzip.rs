//! `gzip` stand-in: greedy LZ77 string matching with a hash head table —
//! the deflate match-finder inner loop.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const HASH_ENTRIES: u64 = 1024;
const MAX_MATCH: u64 = 16;
const MAX_DIST: u64 = 4096;
const HASH_MUL: i64 = 0x9E37_79B1; // Fibonacci hashing constant

const R_I: Reg = Reg::R1;
const R_N: Reg = Reg::R2; // input length minus 3 (last hashable position)
const R_IN: Reg = Reg::R3;
const R_HEAD: Reg = Reg::R4;
const R_H: Reg = Reg::R5;
const R_CAND: Reg = Reg::R6;
const R_LEN: Reg = Reg::R7;
const R_LIMIT: Reg = Reg::R8;
const R_ADDR: Reg = Reg::R9;
const R_TMP: Reg = Reg::R11;
const R_DIST: Reg = Reg::R12;
const R_MUL: Reg = Reg::R13;
const R_B: Reg = Reg::R14;
const R_B2: Reg = Reg::R15;
const R_NFULL: Reg = Reg::R16; // full input length
const R_M24: Reg = Reg::R17; // 0xFFFFFF hash mask
const R_BITBUF: Reg = Reg::R18; // pending output bits
const R_BITCNT: Reg = Reg::R19;
const R_OUTP: Reg = Reg::R20; // output byte cursor
const R_EV: Reg = Reg::R21; // value passed to emitbits

fn generate_input(len: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(0x621F);
    let mut out: Vec<u8> = (0..64).map(|_| rng.byte() % 32 + b'a').collect();
    while out.len() < len {
        if rng.below(4) == 0 || out.len() < 32 {
            out.push(rng.byte() % 32 + b'a');
        } else {
            let copy_len = (4 + rng.below(17)) as usize;
            let start = rng.below((out.len() - copy_len.min(out.len() - 1)) as u64) as usize;
            for k in 0..copy_len.min(len - out.len()) {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    out.truncate(len);
    out
}

fn hash3(b0: u8, b1: u8, b2: u8) -> u64 {
    let key = u64::from(b0) | (u64::from(b1) << 8) | (u64::from(b2) << 16);
    (key.wrapping_mul(HASH_MUL as u64) >> 16) & (HASH_ENTRIES - 1)
}

/// Mirrors the kernel's `emitbits` routine: appends the low 10 bits of
/// every emitted symbol to a bit stream flushed 32 bits at a time.
#[derive(Default)]
struct BitPacker {
    bitbuf: u64,
    bitcnt: u64,
    out_bytes: u64,
}

impl BitPacker {
    fn emit(&mut self, value: u64) {
        self.bitbuf |= (value & 1023) << self.bitcnt;
        self.bitcnt += 10;
        if self.bitcnt >= 32 {
            self.out_bytes += 4;
            self.bitbuf >>= 32;
            self.bitcnt -= 32;
        }
    }
}

fn reference(input: &[u8]) -> u64 {
    let mut cs = Checksum::default();
    let mut packer = BitPacker::default();
    let mut head = vec![0u64; HASH_ENTRIES as usize]; // position + 1; 0 = empty
    let n = input.len() as u64;
    let mut i = 0u64;
    while i + 3 <= n {
        let h = hash3(input[i as usize], input[i as usize + 1], input[i as usize + 2]);
        let cand = head[h as usize];
        head[h as usize] = i + 1;
        if cand != 0 && i + 1 - cand <= MAX_DIST {
            let cand = cand - 1;
            let limit = MAX_MATCH.min(n - i);
            let mut len = 0u64;
            while len < limit && input[(cand + len) as usize] == input[(i + len) as usize] {
                len += 1;
            }
            if len >= 3 {
                cs.mix(1000 + (i - cand));
                cs.mix(len);
                packer.emit(1000 + (i - cand));
                packer.emit(len);
                i += len;
                continue;
            }
        }
        cs.mix(u64::from(input[i as usize]));
        packer.emit(u64::from(input[i as usize]));
        i += 1;
    }
    while i < n {
        cs.mix(u64::from(input[i as usize]));
        packer.emit(u64::from(input[i as usize]));
        i += 1;
    }
    cs.mix(packer.out_bytes);
    cs.mix(packer.bitcnt);
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let len = 8192 * scale.factor(8) as usize;
    let input = generate_input(len);
    let expected = reference(&input);

    let in_base = DATA_BASE;
    let head_base = DATA_BASE + (1 << 20);
    let out_base = head_base + (1 << 20);

    let mut a = Asm::new();
    a.data_bytes(in_base, &input);

    a.li(R_IN, in_base as i64);
    a.li(R_HEAD, head_base as i64);
    a.li(R_MUL, HASH_MUL);
    a.li(R_M24, 0xFF_FFFF);
    a.li(R_I, 0);
    a.li(R_NFULL, len as i64);
    a.li(R_N, len as i64 - 3);
    a.li(R_BITBUF, 0);
    a.li(R_BITCNT, 0);
    a.li(R_OUTP, out_base as i64);
    a.li(CHECKSUM_REG, 0);
    a.br("main");

    // emitbits: append the low 10 bits of R_EV to the output bit stream,
    // flushing 32 bits at a time (deflate's send_bits).
    a.label("emitbits");
    a.and_(R_EV, R_EV, 1023);
    a.sll(R_EV, R_EV, R_BITCNT);
    a.or_(R_BITBUF, R_BITBUF, R_EV);
    a.add(R_BITCNT, R_BITCNT, 10);
    a.cmplt(R_EV, R_BITCNT, 32);
    a.bne(R_EV, "emit_ret");
    a.stl(R_BITBUF, R_OUTP, 0);
    a.add(R_OUTP, R_OUTP, 4);
    a.srl(R_BITBUF, R_BITBUF, 32);
    a.sub(R_BITCNT, R_BITCNT, 32);
    a.label("emit_ret");
    a.ret(Reg::R26);

    a.label("main");
    emit_align(&mut a, 1);
    a.cmplt(R_TMP, R_N, R_I); // n-3 < i  <=>  i+3 > n
    a.bne(R_TMP, "tail");
    // h = ((3 low bytes of a 32-bit read) * HASH_MUL >> 16) & 1023 —
    // one unaligned word read, like zlib's UPDATE_HASH.
    a.add(R_ADDR, R_IN, R_I);
    a.ldl(R_B, R_ADDR, 0);
    a.and_(R_B, R_B, R_M24);
    a.mul(R_B, R_B, R_MUL);
    a.srl(R_B, R_B, 16);
    a.and_(R_H, R_B, (HASH_ENTRIES - 1) as i32);
    // cand = head[h]; head[h] = i + 1
    a.s8add(R_ADDR, R_H, R_HEAD);
    a.ldq(R_CAND, R_ADDR, 0);
    a.add(R_TMP, R_I, 1);
    a.stq(R_TMP, R_ADDR, 0);
    a.beq(R_CAND, "literal");
    // dist+1 = i + 1 - cand ; require dist <= MAX_DIST
    a.sub(R_DIST, R_TMP, R_CAND); // i + 1 - cand = i - (cand-1)
    a.cmple(R_TMP, R_DIST, MAX_DIST as i32);
    a.beq(R_TMP, "literal");
    a.sub(R_CAND, R_CAND, 1);
    // limit = min(MAX_MATCH, n_full - i)
    a.sub(R_LIMIT, R_NFULL, R_I);
    a.cmple(R_TMP, R_LIMIT, MAX_MATCH as i32);
    a.bne(R_TMP, "limit_ok");
    a.li(R_LIMIT, MAX_MATCH as i64);
    a.label("limit_ok");
    // Word-at-a-time comparison, like zlib's longest_match: xor two
    // 8-byte reads; the first differing byte index is cttz/8.
    a.li(R_LEN, 0);
    a.label("matchloop");
    a.cmplt(R_TMP, R_LEN, R_LIMIT);
    a.beq(R_TMP, "matchdone");
    a.add(R_ADDR, R_CAND, R_LEN);
    a.add(R_ADDR, R_ADDR, R_IN);
    a.ldq(R_B, R_ADDR, 0);
    a.add(R_ADDR, R_I, R_LEN);
    a.add(R_ADDR, R_ADDR, R_IN);
    a.ldq(R_B2, R_ADDR, 0);
    a.xor(R_TMP, R_B, R_B2);
    a.bne(R_TMP, "matchpartial");
    a.add(R_LEN, R_LEN, 8);
    a.br("matchloop");
    a.label("matchpartial");
    a.cttz(R_TMP, R_TMP);
    a.srl(R_TMP, R_TMP, 3);
    a.add(R_LEN, R_LEN, R_TMP);
    a.label("matchdone");
    // Clamp overshoot from the 8-byte stride.
    a.cmple(R_TMP, R_LEN, R_LIMIT);
    a.bne(R_TMP, "noclamp");
    a.mov(R_LEN, R_LIMIT);
    a.label("noclamp");
    a.cmplt(R_TMP, R_LEN, 3);
    a.bne(R_TMP, "literal");
    // Emit the match: mix(1000 + dist), mix(len); i += len.
    // R_DIST = i+1-head[h] equals i-cand after the cand -= 1 adjustment.
    a.add(R_TMP, R_DIST, 1000);
    emit_mix(&mut a, R_TMP);
    a.mov(R_EV, R_TMP);
    a.bsr(Reg::R26, "emitbits");
    emit_mix(&mut a, R_LEN);
    a.mov(R_EV, R_LEN);
    a.bsr(Reg::R26, "emitbits");
    a.add(R_I, R_I, R_LEN);
    a.br("main");

    a.label("literal");
    a.add(R_ADDR, R_IN, R_I);
    a.ldbu(R_B, R_ADDR, 0);
    emit_mix(&mut a, R_B);
    a.mov(R_EV, R_B);
    a.bsr(Reg::R26, "emitbits");
    a.add(R_I, R_I, 1);
    a.br("main");

    a.label("tail");
    a.cmplt(R_TMP, R_I, R_NFULL);
    a.beq(R_TMP, "done");
    a.add(R_ADDR, R_IN, R_I);
    a.ldbu(R_B, R_ADDR, 0);
    emit_mix(&mut a, R_B);
    a.mov(R_EV, R_B);
    a.bsr(Reg::R26, "emitbits");
    a.add(R_I, R_I, 1);
    a.br("tail");

    a.label("done");
    // Fold the packer state into the checksum.
    a.li(R_TMP, out_base as i64);
    a.sub(R_TMP, R_OUTP, R_TMP);
    emit_mix(&mut a, R_TMP);
    emit_mix(&mut a, R_BITCNT);
    a.halt();

    Workload {
        name: "gzip",
        description: "greedy LZ77 hash-chain match finder (deflate inner loop)",
        program: a.assemble().expect("gzip kernel assembles"),
        expected_checksum: expected,
        budget: 200 * len as u64 + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn reference_finds_matches_in_repetitive_input() {
        // "abcabcabc...": after the first 3 literals everything matches.
        let input: Vec<u8> = b"abcabcabcabcabcabc".to_vec();
        let cs = reference(&input);
        // Literals a, b, c then matches; recompute by hand via the model.
        assert_ne!(cs, 0);
        let input2: Vec<u8> = (0..18).map(|i| (i % 7) as u8 + b'a').collect();
        assert_ne!(reference(&input2), cs);
    }

    #[test]
    fn generated_input_is_compressible() {
        let input = generate_input(4096);
        // Count match coverage via the reference model's logic.
        let mut head = vec![0u64; HASH_ENTRIES as usize];
        let n = input.len() as u64;
        let (mut i, mut matched) = (0u64, 0u64);
        while i + 3 <= n {
            let h = hash3(input[i as usize], input[i as usize + 1], input[i as usize + 2]);
            let cand = head[h as usize];
            head[h as usize] = i + 1;
            if cand != 0 && i + 1 - cand <= MAX_DIST {
                let cand = cand - 1;
                let limit = MAX_MATCH.min(n - i);
                let mut len = 0u64;
                while len < limit && input[(cand + len) as usize] == input[(i + len) as usize] {
                    len += 1;
                }
                if len >= 3 {
                    matched += len;
                    i += len;
                    continue;
                }
            }
            i += 1;
        }
        assert!(matched > n / 4, "input should compress: {matched}/{n}");
    }
}
