//! `perl` stand-in: a bytecode virtual machine with an indirect-threaded
//! dispatch loop — the classic interpreter structure whose data-dependent
//! indirect jumps give perl its modest IPC in the paper's Table 2.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

// Bytecode opcodes.
const OP_PUSH: u8 = 0; // push imm8
const OP_ADD: u8 = 1;
const OP_SUB: u8 = 2;
const OP_MUL: u8 = 3;
const OP_DUP: u8 = 4;
const OP_SWAP: u8 = 5;
const OP_LOAD: u8 = 6; // push locals[imm8]
const OP_STORE: u8 = 7; // locals[imm8] = pop
const OP_JNZ: u8 = 8; // pop; if != 0: ip += imm8 (signed)
const OP_END: u8 = 9;
const NUM_OPS: u64 = 10;

/// Each interpreted program occupies a fixed 32-byte slot.
const PROG_BYTES: u64 = 32;

const R_IP: Reg = Reg::R1;
const R_SP: Reg = Reg::R2; // operand stack pointer, grows up
const R_LOCALS: Reg = Reg::R3;
const R_JT: Reg = Reg::R4;
const R_OP: Reg = Reg::R5;
const R_A: Reg = Reg::R6;
const R_B: Reg = Reg::R7;
const R_ADDR: Reg = Reg::R8;
const R_TMP: Reg = Reg::R9;
const R_PROG: Reg = Reg::R12; // current program base
const R_PEND: Reg = Reg::R13;
const R_IMM: Reg = Reg::R14;

/// One interpreted program: a countdown loop updating two locals.
/// `acc = acc * 3 + i` per iteration, `i` counting down from `n`.
fn make_program(n: u8, seed: u8) -> Vec<u8> {
    let body = vec![
        OP_PUSH,
        n,
        OP_STORE,
        0, // i = n
        OP_PUSH,
        seed,
        OP_STORE,
        1, // acc = seed
        // loop:
        OP_LOAD,
        1,
        OP_PUSH,
        3,
        OP_MUL,
        OP_LOAD,
        0,
        OP_ADD,
        OP_STORE,
        1,
        OP_LOAD,
        0,
        OP_PUSH,
        1,
        OP_SUB,
        OP_DUP,
        OP_STORE,
        0,
        OP_JNZ,
        0x100u16.wrapping_sub(20) as u8, // -20: back to loop
        OP_END,
    ];
    assert!(body.len() <= PROG_BYTES as usize);
    let mut p = body;
    p.resize(PROG_BYTES as usize, OP_END);
    p
}

fn generate_programs(count: usize) -> Vec<u8> {
    let mut rng = SplitMix64::new(0x9E21);
    let mut out = Vec::new();
    for _ in 0..count {
        let n = 40 + (rng.below(200) as u8);
        let seed = rng.byte();
        out.extend_from_slice(&make_program(n, seed));
    }
    out
}

/// Host-side reference interpreter.
fn reference(programs: &[u8]) -> u64 {
    let mut cs = Checksum::default();
    let mut base = 0usize;
    while base < programs.len() {
        let mut ip = base;
        let mut stack: Vec<u64> = Vec::new();
        let mut locals = [0u64; 4];
        loop {
            let op = programs[ip];
            ip += 1;
            match op {
                OP_PUSH => {
                    stack.push(u64::from(programs[ip]));
                    ip += 1;
                }
                OP_ADD | OP_SUB | OP_MUL => {
                    let b = stack.pop().expect("b");
                    let a = stack.pop().expect("a");
                    stack.push(match op {
                        OP_ADD => a.wrapping_add(b),
                        OP_SUB => a.wrapping_sub(b),
                        _ => a.wrapping_mul(b),
                    });
                }
                OP_DUP => {
                    let a = *stack.last().expect("top");
                    stack.push(a);
                }
                OP_SWAP => {
                    let n = stack.len();
                    stack.swap(n - 1, n - 2);
                }
                OP_LOAD => {
                    stack.push(locals[programs[ip] as usize]);
                    ip += 1;
                }
                OP_STORE => {
                    locals[programs[ip] as usize] = stack.pop().expect("value");
                    ip += 1;
                }
                OP_JNZ => {
                    let off = programs[ip] as i8;
                    ip += 1;
                    if stack.pop().expect("cond") != 0 {
                        ip = (ip as i64 + i64::from(off)) as usize;
                    }
                }
                OP_END => break,
                _ => unreachable!("generator emits valid opcodes"),
            }
        }
        cs.mix(locals[1]);
        base += PROG_BYTES as usize;
    }
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let count = 8 * scale.factor(8) as usize;
    let programs = generate_programs(count);
    let expected = reference(&programs);

    let prog_base = DATA_BASE;
    let jt_base = DATA_BASE + (1 << 20);
    let stack_base = jt_base + NUM_OPS * 8;
    let locals_base = stack_base + (16 << 10);

    let mut a = Asm::new();
    a.data_bytes(prog_base, &programs);

    // Build the dispatch table at runtime with la/stq.
    a.li(R_JT, jt_base as i64);
    for (i, handler) in [
        "h_push", "h_add", "h_sub", "h_mul", "h_dup", "h_swap", "h_load", "h_store", "h_jnz",
        "h_end",
    ]
    .iter()
    .enumerate()
    {
        a.la(R_TMP, *handler);
        a.stq(R_TMP, R_JT, (i * 8) as i16);
    }

    a.li(R_PROG, prog_base as i64);
    a.li(R_PEND, (prog_base + programs.len() as u64) as i64);
    a.li(R_LOCALS, locals_base as i64);
    a.li(CHECKSUM_REG, 0);

    a.label("newprog");
    a.mov(R_IP, R_PROG);
    a.li(R_SP, stack_base as i64);
    // Clear locals.
    a.stq(Reg::R31, R_LOCALS, 0);
    a.stq(Reg::R31, R_LOCALS, 8);
    a.stq(Reg::R31, R_LOCALS, 16);
    a.stq(Reg::R31, R_LOCALS, 24);

    a.label("dispatch");
    emit_align(&mut a, 1);
    a.ldbu(R_OP, R_IP, 0);
    a.add(R_IP, R_IP, 1);
    a.s8add(R_ADDR, R_OP, R_JT);
    a.ldq(R_ADDR, R_ADDR, 0);
    a.jmp(R_ADDR);

    a.label("h_push");
    a.ldbu(R_IMM, R_IP, 0);
    a.add(R_IP, R_IP, 1);
    a.stq(R_IMM, R_SP, 0);
    a.add(R_SP, R_SP, 8);
    a.br("dispatch");

    for (label, is_mul) in [("h_add", false), ("h_sub", false), ("h_mul", true)] {
        a.label(label);
        a.ldq(R_B, R_SP, -8);
        a.ldq(R_A, R_SP, -16);
        a.sub(R_SP, R_SP, 8);
        match label {
            "h_add" => a.add(R_A, R_A, R_B),
            "h_sub" => a.sub(R_A, R_A, R_B),
            _ => a.mul(R_A, R_A, R_B),
        };
        let _ = is_mul;
        a.stq(R_A, R_SP, -8);
        a.br("dispatch");
    }

    a.label("h_dup");
    a.ldq(R_A, R_SP, -8);
    a.stq(R_A, R_SP, 0);
    a.add(R_SP, R_SP, 8);
    a.br("dispatch");

    a.label("h_swap");
    a.ldq(R_A, R_SP, -8);
    a.ldq(R_B, R_SP, -16);
    a.stq(R_B, R_SP, -8);
    a.stq(R_A, R_SP, -16);
    a.br("dispatch");

    a.label("h_load");
    a.ldbu(R_IMM, R_IP, 0);
    a.add(R_IP, R_IP, 1);
    a.s8add(R_ADDR, R_IMM, R_LOCALS);
    a.ldq(R_A, R_ADDR, 0);
    a.stq(R_A, R_SP, 0);
    a.add(R_SP, R_SP, 8);
    a.br("dispatch");

    a.label("h_store");
    a.ldbu(R_IMM, R_IP, 0);
    a.add(R_IP, R_IP, 1);
    a.sub(R_SP, R_SP, 8);
    a.ldq(R_A, R_SP, 0);
    a.s8add(R_ADDR, R_IMM, R_LOCALS);
    a.stq(R_A, R_ADDR, 0);
    a.br("dispatch");

    a.label("h_jnz");
    a.ldbu(R_IMM, R_IP, 0);
    a.add(R_IP, R_IP, 1);
    a.sextb(R_IMM, R_IMM); // signed offset
    a.sub(R_SP, R_SP, 8);
    a.ldq(R_A, R_SP, 0);
    a.beq(R_A, "dispatch");
    a.add(R_IP, R_IP, R_IMM);
    a.br("dispatch");

    a.label("h_end");
    a.ldq(R_A, R_LOCALS, 8);
    emit_mix(&mut a, R_A);
    a.add(R_PROG, R_PROG, PROG_BYTES as i32);
    a.cmpult(R_TMP, R_PROG, R_PEND);
    a.bne(R_TMP, "newprog");
    a.halt();

    Workload {
        name: "perl",
        description: "bytecode VM with indirect-threaded dispatch (interpreter loop)",
        program: a.assemble().expect("perl kernel assembles"),
        expected_checksum: expected,
        budget: 40_000 * count as u64 + 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn reference_runs_the_countdown() {
        // n=2, seed=5: acc = 5; i=2: acc=17; i=1: acc=52; halt.
        let p = make_program(2, 5);
        let mut cs = Checksum::default();
        cs.mix(52);
        assert_eq!(reference(&p), cs.0);
    }

    #[test]
    fn jnz_offset_is_negative_twenty() {
        let p = make_program(3, 0);
        let jnz_pos = p.iter().position(|&b| b == OP_JNZ).unwrap();
        assert_eq!(p[jnz_pos + 1] as i8, -20);
    }
}
