//! `crafty` stand-in: bitboard attack generation — the scan-bits /
//! table-lookup / popcount loop at the heart of a chess move generator.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

const R_P: Reg = Reg::R1; // board cursor
const R_END: Reg = Reg::R2;
const R_TBL: Reg = Reg::R3; // knight-attack table base
const R_B: Reg = Reg::R4; // remaining piece bits
const R_SQ: Reg = Reg::R5; // current square
const R_ATK: Reg = Reg::R6; // attack set of one knight
const R_ACC: Reg = Reg::R7; // union of attacks
const R_K: Reg = Reg::R8; // popcount
const R_ADDR: Reg = Reg::R9;
const R_TMP: Reg = Reg::R11;
const R_PST: Reg = Reg::R12; // piece-square table base
const R_SCORE: Reg = Reg::R13;
const R_OUT: Reg = Reg::R14; // per-board result cursor

/// Knight attack set from a square, file/rank-clipped.
fn knight_attacks(sq: u32) -> u64 {
    let (f, r) = ((sq % 8) as i32, (sq / 8) as i32);
    let mut atk = 0u64;
    for (df, dr) in [(1, 2), (2, 1), (2, -1), (1, -2), (-1, -2), (-2, -1), (-2, 1), (-1, 2)] {
        let (nf, nr) = (f + df, r + dr);
        if (0..8).contains(&nf) && (0..8).contains(&nr) {
            atk |= 1 << (nr * 8 + nf);
        }
    }
    atk
}

fn generate_boards(count: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(0xC2AF);
    // AND of two draws gives ~16 pieces per board.
    (0..count).map(|_| rng.next_u64() & rng.next_u64()).collect()
}

/// Centralization bonus per square (a piece-square table, as crafty's
/// evaluation uses).
fn pst(sq: u32) -> u8 {
    let (f, r) = ((sq % 8) as i32, (sq / 8) as i32);
    let center = (7 - (2 * f - 7).abs()) + (7 - (2 * r - 7).abs());
    center as u8
}

fn reference(boards: &[u64]) -> u64 {
    let mut cs = Checksum::default();
    for &board in boards {
        let mut b = board;
        let mut acc = 0u64;
        let mut score = 0u64;
        while b != 0 {
            let sq = b.trailing_zeros();
            acc |= knight_attacks(sq);
            score += u64::from(pst(sq));
            b &= b - 1;
        }
        let k = u64::from(acc.count_ones());
        cs.mix(k);
        cs.mix(acc);
        cs.mix(score);
    }
    cs.0
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let count = 512 * scale.factor(16) as usize;
    let boards = generate_boards(count);
    let expected = reference(&boards);
    let table: Vec<u64> = (0..64).map(knight_attacks).collect();

    let pst_table: Vec<u8> = (0..64).map(pst).collect();
    let tbl_base = DATA_BASE;
    let pst_base = DATA_BASE + 64 * 8;
    let boards_base = pst_base + 64;
    let out_base = boards_base + 8 * count as u64;

    let mut a = Asm::new();
    a.data_u64s(tbl_base, &table);
    a.data_bytes(pst_base, &pst_table);
    a.data_u64s(boards_base, &boards);

    a.li(R_TBL, tbl_base as i64);
    a.li(R_PST, pst_base as i64);
    a.li(R_P, boards_base as i64);
    a.li(R_END, out_base as i64);
    a.li(R_OUT, out_base as i64);
    a.li(CHECKSUM_REG, 0);

    a.label("board");
    emit_align(&mut a, 1);
    a.ldq(R_B, R_P, 0);
    a.li(R_ACC, 0);
    a.li(R_SCORE, 0);
    a.label("bits");
    a.beq(R_B, "boarddone");
    a.cttz(R_SQ, R_B);
    a.s8add(R_ADDR, R_SQ, R_TBL);
    a.ldq(R_ATK, R_ADDR, 0);
    a.or_(R_ACC, R_ACC, R_ATK);
    // Positional evaluation: piece-square-table bonus per knight.
    a.add(R_ADDR, R_SQ, R_PST);
    a.ldbu(R_ATK, R_ADDR, 0);
    a.add(R_SCORE, R_SCORE, R_ATK);
    a.sub(R_TMP, R_B, 1);
    a.and_(R_B, R_B, R_TMP);
    a.br("bits");

    a.label("boarddone");
    a.popcnt(R_K, R_ACC);
    emit_mix(&mut a, R_K);
    emit_mix(&mut a, R_ACC);
    emit_mix(&mut a, R_SCORE);
    // Record the evaluation (transposition-table style write traffic).
    a.stq(R_SCORE, R_OUT, 0);
    a.add(R_OUT, R_OUT, 8);
    a.add(R_P, R_P, 8);
    a.cmpult(R_TMP, R_P, R_END);
    a.bne(R_TMP, "board");
    a.halt();

    Workload {
        name: "crafty",
        description: "bitboard knight-attack generation with scan/lookup/popcount",
        program: a.assemble().expect("crafty kernel assembles"),
        expected_checksum: expected,
        budget: 400 * count as u64 + 10_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn knight_attack_corners_and_center() {
        assert_eq!(knight_attacks(0).count_ones(), 2, "a1 knight has 2 moves");
        assert_eq!(knight_attacks(27).count_ones(), 8, "d4 knight has 8 moves");
        // Attacks never include the origin square.
        for sq in 0..64 {
            assert_eq!(knight_attacks(sq) & (1 << sq), 0);
        }
    }
}
