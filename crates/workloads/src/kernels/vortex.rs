//! `vortex` stand-in: an in-memory object store built on a binary search
//! tree, queried with pairs of independent, branchless fixed-depth
//! descents — the object-validation traffic of the OO7-style database
//! vortex models. Two interleaved lookup chains and branch-free descent
//! give the kernel the high ILP that makes vortex the paper's
//! highest-IPC benchmark.

use super::{emit_align, emit_mix, Checksum};
use crate::{Scale, SplitMix64, Workload, CHECKSUM_REG, DATA_BASE};
use hpa_asm::Asm;
use hpa_isa::Reg;

/// Node layout: key (8), left (8), right (8), count (8).
const NODE_BYTES: u64 = 32;
const INSERTS: usize = 1024;
const KEY_SPACE: u64 = 4096;
/// Fixed descent depth; must cover the deepest node (checked at build).
/// The store is built with median-first (balanced) insertion, like a
/// bulk-loaded database index, so 12 levels cover 1024 distinct keys.
const DEPTH: usize = 12;

// Insert-phase registers.
const R_P: Reg = Reg::R1;
const R_END: Reg = Reg::R2;
const R_KEY: Reg = Reg::R3;
const R_NODE: Reg = Reg::R4;
const R_ARENA: Reg = Reg::R5;
const R_SLOT: Reg = Reg::R6;
const R_NKEY: Reg = Reg::R7;
const R_TMP: Reg = Reg::R9;
const R_ROOT: Reg = Reg::R13;

// Lookup-phase registers (two interleaved walks A and B).
const R_KA: Reg = Reg::R14;
const R_KB: Reg = Reg::R15;
const R_NA: Reg = Reg::R16;
const R_NB: Reg = Reg::R17;
const R_FA: Reg = Reg::R18;
const R_FB: Reg = Reg::R19;
const R_T1: Reg = Reg::R20;
const R_T2: Reg = Reg::R21;
const R_T3: Reg = Reg::R22;
const R_T4: Reg = Reg::R23;
const R_T5: Reg = Reg::R24;
const R_T6: Reg = Reg::R25;
const R_D: Reg = Reg::R12;

fn generate_keys(count: usize, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..count).map(|_| rng.below(KEY_SPACE)).collect()
}

/// Host-side mirror of the arena BST.
struct Bst {
    /// (key, left, right, count) per node; indices are node numbers.
    nodes: Vec<(u64, usize, usize, u64)>,
}

const NIL: usize = usize::MAX;

impl Bst {
    fn build(inserts: &[u64]) -> Bst {
        let mut nodes: Vec<(u64, usize, usize, u64)> = Vec::new();
        for &k in inserts {
            if nodes.is_empty() {
                nodes.push((k, NIL, NIL, 1));
                continue;
            }
            let mut n = 0usize;
            loop {
                let (nk, l, r, _) = nodes[n];
                if k == nk {
                    nodes[n].3 += 1;
                    break;
                }
                let child = if k < nk { l } else { r };
                if child == NIL {
                    nodes.push((k, NIL, NIL, 1));
                    let new = nodes.len() - 1;
                    if k < nk {
                        nodes[n].1 = new;
                    } else {
                        nodes[n].2 = new;
                    }
                    break;
                }
                n = child;
            }
        }
        Bst { nodes }
    }

    fn max_depth(&self) -> usize {
        fn depth(nodes: &[(u64, usize, usize, u64)], n: usize) -> usize {
            if n == NIL {
                return 0;
            }
            1 + depth(nodes, nodes[n].1).max(depth(nodes, nodes[n].2))
        }
        depth(&self.nodes, 0)
    }

    /// The branchless fixed-depth walk the kernel performs: descend
    /// [`DEPTH`] levels following key comparisons (null-safe: a missing
    /// child reads node 0-of-memory which is all zeros), accumulating the
    /// count of any node whose key matches.
    fn fixed_walk(&self, key: u64) -> u64 {
        let mut found = 0u64;
        let mut node = if self.nodes.is_empty() { NIL } else { 0 };
        for _ in 0..DEPTH {
            let (nk, l, r, c) = match node {
                NIL => (0, NIL, NIL, 0),
                n => self.nodes[n],
            };
            let hit = node != NIL && nk == key;
            if hit {
                found |= c;
            }
            node = if node == NIL {
                NIL
            } else if key < nk {
                l
            } else {
                r
            };
        }
        found
    }
}

fn reference(inserts: &[u64], lookups: &[u64]) -> u64 {
    let bst = Bst::build(inserts);
    let mut cs = Checksum::default();
    for pair in lookups.chunks(2) {
        cs.mix(bst.fixed_walk(pair[0]));
        cs.mix(bst.fixed_walk(pair[1]));
    }
    cs.mix(bst.nodes.len() as u64);
    cs.0
}

/// Orders the unique keys median-first — the insertion order of a
/// bulk-loaded balanced index.
fn balanced_insert_stream(raw: &[u64]) -> Vec<u64> {
    let mut unique: Vec<u64> = raw.to_vec();
    unique.sort_unstable();
    unique.dedup();
    fn median_first(keys: &[u64], out: &mut Vec<u64>) {
        if keys.is_empty() {
            return;
        }
        let mid = keys.len() / 2;
        out.push(keys[mid]);
        median_first(&keys[..mid], out);
        median_first(&keys[mid + 1..], out);
    }
    let mut out = Vec::with_capacity(unique.len());
    median_first(&unique, &mut out);
    out
}

/// Builds the workload.
#[must_use]
pub fn build(scale: Scale) -> Workload {
    let lookups_n = 1024 * scale.factor(8) as usize;
    let inserts = balanced_insert_stream(&generate_keys(INSERTS, 0x0B7E));
    let mut lookups = generate_keys(lookups_n, 0x0B7F);
    if lookups.len() % 2 == 1 {
        lookups.pop();
    }
    let bst = Bst::build(&inserts);
    assert!(bst.max_depth() <= DEPTH, "tree depth {} exceeds DEPTH", bst.max_depth());
    let expected = reference(&inserts, &lookups);

    let ins_base = DATA_BASE;
    let look_base = ins_base + (inserts.len() as u64) * 8;
    let arena_base = DATA_BASE + (1 << 20);

    let mut a = Asm::new();
    a.data_u64s(ins_base, &inserts);
    a.data_u64s(look_base, &lookups);

    a.li(R_ARENA, arena_base as i64);
    a.li(R_ROOT, 0);
    a.li(CHECKSUM_REG, 0);

    // ---- Insert phase (pointer-chasing builds the object store) ----
    a.li(R_P, ins_base as i64);
    a.li(R_END, look_base as i64);
    a.label("ins");
    emit_align(&mut a, 1);
    a.ldq(R_KEY, R_P, 0);
    a.add(R_P, R_P, 8);
    a.beq(R_ROOT, "ins_root");
    a.mov(R_NODE, R_ROOT);
    a.label("ins_walk");
    a.ldq(R_NKEY, R_NODE, 0);
    a.sub(R_TMP, R_KEY, R_NKEY);
    a.beq(R_TMP, "ins_dup");
    a.blt(R_TMP, "ins_left");
    a.add(R_SLOT, R_NODE, 16);
    a.br("ins_descend");
    a.label("ins_left");
    a.add(R_SLOT, R_NODE, 8);
    a.label("ins_descend");
    a.ldq(R_NODE, R_SLOT, 0);
    a.bne(R_NODE, "ins_walk");
    a.stq(R_KEY, R_ARENA, 0);
    a.stq(Reg::R31, R_ARENA, 8);
    a.stq(Reg::R31, R_ARENA, 16);
    a.li(R_TMP, 1);
    a.stq(R_TMP, R_ARENA, 24);
    a.stq(R_ARENA, R_SLOT, 0);
    a.add(R_ARENA, R_ARENA, NODE_BYTES as i32);
    a.br("ins_next");
    a.label("ins_dup");
    a.ldq(R_TMP, R_NODE, 24);
    a.add(R_TMP, R_TMP, 1);
    a.stq(R_TMP, R_NODE, 24);
    a.br("ins_next");
    a.label("ins_root");
    a.stq(R_KEY, R_ARENA, 0);
    a.stq(Reg::R31, R_ARENA, 8);
    a.stq(Reg::R31, R_ARENA, 16);
    a.li(R_TMP, 1);
    a.stq(R_TMP, R_ARENA, 24);
    a.mov(R_ROOT, R_ARENA);
    a.add(R_ARENA, R_ARENA, NODE_BYTES as i32);
    a.label("ins_next");
    a.cmpult(R_TMP, R_P, R_END);
    a.bne(R_TMP, "ins");

    // ---- Lookup phase: two interleaved branchless fixed-depth walks ----
    a.li(R_P, look_base as i64);
    a.li(R_END, (look_base + (lookups.len() as u64) * 8) as i64);
    a.label("look");
    emit_align(&mut a, 1);
    a.ldq(R_KA, R_P, 0);
    a.ldq(R_KB, R_P, 8);
    a.add(R_P, R_P, 16);
    a.li(R_FA, 0);
    a.li(R_FB, 0);
    a.mov(R_NA, R_ROOT);
    a.mov(R_NB, R_ROOT);
    a.li(R_D, DEPTH as i64);
    a.label("level");
    // The two walks are interleaved instruction-by-instruction, the
    // schedule a trace/list scheduler produces for two independent
    // chains; it also staggers the paired loads across the memory ports.
    let walks = [(R_NA, R_KA, R_FA), (R_NB, R_KB, R_FB)];
    let scratch = [(R_T1, R_T3, R_T5), (R_T2, R_T4, R_T6)];
    // t_nk/t_child/t_m per walk.
    for (w, s) in walks.iter().zip(scratch) {
        a.ldq(s.0, w.0, 0); // nk (null-safe: address 0 reads zero)
    }
    for (w, s) in walks.iter().zip(scratch) {
        a.ldq(s.1, w.0, 8); // left
    }
    for (w, s) in walks.iter().zip(scratch) {
        a.cmpeq(s.2, s.0, w.1); // key match?
        a.cmpult(Reg::R30, Reg::R31, w.0); // node != 0?
        a.and_(s.2, s.2, Reg::R30);
        a.sub(s.2, Reg::R31, s.2); // mask = -hit
    }
    for (w, s) in walks.iter().zip(scratch) {
        a.ldq(Reg::R30, w.0, 24); // count
        a.and_(Reg::R30, Reg::R30, s.2);
        a.or_(w.2, w.2, Reg::R30); // found |= count & mask
    }
    for (w, s) in walks.iter().zip(scratch) {
        a.ldq(Reg::R30, w.0, 16); // right
        a.cmplt(s.2, w.1, s.0); // go left?
        a.sub(s.2, Reg::R31, s.2);
        a.xor(s.1, s.1, Reg::R30); // left ^ right
        a.and_(s.1, s.1, s.2);
        a.xor(w.0, Reg::R30, s.1); // next = right ^ ((l^r) & mask)
    }
    a.sub(R_D, R_D, 1);
    a.bgt(R_D, "level");
    emit_mix(&mut a, R_FA);
    emit_mix(&mut a, R_FB);
    a.cmpult(R_TMP, R_P, R_END);
    a.bne(R_TMP, "look");

    // Distinct-key count = allocated nodes.
    a.li(R_TMP, arena_base as i64);
    a.sub(R_TMP, R_ARENA, R_TMP);
    a.srl(R_TMP, R_TMP, 5);
    emit_mix(&mut a, R_TMP);
    a.halt();

    Workload {
        name: "vortex",
        description: "BST object store: branchy inserts, interleaved branchless lookups",
        program: a.assemble().expect("vortex kernel assembles"),
        expected_checksum: expected,
        budget: 40 * DEPTH as u64 * lookups.len() as u64 + 400 * INSERTS as u64 + 50_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_matches_reference() {
        let w = build(Scale::Tiny);
        w.verify().expect("verify");
    }

    #[test]
    fn fixed_walk_matches_map_semantics() {
        use std::collections::BTreeMap;
        let raw = generate_keys(INSERTS, 0x0B7E);
        let inserts = balanced_insert_stream(&raw);
        let bst = Bst::build(&inserts);
        assert!(bst.max_depth() <= DEPTH, "balanced depth is {}", bst.max_depth());
        let mut map: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &inserts {
            *map.entry(k).or_insert(0) += 1;
        }
        for k in generate_keys(256, 7) {
            assert_eq!(bst.fixed_walk(k), map.get(&k).copied().unwrap_or(0), "key {k}");
        }
        assert_eq!(bst.nodes.len(), map.len());
    }

    #[test]
    fn balanced_stream_builds_a_log_depth_tree() {
        let raw: Vec<u64> = (0..1000).collect();
        let bst = Bst::build(&balanced_insert_stream(&raw));
        assert!(bst.max_depth() <= 10, "depth {}", bst.max_depth());
        // Raw order would be a 1000-deep list.
        assert_eq!(Bst::build(&raw).max_depth(), 1000);
    }

    #[test]
    fn walk_of_missing_key_is_zero() {
        let bst = Bst::build(&[10, 5, 20]);
        assert_eq!(bst.fixed_walk(KEY_SPACE + 1), 0);
        assert_eq!(bst.fixed_walk(5), 1);
    }
}
