//! A tiny deterministic PRNG for input generation.
//!
//! Workload inputs must be bit-identical across runs and platforms so that
//! every simulator configuration sees exactly the same instruction stream;
//! a self-contained SplitMix64 keeps the library dependency-free.

/// The SplitMix64 generator (Steele, Lea & Flood; public-domain algorithm).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is irrelevant for input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A pseudo-random byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_output() {
        // Reference value for seed 0 from the published SplitMix64.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        // Different seeds diverge.
        let mut s = SplitMix64::new(8);
        assert_ne!(r.next_u64(), s.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }
}
