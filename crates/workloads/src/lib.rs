//! # hpa-workloads — SPEC CINT2000 stand-in benchmark kernels
//!
//! The paper evaluates on the twelve SPEC CINT2000 benchmarks compiled for
//! Alpha. Those binaries (and the MinneSPEC reduced inputs) are not
//! available here, so this crate provides twelve hand-written kernels in
//! the `hpa` ISA, one per benchmark, each implementing a real algorithm
//! from the same application domain (see `DESIGN.md` §2 for the
//! substitution argument):
//!
//! | name     | SPEC program        | kernel                                         |
//! |----------|---------------------|------------------------------------------------|
//! | `bzip`   | bzip2 (compression) | run-length + move-to-front coding              |
//! | `crafty` | chess               | bitboard attack generation over random boards  |
//! | `eon`    | ray tracer (C++)    | floating-point ray–sphere intersection         |
//! | `gap`    | group theory        | multi-limb (bignum) modular arithmetic         |
//! | `gcc`    | compiler            | expression tokenizer + stack evaluator         |
//! | `gzip`   | LZ77 compression    | greedy hash-chain string matching              |
//! | `mcf`    | network simplex     | Bellman–Ford relaxation over a sparse graph    |
//! | `parser` | link grammar        | hash-table dictionary with chained lookups     |
//! | `perl`   | interpreter         | bytecode VM with indirect-threaded dispatch    |
//! | `twolf`  | place & route       | simulated-annealing cost evaluation            |
//! | `vortex` | object database     | binary-search-tree object store                |
//! | `vpr`    | FPGA place & route  | BFS maze routing on a grid                     |
//!
//! Every [`Workload`] carries a host-side Rust reference implementation of
//! the same computation; [`Workload::verify`] runs the kernel under the
//! functional emulator and checks the architectural result against the
//! reference, so the timing simulator can assert that *no scheduling or
//! register-file scheme ever changes program semantics*.
//!
//! # Example
//!
//! ```
//! use hpa_workloads::{all_workloads, Scale};
//!
//! let workloads = all_workloads(Scale::Tiny);
//! assert_eq!(workloads.len(), 12);
//! for w in &workloads {
//!     w.verify().expect("kernel self-check");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod rng;

pub use rng::SplitMix64;

use hpa_asm::Program;
use hpa_emu::{Emulator, RunOutcome};
use hpa_isa::Reg;
use std::fmt;

/// The register that every kernel leaves its final checksum in.
pub const CHECKSUM_REG: Reg = Reg::R10;

/// Base address of kernel data segments (text occupies low addresses).
pub const DATA_BASE: u64 = 0x1_0000;

/// How large a run a kernel should produce. The paper simulates billions of
/// instructions per benchmark; a from-scratch cycle simulator targets
/// millions, which is enough for the operand statistics to converge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scale {
    /// A few tens of thousands of dynamic instructions — for unit tests.
    Tiny,
    /// Roughly half a million to a million dynamic instructions — the
    /// default for the experiment harness.
    Default,
    /// Several million dynamic instructions — for convergence checks.
    Large,
    /// Tens of millions of dynamic instructions — long enough that full
    /// detailed simulation hurts, built for the sampled (SMARTS-style)
    /// mode to show its speedup.
    Long,
}

impl Scale {
    /// Every scale, smallest first.
    pub const ALL: [Scale; 4] = [Scale::Tiny, Scale::Default, Scale::Large, Scale::Long];

    /// A kernel-specific iteration multiplier: 1 for [`Scale::Tiny`],
    /// `default_factor` for [`Scale::Default`], 8x that for
    /// [`Scale::Large`] and 32x for [`Scale::Long`].
    #[must_use]
    pub fn factor(self, default_factor: u64) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Default => default_factor,
            Scale::Large => default_factor * 8,
            Scale::Long => default_factor * 32,
        }
    }

    /// The stable CLI/wire key (`--scale <key>`).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Default => "default",
            Scale::Large => "large",
            Scale::Long => "long",
        }
    }

    /// Parses a key produced by [`Scale::key`].
    #[must_use]
    pub fn from_key(key: &str) -> Option<Scale> {
        Scale::ALL.into_iter().find(|s| s.key() == key)
    }
}

/// Error returned by [`Workload::verify`].
#[derive(Clone, Debug)]
pub enum VerifyError {
    /// The kernel did not reach `halt` within the instruction budget.
    DidNotHalt {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// The kernel halted with the wrong checksum.
    ChecksumMismatch {
        /// What the emulator computed.
        actual: u64,
        /// What the Rust reference implementation computed.
        expected: u64,
    },
    /// The emulator raised an error (PC out of range — a kernel bug).
    Emu(hpa_emu::EmuError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DidNotHalt { budget } => {
                write!(f, "kernel did not halt within {budget} instructions")
            }
            VerifyError::ChecksumMismatch { actual, expected } => {
                write!(f, "checksum mismatch: got {actual:#x}, expected {expected:#x}")
            }
            VerifyError::Emu(e) => write!(f, "emulator error: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// One benchmark kernel: program, expected result and metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name matching the SPEC benchmark it stands in for.
    pub name: &'static str,
    /// One-line description of the kernel.
    pub description: &'static str,
    /// The assembled program (text + initial data image).
    pub program: Program,
    /// The checksum the kernel must leave in [`CHECKSUM_REG`], computed by
    /// the host-side Rust reference implementation.
    pub expected_checksum: u64,
    /// A generous instruction budget within which the kernel must halt.
    pub budget: u64,
}

impl Workload {
    /// Runs the kernel under the functional emulator and checks the result
    /// against the reference implementation.
    ///
    /// # Errors
    ///
    /// See [`VerifyError`].
    pub fn verify(&self) -> Result<u64, VerifyError> {
        let mut emu = Emulator::new(&self.program);
        match emu.run(self.budget).map_err(VerifyError::Emu)? {
            RunOutcome::Halted { executed } => {
                let actual = emu.reg(CHECKSUM_REG);
                if actual == self.expected_checksum {
                    Ok(executed)
                } else {
                    Err(VerifyError::ChecksumMismatch { actual, expected: self.expected_checksum })
                }
            }
            RunOutcome::BudgetExhausted { .. } => {
                Err(VerifyError::DidNotHalt { budget: self.budget })
            }
        }
    }
}

/// Builds one workload by name.
///
/// Valid names are the twelve SPEC CINT2000 benchmark names listed in the
/// [crate docs](crate) plus the real-binary RISC-V workloads in
/// [`RISCV_WORKLOAD_NAMES`]; returns `None` otherwise.
#[must_use]
pub fn workload(name: &str, scale: Scale) -> Option<Workload> {
    if name.starts_with("rv-") {
        return riscv_workload(name);
    }
    Some(match name {
        "bzip" => kernels::bzip::build(scale),
        "crafty" => kernels::crafty::build(scale),
        "eon" => kernels::eon::build(scale),
        "gap" => kernels::gap::build(scale),
        "gcc" => kernels::gcc::build(scale),
        "gzip" => kernels::gzip::build(scale),
        "mcf" => kernels::mcf::build(scale),
        "parser" => kernels::parser::build(scale),
        "perl" => kernels::perl::build(scale),
        "twolf" => kernels::twolf::build(scale),
        "vortex" => kernels::vortex::build(scale),
        "vpr" => kernels::vpr::build(scale),
        _ => return None,
    })
}

/// The names of all twelve workloads, in the paper's (alphabetical) order.
pub const WORKLOAD_NAMES: [&str; 12] = [
    "bzip", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf", "vortex",
    "vpr",
];

/// Workloads backed by real compiled RISC-V guest binaries, translated by
/// the `hpa-rv` frontend from the checked-in fixture ELFs. These are kept
/// out of [`WORKLOAD_NAMES`] (and therefore out of the paper-figure
/// experiment sweeps) on purpose: they validate the real-binary pipeline,
/// not the SPEC stand-in set.
pub const RISCV_WORKLOAD_NAMES: [&str; 3] = hpa_rv::fixtures::FIXTURE_NAMES;

/// Builds a real-binary workload from a checked-in RISC-V fixture ELF.
/// Real binaries are fixed programs, so `Scale` does not apply; every
/// scale yields the identical translated program.
fn riscv_workload(name: &str) -> Option<Workload> {
    let f = hpa_rv::fixtures::by_name(name)?;
    let image = hpa_rv::load_elf(f.checked_in).expect("checked-in fixture is a valid RISC-V ELF");
    let program = hpa_rv::translate(&image).expect("checked-in fixture translates");
    Some(Workload {
        name: f.name,
        description: f.description,
        program,
        expected_checksum: f.expected_checksum,
        budget: f.budget,
    })
}

/// Builds all twelve workloads at the given scale.
#[must_use]
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    WORKLOAD_NAMES.iter().map(|n| workload(n, scale).expect("known name")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unknown_names_fail() {
        for name in WORKLOAD_NAMES {
            assert!(workload(name, Scale::Tiny).is_some(), "{name}");
        }
        assert!(workload("specrand", Scale::Tiny).is_none());
        assert!(workload("rv-nonesuch", Scale::Tiny).is_none());
    }

    #[test]
    fn riscv_workloads_resolve_and_verify() {
        for name in RISCV_WORKLOAD_NAMES {
            let w = workload(name, Scale::Tiny).expect("riscv name resolves");
            assert_eq!(w.name, name);
            w.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
            // Real binaries are scale-invariant: same program at any scale.
            let large = workload(name, Scale::Large).expect("riscv name resolves");
            assert_eq!(w.program.insts(), large.program.insts());
        }
    }

    #[test]
    fn scale_factors() {
        assert_eq!(Scale::Tiny.factor(10), 1);
        assert_eq!(Scale::Default.factor(10), 10);
        assert_eq!(Scale::Large.factor(10), 80);
        assert_eq!(Scale::Long.factor(10), 320);
    }

    #[test]
    fn scale_keys_round_trip() {
        for s in Scale::ALL {
            assert_eq!(Scale::from_key(s.key()), Some(s));
        }
        assert_eq!(Scale::from_key("huge"), None);
    }
}
