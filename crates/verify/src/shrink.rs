//! Delta-debugging reduction of failing generated programs.

use crate::generate::GenProgram;

/// Minimizes `gen` with respect to `fails` (which must return `true` for
/// `gen` itself): repeatedly deletes body chunks ddmin-style (halves, then
/// quarters, down to single instructions), reduces the loop count, and
/// zeroes register seeds, keeping each change only if the program still
/// fails. Deletion subsets always terminate by construction (forward-only
/// clamped skips), so `fails` never has to worry about hangs.
#[must_use]
pub fn shrink(gen: &GenProgram, fails: impl Fn(&GenProgram) -> bool) -> GenProgram {
    let mut best = gen.clone();

    // Fewer loop iterations first: cheaper re-runs for everything below.
    for iters in 1..best.iters {
        let candidate = GenProgram { iters, ..best.clone() };
        if fails(&candidate) {
            best = candidate;
            break;
        }
    }

    // ddmin over the body: try deleting chunks, refining the granularity
    // whenever a whole pass makes no progress.
    let mut chunk = (best.body.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.body.len() {
            let end = (start + chunk).min(best.body.len());
            let mut candidate = best.clone();
            candidate.body.drain(start..end);
            if fails(&candidate) {
                best = candidate;
                progressed = true;
                // Same `start` now addresses the next chunk.
            } else {
                start = end;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }

    // Zero the register seeds where the failure doesn't depend on them.
    for k in 0..best.int_seeds.len() {
        if best.int_seeds[k] == 0 {
            continue;
        }
        let mut candidate = best.clone();
        candidate.int_seeds[k] = 0;
        if fails(&candidate) {
            best = candidate;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GenInst;
    use hpa_core::isa::MemWidth;
    use hpa_core::workloads::SplitMix64;

    #[test]
    fn shrinks_to_the_guilty_instruction() {
        let mut rng = SplitMix64::new(99);
        let gen = GenProgram::random(&mut rng);
        // Synthetic failure predicate: "fails" iff the body still contains
        // a quad store. The shrinker should strip everything else.
        let guilty = |g: &GenProgram| {
            g.body.iter().any(|i| matches!(i, GenInst::Store { width: MemWidth::Quad, .. }))
        };
        if !guilty(&gen) {
            return; // this seed drew no quad store; nothing to shrink
        }
        let small = shrink(&gen, guilty);
        assert!(guilty(&small));
        assert_eq!(small.body.len(), 1, "exactly the guilty instruction survives");
        assert_eq!(small.iters, 1);
        assert_eq!(small.int_seeds, [0; 4]);
    }

    #[test]
    fn never_returns_a_passing_program() {
        let mut rng = SplitMix64::new(5);
        let gen = GenProgram::random(&mut rng);
        let fails = |g: &GenProgram| g.body.len() >= 3;
        let small = shrink(&gen, fails);
        assert!(fails(&small));
        assert_eq!(small.body.len(), 3);
    }
}
