//! The differential fuzzer: random programs × schemes, in lockstep.

use crate::corpus::write_reproducer;
use crate::generate::{ArchState, GenProgram};
use crate::oracle::{run_lockstep, run_lockstep_window};
use crate::shrink::shrink;
use crate::Divergence;
use hpa_core::asm::Program;
use hpa_core::emu::{Emulator, RunOutcome};
use hpa_core::sim::{RecoveryKind, SampleUnits, SampledRunner, SimConfig};
use hpa_core::workloads::SplitMix64;
use hpa_core::{default_jobs, parallel_map, MachineWidth, Scheme};
use std::path::PathBuf;

/// The schemes every fuzz iteration runs and cross-compares: the base
/// machine and the paper's three headline half-price configurations.
pub const FUZZ_SCHEMES: [Scheme; 4] =
    [Scheme::Base, Scheme::SeqWakeupPredictor, Scheme::SeqRegAccess, Scheme::Combined];

/// Per-iteration configuration variation, sampled alongside the program so
/// reduced-resource corners (selective recovery, tiny predictor tables)
/// are exercised too. The same variant applies to every scheme of the
/// iteration — variants must never change architecture.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Variant {
    /// Machine width (mostly 4-wide; 8-wide one iteration in eight).
    pub width: MachineWidth,
    /// Use selective (dependence-matrix) replay instead of non-selective.
    pub selective_recovery: bool,
    /// Shrink the last-arriving predictor to 64 entries.
    pub small_pc_table: bool,
}

impl Variant {
    fn random(rng: &mut SplitMix64) -> Variant {
        Variant {
            width: if rng.below(8) == 0 { MachineWidth::Eight } else { MachineWidth::Four },
            selective_recovery: rng.below(4) == 0,
            small_pc_table: rng.below(4) == 0,
        }
    }

    /// The simulator configuration for one scheme under this variant.
    #[must_use]
    pub fn configure(self, scheme: Scheme) -> SimConfig {
        let mut c = scheme.configure(self.width);
        if self.selective_recovery {
            c = c.with_recovery(RecoveryKind::Selective);
        }
        if self.small_pc_table {
            c = c.with_pc_table_entries(64);
        }
        c
    }
}

/// Fuzzer parameters.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of random programs to generate.
    pub iters: u64,
    /// Master seed; every `(seed, index)` pair is an independent stream.
    pub seed: u64,
    /// Worker threads for the program fan-out.
    pub jobs: usize,
    /// Where to write shrunk reproducers (`None` to skip writing).
    pub corpus_dir: Option<PathBuf>,
    /// Fuzz the tiered path instead of whole-program lockstep: snapshot
    /// mid-program, oracle-validate a from-snapshot detailed window per
    /// scheme, and replay the whole program through the sampled runner
    /// (see [`run_differential_sampled`]).
    pub sampled: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig { iters: 1000, seed: 42, jobs: default_jobs(), corpus_dir: None, sampled: false }
    }
}

/// One verified-divergent case, minimized and (optionally) persisted.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Iteration index that produced the failing program.
    pub index: u64,
    /// The scheme that diverged (the base scheme for cross-scheme
    /// mismatches detected against it).
    pub scheme: Scheme,
    /// The configuration variant in effect.
    pub variant: Variant,
    /// The divergence report for the *shrunk* program.
    pub divergence: Divergence,
    /// The shrunk generator program.
    pub program: GenProgram,
    /// Where the reproducer was written, if a corpus dir was given.
    pub reproducer: Option<PathBuf>,
}

/// What a fuzzing campaign did.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Programs generated.
    pub iters: u64,
    /// Individual `(program, scheme)` lockstep simulations executed.
    pub runs: u64,
    /// Divergences found (empty on a clean campaign).
    pub failures: Vec<FuzzFailure>,
}

/// Runs every fuzz scheme on `program` under `variant` in lockstep and
/// cross-compares the final architectural states against the base scheme.
///
/// # Errors
///
/// The first failing scheme with its [`Divergence`].
pub fn run_differential(program: &Program, variant: Variant) -> Result<(), (Scheme, Divergence)> {
    let mut base_state = None;
    for scheme in FUZZ_SCHEMES {
        let outcome = run_lockstep(program, variant.configure(scheme)).map_err(|d| (scheme, d))?;
        match &base_state {
            None => base_state = Some(outcome.state),
            Some(base) => {
                if let Some(reason) = outcome.state.first_difference(
                    base,
                    &format!("`{}`", scheme.key()),
                    &format!("`{}`", Scheme::Base.key()),
                ) {
                    return Err((
                        scheme,
                        Divergence {
                            seq: 0,
                            cycle: outcome.cycles,
                            reason: format!("cross-scheme architectural mismatch: {reason}"),
                            dump: String::new(),
                        },
                    ));
                }
            }
        }
    }
    Ok(())
}

/// The sampled-mode differential check: validates the tiered-simulation
/// machinery end to end on one generated program.
///
/// Per scheme, it (1) fast-forwards a functional emulator to the midpoint
/// of the dynamic stream, snapshots, and runs a from-snapshot detailed
/// window under the lockstep oracle ([`run_lockstep_window`] — the commit
/// stream must match independent functional replay reaching the same
/// region), cross-comparing the final states across schemes; and (2)
/// replays the whole program through [`SampledRunner`] with tiny units,
/// requiring its main emulator to land on exactly the reference
/// architectural state (sampling must never execute an instruction twice
/// or zero times).
///
/// # Errors
///
/// The first failing scheme with its [`Divergence`].
pub fn run_differential_sampled(
    program: &Program,
    variant: Variant,
) -> Result<(), (Scheme, Divergence)> {
    const BUDGET: u64 = 10_000_000;
    let fail = |reason: String| {
        (Scheme::Base, Divergence { seq: 0, cycle: 0, reason, dump: String::new() })
    };

    let mut reference = Emulator::new(program);
    match reference.run(BUDGET) {
        Ok(RunOutcome::Halted { .. }) => {}
        Ok(RunOutcome::BudgetExhausted { .. }) => {
            return Err(fail(format!("reference emulation did not halt within {BUDGET} steps")));
        }
        Err(e) => return Err(fail(format!("reference emulation faulted: {e}"))),
    }
    let total = reference.executed();
    let ref_state = ArchState::capture(&reference);

    // Snapshot at the midpoint of the dynamic stream.
    let mut emu = Emulator::new(program);
    emu.run(total / 2).map_err(|e| fail(format!("fast-forward faulted: {e}")))?;
    let snap = emu.snapshot();

    let units = SampleUnits::new(4, 12, 16).expect("static units are valid");
    let mut base_state = None;
    for scheme in FUZZ_SCHEMES {
        // Oracle-validated detailed window from the snapshot to the end.
        let outcome = run_lockstep_window(program, variant.configure(scheme), &snap)
            .map_err(|d| (scheme, d))?;
        match &base_state {
            None => base_state = Some(outcome.state),
            Some(base) => {
                if let Some(reason) = outcome.state.first_difference(
                    base,
                    &format!("`{}`", scheme.key()),
                    &format!("`{}`", Scheme::Base.key()),
                ) {
                    return Err((
                        scheme,
                        Divergence {
                            seq: 0,
                            cycle: outcome.cycles,
                            reason: format!(
                                "cross-scheme architectural mismatch (snapshot window): {reason}"
                            ),
                            dump: String::new(),
                        },
                    ));
                }
            }
        }
        // End-to-end sampled replay: architecture must be exact.
        let runner = SampledRunner::new(variant.configure(scheme), units).with_seed(total);
        let out = runner.run(program).map_err(|fault| {
            (
                scheme,
                Divergence {
                    seq: 0,
                    cycle: 0,
                    reason: format!("sampled runner fault: {fault}"),
                    dump: String::new(),
                },
            )
        })?;
        let sampled_state = ArchState::capture(&out.emulator);
        if let Some(reason) =
            sampled_state.first_difference(&ref_state, "sampled-mode emulator", "reference")
        {
            return Err((
                scheme,
                Divergence {
                    seq: 0,
                    cycle: 0,
                    reason: format!("sampled replay altered architecture: {reason}"),
                    dump: String::new(),
                },
            ));
        }
    }
    Ok(())
}

fn iteration_rng(seed: u64, index: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs a differential fuzzing campaign.
///
/// Iterations fan out across `jobs` threads; each failure is then shrunk
/// (instruction deletion, loop and config simplification) serially and
/// written to the corpus directory if one was configured. At most four
/// failures are minimized per campaign — one reproducer is normally all a
/// debugging session needs, and shrinking re-simulates heavily.
#[must_use]
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let differential: Differential =
        if cfg.sampled { run_differential_sampled } else { run_differential };
    let indices: Vec<u64> = (0..cfg.iters).collect();
    let raw = parallel_map(&indices, cfg.jobs, |_, &index| {
        let mut rng = iteration_rng(cfg.seed, index);
        let gen = GenProgram::random(&mut rng);
        let variant = Variant::random(&mut rng);
        differential(&gen.lower(), variant)
            .err()
            .map(|(scheme, divergence)| (index, gen, variant, scheme, divergence))
    });
    let runs = cfg.iters * FUZZ_SCHEMES.len() as u64;

    const MAX_SHRUNK: usize = 4;
    let mut failures = Vec::new();
    for (index, gen, variant, scheme, divergence) in raw.into_iter().flatten() {
        if failures.len() >= MAX_SHRUNK {
            break;
        }
        let (program, variant, divergence) =
            minimize(differential, &gen, variant, (scheme, divergence));
        let reproducer = cfg.corpus_dir.as_ref().and_then(|dir| {
            write_reproducer(
                dir,
                &format!("fuzz-{:016x}-{index}", cfg.seed),
                &program.lower(),
                scheme,
                variant,
            )
            .ok()
        });
        failures.push(FuzzFailure { index, scheme, variant, divergence, program, reproducer });
    }
    FuzzReport { iters: cfg.iters, runs, failures }
}

/// The differential check one fuzz campaign applies per iteration
/// (whole-program lockstep, or the tiered/sampled variant).
type Differential = fn(&Program, Variant) -> Result<(), (Scheme, Divergence)>;

/// Shrinks a failing case: body deletion (via [`shrink`]), then config
/// simplification (drop the variant tweaks, fall back to 4-wide) — each
/// accepted only while the differential check still fails.
fn minimize(
    differential: Differential,
    gen: &GenProgram,
    variant: Variant,
    seed_failure: (Scheme, Divergence),
) -> (GenProgram, Variant, Divergence) {
    let still_fails = |g: &GenProgram, v: Variant| differential(&g.lower(), v).err();
    let mut best = shrink(gen, |g| still_fails(g, variant).is_some());

    let mut v = variant;
    for candidate in [
        Variant { selective_recovery: false, ..v },
        Variant { small_pc_table: false, ..v },
        Variant { width: MachineWidth::Four, ..v },
    ] {
        if candidate != v && still_fails(&best, candidate).is_some() {
            v = candidate;
        }
    }
    // Re-derive the divergence for the final (program, variant) pair; if
    // simplification somehow made it pass, keep the original report.
    match still_fails(&best, v) {
        Some((_, d)) => (best, v, d),
        None => {
            best = gen.clone();
            (best, variant, seed_failure.1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline guarantee: a seeded campaign over all four schemes
    /// finds no divergence. (The full 1000-iteration run is the CLI smoke
    /// gate; this keeps the unit suite quick.)
    #[test]
    fn seeded_campaign_is_clean() {
        let report = fuzz(&FuzzConfig { iters: 60, seed: 42, ..FuzzConfig::default() });
        assert_eq!(report.runs, 240);
        assert!(
            report.failures.is_empty(),
            "divergences found: {:?}",
            report.failures.iter().map(|f| f.divergence.reason.clone()).collect::<Vec<_>>()
        );
    }

    /// The tiered variant of the same guarantee: snapshot windows and the
    /// sampled runner agree with the reference on every scheme.
    #[test]
    fn seeded_sampled_campaign_is_clean() {
        let report =
            fuzz(&FuzzConfig { iters: 20, seed: 42, sampled: true, ..FuzzConfig::default() });
        assert_eq!(report.runs, 80);
        assert!(
            report.failures.is_empty(),
            "divergences found: {:?}",
            report.failures.iter().map(|f| f.divergence.reason.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn iteration_streams_are_independent_of_iter_count() {
        // Iteration k draws the same program whether the campaign runs 10
        // or 1000 iterations — reproducers stay valid across -iters.
        let mut a = iteration_rng(42, 7);
        let mut b = iteration_rng(42, 7);
        assert_eq!(GenProgram::random(&mut a), GenProgram::random(&mut b));
    }
}
