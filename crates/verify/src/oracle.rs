//! The lockstep co-simulation oracle.

use crate::generate::ArchState;
use crate::Divergence;
use hpa_core::asm::Program;
use hpa_core::emu::{Emulator, Snapshot};
use hpa_core::isa::{Inst, MemWidth};
use hpa_core::sim::{BranchWarmth, CommitHook, CommitRecord, SimConfig, SimFault, Simulator};

/// Budget for the reference emulator pass (and an upper bound on shadow
/// steps); generated programs are tiny, corpus files must stay small.
const REFERENCE_BUDGET: u64 = 10_000_000;

/// A [`CommitHook`] that replays each committed instruction on a shadow
/// emulator and compares every architecturally visible effect.
///
/// The shadow is stepped once per commit (skipping decode-eliminated nops,
/// which the front end never inserts into the window), so the comparison
/// is positional: commit *n* must be the *n*-th dynamic instruction.
#[derive(Clone, Debug)]
pub struct LockstepOracle {
    shadow: Emulator,
}

impl LockstepOracle {
    /// Builds the oracle with a fresh shadow emulator for `program`.
    #[must_use]
    pub fn new(program: &Program) -> LockstepOracle {
        LockstepOracle { shadow: Emulator::new(program) }
    }

    /// Builds the oracle around an already-positioned shadow — the
    /// mid-program variant used to validate detailed windows started from
    /// a snapshot. The shadow must stand exactly at the first instruction
    /// the window will commit.
    #[must_use]
    pub fn with_shadow(shadow: Emulator) -> LockstepOracle {
        LockstepOracle { shadow }
    }

    /// Reads the shadow's memory image of a completed store, mirroring the
    /// capture the simulator performs at fetch.
    fn shadow_store_image(&self, inst: Inst, addr: u64) -> Option<u64> {
        let mem = self.shadow.memory();
        match inst {
            Inst::Store { width, .. } => Some(match width {
                MemWidth::Byte | MemWidth::SByte => u64::from(mem.read_u8(addr)),
                MemWidth::Half | MemWidth::SHalf => u64::from(mem.read_u16(addr)),
                MemWidth::Long | MemWidth::ULong => u64::from(mem.read_u32(addr)),
                MemWidth::Quad => mem.read_u64(addr),
            }),
            Inst::FStore { .. } => Some(mem.read_u64(addr)),
            _ => None,
        }
    }
}

impl CommitHook for LockstepOracle {
    fn on_commit(&mut self, rec: &CommitRecord) -> Result<(), String> {
        let step = loop {
            match self.shadow.step() {
                Ok(Some(s)) if s.inst.is_nop() => continue,
                Ok(Some(s)) => break s,
                Ok(None) => {
                    return Err(format!(
                        "shadow halted before commit seq {} (pc {:#x}) — the timing \
                         simulator retired more instructions than the program executes",
                        rec.seq, rec.pc
                    ));
                }
                Err(e) => return Err(format!("shadow emulator fault: {e}")),
            }
        };
        if step.pc != rec.pc {
            return Err(format!(
                "pc mismatch: committed {:#x}, shadow executed {:#x} — retire stream \
                 out of sync",
                rec.pc, step.pc
            ));
        }
        if step.inst != rec.inst {
            return Err(format!(
                "instruction mismatch at pc {:#x}: committed `{}`, shadow executed `{}`",
                rec.pc, rec.inst, step.inst
            ));
        }
        if step.next_pc != rec.next_pc || step.taken != rec.taken {
            return Err(format!(
                "control mismatch at pc {:#x}: committed next_pc {:#x} taken={}, \
                 shadow next_pc {:#x} taken={}",
                rec.pc, rec.next_pc, rec.taken, step.next_pc, step.taken
            ));
        }
        if step.mem_addr != rec.mem_addr {
            return Err(format!(
                "memory address mismatch at pc {:#x}: committed {:?}, shadow {:?}",
                rec.pc, rec.mem_addr, step.mem_addr
            ));
        }
        if let Some(dest) = rec.dest {
            let shadow_value = self.shadow.arch_value(dest);
            if rec.dest_value != Some(shadow_value) {
                return Err(format!(
                    "destination mismatch at pc {:#x}: {dest} committed {:?}, shadow \
                     holds {shadow_value:#x}",
                    rec.pc, rec.dest_value
                ));
            }
        }
        if let (Some(addr), Some(data)) = (rec.mem_addr, rec.mem_data) {
            if let Some(shadow_data) = self.shadow_store_image(rec.inst, addr) {
                if data != shadow_data {
                    return Err(format!(
                        "store data mismatch at pc {:#x} addr {addr:#x}: committed \
                         {data:#x}, shadow memory holds {shadow_data:#x}",
                        rec.pc
                    ));
                }
            }
        }
        Ok(())
    }

    fn box_clone(&self) -> Box<dyn CommitHook> {
        Box::new(self.clone())
    }
}

/// What a clean lockstep run produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LockstepOutcome {
    /// Cycles the timing simulation took.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Final architectural state (used for cross-scheme comparison).
    pub state: ArchState,
}

/// Runs `program` under `config` with the lockstep oracle attached and the
/// pipeline invariant sweep enabled, then cross-checks the final
/// architectural state against an independent reference emulation.
///
/// # Errors
///
/// The first [`Divergence`]: an oracle mismatch, an emulator or pipeline
/// fault, a scheduler deadlock, or a final-state mismatch.
pub fn run_lockstep(program: &Program, config: SimConfig) -> Result<LockstepOutcome, Divergence> {
    run_lockstep_inner(program, config, None)
}

/// [`run_lockstep`] with a planted scheduler bug, for mutation-testing
/// that the oracle/invariant net actually catches one.
#[doc(hidden)]
pub fn run_lockstep_injected(
    program: &Program,
    config: SimConfig,
    injection: hpa_core::sim::FaultInjection,
) -> Result<LockstepOutcome, Divergence> {
    run_lockstep_inner(program, config, Some(injection))
}

fn run_lockstep_inner(
    program: &Program,
    config: SimConfig,
    injection: Option<hpa_core::sim::FaultInjection>,
) -> Result<LockstepOutcome, Divergence> {
    let mut sim = Simulator::new(program, config);
    sim.set_commit_hook(Box::new(LockstepOracle::new(program)));
    sim.set_strict_invariants(true);
    if let Some(inj) = injection {
        sim.inject_fault(inj);
    }
    sim.try_run().map_err(fault_to_divergence)?;

    // Final-state cross-check: an independent emulation of the whole
    // program must agree with the simulator's architectural state. This
    // catches defects the per-commit oracle structurally cannot (e.g. the
    // simulator finishing early without committing the tail).
    let mut reference = Emulator::new(program);
    match reference.run(REFERENCE_BUDGET) {
        Ok(hpa_core::emu::RunOutcome::Halted { .. }) => {}
        Ok(hpa_core::emu::RunOutcome::BudgetExhausted { .. }) => {
            return Err(Divergence {
                seq: 0,
                cycle: sim.cycle(),
                reason: format!("reference emulation did not halt within {REFERENCE_BUDGET} steps"),
                dump: String::new(),
            });
        }
        Err(e) => {
            return Err(Divergence {
                seq: 0,
                cycle: sim.cycle(),
                reason: format!("reference emulation faulted: {e}"),
                dump: String::new(),
            });
        }
    }
    let sim_state = ArchState::capture(sim.emulator());
    let ref_state = ArchState::capture(&reference);
    if let Some(reason) = sim_state.first_difference(&ref_state, "simulator", "reference") {
        return Err(Divergence {
            seq: 0,
            cycle: sim.cycle(),
            reason: format!("final architectural state mismatch: {reason}"),
            dump: sim.dump_state(),
        });
    }
    Ok(LockstepOutcome {
        cycles: sim.stats().cycles,
        committed: sim.stats().committed,
        state: sim_state,
    })
}

fn sim_fault_cycle(fault: &SimFault) -> u64 {
    match fault {
        SimFault::Emu { cycle, .. }
        | SimFault::Deadlock { cycle, .. }
        | SimFault::Invariant { cycle, .. }
        | SimFault::Hook { cycle, .. } => *cycle,
    }
}

fn fault_to_divergence(fault: SimFault) -> Divergence {
    match fault {
        SimFault::Hook { seq, cycle, reason, dump } => Divergence { seq, cycle, reason, dump },
        SimFault::Invariant { cycle, reason, dump } => Divergence {
            seq: 0,
            cycle,
            reason: format!("pipeline invariant violated: {reason}"),
            dump,
        },
        other @ (SimFault::Emu { .. } | SimFault::Deadlock { .. }) => Divergence {
            seq: 0,
            cycle: sim_fault_cycle(&other),
            reason: other.to_string(),
            dump: String::new(),
        },
    }
}

/// Validates snapshot restore *exactly*: a detailed window started from
/// `snap` must produce the same commit stream as full detailed simulation
/// reaching the same region.
///
/// The simulator is execution-driven along the correct path, so its
/// commit stream equals the functional instruction stream; the oracle's
/// shadow is therefore advanced to the snapshot region *functionally and
/// independently* — `snap.executed()` fresh steps from program start,
/// never through the snapshot itself. Any architectural state the
/// snapshot failed to carry (a register, a dirty page, the halt flag)
/// surfaces as a per-commit divergence inside the window, and a final
/// cross-check compares the window's end state against an equally
/// advanced independent reference.
///
/// `config` bounds the window as usual (`with_warmup`/`with_max_insts`
/// count from the window start); an unbounded config validates the whole
/// remainder of the program.
///
/// # Errors
///
/// The first [`Divergence`], as [`run_lockstep`].
pub fn run_lockstep_window(
    program: &Program,
    config: SimConfig,
    snap: &Snapshot,
) -> Result<LockstepOutcome, Divergence> {
    // Independent functional replay up to the snapshot point.
    let mut shadow = Emulator::new(program);
    for _ in 0..snap.executed() {
        match shadow.step() {
            Ok(Some(_)) => {}
            Ok(None) => {
                return Err(Divergence {
                    seq: 0,
                    cycle: 0,
                    reason: format!(
                        "shadow halted after {} steps, before the snapshot point ({} executed) \
                         — the snapshot's executed count does not match the program",
                        shadow.executed(),
                        snap.executed()
                    ),
                    dump: String::new(),
                });
            }
            Err(e) => {
                return Err(Divergence {
                    seq: 0,
                    cycle: 0,
                    reason: format!("shadow emulation faulted before the snapshot point: {e}"),
                    dump: String::new(),
                });
            }
        }
    }
    if shadow.pc() != snap.pc() {
        return Err(Divergence {
            seq: 0,
            cycle: 0,
            reason: format!(
                "snapshot pc {:#x} disagrees with functional replay pc {:#x} at the same \
                 instruction count",
                snap.pc(),
                shadow.pc()
            ),
            dump: String::new(),
        });
    }

    let mut sim = Simulator::from_snapshot(program, config, snap, BranchWarmth::cold());
    sim.set_commit_hook(Box::new(LockstepOracle::with_shadow(shadow)));
    sim.set_strict_invariants(true);
    sim.try_run().map_err(fault_to_divergence)?;

    // Final-state cross-check: a fresh emulation advanced by the same
    // total instruction count must agree with the window's fetch-front
    // emulator (restored state + window execution ≡ straight-line
    // functional execution).
    let total = sim.emulator().executed();
    let mut reference = Emulator::new(program);
    while reference.executed() < total {
        match reference.step() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => {
                return Err(Divergence {
                    seq: 0,
                    cycle: sim.cycle(),
                    reason: format!("reference emulation faulted: {e}"),
                    dump: String::new(),
                });
            }
        }
    }
    let sim_state = ArchState::capture(sim.emulator());
    let ref_state = ArchState::capture(&reference);
    if let Some(reason) = sim_state.first_difference(&ref_state, "window", "reference") {
        return Err(Divergence {
            seq: 0,
            cycle: sim.cycle(),
            reason: format!("window final state mismatch: {reason}"),
            dump: sim.dump_state(),
        });
    }
    Ok(LockstepOutcome {
        cycles: sim.stats().cycles,
        committed: sim.stats().committed,
        state: sim_state,
    })
}
