//! # hpa-verify — lockstep co-simulation oracle and differential fuzzer
//!
//! The timing simulator is execution-driven: architectural values always
//! come from the functional emulator, so a timing bug cannot corrupt a
//! register — but it *can* drop, duplicate or reorder the retire stream,
//! deadlock the scheduler, or silently violate a pipeline invariant. This
//! crate closes that gap with three layers:
//!
//! * **lockstep oracle** ([`run_lockstep`]): a [`LockstepOracle`] attached
//!   to the simulator's commit hook replays every committed instruction on
//!   an independent shadow emulator and compares PC, decoded instruction,
//!   next PC, taken direction, memory address/data and destination value,
//!   reporting the *first* divergence with its sequence number, cycle and
//!   a pipeline-state dump;
//! * **differential fuzzer** ([`fuzz`]): a seeded random-program generator
//!   ([`GenProgram`]) produces short loops with dependency chains, aliasing
//!   loads/stores and forward branches, then runs each program under the
//!   base machine and the half-price schemes in lockstep and asserts all
//!   schemes produce identical architectural outcomes;
//! * **shrinker** ([`shrink`]): failing `(program, config)` pairs are
//!   minimized by instruction deletion and config simplification, and
//!   written to `tests/corpus/` as replayable `.s` reproducers
//!   ([`corpus`]).
//!
//! The oracle is deliberately redundant with the emulator the simulator
//! already carries: the shadow advances *per commit*, so any retire-stream
//! defect desynchronizes the two machines at the exact faulting sequence
//! number instead of surfacing (or not) in a final checksum.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod fuzz;
mod generate;
mod oracle;
mod shrink;

pub use corpus::{load_case, replay_dir, write_reproducer, CorpusCase, ReplayReport};
pub use fuzz::{
    fuzz, run_differential, run_differential_sampled, FuzzConfig, FuzzFailure, FuzzReport, Variant,
    FUZZ_SCHEMES,
};
pub use generate::{ArchState, GenInst, GenProgram, ARENA0, ARENA1};
#[doc(hidden)]
pub use oracle::run_lockstep_injected;
pub use oracle::{run_lockstep, run_lockstep_window, LockstepOracle, LockstepOutcome};
pub use shrink::shrink;

/// A verification failure: the first point where the timing simulator's
/// retire stream (or final state) departs from the shadow emulator, or
/// where two schemes disagree architecturally.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Sequence number of the first diverging commit (0 when the failure
    /// is not tied to one commit, e.g. a deadlock or final-state check).
    pub seq: u64,
    /// Cycle at which the divergence was detected.
    pub cycle: u64,
    /// Human-readable description of the mismatch.
    pub reason: String,
    /// Pipeline-state dump captured at the point of divergence.
    pub dump: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "divergence at seq {} (cycle {}): {}", self.seq, self.cycle, self.reason)?;
        write!(f, "{}", self.dump)
    }
}

impl std::error::Error for Divergence {}
