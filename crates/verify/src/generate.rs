//! Seeded random-program generation for differential fuzzing.
//!
//! Programs are a counted outer loop over a small straight-line body with
//! forward skips: every control edge is either the bounded back-edge or a
//! forward branch clamped inside the body, so any generated program — and
//! any *deletion subset* of one, which the shrinker relies on — terminates.

use hpa_core::asm::{Asm, Program};
use hpa_core::emu::Emulator;
use hpa_core::isa::{AluOp, ArchReg, BranchCond, FReg, FpBinOp, Inst, MemWidth, Reg, RegOrLit};
use hpa_core::workloads::SplitMix64;

/// Base address of the first store/load arena (`r1` at entry).
pub const ARENA0: u64 = 0x1_0000;
/// Base address of the second arena (`r2` at entry), 128 bytes above
/// [`ARENA0`] so displacements of the two pointers alias and partially
/// overlap.
pub const ARENA1: u64 = ARENA0 + 0x80;

/// Integer scratch registers the generator reads and writes.
const INT_POOL: [Reg; 13] = [
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

/// Floating-point scratch registers.
const FP_POOL: [FReg; 6] = [FReg::F1, FReg::F2, FReg::F3, FReg::F4, FReg::F5, FReg::F6];

/// ALU operations the generator draws from (all of them; division and
/// remainder by zero are architecturally defined, so nothing is excluded).
const ALU_OPS: [AluOp; 34] = AluOp::ALL;

/// One generated body instruction, kept abstract so the shrinker can
/// delete entries without re-resolving branch targets (forward skips are
/// clamped to the body length at lowering).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum GenInst {
    /// Register-register ALU operation.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination (index into [`INT_POOL`]).
        rc: u8,
        /// Left source.
        ra: u8,
        /// Right source.
        rb: u8,
    },
    /// Register-literal ALU operation.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination.
        rc: u8,
        /// Source.
        ra: u8,
        /// Immediate literal.
        imm: i16,
    },
    /// Integer load from one of the arenas.
    Load {
        /// Access width.
        width: MemWidth,
        /// Destination.
        rt: u8,
        /// Which arena pointer (0 = `r1`, 1 = `r2`).
        arena: u8,
        /// Byte displacement (±128, deliberately overlapping between the
        /// arenas and across widths).
        disp: i16,
    },
    /// Integer store to one of the arenas.
    Store {
        /// Access width.
        width: MemWidth,
        /// Data source.
        rt: u8,
        /// Which arena pointer.
        arena: u8,
        /// Byte displacement.
        disp: i16,
    },
    /// Floating-point load (8 bytes).
    FLoad {
        /// Destination (index into [`FP_POOL`]).
        ft: u8,
        /// Which arena pointer.
        arena: u8,
        /// Byte displacement.
        disp: i16,
    },
    /// Floating-point store (8 bytes).
    FStore {
        /// Data source.
        ft: u8,
        /// Which arena pointer.
        arena: u8,
        /// Byte displacement.
        disp: i16,
    },
    /// Move an integer into the FP file.
    Itof {
        /// FP destination.
        fc: u8,
        /// Integer source.
        ra: u8,
    },
    /// Truncate an FP value into the integer file.
    Ftoi {
        /// Integer destination.
        rc: u8,
        /// FP source.
        fa: u8,
    },
    /// FP arithmetic.
    Fp {
        /// Operation.
        op: FpBinOp,
        /// Destination.
        fc: u8,
        /// Left source.
        fa: u8,
        /// Right source.
        fb: u8,
    },
    /// Forward conditional branch skipping up to `dist` body instructions
    /// (clamped to the body end at lowering — never skips the loop
    /// counter).
    SkipIf {
        /// Branch condition, tested against zero.
        cond: BranchCond,
        /// Tested register.
        ra: u8,
        /// Instructions to skip (1..=6 before clamping).
        dist: u8,
    },
    /// Bounded drift of an arena pointer (keeps aliasing interesting
    /// without escaping the seeded region).
    ArenaBump {
        /// Which arena pointer.
        arena: u8,
        /// Signed byte delta (±16).
        delta: i16,
    },
}

/// A generated program: a counted loop over `body`.
#[derive(Clone, PartialEq, Debug)]
pub struct GenProgram {
    /// Outer loop iterations (1..=4).
    pub iters: u8,
    /// Initial values for the integer scratch registers.
    pub int_seeds: [i16; 4],
    /// The loop body.
    pub body: Vec<GenInst>,
}

impl GenProgram {
    /// Draws a random program.
    #[must_use]
    pub fn random(rng: &mut SplitMix64) -> GenProgram {
        let iters = 1 + rng.below(4) as u8;
        let len = 8 + rng.below(33) as usize;
        let mut int_seeds = [0i16; 4];
        for s in &mut int_seeds {
            *s = rng.next_u64() as i16;
        }
        let body = (0..len).map(|_| GenInst::random(rng)).collect();
        GenProgram { iters, int_seeds, body }
    }

    /// Lowers to an executable [`Program`].
    ///
    /// Layout: arena pointers and scratch seeds, the counted loop with
    /// per-site forward-skip labels, `halt`. The arenas are pre-seeded
    /// with deterministic nonzero data so loads feed real values into the
    /// dependency chains.
    #[must_use]
    pub fn lower(&self) -> Program {
        let mut a = Asm::new();
        let words: Vec<u64> =
            (0..64u64).map(|i| 0x0101_0101_0101_0101u64.wrapping_mul(i + 1)).collect();
        a.data_u64s(ARENA0, &words);
        a.li(Reg::R1, ARENA0 as i64);
        a.li(Reg::R2, ARENA1 as i64);
        for (k, &seed) in self.int_seeds.iter().enumerate() {
            a.li(INT_POOL[k], i64::from(seed));
        }
        // Remaining scratch registers start at zero (emulator reset
        // state); FP scratch is seeded from the integers.
        a.raw(Inst::Itof { ra: INT_POOL[0], fc: FP_POOL[0] });
        a.raw(Inst::Itof { ra: INT_POOL[1], fc: FP_POOL[1] });
        a.li(Reg::R20, i64::from(self.iters));
        a.label("loop");
        for (idx, inst) in self.body.iter().enumerate() {
            a.label(format!("b{idx}"));
            inst.lower(&mut a, idx, self.body.len());
        }
        a.label(format!("b{}", self.body.len()));
        a.sub(Reg::R20, Reg::R20, 1i16);
        a.bgt(Reg::R20, "loop");
        a.halt();
        a.assemble().expect("generated programs always assemble")
    }
}

impl GenInst {
    /// Draws one random body instruction.
    #[must_use]
    pub fn random(rng: &mut SplitMix64) -> GenInst {
        let ir = |rng: &mut SplitMix64| rng.below(INT_POOL.len() as u64) as u8;
        let fr = |rng: &mut SplitMix64| rng.below(FP_POOL.len() as u64) as u8;
        let arena = |rng: &mut SplitMix64| rng.below(2) as u8;
        let disp = |rng: &mut SplitMix64| (rng.below(257) as i16) - 128;
        let width = |rng: &mut SplitMix64| match rng.below(3) {
            0 => MemWidth::Byte,
            1 => MemWidth::Long,
            _ => MemWidth::Quad,
        };
        match rng.below(16) {
            0..=3 => GenInst::AluRR {
                op: ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize],
                rc: ir(rng),
                ra: ir(rng),
                rb: ir(rng),
            },
            4..=5 => GenInst::AluRI {
                // Only the ops with a literal-form encoding (legacy set plus
                // the W-form add/shifts); the rest are register-register only.
                op: {
                    let mut op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
                    while !op.has_lit_form() {
                        op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
                    }
                    op
                },
                rc: ir(rng),
                ra: ir(rng),
                imm: (rng.below(512) as i16) - 256,
            },
            6..=8 => {
                GenInst::Load { width: width(rng), rt: ir(rng), arena: arena(rng), disp: disp(rng) }
            }
            9..=11 => GenInst::Store {
                width: width(rng),
                rt: ir(rng),
                arena: arena(rng),
                disp: disp(rng),
            },
            12 => match rng.below(4) {
                0 => GenInst::FLoad { ft: fr(rng), arena: arena(rng), disp: disp(rng) },
                1 => GenInst::FStore { ft: fr(rng), arena: arena(rng), disp: disp(rng) },
                2 => GenInst::Itof { fc: fr(rng), ra: ir(rng) },
                _ => GenInst::Ftoi { rc: ir(rng), fa: fr(rng) },
            },
            13 => GenInst::Fp {
                op: FpBinOp::ALL[rng.below(FpBinOp::ALL.len() as u64) as usize],
                fc: fr(rng),
                fa: fr(rng),
                fb: fr(rng),
            },
            14 => GenInst::SkipIf {
                cond: BranchCond::ALL[rng.below(BranchCond::ALL.len() as u64) as usize],
                ra: ir(rng),
                dist: 1 + rng.below(6) as u8,
            },
            _ => GenInst::ArenaBump { arena: arena(rng), delta: (rng.below(33) as i16) - 16 },
        }
    }

    /// Emits the instruction at body position `idx` of a `len`-long body.
    fn lower(&self, a: &mut Asm, idx: usize, len: usize) {
        match *self {
            GenInst::AluRR { op, rc, ra, rb } => {
                a.raw(Inst::Op {
                    op,
                    ra: INT_POOL[ra as usize],
                    rb: RegOrLit::Reg(INT_POOL[rb as usize]),
                    rc: INT_POOL[rc as usize],
                });
            }
            GenInst::AluRI { op, rc, ra, imm } => {
                a.raw(Inst::Op {
                    op,
                    ra: INT_POOL[ra as usize],
                    rb: RegOrLit::Lit(imm),
                    rc: INT_POOL[rc as usize],
                });
            }
            GenInst::Load { width, rt, arena, disp } => {
                a.raw(Inst::Load {
                    width,
                    rt: INT_POOL[rt as usize],
                    base: arena_reg(arena),
                    disp,
                });
            }
            GenInst::Store { width, rt, arena, disp } => {
                a.raw(Inst::Store {
                    width,
                    rt: INT_POOL[rt as usize],
                    base: arena_reg(arena),
                    disp,
                });
            }
            GenInst::FLoad { ft, arena, disp } => {
                a.raw(Inst::FLoad { ft: FP_POOL[ft as usize], base: arena_reg(arena), disp });
            }
            GenInst::FStore { ft, arena, disp } => {
                a.raw(Inst::FStore { ft: FP_POOL[ft as usize], base: arena_reg(arena), disp });
            }
            GenInst::Itof { fc, ra } => {
                a.raw(Inst::Itof { ra: INT_POOL[ra as usize], fc: FP_POOL[fc as usize] });
            }
            GenInst::Ftoi { rc, fa } => {
                a.raw(Inst::Ftoi { fa: FP_POOL[fa as usize], rc: INT_POOL[rc as usize] });
            }
            GenInst::Fp { op, fc, fa, fb } => {
                a.raw(Inst::FpOp {
                    op,
                    fa: FP_POOL[fa as usize],
                    fb: FP_POOL[fb as usize],
                    fc: FP_POOL[fc as usize],
                });
            }
            GenInst::SkipIf { cond, ra, dist } => {
                let target = (idx + 1 + dist as usize).min(len);
                let label = format!("b{target}");
                let r = INT_POOL[ra as usize];
                match cond {
                    BranchCond::Eq => a.beq(r, label),
                    BranchCond::Ne => a.bne(r, label),
                    BranchCond::Lt => a.blt(r, label),
                    BranchCond::Le => a.ble(r, label),
                    BranchCond::Gt => a.bgt(r, label),
                    BranchCond::Ge => a.bge(r, label),
                    BranchCond::Lbc => a.blbc(r, label),
                    BranchCond::Lbs => a.blbs(r, label),
                };
            }
            GenInst::ArenaBump { arena, delta } => {
                let r = arena_reg(arena);
                a.add(r, r, delta);
            }
        }
    }
}

fn arena_reg(arena: u8) -> Reg {
    if arena == 0 {
        Reg::R1
    } else {
        Reg::R2
    }
}

/// A snapshot of all 64 architectural registers plus the dynamic
/// instruction count, for cross-run comparison. Floating-point values are
/// held as raw bits so NaNs compare exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArchState {
    /// All register values (`r0..r31` then `f0..f31`), FP as raw bits.
    pub regs: [u64; 64],
    /// Dynamic instructions executed.
    pub executed: u64,
}

impl ArchState {
    /// Captures the state of an emulator.
    #[must_use]
    pub fn capture(emu: &Emulator) -> ArchState {
        let mut regs = [0u64; 64];
        for (i, slot) in regs.iter_mut().enumerate() {
            let r = if i < 32 {
                ArchReg::from(Reg::new(i as u8))
            } else {
                ArchReg::from(FReg::new((i - 32) as u8))
            };
            *slot = emu.arch_value(r);
        }
        ArchState { regs, executed: emu.executed() }
    }

    /// Describes the first difference from `other`, using `self_name` /
    /// `other_name` in the message; `None` when identical.
    #[must_use]
    pub fn first_difference(
        &self,
        other: &ArchState,
        self_name: &str,
        other_name: &str,
    ) -> Option<String> {
        if self.executed != other.executed {
            return Some(format!(
                "{self_name} executed {} instructions, {other_name} executed {}",
                self.executed, other.executed
            ));
        }
        for i in 0..64 {
            if self.regs[i] != other.regs[i] {
                let name = if i < 32 { format!("r{i}") } else { format!("f{}", i - 32) };
                return Some(format!(
                    "{name}: {self_name} holds {:#x}, {other_name} holds {:#x}",
                    self.regs[i], other.regs[i]
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_assemble_and_halt() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let g = GenProgram::random(&mut rng);
            let p = g.lower();
            let mut emu = Emulator::new(&p);
            let out = emu.run(1_000_000).expect("no emulator fault");
            assert!(
                matches!(out, hpa_core::emu::RunOutcome::Halted { .. }),
                "generated program must halt: {out:?}"
            );
        }
    }

    #[test]
    fn deletion_subsets_still_halt() {
        // The shrinker deletes arbitrary body subsets; forward-clamped
        // skips must keep every subset terminating.
        let mut rng = SplitMix64::new(11);
        let g = GenProgram::random(&mut rng);
        for mask in 0..32u64 {
            let mut sub = g.clone();
            sub.body = g
                .body
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << (i % 6)) == 0)
                .map(|(_, x)| *x)
                .collect();
            let mut emu = Emulator::new(&sub.lower());
            let out = emu.run(1_000_000).expect("no emulator fault");
            assert!(matches!(out, hpa_core::emu::RunOutcome::Halted { .. }));
        }
    }

    #[test]
    fn lowering_is_deterministic() {
        let mut rng = SplitMix64::new(3);
        let g = GenProgram::random(&mut rng);
        assert_eq!(hpa_core::asm::disassemble(&g.lower()), hpa_core::asm::disassemble(&g.lower()));
    }
}
