//! Reproducer corpus: writing and replaying minimized failing cases.
//!
//! A corpus file is ordinary `.s` assembly with a machine-readable header
//! in comments:
//!
//! ```text
//! ; hpa-verify reproducer
//! ; scheme: combined
//! ; width: 4
//! li      r1, 65536
//! ...
//! ```
//!
//! Replay runs the file through the full differential check (all
//! [`FUZZ_SCHEMES`](crate::FUZZ_SCHEMES) in lockstep) at the declared
//! width, so a reproducer keeps guarding against regressions in *every*
//! scheme, not just the one that originally failed.

use crate::fuzz::{run_differential, Variant};
use crate::Divergence;
use hpa_core::asm::{disassemble, parse_program, Program};
use hpa_core::{MachineWidth, Scheme};
use std::io;
use std::path::{Path, PathBuf};

/// A parsed corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusCase {
    /// Where it was loaded from.
    pub path: PathBuf,
    /// The program.
    pub program: Program,
    /// The scheme recorded as the original offender (informational; replay
    /// always runs the full differential set).
    pub scheme: Option<Scheme>,
    /// The machine width to replay at.
    pub width: MachineWidth,
}

/// Writes a reproducer file, returning its path. The name is
/// `<stem>.s`; an existing file with the same stem is overwritten (the
/// stem encodes seed and iteration index, so collisions mean identity).
///
/// # Errors
///
/// Any filesystem error creating the directory or writing the file.
pub fn write_reproducer(
    dir: &Path,
    stem: &str,
    program: &Program,
    scheme: Scheme,
    variant: Variant,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.s"));
    let width = match variant.width {
        MachineWidth::Four => 4,
        MachineWidth::Eight => 8,
    };
    let text = format!(
        "; hpa-verify reproducer\n; scheme: {}\n; width: {width}\n{}",
        scheme.key(),
        disassemble(program)
    );
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Parses one corpus file (program plus header).
///
/// # Errors
///
/// I/O errors, assembly errors, or a malformed header value.
pub fn load_case(path: &Path) -> Result<CorpusCase, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut scheme = None;
    let mut width = MachineWidth::Four;
    for line in source.lines() {
        let Some(rest) = line.trim().strip_prefix(';') else { continue };
        let rest = rest.trim();
        if let Some(v) = rest.strip_prefix("scheme:") {
            let key = v.trim();
            scheme = Some(
                Scheme::from_key(key)
                    .ok_or_else(|| format!("{}: unknown scheme `{key}`", path.display()))?,
            );
        } else if let Some(v) = rest.strip_prefix("width:") {
            width = match v.trim() {
                "4" => MachineWidth::Four,
                "8" => MachineWidth::Eight,
                other => return Err(format!("{}: bad width `{other}`", path.display())),
            };
        }
    }
    let program = parse_program(&source).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(CorpusCase { path: path.to_path_buf(), program, scheme, width })
}

/// Result of replaying a corpus directory.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Files replayed.
    pub cases: usize,
    /// Cases that diverged (file, offending scheme, report).
    pub failures: Vec<(PathBuf, Scheme, Divergence)>,
}

/// Replays every `.s` file in `dir` (non-recursively) through the full
/// differential check. A missing directory counts as an empty corpus.
///
/// # Errors
///
/// Unreadable or unparsable corpus files (divergences are *reported*, not
/// errors — see [`ReplayReport::failures`]).
pub fn replay_dir(dir: &Path) -> Result<ReplayReport, String> {
    let mut report = ReplayReport::default();
    if !dir.exists() {
        return Ok(report);
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    paths.sort();
    for path in paths {
        let case = load_case(&path)?;
        report.cases += 1;
        let variant =
            Variant { width: case.width, selective_recovery: false, small_pc_table: false };
        if let Err((scheme, d)) = run_differential(&case.program, variant) {
            report.failures.push((case.path, scheme, d));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GenProgram;
    use hpa_core::workloads::SplitMix64;

    #[test]
    fn reproducers_round_trip() {
        let dir = std::env::temp_dir().join("hpa-verify-corpus-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut rng = SplitMix64::new(21);
        let gen = GenProgram::random(&mut rng);
        let program = gen.lower();
        let variant = Variant {
            width: MachineWidth::Eight,
            selective_recovery: false,
            small_pc_table: false,
        };
        let path =
            write_reproducer(&dir, "case", &program, Scheme::Combined, variant).expect("writes");
        let case = load_case(&path).expect("parses");
        assert_eq!(case.scheme, Some(Scheme::Combined));
        assert_eq!(case.width, MachineWidth::Eight);
        // The text round-trip preserves instructions and the data image
        // (segment granularity may differ; labels are debug metadata).
        assert_eq!(case.program.insts(), program.insts());
        let image = |p: &Program| {
            let mut bytes: Vec<(u64, u8)> = p
                .data_segments()
                .iter()
                .flat_map(|(addr, seg)| {
                    seg.iter().enumerate().map(move |(i, &b)| (addr + i as u64, b))
                })
                .collect();
            bytes.sort_unstable();
            bytes
        };
        assert_eq!(image(&case.program), image(&program));

        let report = replay_dir(&dir).expect("replays");
        assert_eq!(report.cases, 1);
        assert!(report.failures.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let report = replay_dir(Path::new("/nonexistent/hpa-corpus")).expect("ok");
        assert_eq!(report.cases, 0);
    }
}
