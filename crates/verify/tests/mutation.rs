//! Mutation test: the verification net must actually catch a planted
//! scheduler bug (ISSUE 3 acceptance criterion). A spurious wakeup —
//! an operand marked ready with no producer broadcast and no ready-list
//! enqueue — is injected into an otherwise healthy run; the oracle's
//! strict-invariant sweep must convert it into a localized
//! first-divergence report, not a silent pass or a generic panic.

use hpa_core::asm::Asm;
use hpa_core::isa::Reg;
use hpa_core::sim::FaultInjection;
use hpa_core::{MachineWidth, Scheme};
use hpa_verify::{run_lockstep, run_lockstep_injected};

/// A loop dense with load→use chains, so wakeup deliveries with pending
/// second operands (the injection's trigger window) are plentiful.
fn chain_heavy_program() -> hpa_core::asm::Program {
    let mut a = Asm::new();
    a.li(Reg::R1, 0x1_0000);
    a.li(Reg::R9, 40);
    a.label("loop");
    a.ldq(Reg::R2, Reg::R1, 0);
    a.add(Reg::R3, Reg::R2, Reg::R3);
    a.stq(Reg::R3, Reg::R1, 8);
    a.ldq(Reg::R4, Reg::R1, 8);
    a.add(Reg::R5, Reg::R4, Reg::R2);
    a.add(Reg::R6, Reg::R5, Reg::R3);
    a.add(Reg::R1, Reg::R1, 64i16);
    a.sub(Reg::R9, Reg::R9, 1i16);
    a.bgt(Reg::R9, "loop");
    a.halt();
    a.assemble().expect("assembles")
}

#[test]
fn clean_run_passes_lockstep() {
    let p = chain_heavy_program();
    for scheme in [Scheme::Base, Scheme::Combined] {
        let out = run_lockstep(&p, scheme.configure(MachineWidth::Four))
            .expect("healthy simulator passes the oracle");
        assert!(out.committed > 0);
    }
}

#[test]
fn planted_wakeup_bug_is_caught_and_localized() {
    let p = chain_heavy_program();
    let config = Scheme::Base.configure(MachineWidth::Four);
    let d = run_lockstep_injected(&p, config, FaultInjection::SpuriousWakeup { nth: 3 })
        .expect_err("the planted bug must be detected");
    // Localized: the report names the violated invariant and the exact
    // instruction, and carries a pipeline dump for debugging.
    assert!(d.reason.contains("pipeline invariant violated"), "wrong channel: {}", d.reason);
    assert!(
        d.reason.contains("unavailable producer") || d.reason.contains("not on the ready list"),
        "not localized to the wakeup defect: {}",
        d.reason
    );
    assert!(d.reason.contains("seq "), "no sequence number: {}", d.reason);
    assert!(d.cycle > 0);
    assert!(d.dump.contains("window"), "missing pipeline dump: {}", d.dump);
}

#[test]
fn planted_bug_is_caught_under_half_price_schemes_too() {
    let p = chain_heavy_program();
    for scheme in [Scheme::SeqWakeupPredictor, Scheme::Combined] {
        let config = scheme.configure(MachineWidth::Four);
        let d = run_lockstep_injected(&p, config, FaultInjection::SpuriousWakeup { nth: 5 })
            .expect_err("detected under every scheme");
        assert!(d.reason.contains("pipeline invariant violated"), "{}", d.reason);
    }
}
