//! Regenerates the checked-in seed corpus (`tests/corpus/seed-*.s`).
//!
//! The seed cases are deterministic draws from the fuzzer's program
//! generator, written in the reproducer format so `hpa verify tests/corpus`
//! (and the `corpus_replay` integration test) always have real programs to
//! replay even before the fuzzer has ever found a divergence.
//!
//! ```text
//! cargo run --release -p hpa-verify --example seed_corpus -- tests/corpus
//! ```

use hpa_core::workloads::SplitMix64;
use hpa_core::{MachineWidth, Scheme};
use hpa_verify::{write_reproducer, GenProgram, Variant};
use std::path::Path;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "tests/corpus".into());
    let dir = Path::new(&dir);
    // (seed, width): a handful of generator streams, one 8-wide.
    let cases = [(0xC0FFEE_u64, 4u8), (0xBEEF, 4), (0xF00D, 4), (0x5EED, 8)];
    for (i, (seed, width)) in cases.into_iter().enumerate() {
        let mut rng = SplitMix64::new(seed);
        let gen = GenProgram::random(&mut rng);
        let variant = Variant {
            width: if width == 8 { MachineWidth::Eight } else { MachineWidth::Four },
            selective_recovery: false,
            small_pc_table: false,
        };
        let path = write_reproducer(
            dir,
            &format!("seed-{i}-{seed:06x}"),
            &gen.lower(),
            Scheme::Combined,
            variant,
        )
        .expect("corpus dir is writable");
        println!("wrote {}", path.display());
    }
}
