//! # hpa-circuits — analytic timing models for the wakeup logic and register file
//!
//! The paper supports its IPC results with two circuit-level claims:
//!
//! * §3.3: a 4-wide, 64-entry scheduler's wakeup delay drops from **466 ps
//!   to 374 ps** (a 24.6% speedup) when sequential wakeup removes half of
//!   the tag comparators from the fast wakeup bus;
//! * §4: a 160-entry register file's access time at 0.18 µm drops from
//!   **1.71 ns to 1.36 ns** (20.5%) when halving the read ports shrinks the
//!   port count from 24 to 16 on an 8-wide machine.
//!
//! The paper derives these from Hspice analysis (following Ernst & Austin
//! and Palacharla et al.) and a CACTI-3.0-based register-file model. Neither
//! tool is available here, so this crate substitutes analytic models with
//! the same structural scaling laws, calibrated so the published endpoints
//! are reproduced exactly (see `DESIGN.md` §2):
//!
//! * [`WakeupDelayModel`]: wakeup delay = tag drive + tag match + match OR,
//!   where the tag-drive time grows with the bus load capacitance — one
//!   comparator per *connected* operand per window entry plus per-entry wire
//!   capacitance, and entry height (hence wire length) grows with issue
//!   width;
//! * [`RegFileDelayModel`]: access time = fixed front end + RC of word
//!   lines/bit lines, whose lengths grow linearly with the per-port cell
//!   pitch, giving the classic quadratic port-count term.
//!
//! Both models are used by the `circuits_delay` bench target to regenerate
//! the claims and to produce the ablation sweeps (delay vs. window size,
//! issue width, port count, entry count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Picoseconds, the unit of every delay returned by this crate.
pub type Picos = f64;

/// Analytic wakeup-logic delay model (Palacharla-style decomposition).
///
/// `delay = t_fixed + (tag-drive RC) + per-entry match/OR growth`, with the
/// tag-drive RC proportional to the bus capacitance:
/// `C_bus = entries * (comparators_per_entry * C_comparator + C_wire(width))`.
#[derive(Clone, Copy, Debug)]
pub struct WakeupDelayModel {
    /// Fixed delay: tag match + match OR + driver intrinsic (ps).
    pub fixed_ps: Picos,
    /// Tag-drive cost per (entry × comparator) of bus load (ps).
    pub per_comparator_ps: Picos,
    /// Tag-drive cost per entry of bus wire at 4-wide entry pitch (ps).
    pub per_entry_wire_ps: Picos,
    /// Relative entry-pitch growth per additional issue slot beyond 4-wide
    /// (wider machines have taller issue-queue entries, lengthening the
    /// bus).
    pub width_pitch_factor: f64,
}

impl WakeupDelayModel {
    /// The calibrated 0.18 µm model: reproduces 466 ps for a conventional
    /// 4-wide, 64-entry scheduler (2 comparators/entry on the bus) and
    /// 374 ps for the sequential-wakeup fast bus (1 comparator/entry).
    #[must_use]
    pub fn calibrated_018um() -> WakeupDelayModel {
        // 466 = fixed + 64*2*k + 64*w ; 374 = fixed + 64*1*k + 64*w
        // => k = 92/64 = 1.4375 ps; choose w = 1.0 ps, fixed = 218 ps.
        WakeupDelayModel {
            fixed_ps: 218.0,
            per_comparator_ps: 1.4375,
            per_entry_wire_ps: 1.0,
            width_pitch_factor: 0.08,
        }
    }

    /// Wakeup delay for a window of `entries`, an `issue_width`-wide
    /// machine and `comparators_per_entry` tag comparators connected to the
    /// broadcast bus (2 = conventional, 1 = sequential wakeup fast bus /
    /// tag elimination).
    #[must_use]
    pub fn delay(&self, entries: u32, issue_width: u32, comparators_per_entry: u32) -> Picos {
        let pitch = 1.0 + self.width_pitch_factor * (f64::from(issue_width) - 4.0).max(0.0);
        let per_entry = f64::from(comparators_per_entry) * self.per_comparator_ps
            + self.per_entry_wire_ps * pitch;
        self.fixed_ps + f64::from(entries) * per_entry
    }

    /// The conventional scheduler delay (2 comparators on the bus).
    #[must_use]
    pub fn conventional(&self, entries: u32, issue_width: u32) -> Picos {
        self.delay(entries, issue_width, 2)
    }

    /// The sequential-wakeup fast-bus delay (1 comparator on the bus). The
    /// slow bus re-broadcasts over the following cycle and is off the
    /// critical path (paper Figure 8c).
    #[must_use]
    pub fn sequential_wakeup(&self, entries: u32, issue_width: u32) -> Picos {
        self.delay(entries, issue_width, 1)
    }

    /// Relative speedup of sequential wakeup over the conventional
    /// scheduler, e.g. `0.246` for the calibrated 4-wide 64-entry point.
    #[must_use]
    pub fn speedup(&self, entries: u32, issue_width: u32) -> f64 {
        let conv = self.conventional(entries, issue_width);
        let seq = self.sequential_wakeup(entries, issue_width);
        (conv - seq) / seq
    }
}

impl Default for WakeupDelayModel {
    fn default() -> WakeupDelayModel {
        WakeupDelayModel::calibrated_018um()
    }
}

/// Analytic multi-ported register-file access-time model (CACTI-3.0-shaped).
///
/// Each port adds one word line and one bit line per cell, growing the cell
/// pitch in both dimensions; word-line and bit-line RC each scale with the
/// product of wire length and capacitance per cell, producing the standard
/// quadratic dependence on port count and linear dependence on entry count.
#[derive(Clone, Copy, Debug)]
pub struct RegFileDelayModel {
    /// Fixed delay: decoder front end + sense amp + output drive (ps).
    pub fixed_ps: Picos,
    /// RC cost coefficient at the reference entry count (ps).
    pub rc_ps: Picos,
    /// Entry count at which `rc_ps` is calibrated.
    pub reference_entries: u32,
    /// Per-port pitch growth relative to the base cell.
    pub port_pitch_factor: f64,
}

impl RegFileDelayModel {
    /// The calibrated 0.18 µm model: reproduces 1.71 ns at 160 entries /
    /// 24 ports and 1.36 ns at 160 entries / 16 ports (paper §4).
    #[must_use]
    pub fn calibrated_018um() -> RegFileDelayModel {
        // t(p) = fixed + G*(1 + a*p)^2 with a = 0.5:
        // 1710 = fixed + G*13^2 ; 1360 = fixed + G*9^2
        // => G = 350/88 = 3.9773 ps, fixed = 1037.7 ps.
        RegFileDelayModel {
            fixed_ps: 1_037.840_909_090_909,
            rc_ps: 3.977_272_727_272_727,
            reference_entries: 160,
            port_pitch_factor: 0.5,
        }
    }

    /// Access time for a register file with `entries` registers and
    /// `ports` total ports (read + write).
    #[must_use]
    pub fn access_time(&self, entries: u32, ports: u32) -> Picos {
        let pitch = 1.0 + self.port_pitch_factor * f64::from(ports);
        let scale = f64::from(entries) / f64::from(self.reference_entries);
        self.fixed_ps + self.rc_ps * scale * pitch * pitch
    }

    /// Access time of the conventional configuration: 2 read ports per
    /// issue slot + 1 write port per slot.
    #[must_use]
    pub fn conventional(&self, entries: u32, issue_width: u32) -> Picos {
        self.access_time(entries, 3 * issue_width)
    }

    /// Access time under sequential register access: 1 read port per issue
    /// slot + 1 write port per slot (paper Figure 13).
    #[must_use]
    pub fn sequential_access(&self, entries: u32, issue_width: u32) -> Picos {
        self.access_time(entries, 2 * issue_width)
    }

    /// Fractional access-time reduction of halving the read ports, e.g.
    /// `0.205` at the calibrated 160-entry, 8-wide point.
    #[must_use]
    pub fn reduction(&self, entries: u32, issue_width: u32) -> f64 {
        let conv = self.conventional(entries, issue_width);
        let seq = self.sequential_access(entries, issue_width);
        (conv - seq) / conv
    }
}

impl Default for RegFileDelayModel {
    fn default() -> RegFileDelayModel {
        RegFileDelayModel::calibrated_018um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn wakeup_reproduces_section_3_3_claim() {
        let m = WakeupDelayModel::calibrated_018um();
        assert!(close(m.conventional(64, 4), 466.0, 0.01), "{}", m.conventional(64, 4));
        assert!(close(m.sequential_wakeup(64, 4), 374.0, 0.01));
        // "24.6% speedup over a conventional scheduler"
        assert!(close(m.speedup(64, 4), 0.246, 0.001), "{}", m.speedup(64, 4));
    }

    #[test]
    fn wakeup_scales_monotonically() {
        let m = WakeupDelayModel::default();
        assert!(m.delay(128, 4, 2) > m.delay(64, 4, 2), "bigger window is slower");
        assert!(m.delay(64, 8, 2) > m.delay(64, 4, 2), "wider machine is slower");
        assert!(m.delay(64, 4, 2) > m.delay(64, 4, 1), "more comparators are slower");
        // Window-size benefit grows with window size.
        let gain64 = m.conventional(64, 4) - m.sequential_wakeup(64, 4);
        let gain128 = m.conventional(128, 4) - m.sequential_wakeup(128, 4);
        assert!(gain128 > gain64);
    }

    #[test]
    fn regfile_reproduces_section_4_claim() {
        let m = RegFileDelayModel::calibrated_018um();
        // 8-wide: 24 ports -> 16 ports at 160 entries.
        let conv = m.conventional(160, 8);
        let seq = m.sequential_access(160, 8);
        assert!(close(conv, 1710.0, 0.01), "{conv}");
        assert!(close(seq, 1360.0, 0.01), "{seq}");
        assert!(close(m.reduction(160, 8), 0.205, 0.001), "{}", m.reduction(160, 8));
    }

    #[test]
    fn regfile_scales_monotonically() {
        let m = RegFileDelayModel::default();
        assert!(m.access_time(320, 24) > m.access_time(160, 24));
        assert!(m.access_time(160, 24) > m.access_time(160, 16));
        // Quadratic port growth: marginal cost of ports increases.
        let d1 = m.access_time(160, 17) - m.access_time(160, 16);
        let d2 = m.access_time(160, 25) - m.access_time(160, 24);
        assert!(d2 > d1);
    }

    #[test]
    fn four_wide_configuration_also_benefits() {
        let m = RegFileDelayModel::default();
        // 4-wide: 12 ports -> 8 ports.
        assert!(m.reduction(160, 4) > 0.07);
        assert!(m.reduction(160, 4) < m.reduction(160, 8), "wider machines gain more");
    }
}

/// Picojoules, the unit of the energy estimates.
pub type Picojoules = f64;

/// First-order dynamic-energy estimates for the two structures, using the
/// same capacitance scaling as the delay models: wakeup energy per
/// broadcast is proportional to the switched bus capacitance (entries ×
/// comparators + wire), and register-file energy per access grows with the
/// port-count-squared cell area. Calibrated loosely to 0.18 µm-era
/// publications (a conventional 4-wide 64-entry wakeup broadcast ≈ 50 pJ;
/// a 160-entry 24-port RF access ≈ 150 pJ); like the delay models, the
/// *ratios* between configurations are the meaningful output.
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Energy per (entry × comparator) of driven wakeup bus (pJ).
    pub wakeup_per_comparator_pj: f64,
    /// Energy per entry of bus wire at 4-wide pitch (pJ).
    pub wakeup_per_entry_wire_pj: f64,
    /// Register-file energy coefficient at the reference geometry (pJ).
    pub rf_cell_pj: f64,
}

impl EnergyModel {
    /// The calibrated 0.18 µm model.
    #[must_use]
    pub fn calibrated_018um() -> EnergyModel {
        // 50 pJ = 64 * (2*k + w) with w = k  =>  k = 50/192.
        let k = 50.0 / 192.0;
        // 150 pJ = c * (160/160) * (1 + 0.5*24)^2  =>  c = 150/169.
        EnergyModel {
            wakeup_per_comparator_pj: k,
            wakeup_per_entry_wire_pj: k,
            rf_cell_pj: 150.0 / 169.0,
        }
    }

    /// Energy of one tag broadcast on a window of `entries` with
    /// `comparators_per_entry` comparators on the bus.
    #[must_use]
    pub fn wakeup_broadcast(&self, entries: u32, comparators_per_entry: u32) -> Picojoules {
        f64::from(entries)
            * (f64::from(comparators_per_entry) * self.wakeup_per_comparator_pj
                + self.wakeup_per_entry_wire_pj)
    }

    /// Energy of one register-file access with the given geometry.
    #[must_use]
    pub fn rf_access(&self, entries: u32, ports: u32) -> Picojoules {
        let pitch = 1.0 + 0.5 * f64::from(ports);
        self.rf_cell_pj * (f64::from(entries) / 160.0) * pitch * pitch
    }

    /// Fractional per-event energy saving of the half-price structures:
    /// `(wakeup saving, RF saving)` for a machine of the given geometry.
    /// Sequential wakeup broadcasts twice (fast + slow bus) but each bus
    /// drives half the comparators, so the *net* wakeup saving comes from
    /// the wire and from slow-bus broadcasts only firing when a slow-side
    /// operand is still pending; this returns the fast-bus-only ratio as
    /// the optimistic bound.
    #[must_use]
    pub fn half_price_savings(&self, entries: u32, issue_width: u32) -> (f64, f64) {
        let w_full = self.wakeup_broadcast(entries, 2);
        let w_half = self.wakeup_broadcast(entries, 1);
        let r_full = self.rf_access(entries * 5 / 2, 3 * issue_width);
        let r_half = self.rf_access(entries * 5 / 2, 2 * issue_width);
        (1.0 - w_half / w_full, 1.0 - r_half / r_full)
    }
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel::calibrated_018um()
    }
}

#[cfg(test)]
mod energy_tests {
    use super::*;

    #[test]
    fn calibration_points() {
        let m = EnergyModel::calibrated_018um();
        assert!((m.wakeup_broadcast(64, 2) - 50.0).abs() < 1e-9);
        assert!((m.rf_access(160, 24) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_structure() {
        let m = EnergyModel::default();
        assert!(m.wakeup_broadcast(128, 2) > m.wakeup_broadcast(64, 2));
        assert!(m.wakeup_broadcast(64, 2) > m.wakeup_broadcast(64, 1));
        assert!(m.rf_access(160, 24) > m.rf_access(160, 16));
        let d1 = m.rf_access(160, 17) - m.rf_access(160, 16);
        let d2 = m.rf_access(160, 25) - m.rf_access(160, 24);
        assert!(d2 > d1, "quadratic port growth");
    }

    #[test]
    fn half_price_saves_energy_on_both_structures() {
        let m = EnergyModel::default();
        let (w, r) = m.half_price_savings(64, 4);
        assert!(w > 0.2 && w < 0.5, "wakeup saving {w}");
        assert!(r > 0.2 && r < 0.6, "RF saving {r}");
    }
}
