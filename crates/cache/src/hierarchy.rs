//! The three-level hierarchy of the paper's Table 1.

use crate::set_assoc::{Cache, CacheConfig, CacheStats};

/// Configuration of the full memory system.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HierarchyConfig {
    /// Instruction L1.
    pub il1: CacheConfig,
    /// Data L1.
    pub dl1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub memory_latency: u32,
}

impl HierarchyConfig {
    /// The memory system of the paper's Table 1: 64 KB 2-way 32 B IL1 (2),
    /// 64 KB 4-way 16 B DL1 (2), 512 KB 4-way 64 B unified L2 (8), memory
    /// (50).
    #[must_use]
    pub fn table1() -> HierarchyConfig {
        HierarchyConfig {
            il1: CacheConfig { size_bytes: 64 << 10, line_bytes: 32, ways: 2, hit_latency: 2 },
            dl1: CacheConfig { size_bytes: 64 << 10, line_bytes: 16, ways: 4, hit_latency: 2 },
            l2: CacheConfig { size_bytes: 512 << 10, line_bytes: 64, ways: 4, hit_latency: 8 },
            memory_latency: 50,
        }
    }
}

/// Per-level statistics snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HierarchyStats {
    /// Instruction L1 counters.
    pub il1: CacheStats,
    /// Data L1 counters.
    pub dl1: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Accesses that went all the way to main memory.
    pub memory_accesses: u64,
}

/// The IL1 + DL1 + unified L2 + memory timing model.
///
/// `data_read`/`data_write`/`inst_fetch` return the total access latency in
/// cycles, filling lines along the way. Write-backs of dirty victims update
/// L2 state but are not charged latency (they ride the write buffers, the
/// standard sim-outorder simplification).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    il1: Cache,
    dl1: Cache,
    l2: Cache,
    memory_latency: u32,
    memory_accesses: u64,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            il1: Cache::new(config.il1),
            dl1: Cache::new(config.dl1),
            l2: Cache::new(config.l2),
            memory_latency: config.memory_latency,
            memory_accesses: 0,
        }
    }

    /// Latency of a data-side L1 access, filling on miss.
    fn data_access(&mut self, addr: u64, write: bool) -> u32 {
        let mut latency = self.dl1.config().hit_latency;
        let l1 = self.dl1.access(addr, write);
        if !l1.hit {
            latency += self.level2(addr);
            if let Some(wb) = l1.writeback {
                // Dirty victim written back into L2 (no latency charge).
                let _ = self.l2.access(wb, true);
            }
        }
        latency
    }

    fn level2(&mut self, addr: u64) -> u32 {
        let mut latency = self.l2.config().hit_latency;
        let l2 = self.l2.access(addr, false);
        if !l2.hit {
            latency += self.memory_latency;
            self.memory_accesses += 1;
            // Write-backs from L2 go to memory; nothing further to model.
        }
        latency
    }

    /// Performs a data read at `addr`; returns total latency in cycles.
    pub fn data_read(&mut self, addr: u64) -> u32 {
        self.data_access(addr, false)
    }

    /// Performs a data write at `addr`; returns total latency in cycles.
    pub fn data_write(&mut self, addr: u64) -> u32 {
        self.data_access(addr, true)
    }

    /// Fetches the instruction line containing `addr`; returns total
    /// latency in cycles.
    pub fn inst_fetch(&mut self, addr: u64) -> u32 {
        let mut latency = self.il1.config().hit_latency;
        if !self.il1.access(addr, false).hit {
            latency += self.level2(addr);
        }
        latency
    }

    /// Whether a data access at `addr` would hit in the DL1 right now.
    #[must_use]
    pub fn dl1_would_hit(&self, addr: u64) -> bool {
        self.dl1.probe(addr)
    }

    /// The DL1 hit latency — the latency speculative scheduling assumes for
    /// every load (paper §2.1).
    #[must_use]
    pub fn dl1_hit_latency(&self) -> u32 {
        self.dl1.config().hit_latency
    }

    /// The IL1 line size, which bounds how many sequential instructions one
    /// fetch cycle can deliver.
    #[must_use]
    pub fn il1_line_bytes(&self) -> u64 {
        self.il1.config().line_bytes
    }

    /// The IL1 hit latency, pipelined into the fetch stages.
    #[must_use]
    pub fn il1_hit_latency(&self) -> u32 {
        self.il1.config().hit_latency
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            il1: *self.il1.stats(),
            dl1: *self.dl1.stats(),
            l2: *self.l2.stats(),
            memory_accesses: self.memory_accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies_compose() {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        // Cold: DL1 miss + L2 miss + memory = 2 + 8 + 50.
        assert_eq!(h.data_read(0x1000), 60);
        // Warm DL1 hit.
        assert_eq!(h.data_read(0x1000), 2);
        // Neighboring line: misses DL1 (16B lines) but hits L2 (64B lines).
        assert_eq!(h.data_read(0x1010), 10);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn inst_fetch_uses_il1_then_l2() {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        assert_eq!(h.inst_fetch(0), 60);
        assert_eq!(h.inst_fetch(4), 2, "same 32B line");
        assert_eq!(h.inst_fetch(32), 10, "next line, same L2 line");
    }

    #[test]
    fn unified_l2_shares_inst_and_data() {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        let _ = h.inst_fetch(0x4000);
        // Data access to the same L2 line: DL1 misses, L2 hits.
        assert_eq!(h.data_read(0x4000), 10);
    }

    #[test]
    fn dl1_probe_matches_access_behavior() {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        assert!(!h.dl1_would_hit(0x2000));
        h.data_write(0x2000);
        assert!(h.dl1_would_hit(0x2000));
        assert!(h.dl1_would_hit(0x200F));
        assert!(!h.dl1_would_hit(0x2010));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        h.data_read(0);
        h.data_read(0);
        h.data_write(0);
        let s = h.stats();
        assert_eq!(s.dl1.accesses, 3);
        assert_eq!(s.dl1.hits, 2);
        assert_eq!(s.l2.accesses, 1);
    }
}
