//! # hpa-cache — set-associative cache and memory-hierarchy timing model
//!
//! Implements the memory system of the paper's Table 1: a 64 KB 2-way
//! 32-byte-line instruction L1 (2-cycle), a 64 KB 4-way 16-byte-line data L1
//! (2-cycle), a 512 KB 4-way 64-byte-line unified L2 (8-cycle) and a
//! 50-cycle main memory, with LRU replacement and write-back/write-allocate
//! data caches.
//!
//! The model is a *timing* model: it tracks which lines are resident and
//! returns access latencies; data values live in `hpa-emu`'s memory.
//!
//! # Example
//!
//! ```
//! use hpa_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::table1());
//! let cold = mem.data_read(0x1000);
//! let warm = mem.data_read(0x1000);
//! assert!(cold > warm);
//! assert_eq!(warm, 2); // DL1 hit latency from Table 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hierarchy;
mod set_assoc;

pub use hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats};
pub use set_assoc::{Cache, CacheConfig, CacheStats};
