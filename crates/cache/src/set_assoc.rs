//! A single set-associative cache with true-LRU replacement.

/// Geometry and latency of one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Hit latency in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size,
    /// or capacity not divisible into `ways` lines per set).
    #[must_use]
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.ways > 0, "associativity must be positive");
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(lines % u64::from(self.ways), 0, "capacity/ways mismatch");
        let sets = lines / u64::from(self.ways);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Dirty lines evicted (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of the last touch; smallest = LRU victim.
    last_use: u64,
}

const EMPTY_LINE: Line = Line { tag: 0, valid: false, dirty: false, last_use: 0 };

/// The outcome of one cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Access {
    pub hit: bool,
    /// Line address of a dirty line evicted by the fill, if any.
    pub writeback: Option<u64>,
}

/// One level of set-associative cache.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    set_shift: u32,
    set_mask: u64,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry; see [`CacheConfig::sets`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Cache {
        let sets = config.sets();
        Cache {
            config,
            lines: vec![EMPTY_LINE; (sets * u64::from(config.ways)) as usize],
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_bytes - 1)
    }

    /// Whether the line containing `addr` is currently resident
    /// (does not update LRU or statistics).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.set_lines(set).iter().any(|l| l.valid && l.tag == tag)
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.set_shift;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    fn set_lines(&self, set: usize) -> &[Line] {
        let w = self.config.ways as usize;
        &self.lines[set * w..(set + 1) * w]
    }

    /// Accesses `addr`, filling on miss; returns hit/miss and any
    /// write-back caused by the eviction.
    pub(crate) fn access(&mut self, addr: u64, write: bool) -> Access {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.locate(addr);
        let w = self.config.ways as usize;
        let lines = &mut self.lines[set * w..(set + 1) * w];

        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.clock;
            line.dirty |= write;
            self.stats.hits += 1;
            return Access { hit: true, writeback: None };
        }

        // Miss: evict the LRU way (preferring invalid ways, which have
        // last_use 0 and are therefore naturally chosen).
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("ways > 0");
        let mut writeback = None;
        if victim.valid && victim.dirty {
            let set_bits = self.set_mask.count_ones();
            let victim_line = (victim.tag << set_bits) | set as u64;
            writeback = Some(victim_line << self.set_shift);
            self.stats.writebacks += 1;
        }
        *victim = Line { tag, valid: true, dirty: write, last_use: self.clock };
        Access { hit: false, writeback }
    }

    /// Invalidates everything (keeps statistics).
    pub fn flush(&mut self) {
        self.lines.fill(EMPTY_LINE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte lines = 64 bytes.
        Cache::new(CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 2);
        assert_eq!(c.line_addr(0x37), 0x30);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 48, line_bytes: 12, ways: 2, hit_latency: 1 });
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x00, false).hit);
        assert!(c.access(0x08, false).hit, "same line");
        assert!(!c.access(0x20, false).hit, "same set, different tag");
        assert!(c.access(0x00, false).hit, "both ways resident");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 lines: 0x00, 0x20, 0x40 (tags 0,1,2).
        c.access(0x00, false);
        c.access(0x20, false);
        c.access(0x00, false); // 0x20 is now LRU
        c.access(0x40, false); // evicts 0x20
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn writeback_of_dirty_victim() {
        let mut c = tiny();
        c.access(0x00, true); // dirty
        c.access(0x20, false);
        c.access(0x20, false); // make 0x00 LRU? no: last_use 0x00=1, 0x20=3
        let acc = c.access(0x40, false); // evicts 0x00 (dirty)
        assert_eq!(acc.writeback, Some(0x00));
        assert_eq!(c.stats().writebacks, 1);

        // Clean eviction produces no writeback.
        let acc = c.access(0x60, false); // evicts 0x20 (clean)
        assert_eq!(acc.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x00, false);
        c.access(0x00, true); // dirty via hit
        c.access(0x20, false);
        c.access(0x40, false); // evict 0x00
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0x00, false);
        let before = *c.stats();
        assert!(c.probe(0x00));
        assert!(!c.probe(0x999));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0x00, false);
        c.flush();
        assert!(!c.probe(0x00));
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0x00, false);
        c.access(0x00, false);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }
}
