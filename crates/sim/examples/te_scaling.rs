//! Development check: tag elimination's degradation at 4-wide vs 8-wide —
//! the paper's claim that its misprediction penalty scales with width.
use hpa_sim::*;
use hpa_workloads::{workload, Scale};

fn main() {
    println!("TE degradation 4-wide vs 8-wide (paper: grows with width)");
    for name in ["eon", "mcf", "parser", "gzip", "crafty", "vortex"] {
        let w = workload(name, Scale::Tiny).unwrap();
        let mut degr = vec![];
        for base_cfg in [SimConfig::four_wide(), SimConfig::eight_wide()] {
            let mut b = Simulator::new(&w.program, base_cfg.clone());
            b.run();
            let mut t = Simulator::new(
                &w.program,
                base_cfg.with_wakeup(WakeupScheme::TagElimination { predictor_entries: 1024 }),
            );
            t.run();
            degr.push((1.0 - t.stats().ipc() / b.stats().ipc()) * 100.0);
        }
        println!("{name:8} 4w {:5.2}%  8w {:5.2}%", degr[0], degr[1]);
    }
}
