//! Development sweep: IPC of every scheme over the workloads, printed as
//! one row per benchmark with degradations relative to base.
//!
//! ```text
//! cargo run --release -p hpa-sim --example sweep [tiny|default] [bench...]
//! ```
use hpa_sim::*;
use hpa_workloads::{workload, Scale, CHECKSUM_REG};

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("default") => Scale::Default,
        _ => Scale::Tiny,
    };
    let names: Vec<String> = std::env::args().skip(2).collect();
    let names: Vec<&str> = if names.is_empty() {
        hpa_workloads::WORKLOAD_NAMES.to_vec()
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };
    for name in names {
        let w = workload(name, scale).unwrap();
        let t0 = std::time::Instant::now();
        let configs: Vec<(&str, SimConfig)> = vec![
            ("base", SimConfig::four_wide()),
            (
                "swu-p",
                SimConfig::four_wide()
                    .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) }),
            ),
            (
                "swu-s",
                SimConfig::four_wide()
                    .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None }),
            ),
            (
                "tagel",
                SimConfig::four_wide()
                    .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 1024 }),
            ),
            ("seqrf", SimConfig::four_wide().with_regfile(RegFileScheme::SequentialAccess)),
            ("extra", SimConfig::four_wide().with_regfile(RegFileScheme::ExtraStage)),
            ("xbar ", SimConfig::four_wide().with_regfile(RegFileScheme::SharedCrossbar)),
            (
                "comb ",
                SimConfig::four_wide()
                    .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) })
                    .with_regfile(RegFileScheme::SequentialAccess),
            ),
            ("base8", SimConfig::eight_wide()),
        ];
        let mut base_ipc = 0.0;
        print!("{name:8}");
        for (cname, cfg) in configs {
            let mut sim = Simulator::new(&w.program, cfg);
            let s = sim.run().clone();
            assert_eq!(sim.emulator().reg(CHECKSUM_REG), w.expected_checksum, "{name}/{cname}");
            let ipc = s.ipc();
            if cname == "base" {
                base_ipc = ipc;
            }
            if cname == "base" || cname == "base8" {
                print!(" {cname}={ipc:.3}");
            } else {
                print!(" {cname}={:.2}%", (1.0 - ipc / base_ipc) * 100.0);
            }
        }
        println!("  ({:.1}s)", t0.elapsed().as_secs_f64());
    }
}
