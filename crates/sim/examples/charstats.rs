//! Development table: the operand-level characterization fractions for
//! every workload side by side (Figures 2-4, 6, 10 and the 1k-entry
//! predictor accuracy), for quickly judging workload fidelity.
use hpa_sim::*;
use hpa_workloads::{workload, Scale};

fn main() {
    println!(
        "{:8} {:>6} {:>6} {:>6} | {:>6} {:>6} | {:>6} | {:>6} {:>6} | {:>5}",
        "bench", "2srcF%", "2src%", "nop%", "0rdy%", "2rdy%", "simul%", "2port%", "b2b%", "pred%"
    );
    for name in hpa_workloads::WORKLOAD_NAMES {
        let w = workload(name, Scale::Default).unwrap();
        let mut sim = Simulator::new(&w.program, SimConfig::four_wide());
        let s = sim.run().clone();
        let f = &s.format;
        let total = f.total() as f64;
        let two_src_fmt = (f.two_src) as f64 / total * 100.0;
        let two_src = f.two_src_two_unique as f64 / total * 100.0;
        let nops = f.nops as f64 / total * 100.0;
        let rtotal: u64 = s.ready_at_insert.iter().sum();
        let r0 = s.ready_at_insert[0] as f64 / rtotal.max(1) as f64 * 100.0;
        let r2 = s.ready_at_insert[2] as f64 / rtotal.max(1) as f64 * 100.0;
        let b2b = s.rf_back_to_back as f64 / s.committed as f64 * 100.0;
        let pred1k = s
            .last_arrival
            .iter()
            .find(|(n, _)| *n == 1024)
            .map(|(_, st)| st.accuracy() * 100.0)
            .unwrap_or(0.0);
        println!("{name:8} {two_src_fmt:6.1} {two_src:6.1} {nops:6.1} | {r0:6.1} {r2:6.1} | {:6.2} | {:6.2} {b2b:6.1} | {pred1k:5.1}",
            s.simultaneous_fraction()*100.0, s.two_port_fraction()*100.0);
    }
}
