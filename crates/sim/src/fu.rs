//! Functional-unit pool with per-unit occupancy.

use crate::config::FuCounts;
use hpa_isa::FuClass;

/// Tracks when each functional unit is free. Pipelined units are busy for
/// one cycle per operation (an issue-port constraint); non-pipelined units
/// (dividers) are busy for the operation's full latency.
#[derive(Clone, Debug)]
pub struct FuPool {
    units: [Vec<u64>; 5],
}

fn class_index(class: FuClass) -> usize {
    match class {
        FuClass::IntAlu => 0,
        FuClass::IntMulDiv => 1,
        FuClass::FpAlu => 2,
        FuClass::FpMulDiv => 3,
        FuClass::MemPort => 4,
    }
}

impl FuPool {
    /// Builds the pool from the configured counts.
    #[must_use]
    pub fn new(counts: &FuCounts) -> FuPool {
        let make = |class: FuClass| vec![0u64; counts.of(class) as usize];
        FuPool {
            units: [
                make(FuClass::IntAlu),
                make(FuClass::IntMulDiv),
                make(FuClass::FpAlu),
                make(FuClass::FpMulDiv),
                make(FuClass::MemPort),
            ],
        }
    }

    /// Whether a unit of `class` is free this cycle (without acquiring).
    #[cfg_attr(not(test), allow(dead_code))]
    #[must_use]
    pub fn available(&self, class: FuClass, cycle: u64) -> bool {
        self.units[class_index(class)].iter().any(|&busy_until| busy_until <= cycle)
    }

    /// Acquires a unit of `class` for an operation issued this cycle.
    /// Returns `false` (no change) if every unit is busy.
    pub fn acquire(&mut self, class: FuClass, cycle: u64, latency: u32, pipelined: bool) -> bool {
        let units = &mut self.units[class_index(class)];
        if let Some(unit) = units.iter_mut().find(|busy_until| **busy_until <= cycle) {
            *unit = cycle + if pipelined { 1 } else { u64::from(latency) };
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_units_free_next_cycle() {
        let mut pool = FuPool::new(&FuCounts {
            int_alu: 1,
            int_muldiv: 1,
            fp_alu: 1,
            fp_muldiv: 1,
            mem_ports: 1,
        });
        assert!(pool.acquire(FuClass::IntAlu, 10, 1, true));
        assert!(!pool.available(FuClass::IntAlu, 10), "only one ALU");
        assert!(!pool.acquire(FuClass::IntAlu, 10, 1, true));
        assert!(pool.available(FuClass::IntAlu, 11));
    }

    #[test]
    fn divider_blocks_for_full_latency() {
        let mut pool = FuPool::new(&FuCounts::four_wide());
        assert!(pool.acquire(FuClass::IntMulDiv, 0, 20, false));
        assert!(pool.acquire(FuClass::IntMulDiv, 0, 20, false), "second divider");
        assert!(!pool.acquire(FuClass::IntMulDiv, 5, 20, false), "both busy");
        assert!(pool.acquire(FuClass::IntMulDiv, 20, 3, true), "free after 20");
    }

    #[test]
    fn classes_are_independent() {
        let mut pool = FuPool::new(&FuCounts::four_wide());
        for _ in 0..4 {
            assert!(pool.acquire(FuClass::IntAlu, 0, 1, true));
        }
        assert!(!pool.available(FuClass::IntAlu, 0));
        assert!(pool.available(FuClass::MemPort, 0));
    }
}
