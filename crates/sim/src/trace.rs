//! Pipeline tracing: per-instruction stage timestamps and a text
//! pipeline diagram, in the spirit of SimpleScalar's `ptrace`.
//!
//! Enable with [`crate::Simulator::enable_trace`]; the simulator then
//! records one [`TraceRecord`] per committed instruction (up to the
//! configured capacity) which [`PipeTrace::render`] draws as a Gantt-style
//! chart — the quickest way to *see* a sequential-wakeup bubble or a
//! replayed load shadow.

use hpa_isa::Inst;
use std::fmt;
use std::fmt::Write as _;
use std::io::Write as _;

/// A buffered stderr sink for the per-issue/commit event log
/// (`HPA_TRACE=1`).
///
/// `eprintln!` locks and flushes stderr on every line, which serializes
/// the hot loop when tracing is on; this sink batches lines through a
/// large [`std::io::BufWriter`] instead and flushes once at the end of the
/// run (and on drop).
pub(crate) struct TraceSink {
    out: std::io::BufWriter<std::io::Stderr>,
}

impl TraceSink {
    /// A sink if `HPA_TRACE` is set, otherwise `None`.
    pub fn from_env() -> Option<TraceSink> {
        std::env::var_os("HPA_TRACE").is_some().then(TraceSink::new)
    }

    fn new() -> TraceSink {
        TraceSink { out: std::io::BufWriter::with_capacity(64 << 10, std::io::stderr()) }
    }

    /// Appends one formatted line to the buffer.
    pub fn line(&mut self, args: fmt::Arguments<'_>) {
        let _ = self.out.write_fmt(args);
        let _ = self.out.write_all(b"\n");
    }

    /// Drains the buffer to stderr.
    pub fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Cloning a simulator starts an independent (empty) trace buffer.
impl Clone for TraceSink {
    fn clone(&self) -> TraceSink {
        TraceSink::new()
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink").finish_non_exhaustive()
    }
}

/// Stage timestamps of one committed instruction.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Global sequence number.
    pub seq: u64,
    /// Fetch address.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Cycle the instruction entered the window.
    pub insert_cycle: u64,
    /// Effective cycle of the last operand wakeup before the final issue
    /// (clamped into `[insert_cycle, issue_cycle]`).
    pub wakeup_cycle: u64,
    /// Final (successful) issue cycle.
    pub issue_cycle: u64,
    /// Cycle execution completed.
    pub complete_cycle: u64,
    /// Commit cycle.
    pub commit_cycle: u64,
    /// Times the instruction was squashed and re-issued.
    pub replays: u32,
    /// Whether the last issue used a sequential register access.
    pub seq_rf: bool,
}

/// A bounded recording of committed instructions.
#[derive(Clone, Debug, Default)]
pub struct PipeTrace {
    records: Vec<TraceRecord>,
    capacity: usize,
}

impl PipeTrace {
    /// Creates a trace that keeps the first `capacity` committed
    /// instructions.
    #[must_use]
    pub fn new(capacity: usize) -> PipeTrace {
        PipeTrace { records: Vec::with_capacity(capacity.min(4096)), capacity }
    }

    /// Whether the trace is still recording.
    #[must_use]
    pub fn recording(&self) -> bool {
        self.records.len() < self.capacity
    }

    pub(crate) fn push(&mut self, record: TraceRecord) {
        if self.recording() {
            self.records.push(record);
        }
    }

    /// The recorded instructions, in commit order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Converts the recorded instructions into Chrome trace-event spans
    /// (see [`hpa_obs::chrome`]). `frontend_depth` back-dates the fetch
    /// stage from the insert cycle; render the result with
    /// [`hpa_obs::chrome::render`].
    #[must_use]
    pub fn chrome_spans(&self, frontend_depth: u32) -> Vec<hpa_obs::InstSpan> {
        self.records
            .iter()
            .map(|r| hpa_obs::InstSpan {
                seq: r.seq,
                pc: r.pc,
                name: r.inst.to_string(),
                fetch: r.insert_cycle.saturating_sub(u64::from(frontend_depth)),
                dispatch: r.insert_cycle,
                wakeup: r.wakeup_cycle.clamp(r.insert_cycle, r.issue_cycle),
                select: r.issue_cycle,
                complete: r.complete_cycle,
                commit: r.commit_cycle,
                replays: r.replays,
                seq_rf: r.seq_rf,
            })
            .collect()
    }

    /// Renders a text pipeline diagram. Stage letters: `i` in-window
    /// (waiting), `X` issue-to-complete (execution), `.` completed but not
    /// yet committed, `C` commit. Replayed instructions are flagged with
    /// `*N`, sequential register accesses with `s`.
    #[must_use]
    pub fn render(&self) -> String {
        let Some(first) = self.records.first() else {
            return String::from("(empty trace)\n");
        };
        let origin = first.insert_cycle;
        let mut out = String::new();
        let _ = writeln!(out, "cycles from {origin}; i=waiting X=executing .=done C=commit");
        for r in &self.records {
            let start = (r.insert_cycle - origin) as usize;
            let issue = (r.issue_cycle - origin) as usize;
            let complete = (r.complete_cycle - origin) as usize;
            let commit = (r.commit_cycle - origin) as usize;
            let mut lane = String::new();
            lane.push_str(&" ".repeat(start));
            lane.push_str(&"i".repeat(issue.saturating_sub(start)));
            lane.push_str(&"X".repeat((complete + 1).saturating_sub(issue.max(start))));
            lane.push_str(&".".repeat(commit.saturating_sub(complete + 1)));
            lane.push('C');
            let flags = format!(
                "{}{}",
                if r.seq_rf { "s" } else { "" },
                if r.replays > 0 { format!("*{}", r.replays) } else { String::new() }
            );
            let _ = writeln!(out, "{:>5} {:28} |{lane}| {flags}", r.seq, r.inst.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_isa::{AluOp, Reg};

    fn record(seq: u64, insert: u64, issue: u64, complete: u64, commit: u64) -> TraceRecord {
        TraceRecord {
            seq,
            pc: seq * 4,
            inst: Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R3),
            insert_cycle: insert,
            wakeup_cycle: insert,
            issue_cycle: issue,
            complete_cycle: complete,
            commit_cycle: commit,
            replays: 0,
            seq_rf: false,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = PipeTrace::new(2);
        assert!(t.recording());
        t.push(record(0, 10, 11, 13, 14));
        t.push(record(1, 10, 12, 14, 15));
        assert!(!t.recording());
        t.push(record(2, 11, 13, 15, 16));
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn render_shows_stages_and_flags() {
        let mut t = PipeTrace::new(4);
        t.push(record(0, 10, 11, 13, 14));
        let mut r = record(1, 10, 13, 15, 16);
        r.replays = 2;
        r.seq_rf = true;
        t.push(r);
        let s = t.render();
        assert!(s.contains("add r1, r2, r3"));
        assert!(s.contains('C'));
        assert!(s.contains("s*2"), "{s}");
        // First record: 1 waiting cycle, 3 executing cycles, commit.
        assert!(s.contains("|iXXXC|"), "{s}");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(PipeTrace::new(4).render(), "(empty trace)\n");
    }

    #[test]
    fn chrome_spans_back_date_fetch_and_order_stages() {
        let mut t = PipeTrace::new(4);
        let mut r = record(7, 10, 13, 15, 16);
        r.wakeup_cycle = 12;
        t.push(r);
        let spans = t.chrome_spans(3);
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!((s.fetch, s.dispatch, s.wakeup), (7, 10, 12));
        assert!(s.fetch <= s.dispatch && s.dispatch <= s.wakeup);
        assert!(s.wakeup <= s.select && s.select <= s.complete && s.complete <= s.commit);
        // A stale wakeup stamp (e.g. replayed instruction) clamps into
        // the [insert, issue] range.
        let mut t = PipeTrace::new(4);
        let mut r = record(8, 10, 13, 15, 16);
        r.wakeup_cycle = 99;
        t.push(r);
        assert_eq!(t.chrome_spans(0)[0].wakeup, 13);
    }
}
