//! The fetch engine: branch prediction, IL1 access, fetch-group breaking
//! and the front-end latency pipe.
//!
//! The simulator is execution-driven along the *correct* path: the
//! functional emulator is stepped at fetch time and mispredicted branches
//! stall fetch until they resolve (wrong-path instructions are not
//! fetched — see `DESIGN.md` §5 for the divergence note).

use crate::stats::SimStats;
use hpa_bpred::{Btb, CombinedPredictor, Ras};
use hpa_cache::Hierarchy;
use hpa_emu::{EmuError, Emulator, StepRecord};
use hpa_isa::{FormatClass, Inst, JumpKind, MemWidth, INST_BYTES};
use std::collections::VecDeque;

/// One fetched instruction waiting in the front-end pipe.
#[derive(Clone, Copy, Debug)]
pub struct FetchedInst {
    /// The functional step.
    pub step: StepRecord,
    /// Earliest cycle the instruction may enter the window.
    pub ready_cycle: u64,
    /// Whether fetch mispredicted this (control) instruction and is now
    /// stalled waiting for it to resolve.
    pub mispredicted: bool,
    /// Value the instruction wrote to its destination register, captured
    /// from the emulator at the fetch-time step (f64 results as raw bits).
    pub dest_value: Option<u64>,
    /// For stores: the stored bytes as memory holds them after the step.
    pub mem_data: Option<u64>,
}

/// Pre-trained branch-prediction state for seeding a [`FrontEnd`].
///
/// Sampled simulation fast-forwards in the functional emulator between
/// detailed windows; branch predictor tables hold history spanning far
/// more instructions than a window's warmup can rebuild, so they are
/// *functionally warmed* during the fast-forward instead: [`Self::observe`]
/// applies exactly the training updates [`FrontEnd`] performs at fetch,
/// without the prediction-side effects (predict/lookup are read-only).
#[derive(Clone, Debug)]
pub struct BranchWarmth {
    direction: CombinedPredictor,
    btb: Btb,
    ras: Ras,
}

impl Default for BranchWarmth {
    fn default() -> BranchWarmth {
        BranchWarmth::cold()
    }
}

impl BranchWarmth {
    /// Untrained tables — the state a freshly built [`FrontEnd`] starts
    /// from.
    #[must_use]
    pub fn cold() -> BranchWarmth {
        BranchWarmth {
            direction: CombinedPredictor::table1(),
            btb: Btb::table1(),
            ras: Ras::table1(),
        }
    }

    /// Trains the tables on one functionally executed instruction,
    /// mirroring the update half of `FrontEnd::predict` (same table,
    /// same outcome, same RAS discipline).
    pub fn observe(&mut self, step: &StepRecord) {
        let fallthrough = step.pc + INST_BYTES;
        match step.inst {
            Inst::Branch { .. } | Inst::FBranch { .. } | Inst::BranchCmp { .. } => {
                self.direction.update(step.pc, step.taken);
            }
            Inst::Br { ra, .. } if !ra.is_zero() => {
                self.ras.push(fallthrough);
            }
            Inst::Jump { kind, rt, .. } => {
                match kind {
                    JumpKind::Ret => {
                        self.ras.pop();
                    }
                    JumpKind::Jmp | JumpKind::Jsr => {
                        self.btb.update(step.pc, step.next_pc);
                    }
                }
                if kind == JumpKind::Jsr || (kind == JumpKind::Jmp && !rt.is_zero()) {
                    self.ras.push(fallthrough);
                }
            }
            _ => {}
        }
    }
}

/// The fetch engine and front-end pipe.
#[derive(Clone, Debug)]
pub struct FrontEnd {
    emu: Emulator,
    direction: CombinedPredictor,
    btb: Btb,
    ras: Ras,
    queue: VecDeque<FetchedInst>,
    queue_cap: usize,
    width: u32,
    depth: u32,
    /// Fetch is stalled on an unresolved mispredicted branch.
    stalled: bool,
    /// Fetch resumes at this cycle (mispredict resolution or IL1 miss).
    resume_cycle: u64,
    /// The emulator ran out of instructions (halted).
    done: bool,
}

impl FrontEnd {
    /// Builds the front end around a loaded emulator with cold predictors.
    #[must_use]
    pub fn new(emu: Emulator, width: u32, depth: u32) -> FrontEnd {
        FrontEnd::with_warmth(emu, width, depth, BranchWarmth::cold())
    }

    /// Builds the front end with pre-trained predictor tables — the
    /// sampled-mode path, where fast-forward has already replayed the
    /// branch history the tables would have seen.
    #[must_use]
    pub fn with_warmth(emu: Emulator, width: u32, depth: u32, warmth: BranchWarmth) -> FrontEnd {
        FrontEnd {
            emu,
            direction: warmth.direction,
            btb: warmth.btb,
            ras: warmth.ras,
            queue: VecDeque::new(),
            queue_cap: (width * depth) as usize,
            width,
            depth,
            stalled: false,
            resume_cycle: 0,
            done: false,
        }
    }

    /// The underlying functional machine (architectural state oracle).
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        &self.emu
    }

    /// Whether the emulator has halted and the pipe is drained.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.done && self.queue.is_empty()
    }

    /// Resume fetching (mispredicted branch resolved) at `cycle`.
    pub fn resolve_branch(&mut self, cycle: u64) {
        self.stalled = false;
        self.resume_cycle = self.resume_cycle.max(cycle);
    }

    /// The next instruction eligible to enter the window this cycle, if
    /// any. `pop` after the caller confirms window/LSQ space.
    #[must_use]
    pub fn peek_insertable(&self, cycle: u64) -> Option<&FetchedInst> {
        self.queue.front().filter(|f| f.ready_cycle <= cycle)
    }

    /// Removes the head of the front-end pipe.
    pub fn pop(&mut self) -> Option<FetchedInst> {
        self.queue.pop_front()
    }

    /// Runs one fetch cycle.
    ///
    /// # Errors
    ///
    /// Propagates emulator errors (a kernel bug, not a simulator state).
    pub fn run_cycle(
        &mut self,
        cycle: u64,
        hierarchy: &mut Hierarchy,
        stats: &mut SimStats,
    ) -> Result<(), EmuError> {
        if self.done || self.stalled || cycle < self.resume_cycle {
            return Ok(());
        }
        let line_bytes = hierarchy.il1_line_bytes();
        let mut fetched = 0u32;
        let mut line: Option<u64> = None;
        while fetched < self.width && self.queue.len() < self.queue_cap {
            let pc = self.emu.pc();
            let pc_line = pc & !(line_bytes - 1);
            match line {
                None => {
                    // First access of this cycle: touch the IL1.
                    let lat = hierarchy.inst_fetch(pc);
                    let hit = hierarchy.il1_hit_latency(); // pipelined into fetch
                    if lat > hit {
                        // Miss: the line is now being filled; retry when
                        // the fill completes.
                        self.resume_cycle = cycle + u64::from(lat - hit);
                        return Ok(());
                    }
                    line = Some(pc_line);
                }
                Some(l) if l != pc_line => break, // one line per cycle
                Some(_) => {}
            }

            let Some(step) = self.emu.step()? else {
                self.done = true;
                break;
            };
            fetched += 1;
            stats.fetched += 1;
            record_format_stats(&step.inst, stats);

            if step.inst.is_nop() {
                // Eliminated by the decoder without execution (paper §2.3);
                // consumes a fetch slot only.
                continue;
            }
            if step.inst == Inst::Halt {
                self.done = true;
            }

            let mut mispredicted = false;
            if step.inst.is_control() {
                mispredicted = self.predict(&step, stats);
            }
            self.queue.push_back(FetchedInst {
                step,
                ready_cycle: cycle + u64::from(self.depth),
                mispredicted,
                dest_value: step.inst.dest().map(|d| self.emu.arch_value(d)),
                mem_data: store_image(&self.emu, &step),
            });
            if mispredicted {
                self.stalled = true;
                break;
            }
            if step.inst == Inst::Halt {
                break;
            }
            if step.taken {
                // Fetch stops at the first (predicted-)taken branch in a
                // cycle (paper Table 1).
                break;
            }
        }
        Ok(())
    }

    /// Predicts one control instruction; returns whether fetch goes wrong.
    fn predict(&mut self, step: &StepRecord, stats: &mut SimStats) -> bool {
        let fallthrough = step.pc + INST_BYTES;
        match step.inst {
            Inst::Branch { .. } | Inst::FBranch { .. } | Inst::BranchCmp { .. } => {
                stats.branches += 1;
                let predicted_taken = self.direction.predict(step.pc);
                self.direction.update(step.pc, step.taken);
                // Direct targets come from the decoded instruction; the
                // direction is the speculated part.
                let wrong = predicted_taken != step.taken;
                if wrong {
                    stats.branch_mispredicts += 1;
                }
                wrong
            }
            Inst::Br { ra, .. } => {
                // Unconditional direct branch/call: target known at
                // decode, never mispredicted. Calls push the RAS.
                if !ra.is_zero() {
                    self.ras.push(fallthrough);
                }
                false
            }
            Inst::Jump { kind, rt, .. } => {
                stats.branches += 1;
                let predicted = match kind {
                    JumpKind::Ret => self.ras.pop(),
                    JumpKind::Jmp | JumpKind::Jsr => {
                        let p = self.btb.lookup(step.pc);
                        self.btb.update(step.pc, step.next_pc);
                        p
                    }
                };
                if kind == JumpKind::Jsr || (kind == JumpKind::Jmp && !rt.is_zero()) {
                    self.ras.push(fallthrough);
                }
                let wrong = predicted != Some(step.next_pc);
                if wrong {
                    stats.branch_mispredicts += 1;
                }
                wrong
            }
            _ => false,
        }
    }
}

/// For a store step: the bytes just written, read back from the emulator's
/// memory (zero-extended for sub-quad widths). `None` for non-stores.
fn store_image(emu: &Emulator, step: &StepRecord) -> Option<u64> {
    let addr = step.mem_addr?;
    match step.inst {
        Inst::Store { width, .. } => Some(match width {
            MemWidth::Byte | MemWidth::SByte => u64::from(emu.memory().read_u8(addr)),
            MemWidth::Half | MemWidth::SHalf => u64::from(emu.memory().read_u16(addr)),
            MemWidth::Long | MemWidth::ULong => u64::from(emu.memory().read_u32(addr)),
            MemWidth::Quad => emu.memory().read_u64(addr),
        }),
        Inst::FStore { .. } => Some(emu.memory().read_u64(addr)),
        _ => None,
    }
}

/// Figures 2 and 3 accounting over the dynamic stream.
fn record_format_stats(inst: &Inst, stats: &mut SimStats) {
    let f = &mut stats.format;
    if inst.is_nop() {
        f.nops += 1;
        return;
    }
    match inst.format_class() {
        FormatClass::ZeroSrc => f.zero_src += 1,
        FormatClass::OneSrc => f.one_src += 1,
        FormatClass::Store => f.stores += 1,
        FormatClass::TwoSrc => {
            f.two_src += 1;
            match inst.unique_sources().len() {
                2 => f.two_src_two_unique += 1,
                _ => f.two_src_one_unique += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_cache::HierarchyConfig;
    use hpa_isa::Reg;

    fn front(build: impl FnOnce(&mut Asm)) -> (FrontEnd, Hierarchy, SimStats) {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let emu = Emulator::new(&a.assemble().unwrap());
        (FrontEnd::new(emu, 4, 7), Hierarchy::new(HierarchyConfig::table1()), SimStats::default())
    }

    #[test]
    fn fetch_respects_width_and_depth() {
        let (mut fe, mut h, mut stats) = front(|a| {
            for _ in 0..10 {
                a.add(Reg::R1, Reg::R1, 1);
            }
        });
        // Cycle 0: cold IL1 -> miss, nothing fetched.
        fe.run_cycle(0, &mut h, &mut stats).unwrap();
        assert_eq!(stats.fetched, 0);
        // After the fill (58 cycles for L2+memory), 4 per cycle.
        fe.run_cycle(58, &mut h, &mut stats).unwrap();
        assert_eq!(stats.fetched, 4);
        assert!(fe.peek_insertable(58).is_none(), "front-end depth delays insert");
        assert!(fe.peek_insertable(58 + 7).is_some());
    }

    #[test]
    fn fetch_stops_at_taken_branch_and_line_boundary() {
        let (mut fe, mut h, mut stats) = front(|a| {
            a.add(Reg::R1, Reg::R1, 1);
            a.br("far"); // taken: breaks the fetch group
            for _ in 0..20 {
                a.nop();
            }
            a.label("far");
            a.add(Reg::R1, Reg::R1, 2);
        });
        fe.run_cycle(0, &mut h, &mut stats).unwrap();
        fe.run_cycle(58, &mut h, &mut stats).unwrap();
        assert_eq!(stats.fetched, 2, "add + br, stop at taken branch");
        // The unconditional direct branch is not a misprediction.
        assert_eq!(stats.branch_mispredicts, 0);
    }

    #[test]
    fn mispredicted_branch_stalls_until_resolved() {
        let (mut fe, mut h, mut stats) = front(|a| {
            a.li(Reg::R1, 0);
            a.beq(Reg::R1, "t"); // taken; cold predictor says not-taken
            a.nop();
            a.label("t");
            a.add(Reg::R2, Reg::R2, 1);
        });
        fe.run_cycle(0, &mut h, &mut stats).unwrap(); // cold IL1 miss
        fe.run_cycle(58, &mut h, &mut stats).unwrap();
        assert_eq!(stats.branch_mispredicts, 1);
        let before = stats.fetched;
        fe.run_cycle(59, &mut h, &mut stats).unwrap();
        assert_eq!(stats.fetched, before, "stalled");
        fe.resolve_branch(70);
        fe.run_cycle(69, &mut h, &mut stats).unwrap();
        assert_eq!(stats.fetched, before, "resume cycle not reached");
        fe.run_cycle(70, &mut h, &mut stats).unwrap();
        assert!(stats.fetched > before);
    }

    #[test]
    fn nops_are_counted_but_not_queued() {
        let (mut fe, mut h, mut stats) = front(|a| {
            a.nop();
            a.nop();
            a.add(Reg::R1, Reg::R1, 1);
        });
        fe.run_cycle(0, &mut h, &mut stats).unwrap(); // cold IL1 miss
        fe.run_cycle(58, &mut h, &mut stats).unwrap();
        assert_eq!(stats.fetched, 4, "2 nops + add + halt");
        assert_eq!(stats.format.nops, 2);
        let mut n = 0;
        while fe.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 2, "add + halt only");
    }

    #[test]
    fn warmed_tables_predict_what_cold_tables_miss() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0);
        a.beq(Reg::R1, "t"); // always taken; a cold predictor says not-taken
        a.nop();
        a.label("t");
        a.add(Reg::R2, Reg::R2, 1);
        a.halt();
        let program = a.assemble().unwrap();
        // Functionally warm the tables over a few passes, the way sampled
        // fast-forward does.
        let mut warm = BranchWarmth::cold();
        for _ in 0..4 {
            let mut emu = Emulator::new(&program);
            while let Some(step) = emu.step().unwrap() {
                warm.observe(&step);
            }
        }
        let mut fe = FrontEnd::with_warmth(Emulator::new(&program), 4, 7, warm);
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        let mut stats = SimStats::default();
        for c in 0..200 {
            fe.run_cycle(c, &mut h, &mut stats).unwrap();
            while fe.pop().is_some() {}
        }
        assert!(stats.branches >= 1);
        assert_eq!(stats.branch_mispredicts, 0, "warmth carries the taken history");
    }

    #[test]
    fn ras_predicts_returns() {
        let (mut fe, mut h, mut stats) = front(|a| {
            a.bsr(Reg::R26, "f");
            a.add(Reg::R1, Reg::R1, 1);
            a.br("end");
            a.label("f");
            a.ret(Reg::R26);
            a.label("end");
        });
        // Drive fetch for plenty of cycles.
        for c in 0..200 {
            fe.run_cycle(c, &mut h, &mut stats).unwrap();
            while fe.pop().is_some() {}
        }
        // The return must be predicted by the RAS: no mispredicts at all.
        assert_eq!(stats.branch_mispredicts, 0, "RAS covers the return");
    }

    #[test]
    fn indirect_jump_trains_btb() {
        let (mut fe, mut h, mut stats) = front(|a| {
            a.la(Reg::R2, "t");
            // Two identical indirect jumps; first misses BTB, second hits.
            a.label("t");
            a.add(Reg::R1, Reg::R1, 1);
            a.cmplt(Reg::R3, Reg::R1, 3);
            a.la(Reg::R2, "t");
            a.bne(Reg::R3, "spin");
            a.br("end");
            a.label("spin");
            a.jmp(Reg::R2);
            a.br("end");
            a.label("end");
        });
        for c in 0..400 {
            fe.run_cycle(c, &mut h, &mut stats).unwrap();
            while fe.pop().is_some() {}
            fe.resolve_branch(c + 1); // resolve instantly for this test
        }
        assert!(fe.drained());
        // The jmp executes twice: first misses the BTB, second hits.
        assert!(stats.branch_mispredicts >= 1);
        assert!(stats.branch_mispredicts < stats.branches);
    }
}
