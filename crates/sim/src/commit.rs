//! The commit hook: an instruction-by-instruction view of the retire
//! stream, for lockstep co-simulation oracles.
//!
//! The simulator is execution-driven — architectural state always comes
//! from the functional emulator stepped at fetch — so a timing bug cannot
//! silently corrupt register or memory *values*. What a timing bug *can*
//! do is corrupt the retire stream itself: drop, duplicate or reorder a
//! commit, retire past a halt, or deadlock. A [`CommitHook`] observes
//! every committed instruction in program order and can veto the run by
//! returning an error, which surfaces as
//! [`SimFault::Hook`](crate::SimFault::Hook) with a pipeline-state dump.

use hpa_isa::{ArchReg, Inst};

/// Everything the simulator knows about one committed instruction, in
/// retirement (program) order.
///
/// The value fields (`dest_value`, `mem_data`) are captured from the
/// functional emulator when the instruction executed, so a hook can check
/// them against an independent shadow emulator without re-deriving them
/// from pipeline state.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CommitRecord {
    /// Global sequence number (program order, nops excluded).
    pub seq: u64,
    /// Cycle the instruction committed.
    pub cycle: u64,
    /// Fetch address.
    pub pc: u64,
    /// The committed instruction.
    pub inst: Inst,
    /// Architectural next PC.
    pub next_pc: u64,
    /// For control instructions: whether the transfer was taken.
    pub taken: bool,
    /// For loads/stores: the effective byte address.
    pub mem_addr: Option<u64>,
    /// Destination register, if the instruction writes one.
    pub dest: Option<ArchReg>,
    /// Value written to `dest` (f64 results as raw bits).
    pub dest_value: Option<u64>,
    /// For stores: the memory image of the stored bytes (zero-extended to
    /// 64 bits for sub-quad widths).
    pub mem_data: Option<u64>,
}

/// An observer of the retire stream.
///
/// Attached with [`Simulator::set_commit_hook`](crate::Simulator::set_commit_hook)
/// and invoked once per committed instruction, in program order. Returning
/// `Err` stops the simulation at that commit and surfaces the reason as a
/// [`SimFault::Hook`](crate::SimFault::Hook) from
/// [`Simulator::try_run`](crate::Simulator::try_run).
pub trait CommitHook: std::fmt::Debug {
    /// Observes one committed instruction.
    ///
    /// # Errors
    ///
    /// A description of the divergence, if the hook rejects the commit.
    fn on_commit(&mut self, rec: &CommitRecord) -> Result<(), String>;

    /// Clones the hook behind the trait object (`Simulator` is `Clone`).
    fn box_clone(&self) -> Box<dyn CommitHook>;
}

impl Clone for Box<dyn CommitHook> {
    fn clone(&self) -> Box<dyn CommitHook> {
        self.box_clone()
    }
}
