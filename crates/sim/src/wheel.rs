//! A cycle-indexed ring-buffer event wheel.
//!
//! The pipeline schedules every future action (tag broadcasts, cache
//! accesses, completions) a bounded number of cycles ahead — at most the
//! memory round-trip plus the deepest register-file pipe, well under the
//! wheel's 256-slot horizon. A `HashMap<u64, Vec<_>>` keyed by cycle (the
//! previous implementation) pays hashing on every schedule and allocates a
//! fresh `Vec` per active cycle; the wheel replaces both with a direct
//! index into a fixed slot array, and [`EventWheel::pop_into`] recycles
//! the caller's scratch buffer through the slots so the steady state
//! performs no allocation at all.
//!
//! Events scheduled beyond the horizon (possible in principle, never in
//! the shipped pipeline) spill to an overflow list and migrate into slots
//! as the wheel turns, preserving schedule order within each cycle.

/// Number of slots in the wheel. Power of two, comfortably above the
/// longest schedule distance the pipeline uses (a memory-latency load plus
/// pipeline offsets, ~60 cycles).
const WHEEL_SLOTS: usize = 256;

/// A monotonic, cycle-indexed queue of `T`, drained one cycle at a time.
///
/// Semantics match a `HashMap<u64, Vec<T>>` future-event map: items
/// scheduled for the same cycle come back in schedule order, and each
/// cycle is drained exactly once, in increasing cycle order.
#[derive(Clone, Debug)]
pub struct EventWheel<T> {
    /// `slots[c % WHEEL_SLOTS]` holds the items for cycle `c` when `c` is
    /// within the horizon of the last drained cycle.
    slots: Box<[Vec<T>]>,
    /// The next cycle [`EventWheel::pop_into`] expects to drain; items for
    /// earlier cycles no longer exist.
    cursor: u64,
    /// Items scheduled `>= cursor + WHEEL_SLOTS` cycles ahead, in schedule
    /// order, migrated into slots as the cursor advances.
    overflow: Vec<(u64, T)>,
    /// Smallest cycle present in `overflow` (`u64::MAX` when empty), so
    /// the hot path skips the overflow scan with one compare.
    overflow_min: u64,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        EventWheel {
            slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
        }
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel positioned at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `item` for `cycle`.
    ///
    /// `cycle` must not precede the wheel's position (the pipeline only
    /// ever schedules strictly into the future); debug builds assert this.
    pub fn schedule(&mut self, cycle: u64, item: T) {
        debug_assert!(cycle >= self.cursor, "scheduling into the past: {cycle} < {}", self.cursor);
        if cycle - self.cursor < WHEEL_SLOTS as u64 {
            self.slots[(cycle as usize) % WHEEL_SLOTS].push(item);
        } else {
            self.overflow_min = self.overflow_min.min(cycle);
            self.overflow.push((cycle, item));
        }
    }

    /// Drains every item scheduled for `cycle` into `out` (cleared first),
    /// advancing the wheel to `cycle + 1`.
    ///
    /// The slot's buffer and `out` are swapped rather than copied, so a
    /// caller that reuses one scratch `Vec` per wheel keeps the whole
    /// drain loop allocation-free after warmup.
    ///
    /// Cycles must be drained in non-decreasing order; debug builds
    /// assert it. Skipped cycles (the pipeline never skips any) would
    /// leave their items in place to be mis-delivered a lap later, so the
    /// assert is load-bearing for correctness of unusual callers.
    pub fn pop_into(&mut self, cycle: u64, out: &mut Vec<T>) {
        debug_assert!(cycle >= self.cursor, "draining the past: {cycle} < {}", self.cursor);
        // Migrate overflow items that fall inside the new horizon before
        // touching the slot, so same-cycle order stays schedule order
        // (anything in-horizon was necessarily scheduled later).
        if self.overflow_min < cycle + WHEEL_SLOTS as u64 {
            let pending = std::mem::take(&mut self.overflow);
            self.overflow_min = u64::MAX;
            for (c, item) in pending {
                if c < cycle + WHEEL_SLOTS as u64 {
                    debug_assert!(c >= cycle, "overflow item expired undelivered");
                    self.slots[(c as usize) % WHEEL_SLOTS].push(item);
                } else {
                    self.overflow_min = self.overflow_min.min(c);
                    self.overflow.push((c, item));
                }
            }
        }
        self.cursor = cycle + 1;
        out.clear();
        std::mem::swap(&mut self.slots[(cycle as usize) % WHEEL_SLOTS], out);
    }

    /// Whether no items remain anywhere in the wheel.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overflow.is_empty() && self.slots.iter().all(Vec::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains one cycle into a fresh buffer.
    fn drain(w: &mut EventWheel<u32>, cycle: u64) -> Vec<u32> {
        let mut out = Vec::new();
        w.pop_into(cycle, &mut out);
        out
    }

    #[test]
    fn delivers_at_scheduled_cycle() {
        let mut w = EventWheel::new();
        w.schedule(3, 30);
        w.schedule(1, 10);
        for c in 0..6 {
            let got = drain(&mut w, c);
            match c {
                1 => assert_eq!(got, [10]),
                3 => assert_eq!(got, [30]),
                _ => assert!(got.is_empty(), "cycle {c}: {got:?}"),
            }
        }
        assert!(w.is_empty());
    }

    /// The satellite wrap-around test: scheduling and draining across many
    /// multiples of the slot count reuses slots without cross-talk.
    #[test]
    fn wraps_around_the_horizon() {
        let mut w = EventWheel::new();
        let span = (WHEEL_SLOTS as u64) * 5 + 7;
        let mut cursor = 0;
        while cursor < span {
            // From each cycle, schedule at the far edge of the horizon.
            let target = cursor + WHEEL_SLOTS as u64 - 1;
            w.schedule(target, target as u32);
            let got = drain(&mut w, cursor);
            if cursor >= WHEEL_SLOTS as u64 - 1 {
                assert_eq!(got, [cursor as u32], "cycle {cursor}");
            } else {
                assert!(got.is_empty(), "cycle {cursor}: {got:?}");
            }
            cursor += 1;
        }
    }

    /// Items scheduled for the same cycle come back in schedule order,
    /// exactly like the `HashMap<u64, Vec<T>>` it replaces.
    #[test]
    fn same_cycle_items_keep_schedule_order() {
        let mut w = EventWheel::new();
        w.schedule(5, 1);
        w.schedule(2, 99);
        w.schedule(5, 2);
        w.schedule(5, 3);
        assert!(drain(&mut w, 0).is_empty());
        assert!(drain(&mut w, 1).is_empty());
        assert_eq!(drain(&mut w, 2), [99]);
        assert!(drain(&mut w, 3).is_empty());
        assert!(drain(&mut w, 4).is_empty());
        assert_eq!(drain(&mut w, 5), [1, 2, 3]);
    }

    /// The satellite beyond-capacity test: items past the horizon spill to
    /// overflow, migrate as the wheel turns, and still deliver on the
    /// right cycle in schedule order.
    #[test]
    fn far_future_items_survive_overflow() {
        let mut w = EventWheel::new();
        let far = WHEEL_SLOTS as u64 * 3 + 11;
        w.schedule(far, 7); // beyond the horizon: overflow
        w.schedule(1, 1);
        for c in 0..=far {
            let got = drain(&mut w, c);
            match c {
                1 => assert_eq!(got, [1]),
                c if c == far => assert_eq!(got, [7]),
                _ => assert!(got.is_empty(), "cycle {c}: {got:?}"),
            }
        }
        assert!(w.is_empty());
    }

    /// Overflow + in-horizon items for one cycle interleave in schedule
    /// order across the migration.
    #[test]
    fn overflow_migration_preserves_order() {
        let mut w = EventWheel::new();
        let far = WHEEL_SLOTS as u64 + 40;
        w.schedule(far, 1); // overflow at schedule time
        let mut out = Vec::new();
        for c in 0..=60 {
            w.pop_into(c, &mut out);
            assert!(out.is_empty());
        }
        w.schedule(far, 2); // now in-horizon
        for c in 61..far {
            w.pop_into(c, &mut out);
            assert!(out.is_empty());
        }
        w.pop_into(far, &mut out);
        assert_eq!(out, [1, 2]);
        assert!(w.is_empty());
    }

    /// The watchdog scenario: a run cut off at a cycle budget stops
    /// draining mid-lap, right past a wrap of the slot array. Everything
    /// due before the budget must have been delivered on its exact cycle;
    /// items scheduled beyond the budget stay queued (visible to
    /// `is_empty`) and deliver correctly if draining resumes.
    #[test]
    fn budget_boundary_cut_mid_wrap_keeps_future_items() {
        let mut w = EventWheel::new();
        // A budget just past a slot-count multiple, so the final drained
        // cycle sits in a freshly reused slot.
        let budget = WHEEL_SLOTS as u64 * 2 + 3;
        let before = budget - 1;
        let after = budget + 5;
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        for c in 0..budget {
            // Keep scheduling one-cycle-ahead traffic as the wheel turns,
            // like broadcasts do, plus the two probes around the budget.
            if c == 0 {
                w.schedule(before, 111);
                w.schedule(after, 999); // overflow at schedule time
            }
            w.schedule(c + 1, c as u32);
            w.pop_into(c, &mut out);
            delivered.extend(out.iter().copied());
        }
        // The pre-budget probe and every 1-ahead event up to the cut.
        assert!(delivered.contains(&111));
        assert_eq!(delivered.len(), budget as usize); // budget-1 ticks + probe
                                                      // The post-budget probe (and the last 1-ahead event) survive the cut.
        assert!(!w.is_empty(), "items past the budget are still queued");
        for c in budget..=after {
            w.pop_into(c, &mut out);
            if c == after {
                assert_eq!(out, [999]);
            }
        }
        assert!(w.is_empty());
    }

    /// Draining and delivering exactly at a slot-count multiple exercises
    /// the modulo index at the wrap point itself.
    #[test]
    fn delivery_exactly_on_the_wrap_cycle() {
        let mut w = EventWheel::new();
        let mut out = Vec::new();
        for lap in 1..=3u64 {
            let wrap = WHEEL_SLOTS as u64 * lap;
            w.schedule(wrap, lap as u32);
        }
        for c in 0..=WHEEL_SLOTS as u64 * 3 {
            w.pop_into(c, &mut out);
            if c % WHEEL_SLOTS as u64 == 0 && c > 0 {
                assert_eq!(out, [(c / WHEEL_SLOTS as u64) as u32], "cycle {c}");
            } else {
                assert!(out.is_empty(), "cycle {c}: {out:?}");
            }
        }
        assert!(w.is_empty());
    }

    /// The scratch buffer swap keeps capacity flowing between caller and
    /// slots — no per-cycle allocation once warm.
    #[test]
    fn pop_into_recycles_the_scratch_buffer() {
        let mut w = EventWheel::new();
        let mut out = Vec::with_capacity(64);
        w.schedule(0, 5);
        w.pop_into(0, &mut out);
        assert_eq!(out, [5]);
        // The wheel took the 64-capacity buffer; the slot hands it back
        // next lap.
        w.schedule(WHEEL_SLOTS as u64, 6);
        for c in 1..WHEEL_SLOTS as u64 {
            w.pop_into(c, &mut out);
        }
        w.pop_into(WHEEL_SLOTS as u64, &mut out);
        assert_eq!(out, [6]);
        assert!(out.capacity() >= 64, "recycled capacity came back");
    }
}
