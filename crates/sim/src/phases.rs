//! Per-phase wall-time accounting for the cycle loop.
//!
//! The simulator's six phases (plus observability and end-of-cycle
//! bookkeeping) can each be timed with host stopwatches so a throughput
//! regression is attributable to a phase from the benchmark JSON alone,
//! instead of guessed at from the aggregate number. Timing is off by
//! default — the stopwatch reads would otherwise perturb the measurement
//! they exist to explain — and is enabled per run by
//! [`Simulator::enable_phase_timing`](crate::Simulator::enable_phase_timing).

/// Wall-clock nanoseconds accumulated per pipeline phase over a timed run.
///
/// `fetch`/`insert` are the front end (emulator stepping, branch
/// prediction, rename), `wakeup`/`select` the scheduler, `events` the
/// execute/writeback event wheel (cache access, replay, completion),
/// `commit` retirement, `obs` the CPI-stack attribution (zero unless
/// counters are on), and `other` the end-of-cycle bookkeeping (injection
/// arming and strict-invariant sweeps; zero in normal runs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PhaseTimes {
    /// Tag-broadcast delivery (the wakeup matrix walk).
    pub wakeup_ns: u64,
    /// Ready-candidate scan, arbitration and issue.
    pub select_ns: u64,
    /// Execute/writeback events: TE verification, cache access, replay,
    /// completion.
    pub events_ns: u64,
    /// In-order retirement (and commit hooks, when attached).
    pub commit_ns: u64,
    /// Front-end fetch: emulator stepping, branch prediction, IL1.
    pub fetch_ns: u64,
    /// Rename and window insertion.
    pub insert_ns: u64,
    /// End-of-cycle CPI attribution (only when counters are enabled).
    pub obs_ns: u64,
    /// Everything else: cycle bookkeeping, injection arming, invariant
    /// sweeps.
    pub other_ns: u64,
    /// Cycles covered by the accumulators.
    pub cycles: u64,
}

impl PhaseTimes {
    /// Phase labels and accumulated nanoseconds, in pipeline order —
    /// the iteration order used by reports and the benchmark JSON.
    #[must_use]
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        [
            ("wakeup", self.wakeup_ns),
            ("select", self.select_ns),
            ("events", self.events_ns),
            ("commit", self.commit_ns),
            ("fetch", self.fetch_ns),
            ("insert", self.insert_ns),
            ("obs", self.obs_ns),
            ("other", self.other_ns),
        ]
    }

    /// Total nanoseconds across all phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.entries().iter().map(|(_, ns)| ns).sum()
    }

    /// One phase's share of the total, in `[0, 1]` (0 when nothing was
    /// timed).
    #[must_use]
    pub fn share(&self, ns: u64) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            ns as f64 / total as f64
        }
    }

    /// Merges another accumulator into this one (for summing timed runs
    /// across workloads or schemes).
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.wakeup_ns += other.wakeup_ns;
        self.select_ns += other.select_ns;
        self.events_ns += other.events_ns;
        self.commit_ns += other.commit_ns;
        self.fetch_ns += other.fetch_ns;
        self.insert_ns += other.insert_ns;
        self.obs_ns += other.obs_ns;
        self.other_ns += other.other_ns;
        self.cycles += other.cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_cover_every_accumulator() {
        let t = PhaseTimes {
            wakeup_ns: 1,
            select_ns: 2,
            events_ns: 3,
            commit_ns: 4,
            fetch_ns: 5,
            insert_ns: 6,
            obs_ns: 7,
            other_ns: 8,
            cycles: 9,
        };
        assert_eq!(t.total_ns(), 36);
        assert_eq!(t.entries().len(), 8);
        assert!((t.share(18) - 0.5).abs() < 1e-12);
        assert_eq!(PhaseTimes::default().share(0), 0.0);
    }

    #[test]
    fn accumulate_sums_fieldwise() {
        let mut a = PhaseTimes { wakeup_ns: 1, cycles: 10, ..PhaseTimes::default() };
        let b = PhaseTimes { wakeup_ns: 2, select_ns: 5, cycles: 20, ..PhaseTimes::default() };
        a.accumulate(&b);
        assert_eq!(a.wakeup_ns, 3);
        assert_eq!(a.select_ns, 5);
        assert_eq!(a.cycles, 30);
    }
}
