//! The structure-of-arrays instruction window: a fixed-capacity slot
//! arena plus flat bitset columns for the scheduler's hot state.
//!
//! # Layout
//!
//! The window holds the contiguous sequence range `[head_seq,
//! head_seq + len)`. Capacity is rounded up to a power of two and every
//! instruction lives in the arena slot `seq & (capacity - 1)` — since the
//! resident range never exceeds the capacity, the mapping is injective
//! and a lookup is one mask and one bounds check (no per-window linear
//! walk, no `VecDeque` offset arithmetic).
//!
//! Alongside the arena, per-slot *columns* carry the fields the wakeup
//! and select phases scan every cycle:
//!
//! * [`SlotBitset`] — one bit per slot, stored as `u64` words. The ready
//!   set, the high-priority (loads/branches) set, and each wakeup-matrix
//!   row are all this type, so "find the candidates" is word-wide
//!   AND/OR plus count-trailing-zeros iteration instead of a
//!   sort of a `Vec` of sequence numbers.
//! * [`WakeupMatrix`] — the paper's CAM rows, transposed into bitset
//!   form: row `(producer slot, operand index)` holds one bit per
//!   consumer slot whose that operand names the producer. Tag broadcast
//!   walks two rows instead of a heap-allocated consumer list, and the
//!   per-instruction `Vec<u64>` of consumers (one allocation per rename)
//!   disappears entirely.
//!
//! # Ordering
//!
//! Select and wakeup delivery are oldest-first ordered, and the stats and
//! fault-injection layers count events in that order, so bit iteration
//! must yield slots in *sequence* order — which is ring order starting at
//! the head's slot, not plain ascending-slot order. [`SlotBitset::
//! for_each_from`] iterates the two contiguous slot spans `[head_slot,
//! capacity)` then `[0, head_slot)` with masked words and trailing-zero
//! scans, which visits resident instructions exactly in ascending `seq`.

use crate::dyninst::{DynInst, IState};

/// Values of the per-slot lifecycle column ([`Window::state`]).
pub(crate) mod slot_state {
    /// No resident instruction in the slot.
    pub(crate) const EMPTY: u8 = 0;
    /// Mirrors [`crate::dyninst::IState::Waiting`].
    pub(crate) const WAITING: u8 = 1;
    /// Mirrors [`crate::dyninst::IState::Issued`].
    pub(crate) const ISSUED: u8 = 2;
    /// Mirrors [`crate::dyninst::IState::Completed`].
    pub(crate) const COMPLETED: u8 = 3;
}

/// Bits of the per-slot classification column ([`Window::flags`]).
pub(crate) mod slot_flags {
    /// The instruction is a load (select must consult the stWait table).
    pub(crate) const LOAD: u8 = 1;
    /// Select's high-priority class (loads and control transfers).
    pub(crate) const HIGH_PRIORITY: u8 = 2;
}

/// The column encoding of a lifecycle state.
pub(crate) fn state_code(s: IState) -> u8 {
    match s {
        IState::Waiting => slot_state::WAITING,
        IState::Issued => slot_state::ISSUED,
        IState::Completed => slot_state::COMPLETED,
    }
}

/// One bit per window slot, packed into `u64` words.
#[derive(Clone, Debug)]
pub(crate) struct SlotBitset {
    words: Box<[u64]>,
    capacity: usize,
}

impl SlotBitset {
    /// An empty set over `capacity` slots (`capacity` must be a multiple
    /// of 64 or less than 64; the window rounds to a power of two).
    pub(crate) fn new(capacity: usize) -> SlotBitset {
        SlotBitset { words: vec![0u64; capacity.div_ceil(64)].into_boxed_slice(), capacity }
    }

    #[inline]
    pub(crate) fn set(&mut self, slot: usize) {
        debug_assert!(slot < self.capacity);
        self.words[slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline]
    pub(crate) fn clear(&mut self, slot: usize) {
        debug_assert!(slot < self.capacity);
        self.words[slot / 64] &= !(1u64 << (slot % 64));
    }

    #[inline]
    pub(crate) fn test(&self, slot: usize) -> bool {
        debug_assert!(slot < self.capacity);
        self.words[slot / 64] & (1u64 << (slot % 64)) != 0
    }

    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Calls `f` for every set slot in ring order starting at `from`:
    /// slots `[from, capacity)` first, then `[0, from)`. With `from` the
    /// head's slot this is exactly ascending sequence order over the
    /// resident window — a masked word walk with trailing-zero scans.
    pub(crate) fn for_each_from(&self, from: usize, mut f: impl FnMut(usize)) {
        debug_assert!(from < self.capacity.max(1));
        let span = |words: &[u64], lo: usize, hi: usize, f: &mut dyn FnMut(usize)| {
            if lo >= hi {
                return;
            }
            let (w0, w1) = (lo / 64, (hi - 1) / 64);
            for (wi, &word) in words.iter().enumerate().take(w1 + 1).skip(w0) {
                let mut w = word;
                if wi == w0 {
                    w &= !0u64 << (lo % 64);
                }
                if wi == w1 && !hi.is_multiple_of(64) {
                    w &= !0u64 >> (64 - hi % 64);
                }
                while w != 0 {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    f(wi * 64 + b);
                }
            }
        };
        span(&self.words, from, self.capacity, &mut f);
        span(&self.words, 0, from, &mut f);
    }

    /// The set slots in ring order from `from`, collected (test helper).
    #[cfg(test)]
    pub(crate) fn collect_from(&self, from: usize) -> Vec<usize> {
        let mut v = Vec::new();
        self.for_each_from(from, |s| v.push(s));
        v
    }
}

/// The wakeup CAM transposed into bitset rows: for each producer slot and
/// operand index, one bit per consumer slot whose that operand names the
/// producer. Rows are registered at rename, walked at tag broadcast, and
/// cleared when the producer's slot is released — a consumer always
/// outlives none of its producers (producers are strictly older and the
/// window retires in order), so released rows can never orphan a live
/// consumer bit.
#[derive(Clone, Debug)]
pub(crate) struct WakeupMatrix {
    /// `2 * capacity` rows of `words_per_row` words each, producer-major:
    /// row `(slot, src)` starts at `(slot * 2 + src) * words_per_row`.
    rows: Box<[u64]>,
    words_per_row: usize,
}

impl WakeupMatrix {
    pub(crate) fn new(capacity: usize) -> WakeupMatrix {
        let words_per_row = capacity.div_ceil(64);
        WakeupMatrix {
            rows: vec![0u64; 2 * capacity * words_per_row].into_boxed_slice(),
            words_per_row,
        }
    }

    #[inline]
    fn row_range(&self, producer_slot: usize, src: usize) -> std::ops::Range<usize> {
        let start = (producer_slot * 2 + src) * self.words_per_row;
        start..start + self.words_per_row
    }

    /// Registers `consumer_slot`'s operand `src` as fed by `producer_slot`.
    #[inline]
    pub(crate) fn register(&mut self, producer_slot: usize, src: usize, consumer_slot: usize) {
        let r = self.row_range(producer_slot, src).start;
        self.rows[r + consumer_slot / 64] |= 1u64 << (consumer_slot % 64);
    }

    #[inline]
    pub(crate) fn is_registered(
        &self,
        producer_slot: usize,
        src: usize,
        consumer_slot: usize,
    ) -> bool {
        let r = self.row_range(producer_slot, src).start;
        self.rows[r + consumer_slot / 64] & (1u64 << (consumer_slot % 64)) != 0
    }

    /// Clears both operand rows of a producer slot (on slot release).
    pub(crate) fn clear_rows(&mut self, producer_slot: usize) {
        for src in 0..2 {
            let range = self.row_range(producer_slot, src);
            self.rows[range].fill(0);
        }
    }

    /// Walks the producer's consumers in ring order from `from` (the
    /// head's slot, i.e. ascending sequence order), calling
    /// `f(consumer_slot, src)` once per registered operand — for a
    /// consumer with both operands on this producer, `src = 0` then
    /// `src = 1`, exactly the order rename registered them.
    pub(crate) fn for_each_consumer(
        &self,
        producer_slot: usize,
        from: usize,
        mut f: impl FnMut(usize, usize),
    ) {
        let r0 = self.row_range(producer_slot, 0);
        let r1 = self.row_range(producer_slot, 1);
        let capacity = self.words_per_row * 64;
        let rows = &self.rows;
        let mut visit = |lo: usize, hi: usize| {
            if lo >= hi {
                return;
            }
            let (w0, w1) = (lo / 64, (hi - 1) / 64);
            for wi in w0..=w1 {
                let mut head_mask = !0u64;
                if wi == w0 {
                    head_mask &= !0u64 << (lo % 64);
                }
                if wi == w1 && !hi.is_multiple_of(64) {
                    head_mask &= !0u64 >> (64 - hi % 64);
                }
                let word0 = rows[r0.start + wi] & head_mask;
                let word1 = rows[r1.start + wi] & head_mask;
                let mut union = word0 | word1;
                while union != 0 {
                    let b = union.trailing_zeros() as usize;
                    union &= union - 1;
                    let slot = wi * 64 + b;
                    if word0 & (1u64 << b) != 0 {
                        f(slot, 0);
                    }
                    if word1 & (1u64 << b) != 0 {
                        f(slot, 1);
                    }
                }
            }
        };
        visit(from, capacity);
        visit(0, from);
    }
}

/// The fixed-capacity structure-of-arrays instruction window (see the
/// module docs for the layout).
#[derive(Clone, Debug)]
pub(crate) struct Window {
    slots: Box<[Option<DynInst>]>,
    /// Lifecycle column: one [`slot_state`] byte per slot, written by
    /// `push_back_with`/`drop_front` and kept in lockstep with the resident
    /// instructions' `state` by the pipeline (a whole arena's worth fits
    /// in two cache lines, so the select scan never touches the records).
    pub(crate) state: Box<[u8]>,
    /// Static classification column ([`slot_flags`] bits), written at
    /// insert; read by the select scan for priority and stWait routing.
    pub(crate) flags: Box<[u8]>,
    /// Fetch-address column: the resident instruction's PC, for stWait
    /// table lookups without touching the arena record.
    pub(crate) pcs: Box<[u64]>,
    mask: u64,
    head_seq: u64,
    len: usize,
}

impl Window {
    /// A window able to hold `ruu_size` instructions; the arena is
    /// rounded up to the next power of two so `seq & mask` is the slot.
    pub(crate) fn new(ruu_size: usize) -> Window {
        let cap = ruu_size.next_power_of_two().max(1);
        Window {
            slots: std::iter::repeat_with(|| None).take(cap).collect(),
            state: vec![slot_state::EMPTY; cap].into_boxed_slice(),
            flags: vec![0u8; cap].into_boxed_slice(),
            pcs: vec![0u64; cap].into_boxed_slice(),
            mask: cap as u64 - 1,
            head_seq: 0,
            len: 0,
        }
    }

    /// The arena capacity (a power of two, >= the RUU size).
    pub(crate) fn arena_capacity(&self) -> usize {
        self.slots.len()
    }

    /// The arena slot of a sequence number.
    #[inline]
    pub(crate) fn slot_of(&self, seq: u64) -> usize {
        (seq & self.mask) as usize
    }

    /// The slot holding the oldest resident instruction.
    #[inline]
    pub(crate) fn head_slot(&self) -> usize {
        self.slot_of(self.head_seq)
    }

    /// The oldest resident sequence number (== the next to commit).
    #[inline]
    pub(crate) fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// The sequence number resident in `slot`, if any — pure ring
    /// arithmetic, no arena access: the slot's distance from the head
    /// slot equals its seq's distance from the head seq.
    #[inline]
    pub(crate) fn seq_at(&self, slot: usize) -> Option<u64> {
        let dist = (slot as u64).wrapping_sub(self.head_seq) & self.mask;
        (dist < self.len as u64).then(|| self.head_seq + dist)
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn resident(&self, seq: u64) -> bool {
        seq >= self.head_seq && seq - self.head_seq < self.len as u64
    }

    /// The instruction with sequence number `seq`, if resident.
    #[inline]
    pub(crate) fn get(&self, seq: u64) -> Option<&DynInst> {
        if self.resident(seq) {
            self.slots[self.slot_of(seq)].as_ref()
        } else {
            None
        }
    }

    /// Mutable access by sequence number, if resident.
    #[inline]
    pub(crate) fn get_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        if self.resident(seq) {
            let slot = self.slot_of(seq);
            self.slots[slot].as_mut()
        } else {
            None
        }
    }

    /// The instruction in `slot`, if occupied (no residency check — the
    /// caller got the slot from a column bitset, which only holds
    /// resident slots).
    #[inline]
    pub(crate) fn by_slot(&self, slot: usize) -> Option<&DynInst> {
        self.slots[slot].as_ref()
    }

    /// Mutable access by arena slot, if occupied.
    #[inline]
    pub(crate) fn by_slot_mut(&mut self, slot: usize) -> Option<&mut DynInst> {
        self.slots[slot].as_mut()
    }

    /// The oldest resident instruction.
    #[inline]
    pub(crate) fn front(&self) -> Option<&DynInst> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head_slot()].as_ref()
        }
    }

    /// The youngest resident instruction (test staging helper).
    #[cfg(test)]
    pub(crate) fn back_mut(&mut self) -> Option<&mut DynInst> {
        if self.len == 0 {
            None
        } else {
            let slot = self.slot_of(self.head_seq + self.len as u64 - 1);
            self.slots[slot].as_mut()
        }
    }

    /// Appends the next-youngest instruction. Its `seq` must be the next
    /// in sequence and the arena must have room.
    #[cfg(test)]
    pub(crate) fn push_back(&mut self, di: DynInst) {
        let seq = di.seq;
        self.push_back_with(seq, || di);
    }

    /// Appends the next-youngest instruction, built by `f` directly into
    /// the arena slot. `f` must return a record whose `seq` is the next in
    /// sequence; the arena must have room.
    ///
    /// The closure-shaped API lets the insert path construct the ~300-byte
    /// record once, in place, instead of building it on the stack and
    /// moving it in. Returns the resident record so the caller can finish
    /// scheme-dependent setup (ready-list enqueue) against the final copy.
    pub(crate) fn push_back_with(&mut self, seq: u64, f: impl FnOnce() -> DynInst) -> &mut DynInst {
        debug_assert_eq!(seq, self.head_seq + self.len as u64, "window seqs are contiguous");
        debug_assert!(self.len < self.slots.len(), "arena overfull");
        let slot = self.slot_of(seq);
        debug_assert!(self.slots[slot].is_none(), "slot not released");
        self.slots[slot] = Some(f());
        self.len += 1;
        let di = self.slots[slot].as_mut().expect("just written");
        debug_assert_eq!(di.seq, seq, "record seq matches the reserved slot");
        self.state[slot] = state_code(di.state);
        self.flags[slot] = u8::from(di.is_load()) * slot_flags::LOAD
            + u8::from(di.high_priority()) * slot_flags::HIGH_PRIORITY;
        self.pcs[slot] = di.pc;
        di
    }

    /// Releases the oldest instruction in place, advancing `head_seq`.
    ///
    /// The commit path reads the handful of fields it needs through
    /// [`Window::front`] and then drops the slot here; unlike a
    /// `pop_front().take()` would, this never moves the ~300-byte record
    /// out of the arena (`DynInst` has no drop glue, so the overwrite
    /// compiles to a discriminant store).
    pub(crate) fn drop_front(&mut self) {
        debug_assert!(self.len > 0, "drop_front on empty window");
        let slot = self.head_slot();
        debug_assert!(self.slots[slot].is_some(), "head slot occupied");
        self.slots[slot] = None;
        self.state[slot] = slot_state::EMPTY;
        self.head_seq += 1;
        self.len -= 1;
    }

    /// Iterates residents oldest-first (ascending `seq`).
    pub(crate) fn iter(&self) -> impl Iterator<Item = &DynInst> {
        (0..self.len as u64).map(move |k| {
            self.slots[self.slot_of(self.head_seq + k)].as_ref().expect("resident slot occupied")
        })
    }

    /// Mutable oldest-first iteration.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut DynInst> {
        let (head, mask) = (self.head_seq, self.mask);
        let len = self.len;
        // Ring order visits each slot at most once, so the borrow is
        // disjoint per iteration; express that with a split at the wrap
        // point instead of unsafe: iterate the two contiguous arena spans.
        let head_slot = (head & mask) as usize;
        let cap = self.slots.len();
        let first_span = len.min(cap - head_slot);
        let (lo, hi) = self.slots.split_at_mut(head_slot);
        let first = hi[..first_span].iter_mut();
        let second = lo[..len - first_span].iter_mut();
        first.chain(second).map(|s| s.as_mut().expect("resident slot occupied"))
    }
}

impl<'a> IntoIterator for &'a Window {
    type Item = &'a DynInst;
    type IntoIter = Box<dyn Iterator<Item = &'a DynInst> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_word_boundary_slots_63_and_64() {
        let mut b = SlotBitset::new(128);
        b.set(63);
        b.set(64);
        assert!(b.test(63) && b.test(64));
        assert_eq!(b.count(), 2);
        assert_eq!(b.collect_from(0), vec![63, 64]);
        // Ring order from 64: 64 first (span [64,128)), then 63.
        assert_eq!(b.collect_from(64), vec![64, 63]);
        b.clear(63);
        assert!(!b.test(63) && b.test(64));
        b.clear(64);
        assert!(b.is_empty());
    }

    #[test]
    fn bitset_ring_order_is_sequence_order() {
        // Slots as seqs 60..68 map onto a 64-slot arena: seq 60..63 keep
        // their slots, 64..67 wrap to 0..3. Ring order from head slot 60
        // must visit 60,61,62,63,0,1,2,3 — ascending seq.
        let mut b = SlotBitset::new(64);
        for seq in 60u64..68 {
            b.set((seq & 63) as usize);
        }
        assert_eq!(b.collect_from(60), vec![60, 61, 62, 63, 0, 1, 2, 3]);
    }

    #[test]
    fn bitset_full_and_single_word() {
        let mut b = SlotBitset::new(64);
        for s in 0..64 {
            b.set(s);
        }
        assert_eq!(b.count(), 64);
        let order = b.collect_from(17);
        assert_eq!(order.len(), 64);
        assert_eq!(order[0], 17);
        assert_eq!(order[63], 16);
        b.clear_all();
        assert!(b.is_empty());
    }

    #[test]
    fn matrix_broadcast_crosses_word_boundary() {
        let mut m = WakeupMatrix::new(128);
        // Producer in slot 5 feeds src0 of consumers at slots 63 and 64
        // (either side of the word boundary) and both operands of 100.
        m.register(5, 0, 63);
        m.register(5, 0, 64);
        m.register(5, 0, 100);
        m.register(5, 1, 100);
        assert!(m.is_registered(5, 0, 63));
        assert!(!m.is_registered(5, 1, 63));
        let mut seen = Vec::new();
        m.for_each_consumer(5, 0, |slot, src| seen.push((slot, src)));
        assert_eq!(seen, vec![(63, 0), (64, 0), (100, 0), (100, 1)]);
        // Ring order from slot 100: 100 first, then the wrapped tail.
        seen.clear();
        m.for_each_consumer(5, 100, |slot, src| seen.push((slot, src)));
        assert_eq!(seen, vec![(100, 0), (100, 1), (63, 0), (64, 0)]);
    }

    #[test]
    fn matrix_rows_clear_on_release() {
        let mut m = WakeupMatrix::new(64);
        m.register(7, 0, 9);
        m.register(7, 1, 10);
        m.register(8, 0, 9);
        m.clear_rows(7);
        assert!(!m.is_registered(7, 0, 9));
        assert!(!m.is_registered(7, 1, 10));
        assert!(m.is_registered(8, 0, 9), "other rows untouched");
        let mut count = 0;
        m.for_each_consumer(7, 0, |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn matrix_dual_operand_consumer_delivers_src0_then_src1() {
        // A consumer with both operands on one producer must be visited
        // twice, src0 before src1 — the fault-injection layer counts
        // deliveries, so the visit count and order are load-bearing.
        let mut m = WakeupMatrix::new(64);
        m.register(3, 1, 40);
        m.register(3, 0, 40);
        let mut seen = Vec::new();
        m.for_each_consumer(3, 0, |slot, src| seen.push((slot, src)));
        assert_eq!(seen, vec![(40, 0), (40, 1)]);
    }

    /// Property: the bitset ring scan reproduces the old `VecDeque`
    /// scheduler's select order exactly. The AoS implementation walked the
    /// queue front-to-back — ascending seq — splitting candidates into the
    /// high-priority (loads/branches) and low-priority classes and
    /// concatenating. Over fuzzed windows (random capacity, a head that
    /// has wrapped the arena arbitrarily, random residents/ready bits and
    /// priority classes), the ring scan from the head slot plus the
    /// arithmetic slot→seq recovery must yield byte-for-byte that order.
    #[test]
    fn select_order_matches_aos_oldest_first() {
        use hpa_workloads::SplitMix64;
        for seed in 0..256u64 {
            let mut rng = SplitMix64::new(seed);
            let ruu = [8usize, 21, 48, 64, 128][rng.below(5) as usize];
            let mut w = Window::new(ruu);
            let cap = w.arena_capacity();
            // Age the window: advance head_seq far enough to wrap the
            // arena and cross word boundaries at odd offsets.
            let aged = rng.below(4 * cap as u64 + 7);
            for seq in 0..aged {
                w.push_back(test_inst(seq));
                w.drop_front();
            }
            // Residents: a random fill level.
            let len = rng.below(ruu as u64 + 1);
            for k in 0..len {
                w.push_back(test_inst(aged + k));
            }
            // Random ready subset with random priority classes.
            let mut ready = SlotBitset::new(cap);
            let mut hi_seqs = Vec::new();
            let mut lo_seqs = Vec::new();
            for k in 0..len {
                let seq = aged + k;
                if rng.below(2) == 0 {
                    continue;
                }
                ready.set(w.slot_of(seq));
                if rng.below(2) == 0 {
                    hi_seqs.push(seq);
                } else {
                    lo_seqs.push(seq);
                }
            }
            let hi_set: std::collections::BTreeSet<u64> = hi_seqs.iter().copied().collect();
            // The scan under test: ring order from the head slot, classes
            // split on the fly, exactly as `phase_select` does.
            let mut hi_scan = Vec::new();
            let mut lo_scan = Vec::new();
            ready.for_each_from(w.head_slot(), |slot| {
                let seq = w.seq_at(slot).expect("ready slot is resident");
                if hi_set.contains(&seq) {
                    hi_scan.push(seq);
                } else {
                    lo_scan.push(seq);
                }
            });
            hi_scan.append(&mut lo_scan);
            // The AoS reference order: ascending seq per class (push order
            // already ascends), high class first.
            let mut reference = hi_seqs;
            reference.extend(lo_seqs);
            assert_eq!(
                hi_scan, reference,
                "seed {seed}: ruu {ruu} aged {aged} len {len} — scan order diverged"
            );
        }
    }

    /// A minimal resident record for window staging in tests.
    fn test_inst(seq: u64) -> DynInst {
        use hpa_emu::StepRecord;
        use hpa_isa::{AluOp, Inst, Reg};
        let step = StepRecord {
            pc: 0x40 + seq * 4,
            inst: Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R3),
            next_pc: 0x44 + seq * 4,
            taken: false,
            mem_addr: None,
        };
        DynInst::from_step(seq, &step)
    }
}
