//! SMARTS-style sampled simulation: fast-forward functionally, simulate
//! short detailed windows, estimate IPC with a confidence interval.
//!
//! Full detailed simulation of long workloads is the throughput wall the
//! cycle loop cannot micro-optimize away. Systematic sampling sidesteps
//! it: the program is divided into repeating `(warmup, detail, ff)` units;
//! the `ff` stretch runs in the functional emulator (tens of times faster
//! per instruction) while *functionally warming* the branch predictor
//! tables, the `warmup` stretch runs detailed but is excluded from
//! measurement (it fills the window, caches and PcTables), and only the
//! `detail` stretch is measured. Each measured window contributes one
//! sample; samples aggregate in the *CPI* domain (every window measures
//! the same instruction count, so the mean per-window CPI is the unbiased
//! estimator of overall CPI, as in SMARTS), and a hand-rolled Student-t
//! 95% confidence interval summarizes the population. An arithmetic mean
//! of per-window IPCs would overweight high-IPC program phases — on
//! workloads with distinct phases that bias reaches tens of percent.
//!
//! Every instruction is still functionally executed exactly once by the
//! runner's main emulator, so workload checksums remain verifiable on the
//! [`SampledOutcome`].

use crate::config::SimConfig;
use crate::frontend::BranchWarmth;
use crate::pipeline::{SimFault, Simulator};
use hpa_asm::Program;
use hpa_emu::Emulator;
use std::fmt;

/// Two-sided 95% Student-t critical values for `df = 1..=30`; larger
/// sample counts fall back to the normal value 1.960.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// SplitMix64 step, used to derive the deterministic starting offset of
/// the first sampling unit from the seed (kept inline so `hpa-sim` takes
/// no dependency on the workload crate's RNG).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three stretch lengths of one systematic sampling unit, in
/// instructions: functional fast-forward, detailed-but-unmeasured warmup,
/// and the measured detail window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SampleUnits {
    /// Detailed instructions at the head of each window that fill the
    /// microarchitectural state but are excluded from measurement. May be
    /// zero (measure from the cold window).
    pub warmup: u64,
    /// Measured detailed instructions per window. Must be at least 1.
    pub detail: u64,
    /// Functionally fast-forwarded instructions between windows. Must be
    /// at least 1.
    pub ff: u64,
}

impl SampleUnits {
    /// Builds validated unit sizes.
    ///
    /// # Errors
    ///
    /// If `detail` or `ff` is zero.
    pub fn new(warmup: u64, detail: u64, ff: u64) -> Result<SampleUnits, String> {
        if detail == 0 {
            return Err("sample detail length must be at least 1".into());
        }
        if ff == 0 {
            return Err("sample fast-forward length must be at least 1".into());
        }
        Ok(SampleUnits { warmup, detail, ff })
    }

    /// Parses the `W:D:F` CLI syntax (warmup:detail:fast-forward).
    ///
    /// # Errors
    ///
    /// On malformed syntax or invalid lengths.
    pub fn parse(s: &str) -> Result<SampleUnits, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [w, d, f] = parts[..] else {
            return Err(format!("expected W:D:F (e.g. 2000:1000:30000), got {s:?}"));
        };
        let field = |name: &str, v: &str| {
            v.parse::<u64>().map_err(|_| format!("bad {name} length {v:?} in {s:?}"))
        };
        SampleUnits::new(field("warmup", w)?, field("detail", d)?, field("fast-forward", f)?)
    }

    /// Instructions covered by one full unit.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.warmup + self.detail + self.ff
    }
}

impl fmt::Display for SampleUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.warmup, self.detail, self.ff)
    }
}

/// One measured detail window.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SampleIpc {
    /// Instructions the main emulator had executed when the window's
    /// snapshot was taken (the window start, counting nops).
    pub start_inst: u64,
    /// Instructions committed inside the measured stretch.
    pub committed: u64,
    /// Cycles the measured stretch took.
    pub cycles: u64,
    /// The sample: `committed / cycles`.
    pub ipc: f64,
}

/// The sampled-run estimate: per-sample IPCs plus their mean and 95%
/// confidence half-width.
#[derive(Clone, PartialEq, Debug)]
pub struct SampledEstimate {
    /// The unit sizes the run used.
    pub units: SampleUnits,
    /// The seed that placed the first sampling unit.
    pub seed: u64,
    /// Every measured window, in program order.
    pub samples: Vec<SampleIpc>,
    /// The IPC estimate: reciprocal of the mean per-sample CPI, which
    /// weights every sample by its (equal) instruction count rather than
    /// its cycle count (0 when no window fit).
    pub mean_ipc: f64,
    /// Half-width of the two-sided 95% Student-t confidence interval,
    /// computed over the per-sample CPIs and mapped to the IPC domain by
    /// the delta method (infinite below 2 samples).
    pub ci_half_width: f64,
    /// Instructions simulated in detail (measured + warmup stretches).
    pub detailed_insts: u64,
    /// Total instructions the workload executed (functional count).
    pub total_insts: u64,
}

impl SampledEstimate {
    /// Relative error of the estimate against a reference IPC.
    #[must_use]
    pub fn rel_error(&self, full_ipc: f64) -> f64 {
        if full_ipc == 0.0 {
            return f64::INFINITY;
        }
        (self.mean_ipc - full_ipc).abs() / full_ipc
    }

    /// Whether a reference IPC falls inside the confidence interval.
    #[must_use]
    pub fn within_ci(&self, full_ipc: f64) -> bool {
        (self.mean_ipc - full_ipc).abs() <= self.ci_half_width
    }

    /// Fraction of all executed instructions that ran in detail.
    #[must_use]
    pub fn detail_fraction(&self) -> f64 {
        if self.total_insts == 0 {
            return 0.0;
        }
        self.detailed_insts as f64 / self.total_insts as f64
    }
}

/// What a sampled run produced: the estimate plus the main emulator,
/// which has functionally executed the complete program (architectural
/// checksums read from it are exact, not sampled).
#[derive(Debug)]
pub struct SampledOutcome {
    /// The IPC estimate and its samples.
    pub estimate: SampledEstimate,
    /// The main emulator after full functional execution.
    pub emulator: Emulator,
}

/// Runs a program under systematic sampling.
///
/// The runner owns a [`SimConfig`] describing the detailed machine; each
/// window clones it with the warmup/measurement bounds of one sampling
/// unit and seeds it from a snapshot via [`Simulator::from_snapshot`].
#[derive(Clone, Debug)]
pub struct SampledRunner {
    config: SimConfig,
    units: SampleUnits,
    seed: u64,
}

impl SampledRunner {
    /// Builds a runner with seed 0 (first window starts at a deterministic
    /// offset inside the first fast-forward stretch).
    #[must_use]
    pub fn new(config: SimConfig, units: SampleUnits) -> SampledRunner {
        SampledRunner { config, units, seed: 0 }
    }

    /// Replaces the sampling seed; the seed shifts where the first unit
    /// begins, so different seeds draw different systematic populations.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> SampledRunner {
        SampledRunner { seed, ..self }
    }

    /// Runs the program to completion.
    ///
    /// Window boundaries count *executed* instructions (the functional
    /// stream, including nops), while a window's measured `detail` stretch
    /// counts *committed* instructions (nops are decode-eliminated and
    /// never commit). The two drift slightly apart on nop-dense code;
    /// boundaries stay deterministic for a given (program, units, seed),
    /// which is what golden digests and the accuracy gate rely on.
    ///
    /// # Errors
    ///
    /// [`SimFault`] from any detailed window, or [`SimFault::Emu`] if the
    /// program faults during functional fast-forward.
    pub fn run(&self, program: &Program) -> Result<SampledOutcome, SimFault> {
        let SampleUnits { warmup, detail, ff } = self.units;
        let mut emu = Emulator::new(program);
        let mut warmth = BranchWarmth::cold();
        let mut samples = Vec::new();
        let mut detailed_insts = 0u64;
        // First unit starts at a seed-derived offset inside [0, ff) so a
        // seed sweep can vary the sampled population.
        let mut ff_budget = splitmix64(self.seed) % ff;
        loop {
            // Fast-forward functionally, warming the branch tables.
            let mut remaining = ff_budget;
            while remaining > 0 {
                match emu.step().map_err(|error| SimFault::Emu { cycle: 0, error })? {
                    Some(step) => warmth.observe(&step),
                    None => break,
                }
                remaining -= 1;
            }
            if emu.halted() {
                break;
            }
            // Detailed window from a checkpoint of the current state.
            let snap = emu.snapshot();
            let window_config =
                self.config.clone().with_warmup(warmup).with_max_insts(warmup + detail);
            let mut sim = Simulator::from_snapshot(program, window_config, &snap, warmth.clone());
            sim.try_run()?;
            let stats = sim.stats();
            samples.push(SampleIpc {
                start_inst: snap.executed(),
                committed: stats.committed,
                cycles: stats.cycles,
                ipc: stats.ipc(),
            });
            // Catch the main emulator up over the window's stretch, still
            // training the tables (the window trained only its own clone).
            let mut catchup = warmup + detail;
            while catchup > 0 {
                match emu.step().map_err(|error| SimFault::Emu { cycle: 0, error })? {
                    Some(step) => warmth.observe(&step),
                    None => break,
                }
                detailed_insts += 1;
                catchup -= 1;
            }
            if emu.halted() {
                break;
            }
            ff_budget = ff;
        }
        Ok(SampledOutcome {
            estimate: estimate(self.units, self.seed, samples, detailed_insts, emu.executed()),
            emulator: emu,
        })
    }
}

/// Folds the samples into an estimate: mean per-sample CPI (equal
/// instruction weights) inverted to IPC, ± a 95% t-interval mapped to the
/// IPC domain. Truncated end-of-program windows that committed nothing
/// carry no timing information and are excluded.
fn estimate(
    units: SampleUnits,
    seed: u64,
    samples: Vec<SampleIpc>,
    detailed_insts: u64,
    total_insts: u64,
) -> SampledEstimate {
    let cpis: Vec<f64> = samples
        .iter()
        .filter(|s| s.committed > 0)
        .map(|s| s.cycles as f64 / s.committed as f64)
        .collect();
    let n = cpis.len();
    let (mean_ipc, ci_half_width) = if n == 0 {
        (0.0, f64::INFINITY)
    } else {
        let mean_cpi = cpis.iter().sum::<f64>() / n as f64;
        let mean_ipc = 1.0 / mean_cpi;
        let half = if n < 2 {
            f64::INFINITY
        } else {
            let var = cpis.iter().map(|x| (x - mean_cpi).powi(2)).sum::<f64>() / (n - 1) as f64;
            let t = T_95.get(n - 2).copied().unwrap_or(1.960);
            let cpi_half = t * (var / n as f64).sqrt();
            // Delta method: |d(1/x)/dx| = 1/x^2 at x = mean_cpi.
            cpi_half * mean_ipc * mean_ipc
        };
        (mean_ipc, half)
    };
    SampledEstimate { units, seed, samples, mean_ipc, ci_half_width, detailed_insts, total_insts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    fn loop_program(iters: u64) -> Program {
        let mut a = Asm::new();
        a.li(Reg::R1, iters as i64);
        a.li(Reg::R2, 0);
        a.label("loop");
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.add(Reg::R3, Reg::R2, 1);
        a.sub(Reg::R1, Reg::R1, 1);
        a.bgt(Reg::R1, "loop");
        a.halt();
        a.assemble().expect("assembles")
    }

    #[test]
    fn parse_accepts_and_rejects() {
        assert_eq!(
            SampleUnits::parse("2000:1000:30000").unwrap(),
            SampleUnits { warmup: 2000, detail: 1000, ff: 30000 }
        );
        assert_eq!(SampleUnits::parse("0:5:9").unwrap().period(), 14);
        assert!(SampleUnits::parse("1:2").is_err(), "two fields");
        assert!(SampleUnits::parse("1:2:3:4").is_err(), "four fields");
        assert!(SampleUnits::parse("a:2:3").is_err(), "non-numeric");
        assert!(SampleUnits::parse("1:0:3").is_err(), "zero detail");
        assert!(SampleUnits::parse("1:2:0").is_err(), "zero fast-forward");
        assert_eq!(SampleUnits::parse("10:20:30").unwrap().to_string(), "10:20:30");
    }

    #[test]
    fn sampled_run_is_deterministic_and_checksummed() {
        let program = loop_program(3000);
        let units = SampleUnits::parse("100:200:700").unwrap();
        let runner = SampledRunner::new(SimConfig::four_wide(), units).with_seed(42);
        let a = runner.run(&program).unwrap();
        let b = runner.run(&program).unwrap();
        assert_eq!(a.estimate, b.estimate, "bit-identical across runs");
        assert!(a.estimate.samples.len() > 3, "several windows fit");
        assert!(a.estimate.mean_ipc > 0.0);
        // The main emulator executed the whole program: same architectural
        // result as plain functional execution.
        let mut reference = Emulator::new(&program);
        reference.run(u64::MAX).unwrap();
        assert_eq!(a.emulator.reg(Reg::R2), reference.reg(Reg::R2));
        assert_eq!(a.emulator.executed(), reference.executed());
        assert!(a.emulator.halted());
    }

    #[test]
    fn seeds_shift_the_sample_population() {
        let program = loop_program(3000);
        let units = SampleUnits::parse("100:200:700").unwrap();
        let base = SampledRunner::new(SimConfig::four_wide(), units);
        let a = base.clone().with_seed(1).run(&program).unwrap();
        let b = base.with_seed(2).run(&program).unwrap();
        assert_ne!(
            a.estimate.samples.first().map(|s| s.start_inst),
            b.estimate.samples.first().map(|s| s.start_inst),
            "different seeds place the first window differently"
        );
    }

    #[test]
    fn estimate_matches_hand_computed_t_interval() {
        // Equal committed counts, so the per-sample CPIs are cycles/100.
        let mk = |cycles: u64| SampleIpc {
            start_inst: 0,
            committed: 100,
            cycles,
            ipc: 100.0 / cycles as f64,
        };
        let units = SampleUnits::parse("1:1:1").unwrap();
        // CPIs 1, 2, 3, 4: mean CPI 2.5 (IPC 0.4), s^2 = 5/3, t(3) = 3.182.
        let e = estimate(units, 0, vec![mk(100), mk(200), mk(300), mk(400)], 0, 0);
        assert!((e.mean_ipc - 0.4).abs() < 1e-12);
        let cpi_half = 3.182 * (5.0 / 3.0 / 4.0f64).sqrt();
        let expected = cpi_half * 0.4 * 0.4; // delta method at mean CPI 2.5
        assert!((e.ci_half_width - expected).abs() < 1e-9);
        assert!(e.within_ci(0.4 + expected * 0.99));
        assert!(!e.within_ci(0.4 + expected * 1.01));
        // Degenerate counts; zero-commit windows carry no information.
        assert_eq!(estimate(units, 0, vec![], 0, 0).mean_ipc, 0.0);
        assert_eq!(estimate(units, 0, vec![mk(100)], 0, 0).ci_half_width, f64::INFINITY);
        let truncated = SampleIpc { start_inst: 0, committed: 0, cycles: 7, ipc: 0.0 };
        let e = estimate(units, 0, vec![mk(100), mk(100), truncated], 0, 0);
        assert_eq!(e.mean_ipc, 1.0, "zero-commit window excluded from the mean");
        // Large n falls back to the normal critical value.
        let many: Vec<SampleIpc> =
            (0..40).map(|i| mk(if i % 2 == 0 { 100 } else { 200 })).collect();
        let e = estimate(units, 0, many, 0, 0);
        let s2 = (0.5f64).powi(2) * 40.0 / 39.0;
        let mean_ipc = 1.0 / 1.5;
        let expected = 1.960 * (s2 / 40.0).sqrt() * mean_ipc * mean_ipc;
        assert!((e.ci_half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn sampled_ipc_tracks_full_detailed_ipc() {
        // A steady loop: the sampled estimate must land close to the full
        // detailed run (the check.sh accuracy gate asserts the same on the
        // real workloads).
        let program = loop_program(5000);
        let config = SimConfig::four_wide();
        let full = {
            let mut sim = Simulator::new(&program, config.clone());
            sim.run().ipc()
        };
        let units = SampleUnits::parse("200:500:1300").unwrap();
        let out = SampledRunner::new(config, units).with_seed(42).run(&program).unwrap();
        assert!(
            out.estimate.rel_error(full) < 0.05,
            "sampled {} vs full {full} drifted more than 5%",
            out.estimate.mean_ipc
        );
        assert!(out.estimate.detail_fraction() < 0.6, "most instructions fast-forwarded");
    }
}
