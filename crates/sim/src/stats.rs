//! Simulation statistics, including every characterization the paper's
//! figures and tables report.

use hpa_bpred::LastArrivalStats;
use hpa_cache::HierarchyStats;

/// Dynamic-stream format statistics (paper Figures 2 and 3), gathered over
/// fetched instructions (identical to committed instructions in this
/// simulator, which does not fetch wrong paths).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FormatStats {
    /// Instructions whose format carries no source register.
    pub zero_src: u64,
    /// One-source-format instructions.
    pub one_src: u64,
    /// Two-source-format instructions (excluding stores).
    pub two_src: u64,
    /// Stores (reported separately, paper Figure 2).
    pub stores: u64,
    /// 2-source-format alignment nops eliminated at decode.
    pub nops: u64,
    /// Two-source-format instructions with one unique non-zero source.
    pub two_src_one_unique: u64,
    /// Two-source-format instructions with two unique non-zero sources —
    /// the paper's "2-source instructions".
    pub two_src_two_unique: u64,
}

impl FormatStats {
    /// Total dynamic instructions covered.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.zero_src + self.one_src + self.two_src + self.stores + self.nops
    }
}

/// Wakeup-order stability counters (paper Table 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WakeupOrderStats {
    /// Second wakeup arrived on the same side as the previous dynamic
    /// instance of this PC.
    pub same_as_last: u64,
    /// Opposite side from the previous instance.
    pub diff_from_last: u64,
    /// The left operand arrived last.
    pub last_left: u64,
    /// The right operand arrived last.
    pub last_right: u64,
}

/// All counters produced by one simulation.
///
/// `PartialEq` compares every counter bit-for-bit; the parallel/serial
/// determinism tests rely on it.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed (excludes decode-eliminated nops).
    pub committed: u64,
    /// Instructions fetched (includes nops).
    pub fetched: u64,

    /// Figures 2–3.
    pub format: FormatStats,

    /// Figure 4: 2-source instructions by ready operands at insert
    /// (index = number ready).
    pub ready_at_insert: [u64; 3],

    /// Figure 6: wakeup slack of 2-pending-source instructions
    /// (indices 0, 1, 2 and 3+ cycles).
    pub wakeup_slack: [u64; 4],

    /// Table 3.
    pub wakeup_order: WakeupOrderStats,

    /// Figure 7: shadow last-arriving predictors by table size.
    pub last_arrival: Vec<(usize, LastArrivalStats)>,

    /// Figure 10: register-access categories of committed 2-source
    /// instructions.
    pub rf_two_ready: u64,
    /// Issued back-to-back with the final wakeup (≤1 register read).
    pub rf_back_to_back: u64,
    /// Missed the bypass window (two register reads).
    pub rf_non_back_to_back: u64,

    /// Scheme events.
    /// Sequential wakeup: issues delayed because the last arrival landed
    /// on the slow side (mispredictions).
    pub seq_wakeup_slow_last: u64,
    /// Sequential wakeup: simultaneous dual wakeups (always 1-cycle
    /// penalty).
    pub simultaneous_wakeups: u64,
    /// Tag elimination: scoreboard misfires (squash + replay events).
    pub te_misfires: u64,
    /// Sequential register access: issues that read the port twice.
    pub seq_rf_accesses: u64,
    /// Crossbar: select-time deferrals for lack of read ports.
    pub crossbar_deferrals: u64,
    /// Half-price renaming (§6 extension): dispatch-group splits because
    /// the halved map-table ports ran out.
    pub rename_port_stalls: u64,
    /// Half-price bypass (§6 extension): issues deferred because both
    /// operands would need the single bypass input in the same cycle.
    pub bypass_deferrals: u64,

    /// Load-latency mis-speculations (cache misses under speculative
    /// scheduling).
    pub load_miss_replays: u64,
    /// Instructions squashed and re-issued by all replay events.
    pub replayed_insts: u64,

    /// Conditional branches executed.
    pub branches: u64,
    /// Mispredicted branches (direction or target).
    pub branch_mispredicts: u64,

    /// Memory-hierarchy counters.
    pub hierarchy: HierarchyStats,

    /// Issue-width histogram: `issue_histogram[k]` counts cycles that
    /// issued exactly `k` instructions (length = machine width + 1).
    pub issue_histogram: Vec<u64>,
    /// Sum of window (RUU) occupancy over all cycles; divide by `cycles`
    /// for the average.
    pub window_occupancy_sum: u64,
}

impl SimStats {
    /// Zeroes every counter in place, preserving the `issue_histogram`
    /// allocation — the warmup-boundary reset runs mid-simulation, inside
    /// the otherwise allocation-free cycle loop.
    pub fn reset_in_place(&mut self) {
        let mut histogram = std::mem::take(&mut self.issue_histogram);
        histogram.fill(0);
        *self = SimStats { issue_histogram: histogram, ..SimStats::default() };
    }

    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate in `[0, 1]`.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Fraction of committed instructions that are 2-source instructions
    /// needing two register-file reads (paper: "less than 4%").
    #[must_use]
    pub fn two_port_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            (self.rf_two_ready + self.rf_non_back_to_back) as f64 / self.committed as f64
        }
    }

    /// Mean RUU occupancy per cycle.
    #[must_use]
    pub fn avg_window_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.window_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles that issued nothing.
    #[must_use]
    pub fn idle_issue_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issue_histogram.first().copied().unwrap_or(0) as f64 / self.cycles as f64
        }
    }

    /// Fraction of 2-pending-source instructions whose operands woke in
    /// the same cycle (paper: "less than 3%").
    #[must_use]
    pub fn simultaneous_fraction(&self) -> f64 {
        let total: u64 = self.wakeup_slack.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.wakeup_slack[0] as f64 / total as f64
        }
    }

    /// Renders the headline counters as a compact JSON object (used by
    /// the serve-layer result payload and `hpa sim --json`). All-numeric,
    /// deterministic field order; integers are emitted as integers so a
    /// `u64` survives a parse round-trip exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"cycles\":{},\"committed\":{},\"fetched\":{},\"ipc\":{}",
            self.cycles,
            self.committed,
            self.fetched,
            self.ipc()
        );
        let _ = write!(
            out,
            ",\"branches\":{},\"branch_mispredicts\":{}",
            self.branches, self.branch_mispredicts
        );
        let _ = write!(
            out,
            ",\"load_miss_replays\":{},\"replayed_insts\":{}",
            self.load_miss_replays, self.replayed_insts
        );
        let _ = write!(
            out,
            ",\"seq_wakeup_slow_last\":{},\"simultaneous_wakeups\":{},\"te_misfires\":{}",
            self.seq_wakeup_slow_last, self.simultaneous_wakeups, self.te_misfires
        );
        let _ = write!(
            out,
            ",\"seq_rf_accesses\":{},\"crossbar_deferrals\":{}",
            self.seq_rf_accesses, self.crossbar_deferrals
        );
        let _ = write!(out, ",\"window_occupancy_sum\":{}", self.window_occupancy_sum);
        out.push_str(",\"issue_histogram\":[");
        for (k, n) in self.issue_histogram.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = SimStats { cycles: 100, committed: 150, ..SimStats::default() };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.branches = 10;
        s.branch_mispredicts = 1;
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        s.rf_two_ready = 3;
        s.rf_non_back_to_back = 3;
        assert!((s.two_port_fraction() - 0.04).abs() < 1e-12);
        s.wakeup_slack = [1, 2, 3, 4];
        assert!((s.simultaneous_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.two_port_fraction(), 0.0);
        assert_eq!(s.simultaneous_fraction(), 0.0);
        assert_eq!(s.avg_window_occupancy(), 0.0);
        assert_eq!(s.idle_issue_fraction(), 0.0);
        assert_eq!(s.format.total(), 0);
    }

    #[test]
    fn reset_in_place_keeps_the_histogram_allocation() {
        let mut s = SimStats {
            cycles: 10,
            committed: 20,
            window_occupancy_sum: 320,
            issue_histogram: vec![4, 2, 2, 1, 1],
            wakeup_slack: [1, 2, 3, 4],
            ..SimStats::default()
        };
        let ptr = s.issue_histogram.as_ptr();
        s.reset_in_place();
        assert_eq!(s.issue_histogram.as_ptr(), ptr, "no reallocation");
        assert_eq!(s.issue_histogram, vec![0; 5], "zeroed, same length");
        assert_eq!(s, SimStats { issue_histogram: vec![0; 5], ..SimStats::default() });
    }

    #[test]
    fn to_json_is_valid_and_exact() {
        let s = SimStats {
            cycles: 3,
            committed: 6,
            fetched: 7,
            branches: 2,
            branch_mispredicts: 1,
            window_occupancy_sum: u64::MAX,
            issue_histogram: vec![1, 0, 2],
            ..SimStats::default()
        };
        let v = hpa_obs::json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(v.get("cycles").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(v.get("ipc").and_then(|x| x.as_f64()), Some(2.0));
        // u64 values above 2^53 survive exactly (numbers keep source text).
        assert_eq!(v.get("window_occupancy_sum").and_then(|x| x.as_u64()), Some(u64::MAX));
        let hist = v.get("issue_histogram").and_then(|x| x.as_arr()).expect("array");
        assert_eq!(hist.iter().map(|x| x.as_u64().unwrap()).collect::<Vec<_>>(), vec![1, 0, 2]);
    }

    #[test]
    fn occupancy_and_issue_histogram() {
        let s = SimStats {
            cycles: 10,
            window_occupancy_sum: 320,
            issue_histogram: vec![4, 2, 2, 1, 1],
            ..SimStats::default()
        };
        assert!((s.avg_window_occupancy() - 32.0).abs() < 1e-12);
        assert!((s.idle_issue_fraction() - 0.4).abs() < 1e-12);
    }
}
