//! # hpa-sim — the out-of-order timing simulator
//!
//! An execution-driven, cycle-level simulator of the 12-stage speculative-
//! scheduling out-of-order pipeline from *Half-Price Architecture* (Kim &
//! Lipasti, ISCA 2003), including both of the paper's proposed techniques
//! and every comparison point its evaluation uses:
//!
//! * **wakeup schemes** ([`WakeupScheme`]): conventional two-comparator
//!   wakeup, *sequential wakeup* (fast/slow bus with a last-arriving
//!   operand predictor or the static right-side policy), and *tag
//!   elimination* (Ernst & Austin) with scoreboard verification and
//!   non-selective replay;
//! * **register-file schemes** ([`RegFileScheme`]): two read ports per
//!   slot, *sequential register access* (one port, `now`-bit bypass
//!   detection, +1 cycle and a blocked slot when two reads are needed), a
//!   pipelined extra-RF-stage file, and a half-ported file behind a shared
//!   crossbar with global port arbitration;
//! * **recovery** ([`RecoveryKind`]): non-selective (Alpha 21264 style) or
//!   selective (dependence-matrix, the paper's Figure 5) replay of the
//!   load-latency mis-speculation shadow.
//!
//! The simulator also gathers every characterization the paper reports:
//! operand counts per format (Figs. 2–3), readiness at insert (Fig. 4),
//! wakeup slack (Fig. 6), wakeup-order stability and last-arriving side
//! (Table 3), last-arriving predictor accuracy across table sizes
//! (Fig. 7) and register-read categories (Fig. 10) — see [`SimStats`].
//!
//! See `DESIGN.md` §5 for the microarchitectural details and the
//! documented divergences from the paper's SimpleScalar baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commit;
mod config;
mod dyninst;
mod frontend;
mod fu;
mod phases;
mod pipeline;
mod sampled;
mod stats;
mod trace;
pub mod wheel;
mod window;

pub use commit::{CommitHook, CommitRecord};
pub use config::{
    BypassScheme, FuCounts, RecoveryKind, RegFileScheme, RenameScheme, SimConfig, WakeupScheme,
};
pub use dyninst::{DynInst, IState, RfCategory, SrcState};
pub use frontend::BranchWarmth;
pub use hpa_obs::{Counters, CpiCategory, CpiStack, Histogram, InstSpan};
pub use phases::PhaseTimes;
pub use pipeline::{FaultInjection, SimFault, Simulator};
pub use sampled::{SampleIpc, SampleUnits, SampledEstimate, SampledOutcome, SampledRunner};
pub use stats::{FormatStats, SimStats, WakeupOrderStats};
pub use trace::{PipeTrace, TraceRecord};
pub use wheel::EventWheel;
