//! In-flight instruction state.

use hpa_emu::StepRecord;
use hpa_isa::{ArchReg, FuClass, Inst};

/// Lifecycle of an in-flight instruction inside the window.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IState {
    /// In the window, not (or no longer) issued.
    Waiting,
    /// Selected; executing or waiting for its result.
    Issued,
    /// Result produced; waiting to commit.
    Completed,
}

/// One renamed source operand.
#[derive(Clone, Copy, Debug)]
pub struct SrcState {
    /// The architectural name.
    pub reg: ArchReg,
    /// Sequence number of the in-flight producer; `None` if the value was
    /// already architecturally available at insert.
    pub producer: Option<u64>,
    /// Whether the producing tag has been seen (conventional wakeup
    /// timing). Cleared when the producer is squashed.
    pub ready: bool,
    /// Cycle at which this operand *effectively* woke up, including the
    /// +1 slow-bus delay under sequential wakeup. Operands ready at insert
    /// use the insert cycle. Only meaningful while `ready`.
    pub effective_cycle: u64,
    /// Cycle of the raw tag broadcast (no slow-bus adjustment), used by
    /// the wakeup-slack and last-arriving statistics.
    pub broadcast_cycle: u64,
    /// Whether the operand was ready when the instruction entered the
    /// window (no wakeup needed).
    pub ready_at_insert: bool,
}

/// Register-read categorization of one committed 2-source instruction
/// (paper Figure 10).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RfCategory {
    /// Both operands were ready at insert: two register reads.
    TwoReady,
    /// Issued back-to-back with the last wakeup: at least one operand off
    /// the bypass, at most one register read.
    BackToBack,
    /// Woken earlier but issued later: bypass window missed, two reads.
    NonBackToBack,
}

/// One instruction in flight.
#[derive(Clone, Debug)]
pub struct DynInst {
    /// Global sequence number (program order).
    pub seq: u64,
    /// Fetch address.
    pub pc: u64,
    /// The decoded instruction.
    pub inst: Inst,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Functional-unit class.
    pub fu: FuClass,
    /// Base execution latency (loads: address generation only).
    pub base_latency: u32,
    /// Whether the FU is pipelined for this op.
    pub fu_pipelined: bool,

    /// Renamed scheduler sources (slot 0 = left, slot 1 = right).
    pub srcs: [Option<SrcState>; 2],
    /// Which slot sits on the fast wakeup bus (sequential wakeup) or is
    /// watched (tag elimination).
    pub fast_slot: usize,
    /// Destination register, if any.
    pub dest: Option<ArchReg>,
    /// Producer of a store's data operand.
    pub store_data_producer: Option<u64>,

    /// Lifecycle state.
    pub state: IState,
    /// Bumped whenever the instruction is squashed; stale scheduled events
    /// compare epochs and drop themselves.
    pub epoch: u32,
    /// Cycle the instruction entered the window.
    pub insert_cycle: u64,
    /// Most recent issue cycle (meaningful once issued at least once).
    pub issue_cycle: u64,
    /// Effective cycle of the last operand wakeup at the most recent
    /// (successful) issue, clamped into `[insert_cycle, issue_cycle]`;
    /// feeds the trace export and the issue-to-wakeup delay histogram.
    pub wakeup_cycle: u64,
    /// Cycle the result is produced (execution completes).
    pub complete_cycle: u64,
    /// Whether the destination tag has been broadcast (and not
    /// invalidated since).
    pub broadcast_done: bool,
    /// Number of times this instruction was squashed and replayed.
    pub replays: u32,

    /// Branch state: direction/target misprediction detected at fetch.
    pub mispredicted: bool,
    /// Fetch has already been redirected by this branch's resolution
    /// (replays do not redirect again).
    pub resume_done: bool,
    /// The architectural next PC (for branch bookkeeping).
    pub next_pc: u64,
    /// Whether the control transfer was taken.
    pub taken: bool,

    /// Load state: the load was found to stall on an older store and is
    /// waiting to retry its memory access.
    pub load_stalled: bool,
    /// Store state: address generated (LSQ entry resolved).
    pub addr_resolved: bool,

    /// Tag elimination: after a misfire, require both operands verified
    /// ready before re-requesting issue.
    pub te_verified_wait: bool,
    /// Whether the last issue required a sequential register access.
    pub seq_rf: bool,
    /// Figure 10 category of the most recent issue (2-source insts only).
    pub rf_category: Option<RfCategory>,
    /// Statistics flag: the second pending operand's wakeup has been
    /// recorded (slack/predictor stats fire once per instruction).
    pub wakeup_pair_recorded: bool,
    /// Whether the instruction is enqueued on the scheduler's
    /// ready-candidate list (guards against duplicate enqueues).
    pub in_ready_list: bool,

    /// Value written to the destination register, captured from the
    /// emulator at fetch (f64 results as raw bits); for commit hooks.
    pub dest_value: Option<u64>,
    /// For stores: the stored bytes as memory holds them after the step;
    /// for commit hooks.
    pub mem_data: Option<u64>,
}

impl DynInst {
    /// Builds the in-flight record from a functional step.
    #[must_use]
    pub fn from_step(seq: u64, step: &StepRecord) -> DynInst {
        let inst = step.inst;
        let latency = inst.latency();
        let sources = inst.scheduler_sources();
        let mut srcs: [Option<SrcState>; 2] = [None, None];
        for (slot, src) in srcs.iter_mut().enumerate() {
            if let Some(reg) = sources.get(slot) {
                *src = Some(SrcState {
                    reg,
                    producer: None,
                    ready: true,
                    effective_cycle: 0,
                    broadcast_cycle: 0,
                    ready_at_insert: true,
                });
            }
        }
        DynInst {
            seq,
            pc: step.pc,
            inst,
            mem_addr: step.mem_addr,
            fu: inst.fu_class(),
            base_latency: latency.cycles,
            fu_pipelined: latency.pipelined,
            srcs,
            fast_slot: 1,
            dest: inst.dest(),
            store_data_producer: None,
            state: IState::Waiting,
            epoch: 0,
            insert_cycle: 0,
            issue_cycle: 0,
            wakeup_cycle: 0,
            complete_cycle: 0,
            broadcast_done: false,
            replays: 0,
            mispredicted: false,
            resume_done: false,
            next_pc: step.next_pc,
            taken: step.taken,
            load_stalled: false,
            addr_resolved: false,
            te_verified_wait: false,
            seq_rf: false,
            rf_category: None,
            wakeup_pair_recorded: false,
            in_ready_list: false,
            dest_value: None,
            mem_data: None,
        }
    }

    /// Whether this is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.inst.is_load()
    }

    /// Whether this is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.inst.is_store()
    }

    /// Whether this occupies an LSQ entry.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether select gives it the high (load/branch) priority group
    /// (paper §2.1).
    #[must_use]
    pub fn high_priority(&self) -> bool {
        self.is_load() || self.inst.is_control()
    }

    /// Number of scheduler source operands.
    #[must_use]
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Whether this instruction has two scheduler sources (a "2-source
    /// instruction" in the paper's terms; stores are excluded because the
    /// scheduler only tracks their address operand).
    #[must_use]
    pub fn is_two_source(&self) -> bool {
        self.num_srcs() == 2
    }

    /// Both operands pending at insert (the population of Figures 6/7 and
    /// Table 3).
    #[must_use]
    pub fn two_pending_at_insert(&self) -> bool {
        self.is_two_source() && self.srcs.iter().flatten().all(|s| !s.ready_at_insert)
    }

    /// Iterates over present sources.
    pub fn srcs_iter(&self) -> impl Iterator<Item = &SrcState> {
        self.srcs.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_isa::{AluOp, MemWidth, Reg};

    fn step(inst: Inst) -> StepRecord {
        StepRecord { pc: 0x40, inst, next_pc: 0x44, taken: false, mem_addr: None }
    }

    #[test]
    fn two_source_classification() {
        let add = DynInst::from_step(1, &step(Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R3)));
        assert!(add.is_two_source());
        assert_eq!(add.num_srcs(), 2);
        assert!(!add.is_load());

        let addi = DynInst::from_step(2, &step(Inst::op(AluOp::Add, Reg::R1, 5, Reg::R3)));
        assert!(!addi.is_two_source());
        assert_eq!(addi.dest, Some(Reg::R3.into()));
    }

    #[test]
    fn stores_have_one_scheduler_source() {
        let st = DynInst::from_step(
            3,
            &step(Inst::Store { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 }),
        );
        assert!(st.is_store());
        assert!(st.is_mem());
        assert_eq!(st.num_srcs(), 1);
        assert!(!st.is_two_source());
        assert_eq!(st.dest, None);
    }

    #[test]
    fn priority_groups() {
        let ld = DynInst::from_step(
            4,
            &step(Inst::Load { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 }),
        );
        assert!(ld.high_priority());
        let add = DynInst::from_step(5, &step(Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R3)));
        assert!(!add.high_priority());
        let br = DynInst::from_step(
            6,
            &step(Inst::Branch { cond: hpa_isa::BranchCond::Eq, ra: Reg::R1, disp: 1 }),
        );
        assert!(br.high_priority());
    }
}
