//! The out-of-order pipeline: wakeup/select, execution events, speculative
//! load scheduling with replay, LSQ disambiguation, commit.
//!
//! # Cycle phases
//!
//! Each simulated cycle runs six phases in order:
//!
//! 1. **Wakeup** — destination tags scheduled for this cycle broadcast to
//!    consumer operands (with the +1-cycle slow-bus delay under sequential
//!    wakeup);
//! 2. **Select** — ready instructions issue, oldest-first with loads and
//!    branches prioritized (paper §2.1), subject to issue width, functional
//!    units and the register-file scheme;
//! 3. **Events** — tag-elimination verification, load cache access /
//!    mis-speculation detection and replay, execution completion;
//! 4. **Commit** — in-order retirement, stores write the cache;
//! 5. **Fetch** — the front end fetches along the correct path;
//! 6. **Insert** — fetched instructions rename and enter the window.
//!
//! An instruction selected in cycle `t` with latency `L` broadcasts its tag
//! in the wakeup phase of cycle `t + L`, so a dependent can be selected at
//! `t + L` — back-to-back for `L = 1`, exactly the paper's Figure 9 timing.
//! Loads broadcast speculatively assuming a DL1 hit; the miss/conflict
//! check fires in the same cycle a dependent would issue, and failure
//! squashes the issue shadow `(t, t_detect]` (non-selective) or its
//! dependent subset (selective, Figure 5).

use crate::commit::{CommitHook, CommitRecord};
use crate::config::{
    BypassScheme, RecoveryKind, RegFileScheme, RenameScheme, SimConfig, WakeupScheme,
};
use crate::dyninst::{DynInst, IState, RfCategory, SrcState};
use crate::frontend::{BranchWarmth, FrontEnd};
use crate::fu::FuPool;
use crate::phases::PhaseTimes;
use crate::stats::SimStats;
use crate::trace::{PipeTrace, TraceRecord, TraceSink};
use crate::wheel::EventWheel;
use crate::window::{slot_flags, slot_state, state_code, SlotBitset, WakeupMatrix, Window};
use hpa_asm::Program;
use hpa_bpred::{LastArrivalBank, LastArrivalPredictor, PcTable, Side};
use hpa_cache::Hierarchy;
use hpa_emu::{EmuError, Emulator};
use hpa_isa::{Inst, NUM_ARCH_REGS};
use hpa_obs::{Counters, CpiCategory};
use std::collections::VecDeque;
use std::fmt;

/// Cycles without a commit after which `run` declares a deadlock
/// (a simulator bug, not a program property).
const DEADLOCK_LIMIT: u64 = 200_000;

/// Why [`Simulator::try_run`] stopped before draining the machine. Every
/// variant indicates a simulator bug (or an injected one), never a program
/// property — which is exactly why the verification subsystem reports them
/// as structured values instead of panicking mid-sweep.
#[derive(Clone, Debug)]
pub enum SimFault {
    /// The functional emulator faulted while fetch stepped it.
    Emu {
        /// Cycle of the faulting fetch.
        cycle: u64,
        /// The underlying emulator error.
        error: EmuError,
    },
    /// No instruction committed for [`DEADLOCK_LIMIT`] cycles.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
        /// Debug rendering of the window head, if any.
        head: String,
    },
    /// A per-cycle invariant check failed (strict-invariants mode).
    Invariant {
        /// Cycle of the violation.
        cycle: u64,
        /// The violated invariant.
        reason: String,
        /// Pipeline-state dump at the violation.
        dump: String,
    },
    /// A [`CommitHook`] rejected a committed instruction.
    Hook {
        /// Sequence number of the rejected commit.
        seq: u64,
        /// Cycle of the rejected commit.
        cycle: u64,
        /// The hook's description of the divergence.
        reason: String,
        /// Pipeline-state dump at the rejected commit.
        dump: String,
    },
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::Emu { cycle, error } => write!(f, "cycle {cycle}: emulator fault: {error}"),
            SimFault::Deadlock { cycle, head } => {
                write!(f, "no commit for {DEADLOCK_LIMIT} cycles at cycle {cycle} (head {head})")
            }
            SimFault::Invariant { cycle, reason, .. } => {
                write!(f, "cycle {cycle}: invariant violated: {reason}")
            }
            SimFault::Hook { seq, cycle, reason, .. } => {
                write!(f, "cycle {cycle}: commit hook rejected seq {seq}: {reason}")
            }
        }
    }
}

impl std::error::Error for SimFault {}

/// A deliberately planted hardware fault, for mutation-testing the
/// verification subsystem and for the fault-injection campaign engine
/// (`hpa-faultsim`): each variant corrupts one internal scheduler
/// structure at a deterministic trigger point, so a run is reproducible
/// from its parameters alone. Not part of the simulator's public contract.
///
/// The variants cover the structures the paper's speculation-free claim
/// rests on: the fast/slow wakeup buses, the last-arriving predictor, the
/// `now` bypass-match bits, the register-file read ports and the
/// destination-tag broadcast network.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultInjection {
    /// Starting with the `nth` wakeup delivery, the first delivery whose
    /// consumer still has another pending operand wrongly marks that
    /// operand ready too — a spurious wakeup with no producer broadcast.
    SpuriousWakeup {
        /// Delivery count (1-based) at which the injection arms.
        nth: u64,
    },
    /// The `nth` fast-bus wakeup delivery is lost: the consumer never
    /// hears the tag. Unless a later squash recompute re-derives the
    /// readiness, the consumer waits forever — the watchdog's job.
    DroppedWakeup {
        /// Delivery count (1-based) at which the pulse is dropped.
        nth: u64,
    },
    /// Starting with the `nth` delivery, the first slow-bus rebroadcast
    /// arrives one cycle later than architected (+2 instead of +1). A
    /// timing-only fault: sequential wakeup must absorb it as a stall.
    DelayedSlowBus {
        /// Delivery count (1-based) at which the injection arms.
        nth: u64,
    },
    /// The `nth` last-arriving predictor lookup returns the opposite side
    /// (a bit-flip in the PC-indexed table). Sequential wakeup pays at
    /// most one slow-bus cycle; never a wrong result.
    LastArrivalFlip {
        /// Lookup count (1-based) at which the prediction flips.
        nth: u64,
    },
    /// Starting with the `nth` two-source issue under sequential register
    /// access, the first issue whose `now` bits claim a bypass match has
    /// them read as stale (no match): the port is read twice and the slot
    /// blocks — the bypass-miss penalty, never a wrong value.
    StaleNowBits {
        /// Two-source SeqRegAccess issue count (1-based) at which the
        /// injection arms.
        nth: u64,
    },
    /// A register-file read-port conflict storm: for `cycles` cycles
    /// starting at `from_cycle`, all but one issue slot (and all but one
    /// crossbar read port) are unavailable.
    ReadPortStorm {
        /// First stormy cycle.
        from_cycle: u64,
        /// Storm length in cycles.
        cycles: u64,
    },
    /// The `nth` destination-tag broadcast has bit `bit` of its tag
    /// flipped in flight: the true consumers never hear it, and an
    /// aliased in-flight instruction may be wrongly marked as having
    /// broadcast.
    TagBitFlip {
        /// Broadcast count (1-based) at which the tag is corrupted.
        nth: u64,
        /// Which tag bit flips (kept low so the corrupted tag lands near
        /// the window).
        bit: u32,
    },
    /// The machine silently stops fetching and committing after
    /// `at_commit` commits, leaving the program's tail unexecuted — the
    /// one planted fault that produces genuine silent data corruption
    /// (no oracle fires; only the final-state cross-check can see it).
    /// Exists to mutation-test the campaign engine's SDC classifier.
    PrematureHalt {
        /// Total commit count after which the machine halts.
        at_commit: u64,
    },
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Scoreboard check one cycle after a tag-elimination issue.
    TeVerify { seq: u64, epoch: u32 },
    /// A load reaches its cache access / mis-speculation check.
    MemAccess { seq: u64, epoch: u32 },
    /// Execution finishes; the result is architecturally available.
    Complete { seq: u64, epoch: u32 },
}

#[derive(Clone, Copy, Debug)]
struct BroadcastEv {
    seq: u64,
    epoch: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LsqOutcome {
    /// An older store blocks the access (unknown address, partial overlap
    /// or data not ready).
    Blocked,
    /// A covering older store forwards its data (DL1-hit timing).
    Forward,
    /// No conflict; access the cache.
    Normal,
}

/// The cycle-level simulator.
///
/// # Example
///
/// ```
/// use hpa_sim::{SimConfig, Simulator};
/// # fn main() -> Result<(), hpa_asm::AsmError> {
/// let mut a = hpa_asm::Asm::new();
/// a.li(hpa_isa::Reg::R1, 40);
/// a.add(hpa_isa::Reg::R1, hpa_isa::Reg::R1, 2);
/// a.halt();
/// let mut sim = Simulator::new(&a.assemble()?, SimConfig::four_wide());
/// let stats = sim.run();
/// assert_eq!(stats.committed, 3);
/// assert!(stats.cycles > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    config: SimConfig,
    frontend: FrontEnd,
    hierarchy: Hierarchy,
    window: Window,
    next_seq: u64,
    rename: [Option<u64>; NUM_ARCH_REGS],
    broadcasts: EventWheel<BroadcastEv>,
    events: EventWheel<Event>,
    fu: FuPool,
    predictor: Option<LastArrivalPredictor>,
    la_bank: LastArrivalBank,
    /// Last observed last-arriving side per (direct-mapped) PC, for the
    /// Table 3 wakeup-order stability counters.
    la_history: PcTable<Option<Side>>,
    lsq_used: usize,
    blocked_slots: u32,
    blocked_slots_next: u32,
    stalled_loads: Vec<u64>,
    stats: SimStats,
    cycle: u64,
    finished: bool,
    /// 21264-style store-wait bits, PC-indexed: loads that previously
    /// replayed on an older-store conflict are held at select until the
    /// conflict clears, preventing load-hit-store replay storms.
    stwait: PcTable<bool>,
    /// Issue is suppressed until this cycle after a squash: the
    /// 21264-style pullback restart, during which re-inserted
    /// instructions re-arbitrate.
    issue_stall_until: u64,
    /// One bit per window slot for `Waiting` instructions whose
    /// scheme-level wakeup condition holds (or held recently): the select
    /// candidates. Fed incrementally at insert and wakeup delivery,
    /// rebuilt by `recompute_ready` after squashes, compacted lazily by
    /// select. May briefly hold instructions that issued since; commit
    /// clears a slot's bit when it releases the slot.
    ready: SlotBitset,
    /// Per-slot cache of the cycle from which the enqueued instruction's
    /// operand-timing condition holds (`u64::MAX` while a relevant
    /// operand has not woken), so the select scan compares one word per
    /// candidate instead of walking the instruction's operand records.
    /// Written wherever the ready bit is set or an enqueued candidate's
    /// operands change; meaningful only while the slot's bit is set.
    ready_at: Box<[u64]>,
    /// The bitset wakeup matrix: per producer slot and operand index, one
    /// bit per consumer slot whose that operand names the producer (the
    /// paper's CAM rows, transposed). Registered at rename, walked at tag
    /// broadcast, cleared when the producer's slot is released.
    matrix: WakeupMatrix,
    /// In-flight store sequence numbers in program order, so LSQ
    /// disambiguation walks only stores instead of the whole window.
    store_queue: VecDeque<u64>,
    /// Per-issue/commit event logging to stderr (`HPA_TRACE=1`),
    /// buffered so tracing does not serialize the cycle loop.
    trace: Option<TraceSink>,
    /// Optional pipeline-diagram recording (see [`Simulator::enable_trace`]).
    pipetrace: Option<PipeTrace>,
    /// Total commits including warmup (drives `max_insts`/halt).
    committed_total: u64,
    /// Cycle at which statistics last reset (warmup boundary).
    stats_start_cycle: u64,
    /// Reusable per-cycle buffers; once warm, the cycle loop allocates
    /// nothing.
    scratch: Scratch,
    /// Retire-stream observer (lockstep oracle); `None` in normal runs.
    commit_hook: Option<Box<dyn CommitHook>>,
    /// First fault observed; stops `try_run` at the end of the cycle.
    fault: Option<SimFault>,
    /// Run the full invariant sweep at the end of every cycle. Defaults to
    /// the `strict-invariants` cargo feature; the verifier enables it at
    /// runtime regardless of the feature.
    strict_invariants: bool,
    /// Armed fault injection (mutation testing), if any.
    injection: Option<FaultInjection>,
    /// Kind-specific event count driving the armed injection's trigger
    /// (wakeup deliveries, broadcasts, predictor lookups, ...).
    injection_events: u64,
    /// Watchdog: `try_run` reports [`SimFault::Deadlock`] once the cycle
    /// count reaches this budget (`u64::MAX` = no budget). Campaign
    /// runners use it to convert injected hangs into structured outcomes
    /// long before the no-commit-progress limit.
    cycle_budget: u64,
    /// Observability registry (CPI stack, penalty histograms). Disabled
    /// by default; recording never touches `stats` or scheduling state,
    /// so enabling it cannot perturb timing.
    counters: Counters,
    /// What select did this cycle, stashed for end-of-cycle CPI
    /// attribution (select's working values are gone by then).
    cpi_select: CpiSelectInfo,
    /// Slow-bus wakeup deliveries this cycle (occupancy histogram);
    /// incremented only while `counters` is enabled.
    slow_wakeups_this_cycle: u32,
    /// Per-phase wall-time accumulators; `None` (the default) keeps every
    /// stopwatch read off the cycle loop.
    phase_times: Option<Box<PhaseTimes>>,
}

/// Select-phase facts needed by the end-of-cycle CPI attribution.
#[derive(Clone, Copy, Debug, Default)]
struct CpiSelectInfo {
    /// Instructions issued.
    issued: u32,
    /// Issue slots disabled by a previous sequential RF access.
    rf_blocked: u32,
    /// Candidates deferred by crossbar port arbitration or the
    /// single-bypass-input constraint.
    port_deferrals: u32,
    /// Candidates that lost functional-unit arbitration.
    fu_deferrals: u32,
    /// The whole select phase was suppressed by a post-squash restart.
    restart: bool,
    /// Select-time classification of the leftover (unfilled) slots; only
    /// computed when some slots were left over.
    stall: Option<CpiCategory>,
}

/// Scratch buffers for the hot cycle loop. Each phase takes the buffer it
/// needs with `std::mem::take`, works on it as a local (so `&mut self`
/// calls stay legal), and puts it back — capacity survives across cycles.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// This cycle's tag broadcasts (drained from the wheel).
    broadcasts: Vec<BroadcastEv>,
    /// Consumer list of the broadcasting instruction.
    consumers: Vec<u64>,
    /// This cycle's execution events (drained from the wheel).
    events: Vec<Event>,
    /// Memory-access events, run after squashes.
    mem: Vec<Event>,
    /// Completion events, run last.
    completes: Vec<Event>,
    /// Select candidates as `(!high_priority, seq)` keys, already in
    /// select order (high-priority class first, oldest-first within).
    cands: Vec<(bool, u64)>,
    /// Low-priority candidates of the ring pass, appended to `cands`.
    cands_lo: Vec<(bool, u64)>,
    /// Select compaction: ready-bitset slots to clear after the walk.
    drop_slots: Vec<usize>,
    /// Ping-pong partner of `Simulator::stalled_loads`.
    stalled: Vec<u64>,
    /// Squash: instructions chosen for replay.
    replay: Vec<u64>,
    /// Squash: transitive dependents of the replay root (kept sorted).
    dep_set: Vec<u64>,
    /// `recompute_ready`: per-window-slot producer availability.
    avail: Vec<bool>,
}

/// The scheme-level wakeup condition: whether the wakeup logic considers
/// this instruction ready to *request* issue. This deliberately ignores
/// per-cycle gating (`effective_cycle`, FU availability, LSQ state) —
/// those are re-checked by `selectable` every select cycle — so it is the
/// right predicate for deciding when to enqueue an instruction on the
/// ready-candidate list: once true, it stays true until the instruction
/// issues or is squashed.
fn wakeup_ready(i: &DynInst, wakeup: WakeupScheme) -> bool {
    match wakeup {
        WakeupScheme::TagElimination { .. } if i.is_two_source() && !i.te_verified_wait => {
            i.srcs[i.fast_slot].as_ref().is_some_and(|s| s.ready)
        }
        _ => i.srcs_iter().all(|s| s.ready),
    }
}

/// The cycle from which select's operand-timing condition holds for this
/// instruction — the max effective wakeup cycle over the operands the
/// scheme checks (tag elimination before a misfire watches only the fast
/// side) — or `u64::MAX` while a relevant operand has not woken. Cached
/// per slot in `Simulator::ready_at` so the select scan reads one word
/// per candidate.
fn ready_cycle_of(i: &DynInst, wakeup: WakeupScheme) -> u64 {
    match wakeup {
        WakeupScheme::TagElimination { .. } if i.is_two_source() && !i.te_verified_wait => {
            match i.srcs[i.fast_slot].as_ref() {
                Some(s) if s.ready => s.effective_cycle,
                _ => u64::MAX,
            }
        }
        _ => {
            let mut at = 0;
            for s in i.srcs_iter() {
                if !s.ready {
                    return u64::MAX;
                }
                at = at.max(s.effective_cycle);
            }
            at
        }
    }
}

impl Simulator {
    /// Builds a simulator over a program.
    #[must_use]
    pub fn new(program: &Program, config: SimConfig) -> Simulator {
        let emu = Emulator::new(program);
        let frontend = FrontEnd::new(emu, config.width, config.frontend_depth);
        Simulator::with_frontend(frontend, config)
    }

    /// Builds a simulator whose architectural state starts from `snap`
    /// (captured by a fast-forwarding emulator) and whose branch
    /// predictors start from `warmth` (functionally trained during that
    /// fast-forward). Everything microarchitectural — window, caches,
    /// PcTables, rename — starts cold, exactly as in [`Simulator::new`];
    /// sampled mode covers that with a measurement-excluded warmup
    /// stretch (`SimConfig::with_warmup`) at the head of each window.
    #[must_use]
    pub fn from_snapshot(
        program: &Program,
        config: SimConfig,
        snap: &hpa_emu::Snapshot,
        warmth: BranchWarmth,
    ) -> Simulator {
        let emu = Emulator::from_snapshot(program, snap);
        let frontend = FrontEnd::with_warmth(emu, config.width, config.frontend_depth, warmth);
        Simulator::with_frontend(frontend, config)
    }

    fn with_frontend(frontend: FrontEnd, config: SimConfig) -> Simulator {
        let width_plus_one = config.width as usize + 1;
        let predictor = match config.wakeup {
            WakeupScheme::SequentialWakeup { predictor_entries: Some(n) }
            | WakeupScheme::TagElimination { predictor_entries: n } => {
                Some(LastArrivalPredictor::new(n))
            }
            _ => None,
        };
        Simulator {
            hierarchy: Hierarchy::new(config.hierarchy),
            fu: FuPool::new(&config.fu),
            window: Window::new(config.ruu_size),
            ready: SlotBitset::new(config.ruu_size.next_power_of_two()),
            ready_at: vec![u64::MAX; config.ruu_size.next_power_of_two()].into_boxed_slice(),
            matrix: WakeupMatrix::new(config.ruu_size.next_power_of_two()),
            store_queue: VecDeque::with_capacity(config.lsq_size),
            la_history: PcTable::new(config.pc_table_entries, None),
            stwait: PcTable::new(config.pc_table_entries, false),
            config,
            frontend,
            next_seq: 0,
            rename: [None; NUM_ARCH_REGS],
            broadcasts: EventWheel::new(),
            events: EventWheel::new(),
            predictor,
            la_bank: LastArrivalBank::figure7(),
            lsq_used: 0,
            blocked_slots: 0,
            blocked_slots_next: 0,
            stalled_loads: Vec::new(),
            stats: SimStats { issue_histogram: vec![0; width_plus_one], ..SimStats::default() },
            cycle: 0,
            finished: false,
            issue_stall_until: 0,
            trace: TraceSink::from_env(),
            pipetrace: None,
            committed_total: 0,
            stats_start_cycle: 0,
            scratch: Scratch::default(),
            commit_hook: None,
            fault: None,
            strict_invariants: cfg!(feature = "strict-invariants"),
            injection: None,
            injection_events: 0,
            cycle_budget: u64::MAX,
            counters: Counters::disabled(),
            cpi_select: CpiSelectInfo::default(),
            slow_wakeups_this_cycle: 0,
            phase_times: None,
        }
    }

    /// Attaches a retire-stream observer, called once per committed
    /// instruction in program order. A hook error stops the run with
    /// [`SimFault::Hook`].
    pub fn set_commit_hook(&mut self, hook: Box<dyn CommitHook>) {
        self.commit_hook = Some(hook);
    }

    /// Runs the full [`Simulator::check_invariants`] sweep at the end of
    /// every cycle, converting the first violation into
    /// [`SimFault::Invariant`]. On by default when the crate is built with
    /// the `strict-invariants` feature.
    pub fn set_strict_invariants(&mut self, on: bool) {
        self.strict_invariants = on;
    }

    /// Plants a scheduler bug (mutation testing of the verification
    /// subsystem).
    #[doc(hidden)]
    pub fn inject_fault(&mut self, injection: FaultInjection) {
        self.injection = Some(injection);
    }

    /// Arms the per-run watchdog: [`Simulator::try_run`] reports
    /// [`SimFault::Deadlock`] if the machine is still active when the
    /// cycle count reaches `budget`. Fault-injection campaigns use this
    /// to turn injected hangs into structured outcomes quickly; normal
    /// runs leave it unarmed (`u64::MAX`).
    pub fn set_cycle_budget(&mut self, budget: u64) {
        self.cycle_budget = budget;
    }

    /// The accumulated statistics (finalized by [`Simulator::run`]).
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The functional machine (architectural state), e.g. to read a
    /// workload checksum after the run.
    #[must_use]
    pub fn emulator(&self) -> &Emulator {
        self.frontend.emulator()
    }

    /// The current cycle number.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration this simulator was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Starts recording a pipeline diagram of the first `capacity`
    /// committed instructions (see [`PipeTrace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.pipetrace = Some(PipeTrace::new(capacity));
    }

    /// The recorded pipeline trace, if [`Simulator::enable_trace`] was
    /// called.
    #[must_use]
    pub fn pipetrace(&self) -> Option<&PipeTrace> {
        self.pipetrace.as_ref()
    }

    /// Turns on the observability registry: CPI-stack attribution of
    /// every issue slot plus the penalty counters and histograms (see
    /// [`Counters`]). Off by default; recording reads pipeline state but
    /// writes only into the registry, so timing and [`SimStats`] are
    /// bit-identical either way (the differential suite enforces this).
    pub fn enable_counters(&mut self) {
        self.counters = Counters::enabled();
    }

    /// The observability registry (all zeros unless
    /// [`Simulator::enable_counters`] was called).
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    fn inst(&self, seq: u64) -> Option<&DynInst> {
        self.window.get(seq)
    }

    fn inst_mut(&mut self, seq: u64) -> Option<&mut DynInst> {
        self.window.get_mut(seq)
    }

    fn schedule_broadcast(&mut self, cycle: u64, seq: u64, epoch: u32) {
        self.broadcasts.schedule(cycle, BroadcastEv { seq, epoch });
    }

    fn schedule_event(&mut self, cycle: u64, ev: Event) {
        self.events.schedule(cycle, ev);
    }

    fn exec_offset(&self) -> u64 {
        2 + u64::from(self.config.extra_rf_stages())
    }

    fn load_spec_latency(&self) -> u64 {
        1 + u64::from(self.hierarchy.dl1_hit_latency())
    }

    fn uses_slow_bus(&self) -> bool {
        matches!(self.config.wakeup, WakeupScheme::SequentialWakeup { .. })
    }

    /// Whether the machine still has work: not finished or faulted, and
    /// either the front end or the window holds instructions. Callers
    /// driving the machine cycle by cycle ([`Simulator::step_cycle`])
    /// loop on this; note the watchdogs (deadlock, cycle budget) live in
    /// [`Simulator::try_run`], not here.
    #[must_use]
    pub fn active(&self) -> bool {
        !(self.finished
            || self.fault.is_some()
            || (self.frontend.drained() && self.window.is_empty()))
    }

    /// Runs the simulation to completion and returns the final statistics.
    ///
    /// # Panics
    ///
    /// Panics on any [`SimFault`] — an emulator fault at fetch or a
    /// scheduling deadlock (both simulator bugs). Use
    /// [`Simulator::try_run`] to receive faults as values instead.
    pub fn run(&mut self) -> &SimStats {
        if let Err(fault) = self.try_run() {
            panic!("{fault}");
        }
        &self.stats
    }

    /// Runs the simulation to completion, reporting any [`SimFault`] as a
    /// value so verification sweeps can collect and localize failures
    /// instead of panicking.
    ///
    /// Statistics are finalized either way; on `Err` they cover the cycles
    /// up to the fault.
    ///
    /// # Errors
    ///
    /// The first [`SimFault`] observed: an emulator fault at fetch, a
    /// commit-hook divergence, a strict-invariants violation, or a
    /// scheduling deadlock.
    pub fn try_run(&mut self) -> Result<(), SimFault> {
        let mut last_progress = (0u64, 0u64);
        let mut result = Ok(());
        while self.active() {
            self.step_cycle();
            if let Some(fault) = self.fault.take() {
                self.fault = Some(fault.clone());
                result = Err(fault);
                break;
            }
            if self.stats.committed != last_progress.0 {
                last_progress = (self.stats.committed, self.cycle);
            }
            if self.cycle - last_progress.1 >= DEADLOCK_LIMIT {
                let head = format!("{:?}", self.window.front().map(|i| (i.seq, i.state, &i.inst)));
                let fault = SimFault::Deadlock { cycle: self.cycle, head };
                self.fault = Some(fault.clone());
                result = Err(fault);
                break;
            }
            if self.cycle >= self.cycle_budget {
                let head = format!(
                    "cycle budget {} exhausted; {:?}",
                    self.cycle_budget,
                    self.window.front().map(|i| (i.seq, i.state, &i.inst))
                );
                let fault = SimFault::Deadlock { cycle: self.cycle, head };
                self.fault = Some(fault.clone());
                result = Err(fault);
                break;
            }
        }
        self.stats.cycles = self.cycle - self.stats_start_cycle;
        self.stats.hierarchy = self.hierarchy.stats();
        self.stats.last_arrival = self.la_bank.results();
        if let Some(t) = self.trace.as_mut() {
            t.flush();
        }
        result
    }

    /// The first fault observed so far, if any (set by faulting phases and
    /// by strict-invariants checking; cleared only by construction).
    #[must_use]
    pub fn fault(&self) -> Option<&SimFault> {
        self.fault.as_ref()
    }

    /// Starts accumulating per-phase wall time (see [`PhaseTimes`]). Off by
    /// default: when disabled the cycle loop performs no stopwatch reads.
    pub fn enable_phase_timing(&mut self) {
        self.phase_times = Some(Box::default());
    }

    /// The per-phase wall-time accumulators, if
    /// [`Simulator::enable_phase_timing`] was called.
    #[must_use]
    pub fn phase_times(&self) -> Option<&PhaseTimes> {
        self.phase_times.as_deref()
    }

    /// Advances the machine by one cycle.
    pub fn step_cycle(&mut self) {
        if self.phase_times.is_some() {
            self.step_cycle_impl::<true>();
        } else {
            self.step_cycle_impl::<false>();
        }
    }

    /// The cycle loop, monomorphized over phase timing so the untimed
    /// (normal) instantiation contains no stopwatch reads at all. The lap
    /// macro keeps both instantiations on one phase sequence.
    fn step_cycle_impl<const TIMED: bool>(&mut self) {
        let mut lap_start = if TIMED { Some(std::time::Instant::now()) } else { None };
        macro_rules! lap {
            ($field:ident) => {
                if TIMED {
                    if let (Some(t0), Some(pt)) =
                        (lap_start.as_mut(), self.phase_times.as_deref_mut())
                    {
                        let now = std::time::Instant::now();
                        pt.$field += now.duration_since(*t0).as_nanos() as u64;
                        *t0 = now;
                    }
                }
            };
        }
        self.stats.window_occupancy_sum += self.window.len() as u64;
        self.phase_wakeup();
        lap!(wakeup_ns);
        self.phase_select();
        lap!(select_ns);
        self.phase_events();
        lap!(events_ns);
        self.phase_commit();
        lap!(commit_ns);
        if !self.finished && self.fault.is_none() {
            self.phase_fetch();
            lap!(fetch_ns);
            self.phase_insert();
            lap!(insert_ns);
        }
        if self.counters.is_enabled() {
            // After every phase so the warmup-boundary reset inside commit
            // still sees this cycle attributed exactly once.
            self.record_cpi_cycle();
        }
        lap!(obs_ns);
        self.cycle += 1;
        self.blocked_slots = std::mem::take(&mut self.blocked_slots_next);
        if self.injection.is_some() {
            self.maybe_inject_spurious_wakeup();
        }
        if self.strict_invariants && self.fault.is_none() {
            if let Err(reason) = self.check_invariants_result() {
                self.fault = Some(SimFault::Invariant {
                    cycle: self.cycle,
                    reason,
                    dump: self.dump_state(),
                });
            }
        }
        lap!(other_ns);
        if TIMED {
            if let Some(pt) = self.phase_times.as_deref_mut() {
                pt.cycles += 1;
            }
        }
    }

    // ---------------------------------------------------------- wakeup --

    fn phase_wakeup(&mut self) {
        let mut list = std::mem::take(&mut self.scratch.broadcasts);
        self.broadcasts.pop_into(self.cycle, &mut list);
        let mut consumers = std::mem::take(&mut self.scratch.consumers);
        for &(mut ev) in &list {
            // Injection: a single-bit upset of the in-flight dest tag. The
            // true consumers never hear this broadcast; the corrupted tag
            // either names nothing (a lost pulse) or aliases another
            // in-flight instruction.
            if let Some(FaultInjection::TagBitFlip { nth, bit }) = self.injection {
                self.injection_events += 1;
                if self.injection_events >= nth {
                    ev.seq ^= 1u64 << bit;
                    self.injection = None;
                }
            }
            let Some(p) = self.inst_mut(ev.seq) else { continue };
            if p.epoch != ev.epoch || p.state != IState::Issued {
                continue;
            }
            p.broadcast_done = true;
            // Walk the producer's matrix rows in ring (= sequence) order.
            // A consumer with both operands on this producer appears in
            // both rows and gets two deliveries, src0 then src1 — the
            // injection layer counts deliveries, so the call count and
            // order reproduce the per-operand CAM pulses exactly.
            consumers.clear();
            let p_slot = self.window.slot_of(ev.seq);
            let head_slot = self.window.head_slot();
            let window = &self.window;
            self.matrix.for_each_consumer(p_slot, head_slot, |c_slot, _src| {
                // Ring arithmetic alone recovers the consumer's seq; a live
                // producer's rows never hold stale bits (consumers are
                // younger, so they retire after the producer clears them).
                if let Some(c_seq) = window.seq_at(c_slot) {
                    consumers.push(c_seq);
                }
            });
            for &c_seq in &consumers {
                self.deliver_wakeup(c_seq, ev.seq);
            }
        }
        self.scratch.consumers = consumers;
        self.scratch.broadcasts = list;
    }

    fn deliver_wakeup(&mut self, c_seq: u64, producer: u64) {
        let cycle = self.cycle;
        let slow_bus = self.uses_slow_bus();
        let wakeup = self.config.wakeup;
        // Injection: the nth delivery's fast-bus pulse is lost entirely —
        // the consumer's comparator never fires. Only a later squash
        // recompute can re-derive the readiness; otherwise the consumer
        // waits forever and the watchdog reports the hang.
        if let Some(FaultInjection::DroppedWakeup { nth }) = self.injection {
            self.injection_events += 1;
            if self.injection_events >= nth {
                self.injection = None;
                return;
            }
        }
        // Injection: starting with the nth delivery, one slow-bus
        // rebroadcast lands a cycle late (+2 instead of the architected
        // +1). Armed here, applied below once a slow slot actually wakes.
        let mut delay_slow = false;
        if let Some(FaultInjection::DelayedSlowBus { nth }) = self.injection {
            self.injection_events += 1;
            delay_slow = self.injection_events >= nth;
        }
        let Some(c) = self.inst_mut(c_seq) else { return };
        if c.state != IState::Waiting {
            return;
        }
        let fast_slot = c.fast_slot;
        let two_src = c.is_two_source();
        let mut slow_delayed = false;
        let mut slow_delivered = 0u32;
        let mut changed = false;
        for slot in 0..2 {
            let Some(src) = c.srcs[slot].as_mut() else { continue };
            if src.producer != Some(producer) || src.ready {
                continue;
            }
            changed = true;
            src.ready = true;
            src.broadcast_cycle = cycle;
            let slow = slow_bus && two_src && slot != fast_slot;
            src.effective_cycle = cycle + u64::from(slow);
            if slow {
                slow_delivered += 1;
            }
            if slow && delay_slow && !slow_delayed {
                src.effective_cycle = cycle + 2;
                slow_delayed = true;
            }
        }
        // The consumer becomes a select candidate once the scheme's wakeup
        // condition holds; timing (slow-bus effective cycles) and LSQ state
        // are still checked by select every cycle.
        let enqueue = !c.in_ready_list && wakeup_ready(c, wakeup);
        if enqueue {
            c.in_ready_list = true;
        }
        // Refresh the cached timing cycle on enqueue, and whenever an
        // operand of an already-enqueued candidate transitions (tag
        // elimination enqueues on the watched side alone; a post-misfire
        // candidate then waits for the other side's wakeup too).
        if enqueue || (changed && c.in_ready_list) {
            let at = ready_cycle_of(c, wakeup);
            let slot = self.window.slot_of(c_seq);
            if enqueue {
                self.ready.set(slot);
            }
            self.ready_at[slot] = at;
        }
        if slow_delivered > 0 && self.counters.is_enabled() {
            self.slow_wakeups_this_cycle += slow_delivered;
        }
        if slow_delayed {
            self.injection = None; // the delayed-rebroadcast fault fires once
        }
        let Some(c) = self.inst_mut(c_seq) else { return };
        // Wakeup-pair statistics (Figures 6/7, Table 3) fire once, when the
        // second pending operand of a 2-pending-source instruction wakes.
        if c.two_pending_at_insert() && !c.wakeup_pair_recorded && c.srcs_iter().all(|s| s.ready) {
            c.wakeup_pair_recorded = true;
            let pc = c.pc;
            let mut cycles = [0u64; 2];
            for (k, s) in c.srcs_iter().enumerate() {
                cycles[k] = s.broadcast_cycle;
            }
            let fast = c.fast_slot;
            self.record_wakeup_pair(pc, cycles[0], cycles[1], fast);
        }
        if matches!(self.injection, Some(FaultInjection::SpuriousWakeup { .. })) {
            self.injection_events += 1;
        }
    }

    /// Mutation testing: once armed and past its wakeup-delivery count,
    /// the end of the cycle wrongly marks one genuinely-pending operand
    /// ready — its producer has not broadcast and the consumer is not on
    /// the ready list — with no enqueue, exactly the kind of missed-wakeup
    /// scheduler bug the strict invariant sweep exists to catch. Runs at
    /// end of cycle so a same-cycle broadcast of the chosen producer
    /// cannot retroactively legitimize the marking.
    fn maybe_inject_spurious_wakeup(&mut self) {
        let Some(FaultInjection::SpuriousWakeup { nth }) = self.injection else { return };
        if self.injection_events < nth {
            return;
        }
        let cycle = self.cycle;
        let mut target = None;
        'scan: for i in &self.window {
            if i.state != IState::Waiting || i.in_ready_list {
                continue;
            }
            for (k, s) in i.srcs.iter().enumerate() {
                let Some(s) = s else { continue };
                if s.ready {
                    continue;
                }
                let Some(p) = s.producer else { continue };
                if self.inst(p).is_some_and(|pi| !pi.broadcast_done) {
                    target = Some((i.seq, k));
                    break 'scan;
                }
            }
        }
        let Some((seq, slot)) = target else { return };
        let Some(c) = self.inst_mut(seq) else { return };
        let Some(src) = c.srcs[slot].as_mut() else { return };
        src.ready = true;
        src.effective_cycle = cycle;
        src.broadcast_cycle = cycle;
        self.injection = None; // fire once
    }

    fn record_wakeup_pair(&mut self, pc: u64, left: u64, right: u64, fast_slot: usize) {
        let slack = left.abs_diff(right);
        self.stats.wakeup_slack[(slack as usize).min(3)] += 1;
        if slack == 0 {
            self.la_bank.observe(pc, None);
            if self.uses_slow_bus() {
                // A simultaneous dual wakeup always pays the slow-bus cycle
                // (paper §3.3).
                self.stats.simultaneous_wakeups += 1;
            }
            return;
        }
        let last = if left > right { Side::Left } else { Side::Right };
        self.la_bank.observe(pc, Some(last));
        match last {
            Side::Left => self.stats.wakeup_order.last_left += 1,
            Side::Right => self.stats.wakeup_order.last_right += 1,
        }
        match self.la_history.get_mut(pc).replace(last) {
            Some(prev) if prev == last => self.stats.wakeup_order.same_as_last += 1,
            Some(_) => self.stats.wakeup_order.diff_from_last += 1,
            None => {}
        }
        if let Some(pred) = self.predictor.as_mut() {
            pred.update(pc, last);
        }
        let last_slot = match last {
            Side::Left => 0,
            Side::Right => 1,
        };
        if self.uses_slow_bus() && last_slot != fast_slot {
            self.stats.seq_wakeup_slow_last += 1;
        }
    }

    // ---------------------------------------------------------- select --

    fn phase_select(&mut self) {
        let cycle = self.cycle;
        if cycle < self.issue_stall_until {
            // Scheduler restart after a pullback: every slot of the cycle
            // is squash overhead.
            self.cpi_select = CpiSelectInfo { restart: true, ..CpiSelectInfo::default() };
            return;
        }
        let mut port_defer = 0u32;
        let mut fu_defer = 0u32;
        let rf_blocked = self.blocked_slots;
        let mut budget = self.config.width.saturating_sub(self.blocked_slots);
        let mut port_budget = self.config.width;
        // Injection: a read-port conflict storm — for the armed window all
        // but one issue slot (and all but one shared read port) are busy.
        // Purely a structural-hazard fault: issue throttles, nothing else.
        if let Some(FaultInjection::ReadPortStorm { from_cycle, cycles }) = self.injection {
            if cycle >= from_cycle + cycles {
                self.injection = None;
            } else if cycle >= from_cycle {
                budget = budget.min(1);
                port_budget = 1;
            }
        }
        // One ring-order (= oldest-first) pass over the ready bitset:
        // compact away instructions that issued since they were enqueued
        // (bit and flag cleared after the walk), and split the survivors
        // that pass this cycle's timing/FU/LSQ checks into the two
        // priority classes. Entries that merely fail the per-cycle checks
        // keep their bit for later cycles, so the per-cycle work is
        // proportional to the instructions that are (nearly) selectable —
        // not the window. Concatenating the classes yields select order —
        // loads/branches first, then oldest (paper §2.1) — with no sort:
        // ring order from the head slot *is* sequence order in each class.
        let mut cands = std::mem::take(&mut self.scratch.cands);
        let mut cands_lo = std::mem::take(&mut self.scratch.cands_lo);
        let mut drop = std::mem::take(&mut self.scratch.drop_slots);
        cands.clear();
        cands_lo.clear();
        drop.clear();
        // The scan reads only the flat columns — lifecycle byte, cached
        // timing cycle, flag byte — never the instruction records; only a
        // store-wait load pays an LSQ walk. A whole 128-slot arena's
        // columns fit in a handful of cache lines.
        let window = &self.window;
        let ready_at = &self.ready_at;
        self.ready.for_each_from(window.head_slot(), |slot| {
            if window.state[slot] == slot_state::WAITING {
                if cycle < ready_at[slot] {
                    return;
                }
                let flags = window.flags[slot];
                let seq = window.seq_at(slot).expect("waiting slot is resident");
                if flags & slot_flags::LOAD != 0
                    && *self.stwait.get(window.pcs[slot])
                    && matches!(self.check_lsq(seq), LsqOutcome::Blocked)
                {
                    // A load whose PC previously replayed on an older-store
                    // conflict waits until the conflict is gone (21264
                    // stWait bits); the walk is bounded by the LSQ.
                    return;
                }
                if flags & slot_flags::HIGH_PRIORITY != 0 {
                    cands.push((false, seq));
                } else {
                    cands_lo.push((true, seq));
                }
            } else {
                drop.push(slot);
            }
        });
        cands.append(&mut cands_lo);
        for &slot in &drop {
            self.ready.clear(slot);
            if let Some(i) = self.window.by_slot_mut(slot) {
                i.in_ready_list = false;
            }
        }
        self.scratch.cands_lo = cands_lo;
        self.scratch.drop_slots = drop;

        let mut issued = 0u32;
        for &(_, seq) in &cands {
            if issued >= budget {
                break;
            }
            let (
                class,
                base_latency,
                pipelined,
                now_any,
                now_fast,
                two_source,
                both_ready_at_insert,
                ports,
                wakeup_eff,
                unwatched_unready,
            ) = {
                let i = self.inst(seq).expect("candidate in window");
                (
                    i.fu,
                    i.base_latency,
                    i.fu_pipelined,
                    i.srcs_iter().any(|s| s.effective_cycle == cycle),
                    i.srcs[i.fast_slot].as_ref().is_some_and(|s| s.effective_cycle == cycle),
                    i.is_two_source(),
                    i.is_two_source() && i.srcs_iter().all(|s| s.ready_at_insert),
                    i.srcs_iter().filter(|s| s.effective_cycle != cycle).count() as u32,
                    // Effective last-wakeup cycle, clamped so replayed or
                    // scoreboard-verified operands (stale stamps) stay
                    // within the instruction's window residency.
                    i.srcs_iter()
                        .filter(|s| s.ready)
                        .map(|s| s.effective_cycle)
                        .max()
                        .unwrap_or(i.insert_cycle)
                        .clamp(i.insert_cycle, cycle),
                    // Tag-elimination misfire precondition: the unwatched
                    // operand has not woken (scoreboard-verified at issue).
                    !i.te_verified_wait
                        && i.srcs[1 - i.fast_slot].as_ref().is_some_and(|s| !s.ready),
                )
            };

            // Half-price bypass (§6 extension): a functional unit has one
            // bypass input, so an instruction whose both operands are only
            // available on the bypass this cycle must wait one cycle (the
            // earlier value is then readable from the register file).
            if self.config.bypass == BypassScheme::HalfPaths && two_source && ports == 0 {
                self.stats.bypass_deferrals += 1;
                port_defer += 1;
                continue;
            }

            // Crossbar: non-bypassed operands consume shared read ports;
            // arbitration defers instructions that would overflow.
            if self.config.regfile == RegFileScheme::SharedCrossbar {
                if ports > port_budget {
                    self.stats.crossbar_deferrals += 1;
                    port_defer += 1;
                    continue;
                }
                if !self.fu.acquire(class, cycle, base_latency, pipelined) {
                    fu_defer += 1;
                    continue;
                }
                port_budget -= ports;
            } else if !self.fu.acquire(class, cycle, base_latency, pipelined) {
                fu_defer += 1;
                continue;
            }

            // Sequential register access (paper §4.3): a 2-source
            // instruction with no `now` bit needs two reads of its single
            // port. Combined with sequential wakeup only the fast-side
            // `now` bit exists (paper §5.3).
            let mut seq_rf = self.config.regfile == RegFileScheme::SequentialAccess
                && two_source
                && !(if self.uses_slow_bus() { now_fast } else { now_any });
            // Injection: a stale `nowL/nowR` bit claimed a bypass match that
            // is not really there. The speculation-free fallback is the full
            // two-read sequence: +1 cycle, never a wrong value.
            if let Some(FaultInjection::StaleNowBits { nth }) = self.injection {
                if self.config.regfile == RegFileScheme::SequentialAccess && two_source && !seq_rf {
                    self.injection_events += 1;
                    if self.injection_events >= nth {
                        seq_rf = true;
                        self.injection = None;
                    }
                }
            }

            // Tag elimination: scoreboard-verify the unwatched operand.
            let te_misfire = matches!(self.config.wakeup, WakeupScheme::TagElimination { .. })
                && two_source
                && unwatched_unready;

            #[allow(clippy::unnecessary_lazy_evaluations)]
            let rf_category = two_source.then(|| {
                if both_ready_at_insert {
                    RfCategory::TwoReady
                } else if now_any {
                    RfCategory::BackToBack
                } else {
                    RfCategory::NonBackToBack
                }
            });

            let extra = u64::from(seq_rf);
            let exec_offset = self.exec_offset();
            let (is_load, is_store, dest, epoch) = {
                let i = self.inst_mut(seq).expect("candidate");
                let (is_load, is_store, dest) = (i.is_load(), i.is_store(), i.dest);
                i.state = IState::Issued;
                i.issue_cycle = cycle;
                i.wakeup_cycle = wakeup_eff;
                i.seq_rf = seq_rf;
                if let Some(cat) = rf_category {
                    i.rf_category = Some(cat);
                }
                (is_load, is_store, dest, i.epoch)
            };
            let slot = self.window.slot_of(seq);
            self.window.state[slot] = slot_state::ISSUED;
            if self.trace.is_some() {
                let (pc, inst) = {
                    let i = self.inst(seq).expect("candidate");
                    (i.pc, i.inst)
                };
                if let Some(t) = self.trace.as_mut() {
                    t.line(format_args!("{cycle} ISSUE {seq} pc={pc:#x} {inst} seq_rf={seq_rf}"));
                }
            }

            if is_load {
                let l_spec = self.load_spec_latency();
                if dest.is_some() {
                    self.schedule_broadcast(cycle + l_spec, seq, epoch);
                }
                // Detection happens when dependents would issue; an extra
                // RF stage pushes it (and the shadow) out by one cycle.
                let detect = cycle + l_spec + u64::from(self.config.extra_rf_stages());
                self.schedule_event(detect, Event::MemAccess { seq, epoch });
            } else {
                let l = u64::from(base_latency) + extra;
                if dest.is_some() {
                    self.schedule_broadcast(cycle + l, seq, epoch);
                }
                let complete = cycle + exec_offset + l - 1;
                let _ = is_store;
                self.schedule_event(complete, Event::Complete { seq, epoch });
            }

            if seq_rf {
                self.stats.seq_rf_accesses += 1;
                // The paper's Figure 11b: the slot's select logic disables
                // itself for one cycle while the port is read twice.
                self.blocked_slots_next += 1;
                if self.counters.is_enabled() {
                    self.counters.rf_rereads += 1;
                }
            }
            if te_misfire {
                // The missing operand is confirmed where operands are
                // physically read (payload RAM + RF traversal, the
                // schedule-adjacent scoreboard's veto point), so the
                // mis-schedule shadow spans the schedule-to-read distance
                // and the squash pays the non-selective pullback restart —
                // together these make tag elimination's penalty grow with
                // machine width and pipeline depth (paper §5.1).
                self.schedule_event(cycle + exec_offset, Event::TeVerify { seq, epoch });
            }
            if self.counters.is_enabled() {
                self.counters.wakeup_to_select.record(cycle - wakeup_eff);
            }
            issued += 1;
        }
        self.scratch.cands = cands;
        self.stats.issue_histogram[(issued as usize).min(self.config.width as usize)] += 1;
        if self.counters.is_enabled() {
            // Classify leftover slots now, while the window still shows
            // the select-time view (events/commit/insert will change it).
            let stall = (issued + rf_blocked + port_defer + fu_defer < self.config.width)
                .then(|| self.classify_stall_cycle());
            self.cpi_select = CpiSelectInfo {
                issued,
                rf_blocked,
                port_deferrals: port_defer,
                fu_deferrals: fu_defer,
                restart: false,
                stall,
            };
        }
    }

    /// Why no instruction could fill the remaining issue slots this
    /// cycle: the tail of the CPI attribution cascade (see
    /// [`Simulator::record_cpi_cycle`]). Read-only.
    fn classify_stall_cycle(&self) -> CpiCategory {
        let cycle = self.cycle;
        if self.window.is_empty() {
            return CpiCategory::FetchStarved;
        }
        let spec = self.load_spec_latency();
        let mut slow_hold: Option<CpiCategory> = None;
        let mut mem_wait = false;
        for i in &self.window {
            match i.state {
                IState::Waiting => {
                    // All operands woke but one is still riding the slow
                    // bus: the sequential-wakeup +1 in one of its two
                    // flavours (paper §3.3).
                    if slow_hold.is_none()
                        && i.srcs_iter().all(|s| s.ready)
                        && i.srcs_iter().any(|s| s.effective_cycle > cycle)
                    {
                        let mut bcs = [0u64; 2];
                        for (k, s) in i.srcs_iter().enumerate() {
                            bcs[k] = s.broadcast_cycle;
                        }
                        let simultaneous = i.num_srcs() == 2 && bcs[0] == bcs[1];
                        slow_hold = Some(if simultaneous {
                            CpiCategory::SeqWakeupDelay
                        } else {
                            CpiCategory::LaMispredictDelay
                        });
                    }
                }
                IState::Issued => {
                    // An in-flight load past its speculative latency with
                    // no broadcast (DL1 miss shadow), or parked on an
                    // older store: the window is waiting on memory.
                    if i.is_load()
                        && (i.load_stalled || (!i.broadcast_done && cycle > i.issue_cycle + spec))
                    {
                        mem_wait = true;
                    }
                }
                IState::Completed => {}
            }
        }
        if let Some(c) = slow_hold {
            return c;
        }
        if mem_wait {
            return CpiCategory::DcacheMissWait;
        }
        CpiCategory::SchedulerEmpty
    }

    /// End-of-cycle CPI attribution: every one of the machine's `width`
    /// issue slots is charged to exactly one [`CpiCategory`] via a strict
    /// priority cascade — issued, then squash-restart, RF re-read
    /// blocks, port conflicts, FU contention, and finally the
    /// select-time stall classification. The property suite holds the
    /// books to `cpi.total() == cycles × width`.
    fn record_cpi_cycle(&mut self) {
        if self.uses_slow_bus() {
            self.counters.slow_bus_occupancy.record(u64::from(self.slow_wakeups_this_cycle));
        }
        self.slow_wakeups_this_cycle = 0;
        let width = u64::from(self.config.width);
        let info = self.cpi_select;
        let cpi = &mut self.counters.cpi;
        if info.restart {
            cpi.add(CpiCategory::Squash, width);
            return;
        }
        cpi.add(CpiCategory::Committing, u64::from(info.issued));
        let mut remaining = width.saturating_sub(u64::from(info.issued));
        let rf = u64::from(info.rf_blocked).min(remaining);
        cpi.add(CpiCategory::RfRereadStall, rf);
        remaining -= rf;
        let ports = u64::from(info.port_deferrals).min(remaining);
        cpi.add(CpiCategory::PortConflict, ports);
        remaining -= ports;
        let fu = u64::from(info.fu_deferrals).min(remaining);
        cpi.add(CpiCategory::FuContention, fu);
        remaining -= fu;
        if remaining > 0 {
            cpi.add(info.stall.unwrap_or(CpiCategory::SchedulerEmpty), remaining);
        }
    }

    // ---------------------------------------------------------- events --

    fn phase_events(&mut self) {
        // Retry loads stalled on older stores. The retry list and its
        // scratch partner ping-pong, so re-stalling never reallocates.
        let mut stalled = std::mem::take(&mut self.stalled_loads);
        std::mem::swap(&mut self.stalled_loads, &mut self.scratch.stalled);
        for &seq in &stalled {
            let Some(i) = self.inst(seq) else { continue };
            if i.state != IState::Issued || !i.load_stalled {
                continue;
            }
            match self.check_lsq(seq) {
                LsqOutcome::Blocked => self.stalled_loads.push(seq),
                outcome => self.finish_load_access(seq, outcome, true),
            }
        }
        stalled.clear();
        self.scratch.stalled = stalled;

        let mut list = std::mem::take(&mut self.scratch.events);
        self.events.pop_into(self.cycle, &mut list);
        // Squashes first, then memory, then completions; stale events drop
        // themselves via the epoch check.
        let mut mem = std::mem::take(&mut self.scratch.mem);
        let mut completes = std::mem::take(&mut self.scratch.completes);
        mem.clear();
        completes.clear();
        for &ev in &list {
            match ev {
                Event::TeVerify { seq, epoch } => self.te_verify(seq, epoch),
                Event::MemAccess { .. } => mem.push(ev),
                Event::Complete { .. } => completes.push(ev),
            }
        }
        for &ev in &mem {
            if let Event::MemAccess { seq, epoch } = ev {
                self.mem_access(seq, epoch);
            }
        }
        for &ev in &completes {
            if let Event::Complete { seq, epoch } = ev {
                self.complete(seq, epoch);
            }
        }
        self.scratch.events = list;
        self.scratch.mem = mem;
        self.scratch.completes = completes;
    }

    fn te_verify(&mut self, seq: u64, epoch: u32) {
        let Some(i) = self.inst(seq) else { return };
        if i.epoch != epoch || i.state != IState::Issued {
            return;
        }
        let t0 = i.issue_cycle;
        self.stats.te_misfires += 1;
        // Non-selective squash of everything issued after the misfired
        // instruction, plus the instruction itself (Ernst & Austin; the
        // paper argues selective recovery cannot apply here).
        self.squash(t0, self.cycle, Some(seq), None);
        let wakeup = self.config.wakeup;
        if let Some(i) = self.inst_mut(seq) {
            i.te_verified_wait = true;
            // The wait flag changes which operands select times against
            // (both instead of the watched one); the squash above enqueued
            // the instruction under the old rule, so refresh its cache.
            let at = (i.in_ready_list).then(|| ready_cycle_of(i, wakeup));
            if let Some(at) = at {
                let slot = self.window.slot_of(seq);
                self.ready_at[slot] = at;
            }
        }
    }

    fn mem_access(&mut self, seq: u64, epoch: u32) {
        let Some(i) = self.inst(seq) else { return };
        if i.epoch != epoch || i.state != IState::Issued {
            return;
        }
        match self.check_lsq(seq) {
            LsqOutcome::Blocked => {
                // Latency mis-speculation: dependents were woken for a DL1
                // hit that cannot happen yet. Train the store-wait bit so
                // the next instance of this load holds at select instead.
                let pc = self.inst(seq).expect("load in window").pc;
                *self.stwait.get_mut(pc) = true;
                self.load_misspeculate(seq);
                if let Some(i) = self.inst_mut(seq) {
                    i.load_stalled = true;
                }
                self.stalled_loads.push(seq);
            }
            outcome => self.finish_load_access(seq, outcome, false),
        }
    }

    /// Completes a load's memory access. `retried` marks loads that had
    /// stalled earlier (their dependents were already squashed).
    fn finish_load_access(&mut self, seq: u64, outcome: LsqOutcome, retried: bool) {
        let addr = self.inst(seq).and_then(|i| i.mem_addr).expect("load has an address");
        let dl1_hit = u64::from(self.hierarchy.dl1_hit_latency());
        let lat = match outcome {
            LsqOutcome::Forward => dl1_hit,
            _ => u64::from(self.hierarchy.data_read(addr)),
        };
        let (issue, dest, epoch) = {
            let i = self.inst_mut(seq).expect("load in window");
            i.load_stalled = false;
            (i.issue_cycle, i.dest, i.epoch)
        };
        let exec_offset = self.exec_offset();
        if !retried && lat == dl1_hit {
            // Hit, exactly as speculated: the spec broadcast stands.
            let l_act = 1 + lat;
            self.schedule_event(issue + exec_offset + l_act - 1, Event::Complete { seq, epoch });
            return;
        }
        if !retried {
            // Miss detected now: squash the shadow.
            self.stats.load_miss_replays += 1;
            self.load_misspeculate(seq);
        }
        // The access has been in flight since address generation (two
        // cycles before the hit-speculation check), so the remaining time
        // is `lat - dl1_hit`; a retried access starts fresh this cycle.
        // Never schedule into the already-drained current wakeup phase.
        let data_cycle = if retried {
            (self.cycle + lat).max(self.cycle + 1)
        } else {
            (self.cycle + lat - dl1_hit).max(self.cycle + 1)
        };
        if dest.is_some() {
            self.schedule_broadcast(data_cycle, seq, epoch);
        }
        self.schedule_event(data_cycle + exec_offset - 1, Event::Complete { seq, epoch });
    }

    /// Invalidates a load's speculative wakeup and squashes its shadow.
    fn load_misspeculate(&mut self, seq: u64) {
        let i = self.inst_mut(seq).expect("load in window");
        i.broadcast_done = false;
        let t0 = i.issue_cycle;
        let dep_root = match self.config.recovery {
            RecoveryKind::NonSelective => None,
            RecoveryKind::Selective => Some(seq),
        };
        self.squash(t0, self.cycle, None, dep_root);
    }

    fn complete(&mut self, seq: u64, epoch: u32) {
        let cycle = self.cycle;
        let Some(i) = self.inst_mut(seq) else { return };
        if i.epoch != epoch || i.state != IState::Issued {
            return;
        }
        i.state = IState::Completed;
        i.complete_cycle = cycle;
        if i.is_store() {
            i.addr_resolved = true;
        }
        let resolve = i.mispredicted && !i.resume_done;
        if resolve {
            i.resume_done = true;
        }
        let slot = self.window.slot_of(seq);
        self.window.state[slot] = slot_state::COMPLETED;
        if resolve {
            self.frontend.resolve_branch(cycle + 1);
        }
    }

    // ---------------------------------------------------------- squash --

    /// Squashes instructions issued in `(t0, t1]`. With `dep_root`, only
    /// instructions transitively dependent on it replay (selective
    /// recovery, Figure 5); otherwise everything in the shadow replays
    /// (non-selective). `also` forces one extra instruction (the TE
    /// misfire itself) into the replay set.
    fn squash(&mut self, t0: u64, t1: u64, also: Option<u64>, dep_root: Option<u64>) {
        let mut dep_set = std::mem::take(&mut self.scratch.dep_set);
        let mut replay = std::mem::take(&mut self.scratch.replay);
        dep_set.clear();
        replay.clear();
        dep_set.extend(dep_root);
        for i in &self.window {
            if Some(i.seq) == dep_root {
                continue;
            }
            let in_shadow = matches!(i.state, IState::Issued | IState::Completed)
                && i.issue_cycle > t0
                && i.issue_cycle <= t1;
            let selected = if dep_root.is_some() {
                in_shadow
                    && i.srcs_iter()
                        .any(|s| s.producer.is_some_and(|p| dep_set.binary_search(&p).is_ok()))
            } else {
                in_shadow
            };
            if selected || Some(i.seq) == also {
                replay.push(i.seq);
                if dep_root.is_some() {
                    dep_set.push(i.seq); // seqs ascend; stays sorted
                }
            }
        }
        if !replay.is_empty() {
            // Pulled-back instructions re-arbitrate after a 1-cycle
            // scheduler restart (21264 mini-restart).
            self.issue_stall_until = self.issue_stall_until.max(self.cycle + 2);
        }
        for &seq in &replay {
            let i = self.inst_mut(seq).expect("replay target in window");
            i.state = IState::Waiting;
            i.broadcast_done = false;
            i.epoch += 1;
            i.replays += 1;
            i.load_stalled = false;
            if i.is_store() {
                i.addr_resolved = false;
            }
            let slot = self.window.slot_of(seq);
            self.window.state[slot] = slot_state::WAITING;
            self.stats.replayed_insts += 1;
        }
        self.scratch.dep_set = dep_set;
        self.scratch.replay = replay;
        self.recompute_ready();
    }

    /// Re-derives every waiting instruction's operand readiness from
    /// producer availability and rebuilds the ready-candidate list (used
    /// after squashes — the one remaining O(window) scheduler path, paid
    /// only on replay events, never in the steady state).
    fn recompute_ready(&mut self) {
        let head = self.window.head_seq();
        let slot_mask = self.window.arena_capacity() as u64 - 1;
        let mut avail = std::mem::take(&mut self.scratch.avail);
        avail.clear();
        avail.extend(self.window.iter().map(|i| i.broadcast_done));
        let cycle = self.cycle;
        let wakeup = self.config.wakeup;
        self.ready.clear_all();
        for i in self.window.iter_mut() {
            if i.state != IState::Waiting {
                i.in_ready_list = false;
                continue;
            }
            for src in i.srcs.iter_mut().flatten() {
                let Some(p) = src.producer else { continue };
                let a = p < head || avail.get((p - head) as usize).copied().unwrap_or(true);
                if src.ready && !a {
                    src.ready = false;
                } else if !src.ready && a {
                    // The tag fired while this instruction was issued (e.g.
                    // a tag-elimination misfire); the value now comes from
                    // the register file.
                    src.ready = true;
                    src.effective_cycle = cycle;
                    src.broadcast_cycle = cycle;
                }
            }
            let enq = wakeup_ready(i, wakeup);
            i.in_ready_list = enq;
            if enq {
                let slot = (i.seq & slot_mask) as usize;
                self.ready.set(slot);
                self.ready_at[slot] = ready_cycle_of(i, wakeup);
            }
        }
        self.scratch.avail = avail;
    }

    // ------------------------------------------------------------- lsq --

    fn check_lsq(&self, load_seq: u64) -> LsqOutcome {
        let load = self.inst(load_seq).expect("load in window");
        let la = load.mem_addr.expect("load address");
        let lw = match load.inst {
            Inst::Load { width, .. } => width.bytes(),
            _ => 8, // FLoad
        };
        let mut decision = LsqOutcome::Normal;
        // The store queue holds exactly the in-flight stores in program
        // order, so this walk is bounded by the LSQ occupancy.
        for &store_seq in &self.store_queue {
            if store_seq >= load_seq {
                break;
            }
            let i = self.inst(store_seq).expect("queued store in window");
            if !i.addr_resolved {
                // Unknown older store address: conservative stall
                // (sim-outorder's policy).
                return LsqOutcome::Blocked;
            }
            let sa = i.mem_addr.expect("resolved store address");
            let sw = match i.inst {
                Inst::Store { width, .. } => width.bytes(),
                _ => 8, // FStore
            };
            let overlap = sa < la + lw && la < sa + sw;
            if !overlap {
                continue;
            }
            let covers = sa <= la && la + lw <= sa + sw;
            if !covers {
                decision = LsqOutcome::Blocked; // partial overlap
                continue;
            }
            let data_ready = match i.store_data_producer {
                None => true,
                Some(p) => {
                    p < self.window.head_seq()
                        || self.inst(p).is_some_and(|pi| pi.state == IState::Completed)
                }
            };
            decision = if data_ready { LsqOutcome::Forward } else { LsqOutcome::Blocked };
        }
        decision
    }

    // ---------------------------------------------------------- commit --

    fn phase_commit(&mut self) {
        for _ in 0..self.config.width {
            let Some(head) = self.window.front() else { break };
            if head.state != IState::Completed {
                break;
            }
            // Copy out the narrow field set commit needs, then release the
            // head's arena slot in place (`drop_front`): clear its ready
            // bit and its wakeup-matrix rows so a later instruction reusing
            // the slot starts clean. Its consumer bits in *other* rows are
            // already gone — every producer it depends on is older and
            // released its rows first.
            let slot = self.window.head_slot();
            let (seq, pc, inst, next_pc, taken, mem_addr, dest, dest_value, mem_data) = (
                head.seq,
                head.pc,
                head.inst,
                head.next_pc,
                head.taken,
                head.mem_addr,
                head.dest,
                head.dest_value,
                head.mem_data,
            );
            let (is_store, is_mem, two_source, rf_category) =
                (head.is_store(), head.is_mem(), head.is_two_source(), head.rf_category);
            let (insert_cycle, wakeup_cycle, issue_cycle, complete_cycle, replays, seq_rf) = (
                head.insert_cycle,
                head.wakeup_cycle,
                head.issue_cycle,
                head.complete_cycle,
                head.replays,
                head.seq_rf,
            );
            self.window.drop_front();
            self.ready.clear(slot);
            self.matrix.clear_rows(slot);
            if is_store {
                let queued = self.store_queue.pop_front();
                debug_assert_eq!(queued, Some(seq), "store-queue head mismatch");
                if let Some(addr) = mem_addr {
                    self.hierarchy.data_write(addr);
                }
            }
            if is_mem {
                self.lsq_used -= 1;
            }
            if let Some(d) = dest {
                if self.rename[d.index()] == Some(seq) {
                    self.rename[d.index()] = None;
                }
            }
            let cycle = self.cycle;
            if let Some(mut hook) = self.commit_hook.take() {
                let rec = CommitRecord {
                    seq,
                    cycle,
                    pc,
                    inst,
                    next_pc,
                    taken,
                    mem_addr,
                    dest,
                    dest_value,
                    mem_data,
                };
                let verdict = hook.on_commit(&rec);
                self.commit_hook = Some(hook);
                if let Err(reason) = verdict {
                    self.fault =
                        Some(SimFault::Hook { seq, cycle, reason, dump: self.dump_state() });
                    return;
                }
            }
            if let Some(t) = self.trace.as_mut() {
                t.line(format_args!("{cycle} COMMIT {seq} pc={pc:#x} {inst}"));
            }
            self.stats.committed += 1;
            self.committed_total += 1;
            if let Some(t) = self.pipetrace.as_mut() {
                if t.recording() {
                    t.push(TraceRecord {
                        seq,
                        pc,
                        inst,
                        insert_cycle,
                        wakeup_cycle,
                        issue_cycle,
                        complete_cycle,
                        commit_cycle: self.cycle,
                        replays,
                        seq_rf,
                    });
                }
            }
            if self.committed_total == self.config.warmup_insts {
                // Warmup boundary: restart the counters in place (no
                // reallocation); warm state (caches, predictors, the
                // window) carries over. The CPI attribution of the current
                // cycle runs at end-of-cycle, after this reset, so the
                // registry covers exactly the cycles `stats` counts.
                self.stats.reset_in_place();
                if self.counters.is_enabled() {
                    self.counters.reset_in_place();
                }
                self.stats_start_cycle = self.cycle;
            }
            if two_source {
                match rf_category {
                    Some(RfCategory::TwoReady) => self.stats.rf_two_ready += 1,
                    Some(RfCategory::BackToBack) => self.stats.rf_back_to_back += 1,
                    Some(RfCategory::NonBackToBack) => self.stats.rf_non_back_to_back += 1,
                    None => {}
                }
            }
            if inst == Inst::Halt || self.committed_total >= self.config.max_insts {
                self.finished = true;
                break;
            }
            // Injection (classifier self-test only): stop the machine as if
            // the program had halted. The truncated run silently disagrees
            // with the reference — a genuine SDC the campaign must flag.
            if let Some(FaultInjection::PrematureHalt { at_commit }) = self.injection {
                if self.committed_total >= at_commit {
                    self.finished = true;
                    self.injection = None;
                    break;
                }
            }
        }
    }

    // ----------------------------------------------------------- front --

    fn phase_fetch(&mut self) {
        if let Err(error) =
            self.frontend.run_cycle(self.cycle, &mut self.hierarchy, &mut self.stats)
        {
            // A program bug (wild PC or data address), surfaced as a
            // structured fault so fuzzing sweeps can report it.
            self.fault = Some(SimFault::Emu { cycle: self.cycle, error });
        }
    }

    fn phase_insert(&mut self) {
        // Map-table read-port budget for this dispatch group: two per slot
        // conventionally, one per slot under half-price renaming (§6).
        let mut rename_ports = match self.config.rename {
            RenameScheme::FullPorts => 2 * self.config.width,
            RenameScheme::HalfPorts => self.config.width,
        };
        for _ in 0..self.config.width {
            let Some(f) = self.frontend.peek_insertable(self.cycle) else { break };
            if self.window.len() >= self.config.ruu_size {
                break;
            }
            let lookups = f.step.inst.unique_sources().len() as u32;
            if lookups > rename_ports {
                // The group ran out of rename ports; the rest of the
                // group dispatches next cycle.
                self.stats.rename_port_stalls += 1;
                break;
            }
            rename_ports -= lookups;
            let is_mem = f.step.inst.is_load() || f.step.inst.is_store();
            if is_mem && self.lsq_used >= self.config.lsq_size {
                break;
            }
            let f = self.frontend.pop().expect("peeked");
            let seq = self.next_seq;
            self.next_seq += 1;
            let cycle = self.cycle;

            // Rename the scheduler sources against in-flight producers,
            // registering each dependence in the producer's wakeup-matrix
            // row for this operand index. The renamed operands build up in
            // a small local array; the full ~300-byte record is
            // constructed once, directly in its arena slot, below.
            let sources = f.step.inst.scheduler_sources();
            let mut srcs: [Option<SrcState>; 2] = [None, None];
            for (slot, src) in srcs.iter_mut().enumerate() {
                if let Some(reg) = sources.get(slot) {
                    *src = Some(SrcState {
                        reg,
                        producer: None,
                        ready: true,
                        effective_cycle: 0,
                        broadcast_cycle: 0,
                        ready_at_insert: true,
                    });
                }
            }
            let c_slot = self.window.slot_of(seq);
            for (k, slot_src) in srcs.iter_mut().enumerate() {
                let Some(src) = slot_src.as_mut() else { continue };
                let Some(pseq) = self.rename[src.reg.index()] else { continue };
                let Some(p) = self.window.get(pseq) else { continue };
                src.producer = Some(pseq);
                let broadcast_done = p.broadcast_done;
                self.matrix.register(self.window.slot_of(pseq), k, c_slot);
                if broadcast_done {
                    // Value already flying/written; readable at dispatch.
                    src.ready = true;
                    src.ready_at_insert = true;
                    src.effective_cycle = cycle;
                    src.broadcast_cycle = cycle;
                } else {
                    src.ready = false;
                    src.ready_at_insert = false;
                }
            }
            let is_store = f.step.inst.is_store();
            let mut store_data_producer = None;
            if is_store {
                if let Some(dr) = f.step.inst.store_data_source() {
                    if let Some(pseq) = self.rename[dr.index()] {
                        if self.window.get(pseq).is_some() {
                            store_data_producer = Some(pseq);
                        }
                    }
                }
            }

            // Operand placement: a lone pending operand always takes the
            // fast/watched side; with two pending operands the predictor
            // (or the static right-side rule) chooses (paper §3.3).
            let fast_slot = self.choose_fast_slot(&srcs, f.step.pc);

            if let Some(d) = f.step.inst.dest() {
                self.rename[d.index()] = Some(seq);
            }
            let two_source = srcs.iter().flatten().count() == 2;
            if two_source {
                let ready = srcs.iter().flatten().filter(|s| s.ready_at_insert).count();
                self.stats.ready_at_insert[ready] += 1;
            }
            if is_mem {
                self.lsq_used += 1;
            }
            if is_store {
                self.store_queue.push_back(seq);
            }
            let wakeup = self.config.wakeup;
            let (enqueue, at) = {
                let di = self.window.push_back_with(seq, || {
                    let mut di = DynInst::from_step(seq, &f.step);
                    di.insert_cycle = cycle;
                    di.mispredicted = f.mispredicted;
                    di.dest_value = f.dest_value;
                    di.mem_data = f.mem_data;
                    di.srcs = srcs;
                    di.fast_slot = fast_slot;
                    di.store_data_producer = store_data_producer;
                    di
                });
                if wakeup_ready(di, wakeup) {
                    di.in_ready_list = true;
                    (true, ready_cycle_of(di, wakeup))
                } else {
                    (false, 0)
                }
            };
            if enqueue {
                self.ready.set(c_slot);
                self.ready_at[c_slot] = at;
            }
        }
    }

    fn choose_fast_slot(&mut self, srcs: &[Option<SrcState>; 2], pc: u64) -> usize {
        if srcs.iter().flatten().count() != 2 {
            return 0;
        }
        let mut pending = [0usize; 2];
        let mut n = 0;
        for (s, src) in srcs.iter().enumerate() {
            if src.as_ref().is_some_and(|x| !x.ready_at_insert) {
                pending[n] = s;
                n += 1;
            }
        }
        match (n, &self.config.wakeup) {
            (1, _) => pending[0],
            (
                _,
                WakeupScheme::SequentialWakeup { predictor_entries: Some(_) }
                | WakeupScheme::TagElimination { .. },
            ) => {
                let mut side = self.predictor.as_ref().expect("predictor configured").predict(pc);
                // Injection: a bit-flip in the last-arrival predictor table.
                // A wrong prediction is a legal prediction — the machine pays
                // the slow-bus penalty, never produces a wrong value.
                if let Some(FaultInjection::LastArrivalFlip { nth }) = self.injection {
                    self.injection_events += 1;
                    if self.injection_events >= nth {
                        side = side.other();
                        self.injection = None;
                    }
                }
                match side {
                    Side::Left => 0,
                    Side::Right => 1,
                }
            }
            // Static policy: the right operand is assumed last-arriving.
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    fn asm(build: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        a.assemble().expect("test program assembles")
    }

    fn run_with(program: &Program, config: SimConfig) -> SimStats {
        let mut sim = Simulator::new(program, config);
        sim.run().clone()
    }

    fn cycles_with(program: &Program, config: SimConfig) -> u64 {
        run_with(program, config).cycles
    }

    /// Straight-line independent work: issue width is the limit.
    #[test]
    fn independent_ops_fill_issue_width() {
        let p = asm(|a| {
            for i in 0..16 {
                a.add(Reg::new(1 + (i % 8)), Reg::R31, i as i32);
            }
        });
        let s = run_with(&p, SimConfig::four_wide());
        assert_eq!(s.committed, 17);
        // 16 adds at 4-wide need only ~4 issue cycles on top of the cold
        // instruction-fetch misses (two L2 lines of text) and pipe fill.
        assert!(s.cycles < 150, "cycles = {}", s.cycles);
    }

    /// A dependent chain issues back-to-back (1 IPC), while independent
    /// work fills the machine width — measured over a warm I-cache loop.
    #[test]
    fn dependent_chain_is_back_to_back() {
        let iters = 100;
        let chain = asm(|a| {
            a.li(Reg::R9, iters);
            a.label("loop");
            for _ in 0..8 {
                a.add(Reg::R1, Reg::R1, 1); // serial
            }
            a.sub(Reg::R9, Reg::R9, 1);
            a.bgt(Reg::R9, "loop");
        });
        let indep = asm(|a| {
            a.li(Reg::R9, iters);
            a.label("loop");
            for r in 0..8 {
                a.add(Reg::new(1 + r), Reg::new(1 + r), 1); // parallel
            }
            a.sub(Reg::R9, Reg::R9, 1);
            a.bgt(Reg::R9, "loop");
        });
        let c = cycles_with(&chain, SimConfig::four_wide());
        let i = cycles_with(&indep, SimConfig::four_wide());
        // Serial body: >= 8 cycles/iteration; parallel body: ~3.
        assert!(c >= 8 * iters as u64, "chain cycles = {c}");
        assert!(i < 6 * iters as u64, "independent cycles = {i}");
        assert!(c > i + 4 * iters as u64, "chain {c} vs independent {i}");
    }

    /// Timing never changes architectural results, for every scheme.
    #[test]
    fn all_schemes_commit_identical_instruction_counts() {
        let p = asm(|a| {
            a.li(Reg::R1, 20);
            a.li(Reg::R2, 0);
            a.li(Reg::R7, 0x1_0000);
            a.label("loop");
            a.add(Reg::R2, Reg::R2, Reg::R1);
            a.stq(Reg::R2, Reg::R7, 0);
            a.ldq(Reg::R3, Reg::R7, 0);
            a.add(Reg::R2, Reg::R3, Reg::R2);
            a.sub(Reg::R1, Reg::R1, 1);
            a.bgt(Reg::R1, "loop");
        });
        let configs = [
            SimConfig::four_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) }),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None }),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 1024 }),
            SimConfig::four_wide().with_regfile(RegFileScheme::SequentialAccess),
            SimConfig::four_wide().with_regfile(RegFileScheme::ExtraStage),
            SimConfig::four_wide().with_regfile(RegFileScheme::SharedCrossbar),
            SimConfig::four_wide().with_recovery(RecoveryKind::Selective),
            SimConfig::eight_wide(),
        ];
        let reference = run_with(&p, SimConfig::four_wide()).committed;
        for c in configs {
            let desc = format!("{:?}/{:?}/{:?}", c.wakeup, c.regfile, c.recovery);
            let s = run_with(&p, c);
            assert_eq!(s.committed, reference, "{desc}");
            assert!(s.cycles > 0, "{desc}");
        }
    }

    /// A simultaneous dual wakeup costs sequential wakeup exactly one
    /// cycle (the paper's stated disadvantage, §3.3).
    #[test]
    fn simultaneous_wakeup_costs_one_cycle() {
        let p = asm(|a| {
            // Both producers issue in the same cycle, so both tags hit the
            // consumer in the same wakeup cycle.
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            a.add(Reg::R3, Reg::R1, Reg::R2);
        });
        let base = cycles_with(&p, SimConfig::four_wide());
        let seq = run_with(
            &p,
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) }),
        );
        assert_eq!(seq.simultaneous_wakeups, 1);
        assert_eq!(seq.cycles, base + 1, "slow bus delays the add by one cycle");
    }

    /// A last-arriving operand on the slow side (static misprediction)
    /// also costs exactly one cycle; on the fast side it costs nothing —
    /// the Figure 9 timing.
    #[test]
    fn static_placement_penalty_depends_on_arrival_side() {
        // Left operand (r2 <- mul) arrives last.
        let left_last = asm(|a| {
            a.li(Reg::R1, 1);
            a.mul(Reg::R2, Reg::R1, 3);
            a.add(Reg::R3, Reg::R2, Reg::R1); // left = late mul result
        });
        // Right operand arrives last (operands swapped).
        let right_last = asm(|a| {
            a.li(Reg::R1, 1);
            a.mul(Reg::R2, Reg::R1, 3);
            a.add(Reg::R3, Reg::R1, Reg::R2); // right = late mul result
        });
        let static_cfg = || {
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None })
        };
        let base_left = cycles_with(&left_last, SimConfig::four_wide());
        let base_right = cycles_with(&right_last, SimConfig::four_wide());
        assert_eq!(base_left, base_right, "operand order is timing-neutral in the base");
        // Static policy puts the RIGHT operand on the fast bus.
        let s_left = run_with(&left_last, static_cfg());
        assert_eq!(s_left.seq_wakeup_slow_last, 1);
        assert_eq!(s_left.cycles, base_left + 1, "last arrival on slow side: +1");
        let s_right = run_with(&right_last, static_cfg());
        assert_eq!(s_right.seq_wakeup_slow_last, 0);
        assert_eq!(s_right.cycles, base_right, "last arrival on fast side: free");
    }

    /// The last-arriving predictor learns a stable pattern and removes the
    /// penalty that the static policy pays.
    #[test]
    fn predictor_learns_stable_last_arrival() {
        let p = asm(|a| {
            a.li(Reg::R4, 40);
            a.label("loop");
            a.li(Reg::R1, 1);
            a.mul(Reg::R2, Reg::R1, 3);
            a.add(Reg::R3, Reg::R2, Reg::R1); // left always last
            a.sub(Reg::R4, Reg::R4, 1);
            a.bgt(Reg::R4, "loop");
        });
        let stat = run_with(
            &p,
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None }),
        );
        let pred = run_with(
            &p,
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) }),
        );
        assert!(
            pred.seq_wakeup_slow_last < stat.seq_wakeup_slow_last / 4,
            "predictor {} vs static {}",
            pred.seq_wakeup_slow_last,
            stat.seq_wakeup_slow_last
        );
        assert!(pred.cycles <= stat.cycles);
    }

    /// Sequential register access: a 2-source instruction whose operands
    /// were both ready at insert pays +1 cycle and blocks its slot — the
    /// Figure 12 example.
    #[test]
    fn seq_rf_access_costs_latency_and_slot() {
        let p = asm(|a| {
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            // Spacer work so r1/r2 are long ready when the add inserts.
            for i in 0..24 {
                a.add(Reg::new(3 + (i % 4)), Reg::R31, i as i32);
            }
            a.add(Reg::R8, Reg::R1, Reg::R2); // both ready at insert
            a.sub(Reg::R9, Reg::R8, 1); // dependent sees +1
        });
        let base = run_with(&p, SimConfig::four_wide());
        let seq =
            run_with(&p, SimConfig::four_wide().with_regfile(RegFileScheme::SequentialAccess));
        assert_eq!(seq.seq_rf_accesses, 1);
        assert_eq!(seq.cycles, base.cycles + 1);
        assert_eq!(base.rf_two_ready, 1, "figure 10 category");
    }

    /// A dependent issued back-to-back never needs two ports (the nowL/R
    /// logic of Figure 11): sequential register access is free on chains.
    #[test]
    fn seq_rf_is_free_on_bypassed_chains() {
        let p = asm(|a| {
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 0);
            for _ in 0..32 {
                a.add(Reg::R2, Reg::R2, Reg::R1); // 2-source, but r2 bypasses
            }
        });
        let base = run_with(&p, SimConfig::four_wide());
        let seq =
            run_with(&p, SimConfig::four_wide().with_regfile(RegFileScheme::SequentialAccess));
        // Bypassed (back-to-back) adds never pay; only the few adds that
        // insert after an instruction-fetch gap find both operands already
        // ready and read the port twice.
        assert_eq!(seq.seq_rf_accesses, seq.rf_two_ready);
        assert!(seq.rf_back_to_back > 24, "most of the chain bypasses");
        assert!(
            seq.cycles <= base.cycles + seq.seq_rf_accesses,
            "{} vs {}",
            seq.cycles,
            base.cycles
        );
    }

    /// A DL1 miss under speculative scheduling replays the shadow.
    #[test]
    fn load_miss_replays_dependents() {
        let p = asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.ldq(Reg::R2, Reg::R1, 0); // cold DL1: miss
            a.add(Reg::R3, Reg::R2, 1); // woken speculatively, replayed
            a.add(Reg::R4, Reg::R3, 1);
        });
        let s = run_with(&p, SimConfig::four_wide());
        assert!(s.load_miss_replays >= 1);
        assert!(s.replayed_insts >= 1);
        assert_eq!(s.committed, p.insts().len() as u64);
    }

    /// Selective recovery replays no more instructions than non-selective.
    #[test]
    fn selective_recovery_replays_fewer() {
        let p = asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R5, 0);
            a.li(Reg::R6, 100);
            a.label("loop");
            a.ldq(Reg::R2, Reg::R1, 0); // misses every new line
            a.add(Reg::R3, Reg::R2, 1); // dependent
            a.add(Reg::R5, Reg::R5, 2); // independent work in the shadow
            a.add(Reg::R5, Reg::R5, 3);
            a.add(Reg::R1, Reg::R1, 64);
            a.sub(Reg::R6, Reg::R6, 1);
            a.bgt(Reg::R6, "loop");
        });
        let non = run_with(&p, SimConfig::four_wide());
        let sel = run_with(&p, SimConfig::four_wide().with_recovery(RecoveryKind::Selective));
        assert!(non.load_miss_replays > 10);
        assert!(
            sel.replayed_insts < non.replayed_insts,
            "selective {} vs non-selective {}",
            sel.replayed_insts,
            non.replayed_insts
        );
        assert!(sel.cycles <= non.cycles);
    }

    /// Tag elimination misfires when the unwatched operand arrives last,
    /// and the squash-and-reissue still produces correct counts.
    #[test]
    fn tag_elimination_misfires_and_recovers() {
        let p = asm(|a| {
            // Left operand arrives last; TE's untrained predictor watches
            // the right one, so the first pass misfires. The independent
            // adds issue inside the misfire shadow and are replayed by the
            // non-selective squash.
            a.li(Reg::R1, 1);
            a.mul(Reg::R2, Reg::R1, 3);
            a.add(Reg::R3, Reg::R2, Reg::R1);
            for _ in 0..6 {
                a.add(Reg::R4, Reg::R4, 1);
            }
        });
        let s = run_with(
            &p,
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 1024 }),
        );
        assert!(s.te_misfires >= 1, "misfires = {}", s.te_misfires);
        assert_eq!(s.committed, p.insts().len() as u64);
        assert!(s.replayed_insts >= 1, "shadow work replays");
        let base = run_with(&p, SimConfig::four_wide());
        assert!(s.cycles >= base.cycles, "misfire never helps");
    }

    /// Store-to-load forwarding: a covering older store services the load
    /// at hit latency without touching the DL1.
    #[test]
    fn store_load_forwarding_skips_the_cache() {
        let p = asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R2, 99);
            a.div(Reg::R9, Reg::R7, Reg::R8); // holds commit for ~20 cycles
            a.stq(Reg::R2, Reg::R1, 0);
            a.ldq(Reg::R3, Reg::R1, 0); // forwarded while the store waits
            a.add(Reg::R4, Reg::R3, 1);
        });
        let s = run_with(&p, SimConfig::four_wide());
        // The load never read the DL1 (the store writes it at commit).
        assert_eq!(s.hierarchy.dl1.accesses, 1, "only the commit-time store write");
        assert_eq!(s.committed, p.insts().len() as u64);
    }

    /// Figure 4 accounting: ready-operand counts at insert.
    #[test]
    fn ready_at_insert_accounting() {
        let p = asm(|a| {
            a.li(Reg::R1, 1); // r1 ready long before the adds insert
            for i in 0..24 {
                a.add(Reg::new(3 + (i % 4)), Reg::R31, i as i32);
            }
            a.li(Reg::R2, 2);
            a.add(Reg::R5, Reg::R1, Reg::R2); // 1 ready (r1), r2 pending
            a.add(Reg::R6, Reg::R5, Reg::R1); // 1 ready (r1), r5 pending
        });
        let s = run_with(&p, SimConfig::four_wide());
        let total: u64 = s.ready_at_insert.iter().sum();
        assert_eq!(total, 2, "two 2-source instructions");
        assert_eq!(s.ready_at_insert[1], 2);
    }

    /// The window is bounded: a long dependence chain cannot overfill the
    /// RUU, and occupancy limits hold under replays.
    #[test]
    fn window_capacity_is_respected() {
        let p = asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R2, 0);
            for i in 0..200 {
                a.ldq(Reg::R3, Reg::R1, (i % 32) * 8);
                a.add(Reg::R2, Reg::R2, Reg::R3);
            }
        });
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        while sim.active() {
            sim.step_cycle();
            assert!(sim.window.len() <= sim.config.ruu_size);
            assert!(sim.lsq_used <= sim.config.lsq_size);
        }
        assert_eq!(sim.stats.committed, p.insts().len() as u64);
    }

    /// Mispredicted branches cost at least 11 cycles (Table 1).
    #[test]
    fn branch_penalty_is_at_least_eleven_cycles() {
        // A data-dependent alternating branch the predictor cannot learn
        // is hard to build deterministically; instead, compare a program
        // with one cold (mispredicted) taken branch against the same
        // program with the branch removed.
        let with_branch = asm(|a| {
            a.li(Reg::R1, 0);
            a.beq(Reg::R1, "next"); // cold predictor: predicted NT, taken
            a.label("next");
            a.add(Reg::R2, Reg::R2, 1);
        });
        let without = asm(|a| {
            a.li(Reg::R1, 0);
            a.add(Reg::R2, Reg::R2, 1);
        });
        let b = cycles_with(&with_branch, SimConfig::four_wide());
        let n = cycles_with(&without, SimConfig::four_wide());
        assert!(b >= n + 11, "penalty = {}", b - n);
    }

    /// The extra-RF-stage scheme lengthens the mis-speculation shadow.
    #[test]
    fn extra_rf_stage_grows_replay_shadow() {
        let p = asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R6, 50);
            a.label("loop");
            a.ldq(Reg::R2, Reg::R1, 0);
            a.add(Reg::R3, Reg::R2, 1);
            a.add(Reg::R4, Reg::R4, 2);
            a.add(Reg::R5, Reg::R5, 3);
            a.add(Reg::R1, Reg::R1, 64);
            a.sub(Reg::R6, Reg::R6, 1);
            a.bgt(Reg::R6, "loop");
        });
        let base = run_with(&p, SimConfig::four_wide());
        let extra = run_with(&p, SimConfig::four_wide().with_regfile(RegFileScheme::ExtraStage));
        assert!(extra.replayed_insts >= base.replayed_insts);
        assert!(extra.cycles >= base.cycles);
    }

    /// The CPI stack attributes every issue slot of every cycle exactly
    /// once, and the half-price penalty categories show up only under the
    /// schemes that create them.
    #[test]
    fn cpi_stack_books_balance() {
        let p = asm(|a| {
            // Two independent producers waking a consumer simultaneously
            // (the guaranteed slow-bus +1 under sequential wakeup), plus a
            // serial chain for scheduler-empty cycles.
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            a.add(Reg::R3, Reg::R1, Reg::R2);
            a.mul(Reg::R4, Reg::R3, 3);
            a.add(Reg::R5, Reg::R4, Reg::R3);
        });
        let observed = |config: SimConfig| {
            let mut sim = Simulator::new(&p, config);
            sim.enable_counters();
            sim.run();
            let width = u64::from(sim.config.width);
            let c = sim.counters().clone();
            assert_eq!(
                c.cpi.total(),
                sim.stats.cycles * width,
                "every slot of every cycle is attributed exactly once"
            );
            c
        };
        let base = observed(SimConfig::four_wide());
        assert_eq!(base.cpi.penalty_slots(), 0, "no half-price penalties on the base machine");
        assert_eq!(base.rf_rereads, 0);
        assert_eq!(base.slow_bus_occupancy.samples(), 0);
        assert!(base.cpi.get(CpiCategory::Committing) > 0);

        let seq = observed(
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) }),
        );
        assert!(
            seq.cpi.get(CpiCategory::SeqWakeupDelay) > 0,
            "the simultaneous dual wakeup holds the add for one slow-bus cycle: {seq}"
        );

        // A two-source add whose operands are long ready at insert misses
        // the bypass window and needs the double port read.
        let p2 = asm(|a| {
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            for i in 0..24 {
                a.add(Reg::new(3 + (i % 4)), Reg::R31, i as i32);
            }
            a.add(Reg::R8, Reg::R1, Reg::R2);
            a.sub(Reg::R9, Reg::R8, 1);
        });
        let mut sim = Simulator::new(
            &p2,
            SimConfig::four_wide().with_regfile(RegFileScheme::SequentialAccess),
        );
        sim.enable_counters();
        sim.run();
        let rf = sim.counters().clone();
        assert_eq!(rf.cpi.total(), sim.stats.cycles * 4);
        assert!(rf.rf_rereads > 0, "non-bypassed two-source adds re-read the port: {rf}");
        assert_eq!(rf.rf_rereads, rf.cpi.get(CpiCategory::RfRereadStall));
    }

    /// Enabling the registry must not move a single cycle.
    #[test]
    fn counters_never_perturb_timing() {
        let p = replay_heavy_program();
        for config in [
            SimConfig::four_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(64) })
                .with_regfile(RegFileScheme::SequentialAccess),
        ] {
            let plain = run_with(&p, config.clone());
            let mut sim = Simulator::new(&p, config);
            sim.enable_counters();
            sim.run();
            assert_eq!(*sim.stats(), plain, "counters changed SimStats");
        }
    }

    fn replay_heavy_program() -> Program {
        asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R6, 30);
            a.label("loop");
            a.ldq(Reg::R2, Reg::R1, 0);
            a.add(Reg::R3, Reg::R2, 1);
            a.add(Reg::R4, Reg::R3, 2);
            a.stq(Reg::R3, Reg::R1, 8);
            a.ldq(Reg::R5, Reg::R1, 8);
            a.add(Reg::R1, Reg::R1, 64);
            a.sub(Reg::R6, Reg::R6, 1);
            a.bgt(Reg::R6, "loop");
        })
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::config::{BypassScheme, RenameScheme};
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    fn asm(build: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        a.assemble().expect("test program assembles")
    }

    /// Half-price renaming splits dispatch groups that need more map-table
    /// lookups than slots, but never changes results.
    #[test]
    fn half_rename_splits_wide_two_source_groups() {
        let p = asm(|a| {
            // A warm loop whose body needs 18 map-table lookups per
            // iteration: 16 from eight independent 2-source adds, plus the
            // counter update and branch. Half-price (4 ports) needs ~4.5
            // dispatch cycles per iteration; with the taken-branch fetch
            // limit at ~5 cycles/iteration, roughly half an extra cycle
            // per iteration reaches the bottom line.
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            a.li(Reg::R9, 100);
            a.label("loop");
            for i in 0..8u8 {
                a.add(Reg::new(3 + (i % 6)), Reg::R1, Reg::R2);
            }
            a.sub(Reg::R9, Reg::R9, 1);
            a.bgt(Reg::R9, "loop");
        });
        let mut base = Simulator::new(&p, SimConfig::four_wide());
        base.run();
        let mut half =
            Simulator::new(&p, SimConfig::four_wide().with_rename(RenameScheme::HalfPorts));
        half.run();
        assert!(half.stats().rename_port_stalls > 90, "{}", half.stats().rename_port_stalls);
        assert!(
            half.stats().cycles > base.stats().cycles + 40,
            "half {} vs base {}",
            half.stats().cycles,
            base.stats().cycles
        );
        assert_eq!(half.stats().committed, base.stats().committed);
        // One-source code is unaffected.
        let p1 = asm(|a| {
            for _ in 0..64 {
                a.add(Reg::R3, Reg::R1, 7);
            }
        });
        let mut h1 =
            Simulator::new(&p1, SimConfig::four_wide().with_rename(RenameScheme::HalfPorts));
        h1.run();
        assert_eq!(h1.stats().rename_port_stalls, 0);
    }

    /// Half-price bypass defers dual-bypass issues by one cycle.
    #[test]
    fn half_bypass_defers_dual_bypass_operands() {
        let p = asm(|a| {
            // r1 and r2 wake simultaneously; the add would need both off
            // the bypass in its issue cycle.
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            a.add(Reg::R3, Reg::R1, Reg::R2);
        });
        let mut base = Simulator::new(&p, SimConfig::four_wide());
        base.run();
        let mut half =
            Simulator::new(&p, SimConfig::four_wide().with_bypass(BypassScheme::HalfPaths));
        half.run();
        assert_eq!(half.stats().bypass_deferrals, 1);
        assert_eq!(half.stats().cycles, base.stats().cycles + 1);
    }

    /// A serial chain only ever needs one bypass input: half-price bypass
    /// is free on it.
    #[test]
    fn half_bypass_is_free_on_serial_chains() {
        let p = asm(|a| {
            a.li(Reg::R1, 0);
            for _ in 0..24 {
                a.add(Reg::R1, Reg::R1, 3);
            }
        });
        let mut base = Simulator::new(&p, SimConfig::four_wide());
        base.run();
        let mut half =
            Simulator::new(&p, SimConfig::four_wide().with_bypass(BypassScheme::HalfPaths));
        half.run();
        assert_eq!(half.stats().bypass_deferrals, 0);
        assert_eq!(half.stats().cycles, base.stats().cycles);
    }
}

/// Early-returns a formatted violation description when `cond` is false.
macro_rules! ensure {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

impl Simulator {
    /// Checks the scheduler's internal invariants; intended for tests and
    /// debugging (it walks the whole window).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant. Use
    /// [`Simulator::check_invariants_result`] to receive the violation as
    /// a value.
    pub fn check_invariants(&self) {
        if let Err(reason) = self.check_invariants_result() {
            panic!("{reason}");
        }
    }

    /// Checks the scheduler's internal invariants, returning the first
    /// violation as a description instead of panicking. Runs every cycle
    /// under strict-invariants mode (the `strict-invariants` cargo feature
    /// or [`Simulator::set_strict_invariants`]), where a violation
    /// surfaces as [`SimFault::Invariant`].
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants_result(&self) -> Result<(), String> {
        // Window sequencing and capacity.
        ensure!(self.window.len() <= self.config.ruu_size, "RUU overfull");
        ensure!(self.lsq_used <= self.config.lsq_size, "LSQ overfull");
        let mem_in_window = self.window.iter().filter(|i| i.is_mem()).count();
        ensure!(
            mem_in_window == self.lsq_used,
            "LSQ accounting drift: {mem_in_window} mem ops in window, lsq_used {}",
            self.lsq_used
        );
        for (k, i) in self.window.iter().enumerate() {
            ensure!(i.seq == self.window.head_seq() + k as u64, "window seq gap at {k}");
            // An operand marked ready must have an available producer:
            // committed, already-broadcast, or (transiently, between a
            // wakeup and its squash recompute) an in-window producer.
            for src in i.srcs_iter() {
                if let Some(p) = src.producer {
                    ensure!(p < i.seq, "source of seq {} produced by younger inst {p}", i.seq);
                    if src.ready && i.state == IState::Waiting {
                        let avail = p < self.window.head_seq()
                            || self.inst(p).is_some_and(|pi| pi.broadcast_done);
                        ensure!(
                            avail,
                            "seq {} waiting with ready operand from unavailable producer {p}",
                            i.seq
                        );
                    }
                }
            }
            // Completed instructions have a coherent timeline.
            if i.state == IState::Completed {
                ensure!(
                    i.complete_cycle >= i.issue_cycle,
                    "seq {} completion precedes issue",
                    i.seq
                );
            }
        }
        // Rename entries point at live window entries that really write
        // that register.
        for (idx, entry) in self.rename.iter().enumerate() {
            if let Some(seq) = entry {
                let Some(i) = self.inst(*seq) else {
                    return Err(format!("rename[{idx}] points outside the window"));
                };
                ensure!(
                    i.dest.map(|d| d.index()) == Some(idx),
                    "rename[{idx}] points at a non-producer"
                );
            }
        }
        // The store queue mirrors the window's stores, in program order.
        let window_stores: Vec<u64> =
            self.window.iter().filter(|i| i.is_store()).map(|i| i.seq).collect();
        let queued: Vec<u64> = self.store_queue.iter().copied().collect();
        ensure!(
            queued == window_stores,
            "store queue out of sync with window stores: {queued:?} vs {window_stores:?}"
        );
        // Every set ready bit names an occupied slot whose occupant is
        // flagged (commit clears a slot's bit when releasing it, so unlike
        // the old ready *list* no departed stragglers may linger — a stale
        // bit would alias the slot's next occupant). Issued-but-not-yet-
        // compacted stragglers still occupy their slot and stay flagged.
        let mut bit_err = None;
        self.ready.for_each_from(0, |slot| {
            if bit_err.is_some() {
                return;
            }
            match self.window.by_slot(slot) {
                None => bit_err = Some(format!("ready bit set on empty slot {slot}")),
                Some(i) if !i.in_ready_list => {
                    bit_err = Some(format!("ready bit set but seq {} not flagged", i.seq));
                }
                Some(_) => {}
            }
        });
        if let Some(e) = bit_err {
            return Err(e);
        }
        for i in &self.window {
            if i.in_ready_list {
                ensure!(
                    self.ready.test(self.window.slot_of(i.seq)),
                    "seq {} flagged in_ready_list but its ready bit is clear",
                    i.seq
                );
            }
            if i.state == IState::Waiting && wakeup_ready(i, self.config.wakeup) {
                ensure!(
                    i.in_ready_list,
                    "waiting seq {} is wakeup-ready but not on the ready list",
                    i.seq
                );
            }
        }
        // The flat columns mirror the resident records exactly: the select
        // scan decides from the columns alone, so any drift here is a
        // scheduling divergence waiting to happen.
        for i in &self.window {
            let slot = self.window.slot_of(i.seq);
            ensure!(
                self.window.seq_at(slot) == Some(i.seq),
                "slot {slot} ring arithmetic disagrees with resident seq {}",
                i.seq
            );
            ensure!(
                self.window.state[slot] == state_code(i.state),
                "state column of slot {slot} ({}) diverges from seq {} ({:?})",
                self.window.state[slot],
                i.seq,
                i.state
            );
            let flags = u8::from(i.is_load()) * slot_flags::LOAD
                + u8::from(i.high_priority()) * slot_flags::HIGH_PRIORITY;
            ensure!(
                self.window.flags[slot] == flags,
                "flags column of slot {slot} diverges for seq {}",
                i.seq
            );
            ensure!(
                self.window.pcs[slot] == i.pc,
                "pc column of slot {slot} diverges for seq {}",
                i.seq
            );
            if i.state == IState::Waiting && self.ready.test(slot) {
                let at = ready_cycle_of(i, self.config.wakeup);
                ensure!(
                    self.ready_at[slot] == at,
                    "cached ready cycle of slot {slot} ({}) diverges from seq {} ({at})",
                    self.ready_at[slot],
                    i.seq
                );
            }
        }
        let resident = self.window.len();
        let occupied = self.window.state.iter().filter(|&&s| s != slot_state::EMPTY).count();
        ensure!(
            occupied == resident,
            "state column counts {occupied} occupied slots, window holds {resident}"
        );
        // The wakeup matrix and the renamed operands agree exactly: an
        // operand's registered bit exists iff its producer is resident,
        // and every registered bit names a live consumer whose that
        // operand points back at the producer.
        for i in &self.window {
            for (k, s) in i.srcs.iter().enumerate() {
                let Some(s) = s else { continue };
                let Some(p) = s.producer else { continue };
                if self.inst(p).is_some() {
                    ensure!(
                        self.matrix.is_registered(
                            self.window.slot_of(p),
                            k,
                            self.window.slot_of(i.seq)
                        ),
                        "seq {} src{k} depends on resident {p} but is not in its matrix row",
                        i.seq
                    );
                }
            }
        }
        let mut matrix_err = None;
        for p in &self.window {
            let p_slot = self.window.slot_of(p.seq);
            self.matrix.for_each_consumer(p_slot, 0, |c_slot, k| {
                if matrix_err.is_some() {
                    return;
                }
                let ok = self
                    .window
                    .by_slot(c_slot)
                    .is_some_and(|c| c.srcs[k].as_ref().is_some_and(|s| s.producer == Some(p.seq)));
                if !ok {
                    matrix_err = Some(format!(
                        "matrix row of seq {} src{k} names slot {c_slot} which does not \
                         depend on it",
                        p.seq
                    ));
                }
            });
        }
        if let Some(e) = matrix_err {
            return Err(e);
        }
        Ok(())
    }

    /// Renders the pipeline state — cycle, occupancy and a per-entry line
    /// for the window head region — for first-divergence reports. Long
    /// windows are truncated.
    #[must_use]
    pub fn dump_state(&self) -> String {
        use std::fmt::Write as _;
        const MAX_LINES: usize = 24;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {} | window {}/{} (head seq {}) | lsq {}/{} | ready-list {} | {}",
            self.cycle,
            self.window.len(),
            self.config.ruu_size,
            self.window.head_seq(),
            self.lsq_used,
            self.config.lsq_size,
            self.ready.count(),
            if self.finished { "finished" } else { "running" },
        );
        for i in self.window.iter().take(MAX_LINES) {
            let srcs: Vec<String> = i
                .srcs_iter()
                .map(|s| {
                    format!(
                        "{}{}{}",
                        s.reg,
                        if s.ready { "+" } else { "-" },
                        s.producer.map(|p| format!("<{p}")).unwrap_or_default()
                    )
                })
                .collect();
            let _ = writeln!(
                out,
                "  seq {:>4} {:9} pc={:#06x} {:24} [{}]{}{}",
                i.seq,
                format!("{:?}", i.state),
                i.pc,
                i.inst.to_string(),
                srcs.join(" "),
                if i.in_ready_list { " ready-listed" } else { "" },
                if i.replays > 0 { " replayed" } else { "" },
            );
        }
        if self.window.len() > MAX_LINES {
            let _ = writeln!(out, "  ... {} more window entries", self.window.len() - MAX_LINES);
        }
        out
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;
    use crate::config::{BypassScheme, RenameScheme};
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    /// Steps a replay-heavy program under several schemes, validating the
    /// full invariant set every cycle.
    #[test]
    fn invariants_hold_every_cycle_under_replays() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x1_0000);
        a.li(Reg::R9, 40);
        a.label("loop");
        a.ldq(Reg::R2, Reg::R1, 0); // misses periodically
        a.add(Reg::R3, Reg::R2, Reg::R3);
        a.stq(Reg::R3, Reg::R1, 8);
        a.ldq(Reg::R4, Reg::R1, 8); // store-to-load traffic
        a.add(Reg::R5, Reg::R4, Reg::R2);
        a.add(Reg::R1, Reg::R1, 64);
        a.sub(Reg::R9, Reg::R9, 1);
        a.bgt(Reg::R9, "loop");
        a.halt();
        let p = a.assemble().unwrap();

        for config in [
            SimConfig::four_wide(),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(128) })
                .with_regfile(RegFileScheme::SequentialAccess),
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 128 })
                .with_recovery(RecoveryKind::NonSelective),
            SimConfig::four_wide().with_recovery(RecoveryKind::Selective),
            SimConfig::eight_wide()
                .with_rename(RenameScheme::HalfPorts)
                .with_bypass(BypassScheme::HalfPaths),
        ] {
            let mut sim = Simulator::new(&p, config);
            let mut cycles = 0u64;
            while sim.active() {
                sim.step_cycle();
                sim.check_invariants();
                cycles += 1;
                assert!(cycles < 1_000_000, "runaway");
            }
            // All dynamic instructions commit (no nops in this program).
            assert_eq!(sim.stats.committed, sim.emulator().executed());
        }
    }
}

#[cfg(test)]
mod squash_epoch_tests {
    //! Squash-epoch invalidation of the bitset scheduler state: a replay
    //! bumps the victim's epoch, and every stale scheduled event (spec
    //! broadcasts, completions) must drop itself instead of re-waking the
    //! new incarnation through the wakeup matrix.

    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    /// Store-to-load traffic plus periodic DL1 misses: every iteration can
    /// provoke a latency mis-speculation squash.
    fn replay_program() -> Program {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x1_0000);
        a.li(Reg::R9, 20);
        a.label("loop");
        a.ldq(Reg::R2, Reg::R1, 0);
        a.add(Reg::R3, Reg::R2, Reg::R3); // load shadow victim
        a.stq(Reg::R3, Reg::R1, 8);
        a.ldq(Reg::R4, Reg::R1, 8);
        a.add(Reg::R5, Reg::R4, Reg::R2);
        a.add(Reg::R1, Reg::R1, 64);
        a.sub(Reg::R9, Reg::R9, 1);
        a.bgt(Reg::R9, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    /// Steps the machine cycle by cycle and holds, at every cycle, the
    /// squash-coherence laws of the SoA scheduler state:
    ///
    /// 1. a waiting (replayed) producer never has `broadcast_done` — the
    ///    squash cleared it, and no stale event may set it back;
    /// 2. a waiting consumer's operand is `ready` only if its resident
    ///    producer really broadcast (stale wakeups never survive the
    ///    epoch bump + recompute);
    /// 3. replayed instructions keep their wakeup-matrix edges: the
    ///    dependence registration at insert outlives any number of
    ///    squashes, so the re-issued producer can re-wake them.
    fn run_checking(config: SimConfig) -> (u64, u32) {
        let p = replay_program();
        let mut sim = Simulator::new(&p, config);
        let mut max_epoch = 0u32;
        let mut cycles = 0u64;
        while sim.active() {
            sim.step_cycle();
            sim.check_invariants();
            let head = sim.window.head_seq();
            let resident: Vec<u64> = sim.window.iter().map(|i| i.seq).collect();
            for &seq in &resident {
                let i = sim.inst(seq).expect("resident");
                max_epoch = max_epoch.max(i.epoch);
                if i.state == IState::Waiting {
                    assert!(
                        !i.broadcast_done,
                        "cycle {}: replayed {} kept broadcast_done through a squash",
                        sim.cycle, seq
                    );
                }
                for (k, s) in i.srcs.iter().enumerate() {
                    let Some(s) = s else { continue };
                    let Some(pseq) = s.producer else { continue };
                    if pseq < head {
                        continue; // producer committed; value architectural
                    }
                    let p = sim.inst(pseq).expect("resident producer");
                    if i.state == IState::Waiting {
                        assert!(
                            !s.ready || p.broadcast_done,
                            "cycle {}: {} src{} ready but producer {} never broadcast",
                            sim.cycle,
                            seq,
                            k,
                            pseq
                        );
                        assert!(
                            sim.matrix.is_registered(
                                sim.window.slot_of(pseq),
                                k,
                                sim.window.slot_of(seq)
                            ),
                            "cycle {}: {} src{} lost its matrix edge to {} (epoch {})",
                            sim.cycle,
                            seq,
                            k,
                            pseq,
                            i.epoch
                        );
                    }
                }
            }
            cycles += 1;
            assert!(cycles < 1_000_000, "runaway");
        }
        assert_eq!(sim.stats.committed, sim.emulator().executed());
        (sim.stats.replayed_insts, max_epoch)
    }

    #[test]
    fn squash_bumps_epochs_and_preserves_matrix_edges() {
        let (replays, max_epoch) = run_checking(SimConfig::four_wide());
        assert!(replays > 0, "program must provoke load-shadow replays");
        assert!(max_epoch > 0, "replays must bump epochs");
    }

    /// Tag elimination adds misfire squashes (scoreboard-verified issue)
    /// on top of the load-shadow ones; the same laws hold.
    #[test]
    fn squash_epochs_hold_under_tag_elimination() {
        let config = SimConfig::four_wide()
            .with_wakeup(WakeupScheme::TagElimination { predictor_entries: 128 })
            .with_recovery(RecoveryKind::NonSelective);
        let (replays, max_epoch) = run_checking(config);
        assert!(replays > 0, "TE config must provoke replays");
        assert!(max_epoch > 0, "replays must bump epochs");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::commit::{CommitHook, CommitRecord};
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    fn replay_heavy_program() -> Program {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x1_0000);
        a.li(Reg::R9, 30);
        a.label("loop");
        a.ldq(Reg::R2, Reg::R1, 0);
        a.add(Reg::R3, Reg::R2, Reg::R3);
        a.stq(Reg::R3, Reg::R1, 8);
        a.ldq(Reg::R4, Reg::R1, 8);
        a.add(Reg::R5, Reg::R4, Reg::R2);
        a.add(Reg::R1, Reg::R1, 64);
        a.sub(Reg::R9, Reg::R9, 1);
        a.bgt(Reg::R9, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    /// Records the retire stream, asserting program order.
    #[derive(Clone, Debug, Default)]
    struct Recorder {
        seqs: Vec<u64>,
        cycles: Vec<u64>,
    }

    impl CommitHook for Recorder {
        fn on_commit(&mut self, rec: &CommitRecord) -> Result<(), String> {
            if let Some(&last) = self.seqs.last() {
                if rec.seq != last + 1 {
                    return Err(format!("out-of-order commit: {} after {last}", rec.seq));
                }
            }
            self.seqs.push(rec.seq);
            self.cycles.push(rec.cycle);
            Ok(())
        }
        fn box_clone(&self) -> Box<dyn CommitHook> {
            Box::new(self.clone())
        }
    }

    /// Rejects the nth commit, to exercise the Hook fault path.
    #[derive(Clone, Debug)]
    struct RejectNth {
        n: u64,
        seen: u64,
    }

    impl CommitHook for RejectNth {
        fn on_commit(&mut self, _rec: &CommitRecord) -> Result<(), String> {
            self.seen += 1;
            if self.seen == self.n {
                return Err("synthetic divergence".into());
            }
            Ok(())
        }
        fn box_clone(&self) -> Box<dyn CommitHook> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn commit_hook_observes_the_full_retire_stream_unchanged() {
        let p = replay_heavy_program();
        // Reference run without a hook.
        let mut plain = Simulator::new(&p, SimConfig::four_wide());
        plain.run();
        // Hooked run: same timing, every commit observed, in order.
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.set_commit_hook(Box::new(Recorder::default()));
        sim.try_run().expect("no fault");
        assert_eq!(sim.stats().committed, plain.stats().committed);
        assert_eq!(sim.stats().cycles, plain.stats().cycles, "hook must not change timing");
    }

    #[test]
    fn hook_rejection_is_a_localized_fault() {
        let p = replay_heavy_program();
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.set_commit_hook(Box::new(RejectNth { n: 5, seen: 0 }));
        let fault = sim.try_run().expect_err("hook rejects commit 5");
        match fault {
            SimFault::Hook { seq, reason, ref dump, .. } => {
                assert_eq!(seq, 4, "5th commit is seq 4");
                assert!(reason.contains("synthetic divergence"));
                assert!(dump.contains("cycle"), "dump present: {dump}");
            }
            other => panic!("wrong fault: {other}"),
        }
        assert!(sim.fault().is_some());
    }

    #[test]
    fn injected_spurious_wakeup_is_caught_by_strict_invariants() {
        let p = replay_heavy_program();
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.set_strict_invariants(true);
        sim.inject_fault(FaultInjection::SpuriousWakeup { nth: 3 });
        let fault = sim.try_run().expect_err("planted wakeup bug must be caught");
        match fault {
            SimFault::Invariant { reason, .. } => {
                assert!(
                    reason.contains("unavailable producer")
                        || reason.contains("not on the ready list"),
                    "localized to the wakeup invariant: {reason}"
                );
            }
            other => panic!("wrong fault: {other}"),
        }
    }

    #[test]
    fn without_injection_strict_invariants_pass() {
        let p = replay_heavy_program();
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.set_strict_invariants(true);
        sim.try_run().expect("clean run");
    }

    #[test]
    fn emulator_fault_surfaces_as_sim_fault() {
        // A wild store: uninitialized base, negative displacement.
        let mut a = Asm::new();
        a.stq(Reg::R2, Reg::R1, -8);
        a.halt();
        let p = a.assemble().unwrap();
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        let fault = sim.try_run().expect_err("wild address faults");
        assert!(matches!(
            fault,
            SimFault::Emu { error: hpa_emu::EmuError::MemOutOfRange { .. }, .. }
        ));
    }

    #[test]
    fn try_run_matches_run_on_clean_programs() {
        let p = replay_heavy_program();
        let mut a = Simulator::new(&p, SimConfig::four_wide());
        a.run();
        let mut b = Simulator::new(&p, SimConfig::four_wide());
        b.try_run().unwrap();
        assert_eq!(a.stats().cycles, b.stats().cycles);
        assert_eq!(a.stats().committed, b.stats().committed);
    }
}

#[cfg(test)]
mod worked_example_tests {
    //! Cycle-exact recreations of the paper's worked examples: the
    //! sequential-wakeup timeline of Figure 9 and the sequential
    //! register-access timeline of Figure 12.

    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;
    use std::collections::HashMap;

    /// Runs to completion recording each instruction's final issue cycle
    /// and whether its last issue used a sequential register access.
    fn issue_timeline(p: &Program, config: SimConfig) -> HashMap<u64, (u64, bool)> {
        let mut sim = Simulator::new(p, config);
        let mut out: HashMap<u64, (u64, bool)> = HashMap::new();
        let mut guard = 0;
        while sim.active() {
            sim.step_cycle();
            for i in &sim.window {
                if matches!(i.state, IState::Issued | IState::Completed) {
                    out.insert(i.seq, (i.issue_cycle, i.seq_rf));
                }
            }
            guard += 1;
            assert!(guard < 100_000, "runaway");
        }
        out
    }

    /// Figure 9: with correct last-arriving placement, every instruction
    /// issues at exactly the conventional machine's cycle — the slow bus
    /// is fully hidden behind the wakeup slack.
    #[test]
    fn figure9_sequential_wakeup_timeline() {
        // seq 0..: li r1 (A), mul r2 <- r1*3 (B), add r3 <- r2 + r1 (C),
        // sub r4 <- r3 - r1 (D); for C and D the left operand arrives last
        // (B resp. C), matching a trained predictor's placement.
        let build = || {
            let mut a = Asm::new();
            a.li(Reg::R1, 1); // A
            a.mul(Reg::R2, Reg::R1, 3); // B (3-cycle)
            a.add(Reg::R3, Reg::R2, Reg::R1); // C: left (r2) last
            a.sub(Reg::R4, Reg::R3, Reg::R1); // D: left (r3) last
            a.halt();
            a.assemble().unwrap()
        };
        let p = build();
        let conventional = issue_timeline(&p, SimConfig::four_wide());
        // Static placement watches the RIGHT operand: C and D mispredict
        // and issue one cycle late.
        let static_cfg = SimConfig::four_wide()
            .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: None });
        let wrong = issue_timeline(&p, static_cfg);
        // C pays one slow-bus cycle; D pays C's lateness plus its own
        // slow-side wakeup — mispredictions on a dependence chain cascade.
        assert_eq!(wrong[&2].0, conventional[&2].0 + 1, "C pays the slow bus");
        assert_eq!(wrong[&3].0, conventional[&3].0 + 2, "D pays cascaded + own");
        // A trained predictor restores the conventional timeline exactly —
        // the Figure 9 claim that correct placement has zero penalty.
        // (Train by running the same code in a loop; check the last
        // iteration via a longer program.)
        let mut a = Asm::new();
        a.li(Reg::R9, 6);
        a.label("loop");
        a.li(Reg::R1, 1);
        a.mul(Reg::R2, Reg::R1, 3);
        a.add(Reg::R3, Reg::R2, Reg::R1);
        a.sub(Reg::R4, Reg::R3, Reg::R1);
        a.sub(Reg::R9, Reg::R9, 1);
        a.bgt(Reg::R9, "loop");
        a.halt();
        let lp = a.assemble().unwrap();
        let conv = issue_timeline(&lp, SimConfig::four_wide());
        let pred = issue_timeline(
            &lp,
            SimConfig::four_wide()
                .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) }),
        );
        // Final iteration (seqs 31..35: li, mul, add, sub of iteration 6).
        let last_add = 1 + 5 * 6 + 2;
        assert_eq!(
            pred[&last_add].0, conv[&last_add].0,
            "trained predictor hides the slow bus entirely"
        );
    }

    /// Figure 12: an ADD with both operands ready at insert sequentially
    /// reads the register file (+1 cycle, slot blocked); the dependent SUB
    /// still catches the bypass and needs no second port.
    #[test]
    fn figure12_sequential_register_access_timeline() {
        let mut a = Asm::new();
        a.li(Reg::R1, 1); // seq 0
        a.li(Reg::R2, 2); // seq 1
        a.li(Reg::R6, 3); // seq 2
                          // Spacer block so r1/r2/r6 are long ready when ADD inserts.
        for i in 0..24 {
            a.add(Reg::new(20 + (i % 4)), Reg::R31, i as i32); // seqs 3..26
        }
        a.add(Reg::R3, Reg::R1, Reg::R2); // ADD, seq 27: 2 ready at insert
        a.sub(Reg::R4, Reg::R3, Reg::R6); // SUB, seq 28: depends on ADD
        a.halt();
        let p = a.assemble().unwrap();

        let conv = issue_timeline(&p, SimConfig::four_wide());
        let seq = issue_timeline(
            &p,
            SimConfig::four_wide().with_regfile(RegFileScheme::SequentialAccess),
        );
        let (add, sub) = (27u64, 28u64);
        // ADD pays the sequential access...
        assert!(seq[&add].1, "ADD reads the single port twice");
        assert_eq!(seq[&add].0, conv[&add].0, "...but issues at the same cycle");
        // The paper's cycle arithmetic: SUB is awakened by ADD one cycle
        // later than conventionally (ADD's latency grew by one)...
        assert_eq!(seq[&sub].0, conv[&sub].0 + 1);
        // ...and, being issued back-to-back with its wakeup, reads r3 off
        // the bypass: no sequential access despite being 2-source.
        assert!(!seq[&sub].1, "SUB needs no second port (nowL/R set)");
    }
}

#[cfg(test)]
mod trace_and_warmup_tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    fn loop_program(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(Reg::R9, iters);
        a.label("loop");
        a.add(Reg::R1, Reg::R1, 1);
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.sub(Reg::R9, Reg::R9, 1);
        a.bgt(Reg::R9, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn pipetrace_records_commit_order() {
        let p = loop_program(10);
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.enable_trace(8);
        sim.run();
        let t = sim.pipetrace().expect("enabled");
        assert_eq!(t.records().len(), 8);
        for (k, r) in t.records().iter().enumerate() {
            assert_eq!(r.seq, k as u64, "commit order");
            assert!(r.insert_cycle <= r.issue_cycle);
            assert!(r.issue_cycle <= r.complete_cycle);
            assert!(r.complete_cycle <= r.commit_cycle);
        }
        let diagram = t.render();
        assert!(diagram.lines().count() >= 9, "{diagram}");
    }

    #[test]
    fn warmup_resets_counters_but_keeps_state_warm() {
        let p = loop_program(200);
        let mut cold = Simulator::new(&p, SimConfig::four_wide());
        cold.run();
        let total = cold.stats().committed;

        let warmup = 100u64;
        let mut warm = Simulator::new(&p, SimConfig::four_wide().with_warmup(warmup));
        warm.run();
        // Measured window excludes warmup commits...
        assert_eq!(warm.stats().committed, total - warmup);
        // ...and its IPC is higher than the cold run's, because the cold
        // instruction-fetch misses land in the warmup window.
        assert!(
            warm.stats().ipc() > cold.stats().ipc(),
            "warm {} vs cold {}",
            warm.stats().ipc(),
            cold.stats().ipc()
        );
    }

    #[test]
    fn warmup_beyond_program_length_is_harmless() {
        let p = loop_program(5);
        let mut sim = Simulator::new(&p, SimConfig::four_wide().with_warmup(1_000_000));
        sim.run();
        assert!(sim.stats().committed > 0, "no reset ever fires");
    }
}

#[cfg(test)]
mod scheme_interplay_tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::Reg;

    fn asm(build: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        a.assemble().expect("test program assembles")
    }

    /// The shared-crossbar file defers issues once non-bypassed operand
    /// reads exceed the halved port pool.
    #[test]
    fn crossbar_defers_when_ports_oversubscribe() {
        let p = asm(|a| {
            // Eight 2-source adds whose operands are long ready: each
            // wants two RF reads, 4-wide issue wants 8 reads vs 4 ports.
            a.li(Reg::R1, 1);
            a.li(Reg::R2, 2);
            for _ in 0..16 {
                a.add(Reg::new(3), Reg::R1, Reg::R2);
                a.add(Reg::new(4), Reg::R1, Reg::R2);
                a.add(Reg::new(5), Reg::R1, Reg::R2);
                a.add(Reg::new(6), Reg::R1, Reg::R2);
            }
        });
        let mut sim =
            Simulator::new(&p, SimConfig::four_wide().with_regfile(RegFileScheme::SharedCrossbar));
        sim.run();
        assert!(sim.stats().crossbar_deferrals > 0);
        let mut base = Simulator::new(&p, SimConfig::four_wide());
        base.run();
        assert!(sim.stats().cycles >= base.stats().cycles);
    }

    /// The stWait bit converts a load-hit-store replay storm into ordered
    /// waiting: at most one blocked-replay per load PC.
    #[test]
    fn stwait_prevents_replay_storms() {
        let p = asm(|a| {
            // A memory-carried dependence: every iteration stores then
            // immediately reloads the same address.
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R9, 60);
            a.label("loop");
            a.ldq(Reg::R2, Reg::R1, 0);
            a.add(Reg::R2, Reg::R2, 3);
            a.stq(Reg::R2, Reg::R1, 0);
            a.sub(Reg::R9, Reg::R9, 1);
            a.bgt(Reg::R9, "loop");
        });
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.run();
        // Without stWait every iteration would replay the load; with it,
        // only the first few instances pay before the bit trains.
        assert!(sim.stats().replayed_insts < 30, "replays = {}", sim.stats().replayed_insts);
        assert_eq!(sim.stats().committed, sim.emulator().executed());
    }

    /// The extra-RF-stage scheme adds exactly one cycle to the branch
    /// resolution loop (measured differentially so the uniformly deeper
    /// pipeline cancels out).
    #[test]
    fn extra_rf_stage_adds_one_cycle_to_branch_penalty() {
        let with_branch = asm(|a| {
            a.li(Reg::R1, 0);
            a.beq(Reg::R1, "t"); // cold predictor: mispredicted taken
            a.label("t");
            a.add(Reg::R2, Reg::R2, 1);
        });
        let without = asm(|a| {
            a.li(Reg::R1, 0);
            a.add(Reg::R2, Reg::R2, 1);
        });
        let cycles = |p: &Program, cfg: SimConfig| {
            let mut sim = Simulator::new(p, cfg);
            sim.run();
            sim.stats().cycles
        };
        let base_penalty =
            cycles(&with_branch, SimConfig::four_wide()) - cycles(&without, SimConfig::four_wide());
        let extra_cfg = || SimConfig::four_wide().with_regfile(RegFileScheme::ExtraStage);
        let extra_penalty = cycles(&with_branch, extra_cfg()) - cycles(&without, extra_cfg());
        assert_eq!(extra_penalty, base_penalty + 1);
    }

    /// Issue-histogram totals account for every simulated cycle.
    #[test]
    fn issue_histogram_sums_to_cycles() {
        let p = asm(|a| {
            a.li(Reg::R9, 50);
            a.label("loop");
            a.add(Reg::R1, Reg::R1, 1);
            a.sub(Reg::R9, Reg::R9, 1);
            a.bgt(Reg::R9, "loop");
        });
        let mut sim = Simulator::new(&p, SimConfig::four_wide());
        sim.run();
        let s = sim.stats();
        assert_eq!(s.issue_histogram.len(), 5);
        assert_eq!(s.issue_histogram.iter().sum::<u64>(), s.cycles);
        assert!(s.window_occupancy_sum > 0);
    }
}

#[cfg(test)]
mod lsq_tests {
    //! White-box tests of the store-queue disambiguation walk: the window
    //! and store queue are staged by hand so each `LsqOutcome` branch is
    //! pinned down exactly (forwarding, partial overlap, unknown address,
    //! store data not ready), independent of pipeline timing.

    use super::*;
    use hpa_asm::Asm;
    use hpa_emu::StepRecord;
    use hpa_isa::{AluOp, MemWidth, Reg};

    fn staged_sim() -> Simulator {
        let mut a = Asm::new();
        a.halt();
        Simulator::new(&a.assemble().expect("assembles"), SimConfig::four_wide())
    }

    /// Inserts a hand-built instruction through the same bookkeeping as
    /// `phase_insert` (window, store queue, LSQ count, ready list).
    fn stage(sim: &mut Simulator, inst: Inst, mem_addr: Option<u64>) -> u64 {
        let seq = sim.next_seq;
        sim.next_seq += 1;
        let step = StepRecord {
            pc: 0x40 + seq * 4,
            inst,
            next_pc: 0x44 + seq * 4,
            taken: false,
            mem_addr,
        };
        let mut di = DynInst::from_step(seq, &step);
        if di.is_mem() {
            sim.lsq_used += 1;
        }
        if di.is_store() {
            sim.store_queue.push_back(seq);
        }
        if wakeup_ready(&di, sim.config.wakeup) {
            di.in_ready_list = true;
            let slot = sim.window.slot_of(seq);
            sim.ready.set(slot);
            sim.ready_at[slot] = ready_cycle_of(&di, sim.config.wakeup);
        }
        sim.window.push_back(di);
        seq
    }

    fn store(sim: &mut Simulator, addr: u64, width: MemWidth) -> u64 {
        let inst = Inst::Store { width, rt: Reg::R1, base: Reg::R2, disp: 0 };
        let seq = stage(sim, inst, Some(addr));
        sim.window.back_mut().unwrap().addr_resolved = true;
        seq
    }

    fn load(sim: &mut Simulator, addr: u64, width: MemWidth) -> u64 {
        let inst = Inst::Load { width, rt: Reg::R3, base: Reg::R2, disp: 0 };
        stage(sim, inst, Some(addr))
    }

    /// A covering older store with ready data forwards (DL1-hit timing).
    #[test]
    fn covering_store_forwards() {
        let mut sim = staged_sim();
        store(&mut sim, 0x1000, MemWidth::Quad);
        let ld = load(&mut sim, 0x1000, MemWidth::Quad);
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Forward);
        sim.check_invariants();

        // A narrower load inside the stored quadword also forwards.
        let narrow = load(&mut sim, 0x1004, MemWidth::Long);
        assert_eq!(sim.check_lsq(narrow), LsqOutcome::Forward);
    }

    /// A store that only partially overlaps the load blocks it.
    #[test]
    fn partial_overlap_blocks() {
        let mut sim = staged_sim();
        store(&mut sim, 0x1004, MemWidth::Long);
        let ld = load(&mut sim, 0x1000, MemWidth::Quad);
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Blocked);
        sim.check_invariants();
    }

    /// An older store whose address is still unresolved blocks every
    /// younger load conservatively (sim-outorder's policy).
    #[test]
    fn unknown_store_address_blocks() {
        let mut sim = staged_sim();
        let st = store(&mut sim, 0x2000, MemWidth::Quad);
        sim.window.back_mut().unwrap().addr_resolved = false;
        let ld = load(&mut sim, 0x1000, MemWidth::Quad); // disjoint address
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Blocked);

        // Once the address resolves (and doesn't overlap), the load is free.
        sim.inst_mut(st).unwrap().addr_resolved = true;
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Normal);
        sim.check_invariants();
    }

    /// A covering store whose data operand is still in flight blocks the
    /// load until the producer completes.
    #[test]
    fn store_data_not_ready_blocks() {
        let mut sim = staged_sim();
        let producer = stage(&mut sim, Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R1), None);
        let st = store(&mut sim, 0x1000, MemWidth::Quad);
        sim.inst_mut(st).unwrap().store_data_producer = Some(producer);
        let ld = load(&mut sim, 0x1000, MemWidth::Quad);
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Blocked);

        sim.inst_mut(producer).unwrap().state = IState::Completed;
        let p_slot = sim.window.slot_of(producer);
        sim.window.state[p_slot] = slot_state::COMPLETED;
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Forward);
        sim.check_invariants();
    }

    /// The walk consults only queued stores: intervening non-store
    /// instructions are never touched, and younger stores are cut off by
    /// the ascending-seq bound.
    #[test]
    fn walk_is_bounded_by_older_stores() {
        let mut sim = staged_sim();
        store(&mut sim, 0x3000, MemWidth::Quad); // disjoint older store
        for _ in 0..4 {
            stage(&mut sim, Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R1), None);
        }
        let ld = load(&mut sim, 0x1000, MemWidth::Quad);
        // A younger store to the same address must not affect the load.
        let younger = store(&mut sim, 0x1000, MemWidth::Quad);
        sim.window.back_mut().unwrap().addr_resolved = false;
        assert_eq!(sim.check_lsq(ld), LsqOutcome::Normal);
        assert!(sim.store_queue.contains(&younger));
        sim.check_invariants();
    }
}
