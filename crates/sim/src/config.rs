//! Simulator configuration (the paper's Table 1 plus the scheme knobs).

use hpa_cache::HierarchyConfig;
use hpa_isa::FuClass;

/// Functional-unit counts per class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuCounts {
    /// Integer ALUs (also execute branches and jumps).
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_muldiv: u32,
    /// Floating-point ALUs.
    pub fp_alu: u32,
    /// Floating-point multiply/divide units.
    pub fp_muldiv: u32,
    /// Memory ports.
    pub mem_ports: u32,
}

impl FuCounts {
    /// The paper's 4-wide configuration: 4 integer ALUs, 2 floating ALUs,
    /// 2 integer MULT/DIV, 2 floating MULT/DIV, 2 memory ports.
    #[must_use]
    pub fn four_wide() -> FuCounts {
        FuCounts { int_alu: 4, int_muldiv: 2, fp_alu: 2, fp_muldiv: 2, mem_ports: 2 }
    }

    /// The paper's 8-wide configuration: doubled everywhere.
    #[must_use]
    pub fn eight_wide() -> FuCounts {
        FuCounts { int_alu: 8, int_muldiv: 4, fp_alu: 4, fp_muldiv: 4, mem_ports: 4 }
    }

    /// Units for one class.
    #[must_use]
    pub fn of(&self, class: FuClass) -> u32 {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMulDiv => self.int_muldiv,
            FuClass::FpAlu => self.fp_alu,
            FuClass::FpMulDiv => self.fp_muldiv,
            FuClass::MemPort => self.mem_ports,
        }
    }
}

/// The wakeup-logic organization (paper §3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WakeupScheme {
    /// Both source comparators on the broadcast bus (the base machine).
    Conventional,
    /// **Sequential wakeup** (paper §3.3): the predicted-last operand sits
    /// on the fast bus; the other side hears tags one cycle later via the
    /// slow bus. Never mis-schedules; worst case is a 1-cycle issue delay.
    SequentialWakeup {
        /// Entries in the PC-indexed last-arriving predictor; `None` uses
        /// the static "right operand arrives last" policy (the
        /// no-predictor bars of Figure 14).
        predictor_entries: Option<usize>,
    },
    /// **Tag elimination** (Ernst & Austin, the paper's comparison point):
    /// only the predicted-last operand has a comparator; the other
    /// operand's readiness is verified by a scoreboard at issue, and a
    /// wrong guess squashes and replays everything issued after it.
    TagElimination {
        /// Entries in the PC-indexed last-arriving predictor.
        predictor_entries: usize,
    },
}

/// The register-file read-port organization (paper §4 and §5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegFileScheme {
    /// Two read ports per issue slot (the base machine).
    DualPort,
    /// **Sequential register access** (paper §4.3): one port per slot; a
    /// 2-source instruction with no `now` bit reads twice, costing +1
    /// cycle of latency and its issue slot for one cycle.
    SequentialAccess,
    /// A conventional dual-ported file pipelined over one extra stage
    /// (the middle bars of Figure 15).
    ExtraStage,
    /// Half the read ports shared through a crossbar with global
    /// arbitration (Balasubramonian-style; right bars of Figure 15).
    SharedCrossbar,
}

/// The register-rename port organization (the paper's §6 "future work":
/// extending half-price to register renaming).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RenameScheme {
    /// Two map-table read ports per pipeline slot (the base machine):
    /// renaming never stalls dispatch.
    FullPorts,
    /// **Half-price renaming**: one map-table read port per slot. A
    /// dispatch group needing more lookups than slots spills into the
    /// next cycle — 2-source instructions may take an extra rename cycle.
    HalfPorts,
}

/// The bypass-network organization (the paper's §6 "future work":
/// extending half-price to the bypass logic).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BypassScheme {
    /// A full result crossbar: any in-flight result can feed both inputs
    /// of any functional unit in the same cycle (the base machine).
    Full,
    /// **Half-price bypass**: one bypass input per functional unit. An
    /// instruction whose *both* operands would have to come off the
    /// bypass in the issue cycle is deferred one cycle, after which the
    /// earlier value is readable from the register file.
    HalfPaths,
}

/// How mis-scheduled instructions are recovered after a load-latency
/// mis-speculation (paper §2.1 and Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryKind {
    /// Alpha 21264 style: every instruction issued in the mis-speculation
    /// shadow replays, dependent or not. The paper's evaluation default.
    NonSelective,
    /// Dependence-matrix style (Figure 5): only instructions transitively
    /// dependent on the mis-scheduled load replay.
    Selective,
}

/// Full machine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Fetch/issue/commit width.
    pub width: u32,
    /// RUU (unified window/ROB) entries.
    pub ruu_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Cycles from fetch to scheduler insertion (the front-end stages).
    pub frontend_depth: u32,
    /// Functional-unit counts.
    pub fu: FuCounts,
    /// Wakeup organization.
    pub wakeup: WakeupScheme,
    /// Register-file organization.
    pub regfile: RegFileScheme,
    /// Replay scope on mis-scheduling.
    pub recovery: RecoveryKind,
    /// Rename-port organization (§6 extension; `FullPorts` in the paper's
    /// evaluation).
    pub rename: RenameScheme,
    /// Bypass-network organization (§6 extension; `Full` in the paper's
    /// evaluation).
    pub bypass: BypassScheme,
    /// Memory system.
    pub hierarchy: HierarchyConfig,
    /// Stop after this many committed instructions in total, including
    /// warmup (`u64::MAX` = run to `halt`).
    pub max_insts: u64,
    /// Commit this many instructions before resetting the statistics
    /// (standard warmup methodology). Predictors, caches and the
    /// last-arrival shadow bank stay warm across the reset; the
    /// memory-hierarchy and Figure-7 counters span the whole run.
    pub warmup_insts: u64,
    /// Entries in the direct-mapped PC-indexed side tables (the 21264
    /// stWait bits and the wakeup-order history). Power of two; PCs one
    /// table span apart alias, like the modeled hardware.
    pub pc_table_entries: usize,
}

impl SimConfig {
    /// The paper's 4-wide base machine: 4-wide, 64 RUU, 32 LSQ.
    #[must_use]
    pub fn four_wide() -> SimConfig {
        SimConfig {
            width: 4,
            ruu_size: 64,
            lsq_size: 32,
            frontend_depth: 7,
            fu: FuCounts::four_wide(),
            wakeup: WakeupScheme::Conventional,
            regfile: RegFileScheme::DualPort,
            recovery: RecoveryKind::NonSelective,
            rename: RenameScheme::FullPorts,
            bypass: BypassScheme::Full,
            hierarchy: HierarchyConfig::table1(),
            max_insts: u64::MAX,
            warmup_insts: 0,
            pc_table_entries: 4096,
        }
    }

    /// The paper's 8-wide base machine: 8-wide, 128 RUU, 64 LSQ.
    #[must_use]
    pub fn eight_wide() -> SimConfig {
        SimConfig {
            width: 8,
            ruu_size: 128,
            lsq_size: 64,
            fu: FuCounts::eight_wide(),
            ..SimConfig::four_wide()
        }
    }

    /// Sets the wakeup scheme (builder style).
    #[must_use]
    pub fn with_wakeup(mut self, wakeup: WakeupScheme) -> SimConfig {
        self.wakeup = wakeup;
        self
    }

    /// Sets the register-file scheme (builder style).
    #[must_use]
    pub fn with_regfile(mut self, regfile: RegFileScheme) -> SimConfig {
        self.regfile = regfile;
        self
    }

    /// Sets the recovery kind (builder style).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryKind) -> SimConfig {
        self.recovery = recovery;
        self
    }

    /// Sets the committed-instruction budget (builder style).
    #[must_use]
    pub fn with_max_insts(mut self, max_insts: u64) -> SimConfig {
        self.max_insts = max_insts;
        self
    }

    /// Sets the warmup length (builder style).
    #[must_use]
    pub fn with_warmup(mut self, warmup_insts: u64) -> SimConfig {
        self.warmup_insts = warmup_insts;
        self
    }

    /// Sets the rename-port scheme (builder style).
    #[must_use]
    pub fn with_rename(mut self, rename: RenameScheme) -> SimConfig {
        self.rename = rename;
        self
    }

    /// Sets the bypass scheme (builder style).
    #[must_use]
    pub fn with_bypass(mut self, bypass: BypassScheme) -> SimConfig {
        self.bypass = bypass;
        self
    }

    /// Sets the PC-indexed side-table size (builder style).
    ///
    /// # Panics
    ///
    /// The simulator constructor panics if the size is not a power of two.
    #[must_use]
    pub fn with_pc_table_entries(mut self, pc_table_entries: usize) -> SimConfig {
        self.pc_table_entries = pc_table_entries;
        self
    }

    /// Extra pipeline stages the register-file scheme inserts between
    /// schedule and execute.
    #[must_use]
    pub fn extra_rf_stages(&self) -> u32 {
        u32::from(self.regfile == RegFileScheme::ExtraStage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_presets() {
        let c4 = SimConfig::four_wide();
        assert_eq!(c4.width, 4);
        assert_eq!(c4.ruu_size, 64);
        assert_eq!(c4.lsq_size, 32);
        assert_eq!(c4.fu.of(FuClass::IntAlu), 4);
        assert_eq!(c4.fu.of(FuClass::MemPort), 2);

        let c8 = SimConfig::eight_wide();
        assert_eq!(c8.width, 8);
        assert_eq!(c8.ruu_size, 128);
        assert_eq!(c8.lsq_size, 64);
        assert_eq!(c8.fu.of(FuClass::FpMulDiv), 4);
        assert_eq!(c8.frontend_depth, c4.frontend_depth);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::four_wide()
            .with_wakeup(WakeupScheme::SequentialWakeup { predictor_entries: Some(1024) })
            .with_regfile(RegFileScheme::SequentialAccess)
            .with_recovery(RecoveryKind::Selective)
            .with_max_insts(1000);
        assert!(matches!(c.wakeup, WakeupScheme::SequentialWakeup { .. }));
        assert_eq!(c.regfile, RegFileScheme::SequentialAccess);
        assert_eq!(c.recovery, RecoveryKind::Selective);
        assert_eq!(c.max_insts, 1000);
        assert_eq!(c.extra_rf_stages(), 0);
        assert_eq!(
            SimConfig::four_wide().with_regfile(RegFileScheme::ExtraStage).extra_rf_stages(),
            1
        );
    }
}
