//! # hpa-emu — functional emulator for the Half-Price Architecture ISA
//!
//! Executes [`hpa_asm::Program`]s with precise architectural semantics. The
//! emulator plays two roles in the workspace:
//!
//! 1. standalone, to validate the `hpa-workloads` benchmark kernels against
//!    their self-checks;
//! 2. as the *oracle* inside the `hpa-sim` timing simulator, which steps the
//!    emulator at fetch time (execution-driven simulation) and attaches
//!    timing to the resulting [`StepRecord`] stream.
//!
//! # Example
//!
//! ```
//! use hpa_asm::Asm;
//! use hpa_emu::Emulator;
//! use hpa_isa::Reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(Reg::R1, 6);
//! a.mul(Reg::R1, Reg::R1, 7);
//! a.halt();
//! let mut emu = Emulator::new(&a.assemble()?);
//! emu.run(1_000)?;
//! assert_eq!(emu.reg(Reg::R1), 42);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod memory;
mod snapshot;

pub use machine::{EmuError, Emulator, RunOutcome, StepRecord, MEM_ADDR_LIMIT};
pub use memory::{Memory, PAGE_BYTES};
pub use snapshot::Snapshot;
