//! The emulator core.

use crate::Memory;
use hpa_asm::Program;
use hpa_isa::{ArchReg, FReg, Inst, MemWidth, Reg, RegOrLit, INST_BYTES};
use std::fmt;

/// Data addresses must stay below this limit (a 48-bit address space, as
/// on real Alpha implementations). A wild address — typically a negative
/// offset applied to an uninitialized base register wrapping past zero —
/// is reported as a structured error instead of silently allocating pages
/// until memory is exhausted.
pub const MEM_ADDR_LIMIT: u64 = 1 << 48;

/// Errors raised during emulation. These indicate program bugs, not
/// emulator failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuError {
    /// The PC left the text segment.
    PcOutOfRange {
        /// The offending program counter.
        pc: u64,
    },
    /// A load or store addressed memory at or beyond [`MEM_ADDR_LIMIT`].
    MemOutOfRange {
        /// PC of the faulting load/store.
        pc: u64,
        /// The offending effective address.
        addr: u64,
        /// Access size in bytes.
        width: u64,
    },
    /// A load or store was not naturally aligned for its width. Only
    /// raised when [`Emulator::set_strict_alignment`] is enabled; the ISA
    /// permits unaligned access by default.
    Misaligned {
        /// PC of the faulting load/store.
        pc: u64,
        /// The offending effective address.
        addr: u64,
        /// Access size in bytes.
        width: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "program counter {pc:#x} outside text"),
            EmuError::MemOutOfRange { pc, addr, width } => {
                write!(f, "pc {pc:#x}: {width}-byte access at {addr:#x} outside data memory")
            }
            EmuError::Misaligned { pc, addr, width } => {
                write!(f, "pc {pc:#x}: misaligned {width}-byte access at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// What one executed instruction did — the interface between the functional
/// model and the timing simulator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StepRecord {
    /// Address of the executed instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Address of the next instruction in the committed path.
    pub next_pc: u64,
    /// For control instructions: whether the transfer was taken.
    pub taken: bool,
    /// For loads/stores: the effective byte address.
    pub mem_addr: Option<u64>,
}

/// Why [`Emulator::run`] stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The program executed a `halt`.
    Halted {
        /// Instructions executed in this `run` call.
        executed: u64,
    },
    /// The instruction budget was exhausted first.
    BudgetExhausted {
        /// Instructions executed in this `run` call (equals the budget).
        executed: u64,
    },
}

/// The functional machine: architectural registers, memory and a program.
#[derive(Clone, Debug)]
pub struct Emulator {
    pub(crate) program: Program,
    pub(crate) regs: [u64; 32],
    pub(crate) fregs: [f64; 32],
    pub(crate) pc: u64,
    pub(crate) halted: bool,
    pub(crate) executed: u64,
    pub(crate) memory: Memory,
    pub(crate) strict_alignment: bool,
}

impl Emulator {
    /// Creates a machine with the program loaded and its data segments
    /// applied; all registers start at zero and the PC at address 0.
    #[must_use]
    pub fn new(program: &Program) -> Emulator {
        let mut memory = Memory::new();
        for (addr, bytes) in program.data_segments() {
            memory.write_bytes(*addr, bytes);
        }
        Emulator {
            program: program.clone(),
            regs: [0; 32],
            fregs: [0.0; 32],
            pc: 0,
            halted: false,
            executed: 0,
            memory,
            strict_alignment: false,
        }
    }

    /// Makes every load/store require natural alignment for its width,
    /// raising [`EmuError::Misaligned`] otherwise. Off by default: the ISA
    /// allows unaligned access, but fuzzing harnesses can opt in to flag
    /// accidental misalignment in generated programs.
    pub fn set_strict_alignment(&mut self, on: bool) {
        self.strict_alignment = on;
    }

    /// The current program counter.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the program has executed `halt`.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total instructions executed so far.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Reads an integer register (`r31` reads as zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.number() as usize]
        }
    }

    /// Writes an integer register (writes to `r31` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.number() as usize] = value;
        }
    }

    /// Reads a floating-point register (`f31` reads as zero).
    #[must_use]
    pub fn freg(&self, f: FReg) -> f64 {
        if f.is_zero() {
            0.0
        } else {
            self.fregs[f.number() as usize]
        }
    }

    /// Writes a floating-point register (writes to `f31` are discarded).
    pub fn set_freg(&mut self, f: FReg, value: f64) {
        if !f.is_zero() {
            self.fregs[f.number() as usize] = value;
        }
    }

    /// The data memory.
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Mutable access to the data memory (for input setup in tests).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.memory
    }

    /// The loaded program.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Reads any architectural register by its unified name: integer
    /// registers as their value, floating-point registers as the raw bits
    /// of their `f64` (so values compare exactly, including NaNs).
    #[must_use]
    pub fn arch_value(&self, r: ArchReg) -> u64 {
        if r.is_zero() {
            if r.is_int() {
                0
            } else {
                0.0f64.to_bits()
            }
        } else if r.is_int() {
            self.regs[r.index()]
        } else {
            self.fregs[r.index() - 32].to_bits()
        }
    }

    fn operand(&self, rb: RegOrLit) -> u64 {
        match rb {
            RegOrLit::Reg(r) => self.reg(r),
            RegOrLit::Lit(l) => l as i64 as u64,
        }
    }

    /// Validates a data access before it touches memory.
    ///
    /// The bounds test is one compare: with `width >= 1` the subtraction
    /// cannot underflow, and `addr > MEM_ADDR_LIMIT - width` rejects
    /// exactly the accesses whose last byte would reach the limit —
    /// including wrapped (huge) addresses, which the previous two-branch
    /// form needed a separate `addr >= MEM_ADDR_LIMIT` test for. This
    /// runs on every load and store of both the fetch-phase emulator and
    /// sampled-mode fast-forward, so the extra branch was measurable.
    #[inline]
    fn check_mem(&self, pc: u64, addr: u64, width: u64) -> Result<(), EmuError> {
        debug_assert!(width >= 1);
        if addr > MEM_ADDR_LIMIT - width {
            return Err(EmuError::MemOutOfRange { pc, addr, width });
        }
        if self.strict_alignment && !addr.is_multiple_of(width) {
            return Err(EmuError::Misaligned { pc, addr, width });
        }
        Ok(())
    }

    /// Executes one instruction and reports what it did.
    ///
    /// Returns `None` once the machine has halted.
    ///
    /// # Errors
    ///
    /// [`EmuError::PcOutOfRange`] if the PC escapes the text segment.
    pub fn step(&mut self) -> Result<Option<StepRecord>, EmuError> {
        if self.halted {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(EmuError::PcOutOfRange { pc })?;
        let fallthrough = pc + INST_BYTES;
        let mut next_pc = fallthrough;
        let mut taken = false;
        let mut mem_addr = None;

        let branch_target =
            |disp: i32| fallthrough.wrapping_add_signed(i64::from(disp) * INST_BYTES as i64);

        match inst {
            Inst::Op { op, ra, rb, rc } => {
                let v = op.eval(self.reg(ra), self.operand(rb));
                self.set_reg(rc, v);
            }
            Inst::Op1 { op, ra, rc } => {
                let v = op.eval(self.reg(ra));
                self.set_reg(rc, v);
            }
            Inst::FpOp { op, fa, fb, fc } => {
                let v = op.eval(self.freg(fa), self.freg(fb));
                self.set_freg(fc, v);
            }
            Inst::Itof { ra, fc } => {
                let v = self.reg(ra) as i64 as f64;
                self.set_freg(fc, v);
            }
            Inst::Ftoi { fa, rc } => {
                let v = self.freg(fa) as i64 as u64;
                self.set_reg(rc, v);
            }
            Inst::Load { width, rt, base, disp } => {
                let addr = self.reg(base).wrapping_add_signed(disp as i64);
                self.check_mem(pc, addr, width.bytes())?;
                mem_addr = Some(addr);
                let v = match width {
                    MemWidth::Byte => u64::from(self.memory.read_u8(addr)),
                    MemWidth::SByte => self.memory.read_u8(addr) as i8 as i64 as u64,
                    MemWidth::Half => u64::from(self.memory.read_u16(addr)),
                    MemWidth::SHalf => self.memory.read_u16(addr) as i16 as i64 as u64,
                    MemWidth::Long => self.memory.read_u32(addr) as i32 as i64 as u64,
                    MemWidth::ULong => u64::from(self.memory.read_u32(addr)),
                    MemWidth::Quad => self.memory.read_u64(addr),
                };
                self.set_reg(rt, v);
            }
            Inst::Store { width, rt, base, disp } => {
                let addr = self.reg(base).wrapping_add_signed(disp as i64);
                self.check_mem(pc, addr, width.bytes())?;
                mem_addr = Some(addr);
                let v = self.reg(rt);
                match width {
                    MemWidth::Byte | MemWidth::SByte => self.memory.write_u8(addr, v as u8),
                    MemWidth::Half | MemWidth::SHalf => self.memory.write_u16(addr, v as u16),
                    MemWidth::Long | MemWidth::ULong => self.memory.write_u32(addr, v as u32),
                    MemWidth::Quad => self.memory.write_u64(addr, v),
                }
            }
            Inst::FLoad { ft, base, disp } => {
                let addr = self.reg(base).wrapping_add_signed(disp as i64);
                self.check_mem(pc, addr, 8)?;
                mem_addr = Some(addr);
                let v = f64::from_bits(self.memory.read_u64(addr));
                self.set_freg(ft, v);
            }
            Inst::FStore { ft, base, disp } => {
                let addr = self.reg(base).wrapping_add_signed(disp as i64);
                self.check_mem(pc, addr, 8)?;
                mem_addr = Some(addr);
                self.memory.write_u64(addr, self.freg(ft).to_bits());
            }
            Inst::Branch { cond, ra, disp } => {
                taken = cond.eval(self.reg(ra));
                if taken {
                    next_pc = branch_target(disp);
                }
            }
            Inst::BranchCmp { cmp, ra, rb, disp } => {
                taken = cmp.eval(self.reg(ra), self.reg(rb));
                if taken {
                    next_pc = branch_target(disp);
                }
            }
            Inst::FBranch { cond, fa, disp } => {
                taken = cond.eval_fp(self.freg(fa));
                if taken {
                    next_pc = branch_target(disp);
                }
            }
            Inst::Br { ra, disp } => {
                self.set_reg(ra, fallthrough);
                taken = true;
                next_pc = branch_target(disp);
            }
            Inst::Jump { rt, base, disp, .. } => {
                // Read the target before writing the return address so that
                // `jsr r26, (r26)` behaves correctly.
                let target = self.reg(base).wrapping_add_signed(i64::from(disp));
                self.set_reg(rt, fallthrough);
                taken = true;
                next_pc = target;
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        self.pc = next_pc;
        self.executed += 1;
        Ok(Some(StepRecord { pc, inst, next_pc, taken, mem_addr }))
    }

    /// Runs until `halt` or until `budget` instructions have executed.
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError`] from [`Emulator::step`].
    pub fn run(&mut self, budget: u64) -> Result<RunOutcome, EmuError> {
        for executed in 0..budget {
            if self.step()?.is_none() {
                return Ok(RunOutcome::Halted { executed });
            }
        }
        Ok(RunOutcome::BudgetExhausted { executed: budget })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::{FReg, Reg};

    fn run_asm(build: impl FnOnce(&mut Asm)) -> Emulator {
        let mut a = Asm::new();
        build(&mut a);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().expect("assembles"));
        match emu.run(1_000_000).expect("runs") {
            RunOutcome::Halted { .. } => emu,
            RunOutcome::BudgetExhausted { .. } => panic!("did not halt"),
        }
    }

    #[test]
    fn arithmetic_loop() {
        // sum 1..=100 = 5050
        let emu = run_asm(|a| {
            a.li(Reg::R1, 100);
            a.li(Reg::R2, 0);
            a.label("loop");
            a.add(Reg::R2, Reg::R2, Reg::R1);
            a.sub(Reg::R1, Reg::R1, 1);
            a.bgt(Reg::R1, "loop");
        });
        assert_eq!(emu.reg(Reg::R2), 5050);
        assert_eq!(emu.reg(Reg::R1), 0);
    }

    #[test]
    fn memory_widths_and_extension() {
        let emu = run_asm(|a| {
            a.li(Reg::R1, 0x1_0000);
            a.li(Reg::R2, -2);
            a.stb(Reg::R2, Reg::R1, 0); // 0xFE
            a.ldbu(Reg::R3, Reg::R1, 0); // zero-extends
            a.stl(Reg::R2, Reg::R1, 8); // 0xFFFF_FFFE
            a.ldl(Reg::R4, Reg::R1, 8); // sign-extends
            a.stq(Reg::R2, Reg::R1, 16);
            a.ldq(Reg::R5, Reg::R1, 16);
        });
        assert_eq!(emu.reg(Reg::R3), 0xFE);
        assert_eq!(emu.reg(Reg::R4), (-2i64) as u64);
        assert_eq!(emu.reg(Reg::R5), (-2i64) as u64);
    }

    #[test]
    fn call_and_return() {
        let emu = run_asm(|a| {
            a.li(Reg::R1, 5);
            a.bsr(Reg::R26, "double");
            a.bsr(Reg::R26, "double");
            a.br("done");
            a.label("double");
            a.add(Reg::R1, Reg::R1, Reg::R1);
            a.ret(Reg::R26);
            a.label("done");
        });
        assert_eq!(emu.reg(Reg::R1), 20);
    }

    #[test]
    fn indirect_call_via_la() {
        let emu = run_asm(|a| {
            a.li(Reg::R1, 1);
            a.la(Reg::R27, "target");
            a.jsr(Reg::R26, Reg::R27);
            a.br("end");
            a.label("target");
            a.add(Reg::R1, Reg::R1, 41);
            a.ret(Reg::R26);
            a.label("end");
        });
        assert_eq!(emu.reg(Reg::R1), 42);
    }

    #[test]
    fn zero_register_semantics() {
        let emu = run_asm(|a| {
            a.li(Reg::R31, 99); // discarded
            a.add(Reg::R1, Reg::R31, 7); // r31 reads zero
        });
        assert_eq!(emu.reg(Reg::R31), 0);
        assert_eq!(emu.reg(Reg::R1), 7);
    }

    #[test]
    fn floating_point_path() {
        let emu = run_asm(|a| {
            a.li(Reg::R1, 7);
            a.itof(FReg::F1, Reg::R1);
            a.li(Reg::R2, 2);
            a.itof(FReg::F2, Reg::R2);
            a.fdiv(FReg::F3, FReg::F1, FReg::F2); // 3.5
            a.li(Reg::R3, 0x1_0000);
            a.stt(FReg::F3, Reg::R3, 0);
            a.ldt(FReg::F4, Reg::R3, 0);
            a.fadd(FReg::F4, FReg::F4, FReg::F4); // 7.0
            a.ftoi(Reg::R4, FReg::F4);
        });
        assert_eq!(emu.reg(Reg::R4), 7);
        assert_eq!(emu.freg(FReg::F3), 3.5);
        assert_eq!(emu.freg(FReg::F31), 0.0);
    }

    #[test]
    fn step_records_describe_control_flow() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0);
        a.beq(Reg::R1, "skip"); // taken
        a.nop();
        a.label("skip");
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        let r1 = emu.step().unwrap().unwrap();
        assert_eq!(r1.pc, 0);
        assert!(!r1.taken);
        let r2 = emu.step().unwrap().unwrap();
        assert!(r2.inst.is_cond_branch());
        assert!(r2.taken);
        assert_eq!(r2.next_pc, 12);
        let r3 = emu.step().unwrap().unwrap();
        assert_eq!(r3.inst, Inst::Halt);
        assert!(emu.halted());
        assert_eq!(emu.step().unwrap(), None);
    }

    #[test]
    fn mem_addr_is_reported() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x2000);
        a.ldq(Reg::R2, Reg::R1, 8);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.step().unwrap();
        let rec = emu.step().unwrap().unwrap();
        assert_eq!(rec.mem_addr, Some(0x2008));
    }

    #[test]
    fn pc_out_of_range_is_an_error() {
        let mut a = Asm::new();
        a.nop(); // falls off the end
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.step().unwrap();
        assert_eq!(emu.step(), Err(EmuError::PcOutOfRange { pc: 4 }));
    }

    #[test]
    fn budget_exhaustion() {
        let mut a = Asm::new();
        a.label("spin");
        a.br("spin");
        let mut emu = Emulator::new(&a.assemble().unwrap());
        assert_eq!(emu.run(10).unwrap(), RunOutcome::BudgetExhausted { executed: 10 });
        assert_eq!(emu.executed(), 10);
    }

    #[test]
    fn data_segments_are_loaded() {
        let mut a = Asm::new();
        a.data_u64s(0x3000, &[123, 456]);
        a.li(Reg::R1, 0x3000);
        a.ldq(Reg::R2, Reg::R1, 0);
        a.ldq(Reg::R3, Reg::R1, 8);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::R2), 123);
        assert_eq!(emu.reg(Reg::R3), 456);
    }

    #[test]
    fn jsr_through_own_link_register() {
        // jsr r26, (r26) must jump to the OLD r26.
        let mut a = Asm::new();
        a.la(Reg::R26, "t");
        a.jsr(Reg::R26, Reg::R26);
        a.label("t");
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert!(emu.halted());
        // Return address of the jsr (slot 3 -> 0x10).
        assert_eq!(emu.reg(Reg::R26), 0x10);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::{FReg, Reg};

    #[test]
    fn ftoi_truncates_toward_zero_and_saturates() {
        let mut a = Asm::new();
        a.li(Reg::R1, -7);
        a.itof(FReg::F1, Reg::R1);
        a.li(Reg::R2, 2);
        a.itof(FReg::F2, Reg::R2);
        a.fdiv(FReg::F3, FReg::F1, FReg::F2); // -3.5
        a.ftoi(Reg::R3, FReg::F3); // -3 (truncation toward zero)
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::R3) as i64, -3);
    }

    #[test]
    fn fp_zero_register_discards_writes() {
        let mut a = Asm::new();
        a.li(Reg::R1, 5);
        a.itof(FReg::F31, Reg::R1); // discarded
        a.fadd(FReg::F1, FReg::F31, FReg::F31); // 0.0
        a.ftoi(Reg::R2, FReg::F1);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::R2), 0);
    }

    #[test]
    fn unaligned_quad_access_round_trips() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x1_0003); // deliberately unaligned
        a.li(Reg::R2, 0x0123_4567);
        a.stq(Reg::R2, Reg::R1, 0);
        a.ldq(Reg::R3, Reg::R1, 0);
        a.ldbu(Reg::R4, Reg::R1, 0); // low byte
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::R3), 0x0123_4567);
        assert_eq!(emu.reg(Reg::R4), 0x67);
    }

    #[test]
    fn negative_displacement_addressing() {
        let mut a = Asm::new();
        a.li(Reg::R1, 0x1_0010);
        a.li(Reg::R2, 42);
        a.stq(Reg::R2, Reg::R1, -16);
        a.li(Reg::R3, 0x1_0000);
        a.ldq(Reg::R4, Reg::R3, 0);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::R4), 42);
    }

    #[test]
    fn branch_target_record_on_not_taken() {
        let mut a = Asm::new();
        a.li(Reg::R1, 1);
        a.beq(Reg::R1, "skip"); // not taken: r1 != 0
        a.add(Reg::R2, Reg::R2, 9);
        a.label("skip");
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.step().unwrap();
        let b = emu.step().unwrap().unwrap();
        assert!(!b.taken);
        assert_eq!(b.next_pc, b.pc + 4, "fallthrough");
        emu.run(100).unwrap();
        assert_eq!(emu.reg(Reg::R2), 9);
    }

    #[test]
    fn wild_address_is_a_structured_error() {
        // An uninitialized base with a negative displacement wraps past
        // zero to the top of the address space: MemOutOfRange, not an
        // unbounded page allocation.
        let mut a = Asm::new();
        a.ldq(Reg::R2, Reg::R1, -8); // r1 = 0 -> addr = 2^64 - 8
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        assert_eq!(
            emu.step(),
            Err(EmuError::MemOutOfRange { pc: 0, addr: (-8i64) as u64, width: 8 })
        );
    }

    #[test]
    fn access_straddling_the_limit_is_out_of_range() {
        let mut a = Asm::new();
        a.stq(Reg::R2, Reg::R1, 0);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.set_reg(Reg::R1, MEM_ADDR_LIMIT - 4); // quad crosses the limit
        assert_eq!(
            emu.step(),
            Err(EmuError::MemOutOfRange { pc: 0, addr: MEM_ADDR_LIMIT - 4, width: 8 })
        );
    }

    #[test]
    fn strict_alignment_is_opt_in() {
        let build = || {
            let mut a = Asm::new();
            a.li(Reg::R1, 0x1_0003);
            a.stl(Reg::R2, Reg::R1, 0);
            a.halt();
            Emulator::new(&a.assemble().unwrap())
        };
        // Default: unaligned access is legal.
        let mut emu = build();
        assert!(emu.run(100).is_ok());
        // Strict: the same access is a structured error at the store.
        let mut emu = build();
        emu.set_strict_alignment(true);
        assert!(matches!(emu.run(100), Err(EmuError::Misaligned { addr: 0x1_0003, width: 4, .. })));
    }

    #[test]
    fn faulting_access_leaves_state_unchanged() {
        let mut a = Asm::new();
        a.ldq(Reg::R2, Reg::R1, -8);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        assert!(emu.step().is_err());
        assert_eq!(emu.pc(), 0, "faulting instruction does not advance the PC");
        assert_eq!(emu.executed(), 0);
        assert_eq!(emu.reg(Reg::R2), 0);
    }

    #[test]
    fn arch_value_reads_both_files() {
        use hpa_isa::ArchReg;
        let mut a = Asm::new();
        a.li(Reg::R1, 7);
        a.itof(FReg::F2, Reg::R1);
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        emu.run(100).unwrap();
        assert_eq!(emu.arch_value(ArchReg::from(Reg::R1)), 7);
        assert_eq!(emu.arch_value(ArchReg::from(FReg::F2)), 7.0f64.to_bits());
        assert_eq!(emu.arch_value(ArchReg::from(Reg::R31)), 0);
        assert_eq!(emu.arch_value(ArchReg::from(FReg::F31)), 0.0f64.to_bits());
    }

    #[test]
    fn run_after_halt_is_stable() {
        let mut a = Asm::new();
        a.halt();
        let mut emu = Emulator::new(&a.assemble().unwrap());
        assert!(matches!(emu.run(10).unwrap(), RunOutcome::Halted { executed: 1 }));
        assert!(matches!(emu.run(10).unwrap(), RunOutcome::Halted { executed: 0 }));
        assert_eq!(emu.executed(), 1);
    }
}
