//! Architectural checkpoints: capture an [`Emulator`]'s complete state
//! cheaply and rebuild an identical machine from it later.
//!
//! A snapshot holds the register files, PC, halt flag, executed count and
//! the *memory delta* — every resident page of the sparse page table, in
//! sorted page order. Untouched memory reads as zero on both sides of a
//! round trip, so resident pages are the whole story. Sampled simulation
//! fast-forwards a functional emulator, snapshots at each sample boundary,
//! and seeds a detailed timing window from the checkpoint; the lockstep
//! oracle in `hpa-verify` proves the window's commit stream matches full
//! execution reaching the same region.

use crate::machine::Emulator;
use crate::memory::{Memory, PAGE_BYTES};
use hpa_asm::Program;

/// A complete architectural checkpoint of an [`Emulator`].
///
/// Floating-point registers are stored as raw `f64` bits so NaN payloads
/// and signed zeros round-trip exactly and snapshots compare with `==`.
/// The program text is *not* captured — programs are immutable, so the
/// caller re-supplies the [`Program`] on restore.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    regs: [u64; 32],
    fregs: [u64; 32],
    pc: u64,
    halted: bool,
    executed: u64,
    strict_alignment: bool,
    pages: Vec<(u64, Box<[u8; PAGE_BYTES]>)>,
}

impl Snapshot {
    /// Program counter at capture time.
    #[must_use]
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether the machine had executed `halt` at capture time.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total instructions the machine had executed at capture time.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of memory pages captured.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Rebuilds the captured memory image: every captured page written
    /// into a fresh table (one probe per page via the aligned full-page
    /// fast path of `write_bytes`).
    fn rebuild_memory(&self) -> Memory {
        let mut memory = Memory::new();
        for (page_no, bytes) in &self.pages {
            memory.write_bytes(page_no * PAGE_BYTES as u64, &bytes[..]);
        }
        memory
    }
}

impl Emulator {
    /// Captures the machine's complete architectural state.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            regs: self.regs,
            fregs: self.fregs.map(f64::to_bits),
            pc: self.pc,
            halted: self.halted,
            executed: self.executed,
            strict_alignment: self.strict_alignment,
            pages: self
                .memory
                .pages_sorted()
                .into_iter()
                .map(|(page_no, bytes)| (page_no, Box::new(*bytes)))
                .collect(),
        }
    }

    /// Builds a machine running `program` whose architectural state is
    /// exactly `snap`. The caller is responsible for pairing a snapshot
    /// with the program it was captured under; nothing in the snapshot
    /// identifies the text segment.
    #[must_use]
    pub fn from_snapshot(program: &Program, snap: &Snapshot) -> Emulator {
        Emulator {
            program: program.clone(),
            regs: snap.regs,
            fregs: snap.fregs.map(f64::from_bits),
            pc: snap.pc,
            halted: snap.halted,
            executed: snap.executed,
            memory: snap.rebuild_memory(),
            strict_alignment: snap.strict_alignment,
        }
    }

    /// Restores this machine to `snap`, keeping its current program.
    pub fn restore(&mut self, snap: &Snapshot) {
        self.regs = snap.regs;
        self.fregs = snap.fregs.map(f64::from_bits);
        self.pc = snap.pc;
        self.halted = snap.halted;
        self.executed = snap.executed;
        self.memory = snap.rebuild_memory();
        self.strict_alignment = snap.strict_alignment;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_asm::Asm;
    use hpa_isa::{FReg, Reg};

    /// A little program that loops, touches memory across two pages, and
    /// exercises the FP file before halting.
    fn program() -> Program {
        let mut a = Asm::new();
        a.li(Reg::R1, 8);
        a.li(Reg::R2, 0x1_0FF8); // quad straddles a page boundary
        a.label("loop");
        a.add(Reg::R3, Reg::R3, Reg::R1);
        a.stq(Reg::R3, Reg::R2, 0);
        a.itof(FReg::F1, Reg::R3);
        a.sub(Reg::R1, Reg::R1, 1);
        a.bgt(Reg::R1, "loop");
        a.ldq(Reg::R4, Reg::R2, 0);
        a.halt();
        a.assemble().expect("assembles")
    }

    #[test]
    fn round_trip_mid_run() {
        let program = program();
        let mut emu = Emulator::new(&program);
        emu.run(13).unwrap();
        let snap = emu.snapshot();
        let restored = Emulator::from_snapshot(&program, &snap);
        assert_eq!(restored.snapshot(), snap, "snapshot(from_snapshot(s)) == s");
        // Both machines must agree instruction by instruction to the end.
        let mut original = emu;
        let mut replica = restored;
        loop {
            let a = original.step().unwrap();
            let b = replica.step().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(original.snapshot(), replica.snapshot());
    }

    #[test]
    fn snapshot_captures_memory_and_flags() {
        let program = program();
        let mut emu = Emulator::new(&program);
        emu.set_strict_alignment(true);
        emu.run(20).unwrap();
        let snap = emu.snapshot();
        assert_eq!(snap.executed(), 20);
        assert_eq!(snap.pc(), emu.pc());
        assert!(!snap.halted());
        assert_eq!(snap.resident_pages(), emu.memory().resident_pages());
        let restored = Emulator::from_snapshot(&program, &snap);
        assert_eq!(restored.memory().read_u64(0x1_0FF8), emu.memory().read_u64(0x1_0FF8));
        // Strict alignment is part of machine state and must survive.
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn restore_rewinds_in_place() {
        let program = program();
        let mut emu = Emulator::new(&program);
        emu.run(5).unwrap();
        let snap = emu.snapshot();
        emu.run(1_000).unwrap();
        assert!(emu.halted());
        emu.restore(&snap);
        assert_eq!(emu.snapshot(), snap);
        assert!(!emu.halted());
        assert_eq!(emu.executed(), 5);
    }

    #[test]
    fn halted_machine_round_trips() {
        let program = program();
        let mut emu = Emulator::new(&program);
        emu.run(1_000).unwrap();
        assert!(emu.halted());
        let snap = emu.snapshot();
        let mut restored = Emulator::from_snapshot(&program, &snap);
        assert!(restored.halted());
        assert_eq!(restored.step().unwrap(), None, "stays halted");
        assert_eq!(restored.snapshot(), snap);
    }

    #[test]
    fn nan_bits_survive_the_round_trip() {
        let program = program();
        let mut emu = Emulator::new(&program);
        let payload = f64::from_bits(0x7FF8_0000_DEAD_BEEF); // quiet NaN, tagged
        emu.set_freg(FReg::F7, payload);
        let restored = Emulator::from_snapshot(&program, &emu.snapshot());
        assert_eq!(restored.freg(FReg::F7).to_bits(), payload.to_bits());
    }
}
