//! Sparse paged data memory.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// A sparse, byte-addressed 64-bit memory backed by 4 KiB pages.
///
/// Reads of untouched memory return zero, so programs can rely on
/// zero-initialized buffers. All multi-byte accesses are little-endian and
/// may straddle page boundaries.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident pages (for footprint diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE as usize {
            if let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) {
                out.copy_from_slice(&page[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_untouched() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_values() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(0x1000), 0xEF, "little-endian layout");
        assert_eq!(m.read_u32(0x1004), 0x0123_4567);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4; // straddles the first page boundary
        m.write_u64(addr, u64::MAX - 1);
        assert_eq!(m.read_u64(addr), u64::MAX - 1);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = Memory::new();
        m.write_u64(8, u64::MAX);
        m.write_u8(9, 0);
        assert_eq!(m.read_u64(8), 0xFFFF_FFFF_FFFF_00FF);
    }

    /// Byte-granular overlap semantics: these are the semantics the LSQ
    /// disambiguator relies on — a *covering* older store may forward its
    /// value verbatim, while any partial overlap must produce the byte
    /// merge that memory itself would, so the simulator conservatively
    /// blocks partial overlaps and replays through memory.
    mod overlap_semantics {
        use super::*;

        #[test]
        fn covering_store_forwards_exact_value() {
            let mut m = Memory::new();
            m.write_u64(0x100, 0x1122_3344_5566_7788);
            // A narrower load inside the stored quad reads the matching
            // little-endian slice — exactly what LSQ forwarding returns.
            assert_eq!(m.read_u32(0x100), 0x5566_7788);
            assert_eq!(m.read_u32(0x104), 0x1122_3344);
            assert_eq!(m.read_u8(0x107), 0x11);
        }

        #[test]
        fn partial_width_store_then_wider_load_merges_bytes() {
            let mut m = Memory::new();
            m.write_u64(0x200, 0xAAAA_AAAA_AAAA_AAAA);
            m.write_u32(0x202, 0x1234_5678);
            // The wider load sees a byte merge of both stores: no single
            // store covers it, so the LSQ would block rather than forward.
            assert_eq!(m.read_u64(0x200), 0xAAAA_1234_5678_AAAA);
        }

        #[test]
        fn unaligned_store_straddles_and_merges() {
            let mut m = Memory::new();
            m.write_u64(0x300, 0);
            m.write_u64(0x308, u64::MAX);
            m.write_u32(0x306, 0xDDCC_BBAA); // straddles the quad boundary
            assert_eq!(m.read_u64(0x300), 0xBBAA_0000_0000_0000);
            assert_eq!(m.read_u64(0x308), 0xFFFF_FFFF_FFFF_DDCC);
        }

        #[test]
        fn overlapping_loads_see_latest_store_per_byte() {
            let mut m = Memory::new();
            m.write_u32(0x400, 0x0101_0101);
            m.write_u8(0x401, 0xFF);
            assert_eq!(m.read_u32(0x400), 0x0101_FF01);
            // Unaligned load overlapping the patched byte.
            assert_eq!(m.read_u32(0x3FE), 0xFF01_0000);
        }
    }

    #[test]
    fn unaligned_cross_page_round_trip() {
        let mut m = Memory::new();
        let addr = 2 * PAGE_SIZE - 3; // quad spans two pages, unaligned
        m.write_u64(addr, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(addr), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(addr), 0xEF);
        assert_eq!(m.read_u8(addr + 7), 0x01);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn wrapping_byte_loop_is_total() {
        // read_bytes/write_bytes wrap address arithmetic rather than
        // panicking; the emulator rejects such addresses before access,
        // but the Memory type itself stays a total function.
        let mut m = Memory::new();
        m.write_bytes(u64::MAX, &[0xAB, 0xCD]);
        assert_eq!(m.read_u8(u64::MAX), 0xAB);
        assert_eq!(m.read_u8(0), 0xCD);
    }
}
