//! Sparse paged data memory.

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// Size in bytes of one memory page (the snapshot granularity).
pub const PAGE_BYTES: usize = PAGE_SIZE as usize;

type Page = Box<[u8; PAGE_BYTES]>;

/// A sparse, byte-addressed 64-bit memory backed by 4 KiB pages.
///
/// Reads of untouched memory return zero, so programs can rely on
/// zero-initialized buffers. All multi-byte accesses are little-endian and
/// may straddle page boundaries.
///
/// The page table is a hand-rolled open-addressed hash table (linear
/// probing over a power-of-two slot array, keyed by `page_no + 1` so zero
/// means empty). Every fetch-phase emulator step and every simulated load
/// and store walks this table, and the workloads touch only dozens of
/// pages — so a multiply-shift probe beats a general-purpose SipHash map
/// on the hot path while keeping the same total-function semantics.
#[derive(Clone, Debug)]
pub struct Memory {
    /// `page_no + 1` per slot; 0 marks an empty slot. Power-of-two length.
    keys: Box<[u64]>,
    /// The page storage, parallel to `keys`.
    pages: Box<[Option<Page>]>,
    /// Occupied slots; the table grows at 1/2 load factor.
    used: usize,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

/// Fibonacci multiply-shift of the page number into a `cap`-slot table
/// (`cap` a power of two).
#[inline]
fn probe_start(page_no: u64, cap: usize) -> usize {
    (page_no.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - cap.trailing_zeros())) as usize
}

impl Memory {
    const INITIAL_SLOTS: usize = 64;

    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Memory {
        Memory {
            keys: vec![0; Self::INITIAL_SLOTS].into_boxed_slice(),
            pages: std::iter::repeat_with(|| None).take(Self::INITIAL_SLOTS).collect(),
            used: 0,
        }
    }

    /// Number of resident pages (for footprint diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.used
    }

    /// Every resident page as a `(page_number, bytes)` pair, sorted by
    /// page number. The order is deterministic regardless of hash-table
    /// layout or insertion history, so snapshots of behaviorally equal
    /// memories compare equal byte for byte.
    #[must_use]
    pub fn pages_sorted(&self) -> Vec<(u64, &[u8; PAGE_BYTES])> {
        let mut out: Vec<(u64, &[u8; PAGE_BYTES])> = self
            .keys
            .iter()
            .zip(self.pages.iter())
            .filter(|(&k, _)| k != 0)
            .map(|(&k, p)| (k - 1, &**p.as_ref().expect("occupied slot holds a page")))
            .collect();
        out.sort_unstable_by_key(|&(page_no, _)| page_no);
        out
    }

    #[inline]
    fn find(&self, page_no: u64) -> Option<&Page> {
        let cap = self.keys.len();
        let key = page_no + 1;
        let mut slot = probe_start(page_no, cap);
        loop {
            let k = self.keys[slot];
            if k == key {
                return self.pages[slot].as_ref();
            }
            if k == 0 {
                return None;
            }
            slot = (slot + 1) & (cap - 1);
        }
    }

    fn find_or_insert(&mut self, page_no: u64) -> &mut Page {
        if self.used * 2 >= self.keys.len() {
            self.grow();
        }
        let cap = self.keys.len();
        let key = page_no + 1;
        let mut slot = probe_start(page_no, cap);
        loop {
            let k = self.keys[slot];
            if k == 0 {
                self.keys[slot] = key;
                self.pages[slot] = Some(Box::new([0; PAGE_SIZE as usize]));
                self.used += 1;
                break;
            }
            if k == key {
                break;
            }
            slot = (slot + 1) & (cap - 1);
        }
        self.pages[slot].as_mut().expect("occupied slot holds a page")
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap].into_boxed_slice());
        let old_pages = std::mem::replace(
            &mut self.pages,
            std::iter::repeat_with(|| None).take(new_cap).collect(),
        );
        for (key, page) in old_keys.iter().zip(old_pages.into_vec()) {
            if *key == 0 {
                continue;
            }
            let mut slot = probe_start(key - 1, new_cap);
            while self.keys[slot] != 0 {
                slot = (slot + 1) & (new_cap - 1);
            }
            self.keys[slot] = *key;
            self.pages[slot] = page;
        }
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.find(addr >> PAGE_SHIFT) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self.find_or_insert(addr >> PAGE_SHIFT);
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: within one page.
        let off = (addr & PAGE_MASK) as usize;
        if off + N <= PAGE_SIZE as usize {
            if let Some(page) = self.find(addr >> PAGE_SHIFT) {
                out.copy_from_slice(&page[off..off + N]);
            }
            return out;
        }
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    /// Writes `N` little-endian bytes starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Fast path: within one page, one table probe for the whole write.
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE as usize {
            let page = self.find_or_insert(addr >> PAGE_SHIFT);
            page[off..off + bytes.len()].copy_from_slice(bytes);
            return;
        }
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads a little-endian `u16`.
    #[must_use]
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_untouched() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xDEAD_BEEF), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_back_values() {
        let mut m = Memory::new();
        m.write_u64(0x1000, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0x1000), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(0x1000), 0xEF, "little-endian layout");
        assert_eq!(m.read_u32(0x1004), 0x0123_4567);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE - 4; // straddles the first page boundary
        m.write_u64(addr, u64::MAX - 1);
        assert_eq!(m.read_u64(addr), u64::MAX - 1);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = Memory::new();
        m.write_u64(8, u64::MAX);
        m.write_u8(9, 0);
        assert_eq!(m.read_u64(8), 0xFFFF_FFFF_FFFF_00FF);
    }

    /// Byte-granular overlap semantics: these are the semantics the LSQ
    /// disambiguator relies on — a *covering* older store may forward its
    /// value verbatim, while any partial overlap must produce the byte
    /// merge that memory itself would, so the simulator conservatively
    /// blocks partial overlaps and replays through memory.
    mod overlap_semantics {
        use super::*;

        #[test]
        fn covering_store_forwards_exact_value() {
            let mut m = Memory::new();
            m.write_u64(0x100, 0x1122_3344_5566_7788);
            // A narrower load inside the stored quad reads the matching
            // little-endian slice — exactly what LSQ forwarding returns.
            assert_eq!(m.read_u32(0x100), 0x5566_7788);
            assert_eq!(m.read_u32(0x104), 0x1122_3344);
            assert_eq!(m.read_u8(0x107), 0x11);
        }

        #[test]
        fn partial_width_store_then_wider_load_merges_bytes() {
            let mut m = Memory::new();
            m.write_u64(0x200, 0xAAAA_AAAA_AAAA_AAAA);
            m.write_u32(0x202, 0x1234_5678);
            // The wider load sees a byte merge of both stores: no single
            // store covers it, so the LSQ would block rather than forward.
            assert_eq!(m.read_u64(0x200), 0xAAAA_1234_5678_AAAA);
        }

        #[test]
        fn unaligned_store_straddles_and_merges() {
            let mut m = Memory::new();
            m.write_u64(0x300, 0);
            m.write_u64(0x308, u64::MAX);
            m.write_u32(0x306, 0xDDCC_BBAA); // straddles the quad boundary
            assert_eq!(m.read_u64(0x300), 0xBBAA_0000_0000_0000);
            assert_eq!(m.read_u64(0x308), 0xFFFF_FFFF_FFFF_DDCC);
        }

        #[test]
        fn overlapping_loads_see_latest_store_per_byte() {
            let mut m = Memory::new();
            m.write_u32(0x400, 0x0101_0101);
            m.write_u8(0x401, 0xFF);
            assert_eq!(m.read_u32(0x400), 0x0101_FF01);
            // Unaligned load overlapping the patched byte.
            assert_eq!(m.read_u32(0x3FE), 0xFF01_0000);
        }
    }

    /// Every access width, placed so the access straddles a page edge the
    /// way a loaded binary image's data can: the bytes must read back
    /// identically whether or not a page boundary sits mid-access.
    #[test]
    fn every_width_straddles_page_edges() {
        let boundary = 3 * PAGE_SIZE;
        // Seed an "image" across the boundary the way the loader writes
        // segments: one contiguous byte blob.
        let image: Vec<u8> =
            (0u16..32).map(|i| (i as u8).wrapping_mul(37).wrapping_add(1)).collect();
        let image_base = boundary - 16;
        let mut m = Memory::new();
        m.write_bytes(image_base, &image);

        // 1-byte accesses at either side of the edge.
        assert_eq!(m.read_u8(boundary - 1), image[15]);
        assert_eq!(m.read_u8(boundary), image[16]);
        // 2-byte access straddling: one byte each side.
        assert_eq!(m.read_u16(boundary - 1), u16::from_le_bytes([image[15], image[16]]));
        // 4-byte access straddling 1..3 bytes into the next page.
        for split in 1..4u64 {
            let a = boundary - split;
            let lo = (a - image_base) as usize;
            assert_eq!(m.read_u32(a), u32::from_le_bytes(image[lo..lo + 4].try_into().unwrap()));
        }
        // 8-byte access straddling 1..7 bytes into the next page.
        for split in 1..8u64 {
            let a = boundary - split;
            let lo = (a - image_base) as usize;
            assert_eq!(m.read_u64(a), u64::from_le_bytes(image[lo..lo + 8].try_into().unwrap()));
        }

        // Straddling writes land on the correct bytes of both pages.
        m.write_u16(boundary - 1, 0xBEEF);
        assert_eq!(m.read_u8(boundary - 1), 0xEF);
        assert_eq!(m.read_u8(boundary), 0xBE);
        m.write_u32(boundary - 2, 0xAABB_CCDD);
        assert_eq!(m.read_u32(boundary - 2), 0xAABB_CCDD);
        m.write_u64(boundary - 5, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(boundary - 5), 0x1122_3344_5566_7788);
    }

    #[test]
    fn u16_round_trip_and_endianness() {
        let mut m = Memory::new();
        m.write_u16(0x500, 0xA1B2);
        assert_eq!(m.read_u16(0x500), 0xA1B2);
        assert_eq!(m.read_u8(0x500), 0xB2, "little-endian layout");
        assert_eq!(m.read_u8(0x501), 0xA1);
        assert_eq!(m.read_u16(0xFFF0), 0, "untouched memory reads zero");
    }

    #[test]
    fn unaligned_cross_page_round_trip() {
        let mut m = Memory::new();
        let addr = 2 * PAGE_SIZE - 3; // quad spans two pages, unaligned
        m.write_u64(addr, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(addr), 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u8(addr), 0xEF);
        assert_eq!(m.read_u8(addr + 7), 0x01);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn pages_sorted_is_deterministic_and_complete() {
        let mut m = Memory::new();
        // Insert in descending page order; iteration must come back sorted.
        for page in [9u64, 5, 1] {
            m.write_u8(page << PAGE_SHIFT | 3, page as u8);
        }
        let pages = m.pages_sorted();
        assert_eq!(pages.iter().map(|&(n, _)| n).collect::<Vec<_>>(), vec![1, 5, 9]);
        for (page_no, bytes) in pages {
            assert_eq!(bytes[3], page_no as u8);
            assert!(bytes[..3].iter().all(|&b| b == 0));
        }
        assert_eq!(Memory::new().pages_sorted(), vec![]);
    }

    #[test]
    fn wrapping_byte_loop_is_total() {
        // read_bytes/write_bytes wrap address arithmetic rather than
        // panicking; the emulator rejects such addresses before access,
        // but the Memory type itself stays a total function.
        let mut m = Memory::new();
        m.write_bytes(u64::MAX, &[0xAB, 0xCD]);
        assert_eq!(m.read_u8(u64::MAX), 0xAB);
        assert_eq!(m.read_u8(0), 0xCD);
    }

    /// The open-addressed table is behaviorally identical to a reference
    /// map across growth, collisions and sparse/pathological page numbers
    /// — the digest-neutrality micro-assertion for the conversion away
    /// from `std::collections::HashMap`.
    #[test]
    fn table_matches_reference_model_across_growth() {
        use std::collections::BTreeMap;
        let mut m = Memory::new();
        let mut reference: BTreeMap<u64, u8> = BTreeMap::new();
        // A deterministic scatter over enough distinct pages to force
        // several growths (initial 64 slots, grows at 32 pages), with
        // colliding and high page numbers mixed in.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for i in 0..4096u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let page = (x >> 40) & 0x3FF; // 1024 candidate pages
            let addr = (page << PAGE_SHIFT) | (x & PAGE_MASK);
            let value = (x >> 16) as u8;
            m.write_u8(addr, value);
            reference.insert(addr, value);
            if i % 7 == 0 {
                // Interleaved reads, including misses.
                let probe = addr ^ 0x1_0000;
                assert_eq!(m.read_u8(probe), reference.get(&probe).copied().unwrap_or(0));
            }
        }
        for (&addr, &value) in &reference {
            assert_eq!(m.read_u8(addr), value, "at {addr:#x}");
        }
        let pages: std::collections::BTreeSet<u64> =
            reference.keys().map(|a| a >> PAGE_SHIFT).collect();
        assert_eq!(m.resident_pages(), pages.len());
    }
}
