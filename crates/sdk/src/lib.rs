//! # hpa-sdk — typed client for the `hpa serve` daemon
//!
//! A dependency-free client over [`std::net::TcpStream`], typed against
//! the *same* request/response structs the daemon serves
//! ([`hpa_serve::proto`]) and speaking the same HTTP subset
//! ([`hpa_serve::http`]) — a protocol change is one edit, not two
//! drifting ones.
//!
//! # Example
//!
//! ```no_run
//! use hpa_sdk::Client;
//! use hpa_serve::proto::JobRequest;
//!
//! let client = Client::new("127.0.0.1:8080");
//! let submit = client.submit(&JobRequest::workload(
//!     "gcc",
//!     hpa_workloads::Scale::Tiny,
//!     hpa_core::Scheme::Base,
//! ))?;
//! let result = client.wait(submit.job_id, std::time::Duration::from_secs(60))?;
//! for cell in &result.cells {
//!     println!("{}: ipc {:?} (cached: {})", cell.scheme.key(), cell.ipc(), cell.cached);
//! }
//! # Ok::<(), hpa_sdk::ClientError>(())
//! ```
//!
//! Besides registry workloads, jobs can carry assembly text
//! ([`hpa_serve::proto::JobProgram::Source`]) or raw RISC-V ELF bytes
//! ([`JobRequest::binary`]) — the daemon translates the binary through
//! the `hpa-rv` frontend, and the result cache keys on the *translated*
//! program, so resubmitting the same bytes is a bit-identical cache hit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hpa_obs::digest::fnv1a;
use hpa_obs::json::Json;
use hpa_serve::http::{self, Request, Response};
use hpa_serve::proto::{JobRequest, ResultResponse, StatusResponse, SubmitResponse};
use hpa_workloads::SplitMix64;
use std::fmt;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(std::io::Error),
    /// The server answered, but not with the expected shape.
    Protocol(String),
    /// The server answered with an HTTP error (the body's `error` field,
    /// or the raw body if it has none).
    Server {
        /// HTTP status code.
        status: u16,
        /// The decoded error message.
        message: String,
        /// The server's backoff hint, when it sent one (429 bodies
        /// carry `retry_after_ms` derived from observed job latency).
        retry_after_ms: Option<u64>,
    },
    /// [`Client::wait`] ran out of time before the job reached a
    /// terminal state.
    Timeout {
        /// The job still running.
        job_id: u64,
        /// How long the wait lasted.
        waited: Duration,
    },
    /// Every retry attempt failed. Wraps the final error and surfaces
    /// how many attempts the client made before giving up.
    Exhausted {
        /// Total attempts made (initial call + retries).
        attempts: u32,
        /// The last attempt's error.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { status, message, retry_after_ms } => {
                write!(f, "server ({status}): {message}")?;
                if let Some(ms) = retry_after_ms {
                    write!(f, " (retry after {ms} ms)")?;
                }
                Ok(())
            }
            ClientError::Timeout { job_id, waited } => {
                write!(f, "job {job_id} not finished after {waited:?}")
            }
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
        }
    }
}

/// Whether an error class is worth retrying: transport failures and
/// damaged responses are transient network trouble, and 429/503 are the
/// server explicitly saying "try again later". Submits are safe to
/// retry by construction — the content-addressed cache makes them
/// idempotent (a duplicate submit of the same request hits the cache or
/// coalesces on the same results).
fn retryable(e: &ClientError) -> bool {
    matches!(e, ClientError::Io(_) | ClientError::Protocol(_))
        || matches!(e, ClientError::Server { status: 429 | 503, .. })
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A client bound to one daemon address. Each call opens a fresh
/// connection (the protocol is `Connection: close`), so a `Client` is
/// just an address plus timeouts — cheap to clone, nothing to pool.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    io_timeout: Duration,
    poll_interval: Duration,
    /// Retries after the initial attempt for retryable errors.
    retries: u32,
    /// First-retry backoff; doubles per attempt (with jitter).
    backoff_base: Duration,
    /// Seed for the jitter stream, so retry timing is reproducible.
    retry_seed: u64,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:8080`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            io_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
            retries: 3,
            backoff_base: Duration::from_millis(50),
            retry_seed: 0x5eed,
        }
    }

    /// Overrides the per-connection read/write timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> Client {
        self.io_timeout = timeout;
        self
    }

    /// Overrides the retry budget (`0` disables retries entirely).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    /// Overrides the jitter seed (the backoff schedule is a pure
    /// function of this seed and the request path).
    #[must_use]
    pub fn with_retry_seed(mut self, seed: u64) -> Client {
        self.retry_seed = seed;
        self
    }

    /// One round trip: connect, send, read the reply.
    fn call(&self, method: &str, path: &str, body: String) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let request = Request { method: method.to_string(), path: path.to_string(), body };
        http::write_request(&mut stream, &request)?;
        let mut reader = BufReader::new(stream);
        Ok(http::read_response(&mut reader)?)
    }

    /// Like [`Client::call`], but decodes the body as JSON and turns
    /// non-200 statuses into [`ClientError::Server`].
    fn call_json(&self, method: &str, path: &str, body: String) -> Result<Json, ClientError> {
        let response = self.call(method, path, body)?;
        let parsed = hpa_obs::json::parse(&response.body)
            .map_err(|e| ClientError::Protocol(format!("{method} {path}: {e}")))?;
        if response.status != 200 {
            let message = parsed
                .get("error")
                .and_then(Json::as_str)
                .map_or_else(|| response.body.clone(), str::to_string);
            let retry_after_ms = parsed.get("retry_after_ms").and_then(Json::as_u64);
            return Err(ClientError::Server { status: response.status, message, retry_after_ms });
        }
        Ok(parsed)
    }

    /// [`Client::call_json`] under the retry policy: retryable errors
    /// (I/O, damaged responses, 429/503) are retried up to `retries`
    /// times with seeded-jittered exponential backoff, honoring any
    /// server-sent `retry_after_ms` hint. Non-retryable errors return
    /// immediately; an exhausted budget returns
    /// [`ClientError::Exhausted`] carrying the attempt count.
    fn call_json_retrying(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<Json, ClientError> {
        // Seeded per (client, path): reproducible, but submit and poll
        // streams do not march in lockstep.
        let mut rng = SplitMix64::new(self.retry_seed ^ fnv1a(path.as_bytes()));
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let err = match self.call_json(method, path, body.to_string()) {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            if !retryable(&err) {
                return Err(err);
            }
            if attempts > self.retries {
                return Err(if attempts > 1 {
                    ClientError::Exhausted { attempts, last: Box::new(err) }
                } else {
                    err
                });
            }
            // Exponential base doubling per attempt, jittered into
            // [base/2, base] so synchronized clients de-correlate, and
            // never shorter than the server's own hint.
            let base = (self.backoff_base.as_millis() as u64)
                .saturating_mul(1 << (attempts - 1).min(16))
                .clamp(1, 10_000);
            let jittered = base / 2 + rng.below(base / 2 + 1);
            let wait = match &err {
                ClientError::Server { retry_after_ms: Some(hint), .. } => jittered.max(*hint),
                _ => jittered,
            };
            std::thread::sleep(Duration::from_millis(wait.min(10_000)));
        }
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for rejected requests (bad workload name,
    /// draining server), plus transport failures.
    pub fn submit(&self, request: &JobRequest) -> Result<SubmitResponse, ClientError> {
        let v = self.call_json_retrying("POST", "/submit", &request.to_json())?;
        SubmitResponse::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Polls one job's status.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with status 404 for an unknown id.
    pub fn status(&self, job_id: u64) -> Result<StatusResponse, ClientError> {
        let v = self.call_json_retrying("GET", &format!("/status/{job_id}"), "")?;
        StatusResponse::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Fetches one job's results (cells are present only once `done`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with status 404 for an unknown id.
    pub fn result(&self, job_id: u64) -> Result<ResultResponse, ClientError> {
        let v = self.call_json_retrying("GET", &format!("/result/{job_id}"), "")?;
        ResultResponse::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Polls until the job reaches a terminal state and returns its
    /// results; [`ClientError::Timeout`] if `timeout` elapses first.
    ///
    /// # Errors
    ///
    /// As [`Client::result`], plus the timeout.
    pub fn wait(&self, job_id: u64, timeout: Duration) -> Result<ResultResponse, ClientError> {
        let start = Instant::now();
        loop {
            let status = self.status(job_id)?;
            if status.status.is_terminal() {
                return self.result(job_id);
            }
            if start.elapsed() >= timeout {
                return Err(ClientError::Timeout { job_id, waited: start.elapsed() });
            }
            std::thread::sleep(self.poll_interval);
        }
    }

    /// Fetches the daemon's health/metrics document (`/health`): the
    /// drain flag, queue depth, cache size and the serve counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn health(&self) -> Result<Json, ClientError> {
        self.call_json_retrying("GET", "/health", "")
    }

    /// Requests a graceful shutdown: the daemon drains its queue,
    /// flushes the cache index and exits. Deliberately *not* retried —
    /// once the daemon accepts it, subsequent attempts race its exit and
    /// would misreport a successful shutdown as an error.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.call_json("POST", "/shutdown", String::new()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_failure_is_io_not_panic() {
        // Port 1 on localhost is essentially never listening. Retries
        // off: this test pins the *undecorated* error class.
        let client =
            Client::new("127.0.0.1:1").with_io_timeout(Duration::from_millis(200)).with_retries(0);
        match client.health() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_surface_the_attempt_count() {
        let client =
            Client::new("127.0.0.1:1").with_io_timeout(Duration::from_millis(100)).with_retries(2);
        match client.health() {
            Err(ClientError::Exhausted { attempts: 3, last }) => {
                assert!(matches!(*last, ClientError::Io(_)), "{last:?}");
            }
            other => panic!("expected Exhausted after 3 attempts, got {other:?}"),
        }
    }

    #[test]
    fn retry_classification_is_precise() {
        let io = ClientError::Io(std::io::Error::other("refused"));
        let proto = ClientError::Protocol("half a response".into());
        let busy =
            ClientError::Server { status: 429, message: "full".into(), retry_after_ms: Some(100) };
        let draining =
            ClientError::Server { status: 503, message: "draining".into(), retry_after_ms: None };
        let bad = ClientError::Server {
            status: 400,
            message: "bad request".into(),
            retry_after_ms: None,
        };
        let missing =
            ClientError::Server { status: 404, message: "no job".into(), retry_after_ms: None };
        assert!(retryable(&io) && retryable(&proto) && retryable(&busy) && retryable(&draining));
        assert!(!retryable(&bad) && !retryable(&missing));
        assert!(!retryable(&ClientError::Timeout { job_id: 1, waited: Duration::ZERO }));
    }

    #[test]
    fn errors_render_usefully() {
        let e =
            ClientError::Server { status: 404, message: "no job 9".into(), retry_after_ms: None };
        assert_eq!(e.to_string(), "server (404): no job 9");
        let e = ClientError::Server {
            status: 429,
            message: "queue full".into(),
            retry_after_ms: Some(250),
        };
        assert_eq!(e.to_string(), "server (429): queue full (retry after 250 ms)");
        let e = ClientError::Timeout { job_id: 3, waited: Duration::from_secs(2) };
        assert!(e.to_string().contains("job 3"));
        let e = ClientError::Exhausted {
            attempts: 4,
            last: Box::new(ClientError::Protocol("torn response".into())),
        };
        assert_eq!(e.to_string(), "gave up after 4 attempt(s): protocol: torn response");
    }
}
