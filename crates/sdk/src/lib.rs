//! # hpa-sdk — typed client for the `hpa serve` daemon
//!
//! A dependency-free client over [`std::net::TcpStream`], typed against
//! the *same* request/response structs the daemon serves
//! ([`hpa_serve::proto`]) and speaking the same HTTP subset
//! ([`hpa_serve::http`]) — a protocol change is one edit, not two
//! drifting ones.
//!
//! # Example
//!
//! ```no_run
//! use hpa_sdk::Client;
//! use hpa_serve::proto::JobRequest;
//!
//! let client = Client::new("127.0.0.1:8080");
//! let submit = client.submit(&JobRequest::workload(
//!     "gcc",
//!     hpa_workloads::Scale::Tiny,
//!     hpa_core::Scheme::Base,
//! ))?;
//! let result = client.wait(submit.job_id, std::time::Duration::from_secs(60))?;
//! for cell in &result.cells {
//!     println!("{}: ipc {:?} (cached: {})", cell.scheme.key(), cell.ipc(), cell.cached);
//! }
//! # Ok::<(), hpa_sdk::ClientError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hpa_obs::json::Json;
use hpa_serve::http::{self, Request, Response};
use hpa_serve::proto::{JobRequest, ResultResponse, StatusResponse, SubmitResponse};
use std::fmt;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(std::io::Error),
    /// The server answered, but not with the expected shape.
    Protocol(String),
    /// The server answered with an HTTP error (the body's `error` field,
    /// or the raw body if it has none).
    Server {
        /// HTTP status code.
        status: u16,
        /// The decoded error message.
        message: String,
    },
    /// [`Client::wait`] ran out of time before the job reached a
    /// terminal state.
    Timeout {
        /// The job still running.
        job_id: u64,
        /// How long the wait lasted.
        waited: Duration,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server { status, message } => write!(f, "server ({status}): {message}"),
            ClientError::Timeout { job_id, waited } => {
                write!(f, "job {job_id} not finished after {waited:?}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A client bound to one daemon address. Each call opens a fresh
/// connection (the protocol is `Connection: close`), so a `Client` is
/// just an address plus timeouts — cheap to clone, nothing to pool.
#[derive(Clone, Debug)]
pub struct Client {
    addr: String,
    io_timeout: Duration,
    poll_interval: Duration,
}

impl Client {
    /// A client for `addr` (e.g. `127.0.0.1:8080`).
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            io_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
        }
    }

    /// Overrides the per-connection read/write timeout.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> Client {
        self.io_timeout = timeout;
        self
    }

    /// One round trip: connect, send, read the reply.
    fn call(&self, method: &str, path: &str, body: String) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.io_timeout))?;
        stream.set_write_timeout(Some(self.io_timeout))?;
        let request = Request { method: method.to_string(), path: path.to_string(), body };
        http::write_request(&mut stream, &request)?;
        let mut reader = BufReader::new(stream);
        Ok(http::read_response(&mut reader)?)
    }

    /// Like [`Client::call`], but decodes the body as JSON and turns
    /// non-200 statuses into [`ClientError::Server`].
    fn call_json(&self, method: &str, path: &str, body: String) -> Result<Json, ClientError> {
        let response = self.call(method, path, body)?;
        let parsed = hpa_obs::json::parse(&response.body)
            .map_err(|e| ClientError::Protocol(format!("{method} {path}: {e}")))?;
        if response.status != 200 {
            let message = parsed
                .get("error")
                .and_then(Json::as_str)
                .map_or_else(|| response.body.clone(), str::to_string);
            return Err(ClientError::Server { status: response.status, message });
        }
        Ok(parsed)
    }

    /// Submits a job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for rejected requests (bad workload name,
    /// draining server), plus transport failures.
    pub fn submit(&self, request: &JobRequest) -> Result<SubmitResponse, ClientError> {
        let v = self.call_json("POST", "/submit", request.to_json())?;
        SubmitResponse::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Polls one job's status.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with status 404 for an unknown id.
    pub fn status(&self, job_id: u64) -> Result<StatusResponse, ClientError> {
        let v = self.call_json("GET", &format!("/status/{job_id}"), String::new())?;
        StatusResponse::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Fetches one job's results (cells are present only once `done`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with status 404 for an unknown id.
    pub fn result(&self, job_id: u64) -> Result<ResultResponse, ClientError> {
        let v = self.call_json("GET", &format!("/result/{job_id}"), String::new())?;
        ResultResponse::from_json(&v).map_err(ClientError::Protocol)
    }

    /// Polls until the job reaches a terminal state and returns its
    /// results; [`ClientError::Timeout`] if `timeout` elapses first.
    ///
    /// # Errors
    ///
    /// As [`Client::result`], plus the timeout.
    pub fn wait(&self, job_id: u64, timeout: Duration) -> Result<ResultResponse, ClientError> {
        let start = Instant::now();
        loop {
            let status = self.status(job_id)?;
            if status.status.is_terminal() {
                return self.result(job_id);
            }
            if start.elapsed() >= timeout {
                return Err(ClientError::Timeout { job_id, waited: start.elapsed() });
            }
            std::thread::sleep(self.poll_interval);
        }
    }

    /// Fetches the daemon's health/metrics document (`/health`): the
    /// drain flag, queue depth, cache size and the serve counters.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn health(&self) -> Result<Json, ClientError> {
        self.call_json("GET", "/health", String::new())
    }

    /// Requests a graceful shutdown: the daemon drains its queue,
    /// flushes the cache index and exits.
    ///
    /// # Errors
    ///
    /// Transport or protocol failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.call_json("POST", "/shutdown", String::new()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_failure_is_io_not_panic() {
        // Port 1 on localhost is essentially never listening.
        let client = Client::new("127.0.0.1:1").with_io_timeout(Duration::from_millis(200));
        match client.health() {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn errors_render_usefully() {
        let e = ClientError::Server { status: 404, message: "no job 9".into() };
        assert_eq!(e.to_string(), "server (404): no job 9");
        let e = ClientError::Timeout { job_id: 3, waited: Duration::from_secs(2) };
        assert!(e.to_string().contains("job 3"));
    }
}
