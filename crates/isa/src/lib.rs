//! # hpa-isa — the Alpha-like instruction set used by the Half-Price Architecture study
//!
//! This crate defines the instruction set architecture that every other crate
//! in the workspace builds on: a 64-bit load/store RISC ISA that mirrors the
//! operand structure of the Alpha AXP ISA studied by Kim & Lipasti in
//! *Half-Price Architecture* (ISCA 2003):
//!
//! * at most **two source register operands and one destination** per
//!   instruction (the paper's "two-to-one operand configuration");
//! * integer register `r31` and floating-point register `f31` read as zero
//!   and discard writes, so instructions naming them create no dependences;
//! * operate instructions come in a **register form** (2-source format) and a
//!   **literal form** (1-source format);
//! * conditional branches test a single register against zero (1 source);
//! * memory instructions use `disp(base)` addressing only — there is no
//!   `MEM[reg + reg]` mode, which is why stores never need two operands for
//!   address generation (paper §2.3);
//! * canonical no-ops are 2-source-format operates that write the zero
//!   register and are eliminated at decode.
//!
//! The crate provides instruction definitions ([`Inst`]), register newtypes
//! ([`Reg`], [`FReg`], [`ArchReg`]), a packed 32-bit binary encoding
//! ([`encode`]/[`decode`]), functional-unit classification ([`FuClass`]) with
//! the latencies of the paper's Table 1, and the source-operand taxonomy of
//! the paper's §2.3 ([`FormatClass`], [`Inst::unique_sources`]).
//!
//! # Example
//!
//! ```
//! use hpa_isa::{Inst, AluOp, Reg, RegOrLit, FormatClass};
//!
//! // add r1 <- r2, r3   (2-source format, two unique sources)
//! let add = Inst::op(AluOp::Add, Reg::R2, RegOrLit::Reg(Reg::R3), Reg::R1);
//! assert_eq!(add.format_class(), FormatClass::TwoSrc);
//! assert_eq!(add.unique_sources().len(), 2);
//!
//! // add r1 <- r2, r2 has 2-source *format* but only one unique source
//! let dup = Inst::op(AluOp::Add, Reg::R2, RegOrLit::Reg(Reg::R2), Reg::R1);
//! assert_eq!(dup.format_class(), FormatClass::TwoSrc);
//! assert_eq!(dup.unique_sources().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod fu;
mod inst;
mod op;
mod operands;
mod reg;

pub use encode::{decode, encode, DecodeError};
pub use fu::{FuClass, OpLatency};
pub use inst::{Inst, RegOrLit};
pub use op::{AluOp, BranchCond, CmpCond, FpBinOp, JumpKind, MemWidth, UnaryOp};
pub use operands::{FormatClass, SourceSet};
pub use reg::{ArchReg, FReg, Reg, NUM_ARCH_REGS, NUM_REGS};

/// Size of one instruction slot in bytes; program counters advance by this.
pub const INST_BYTES: u64 = 4;
