//! Source-operand taxonomy from the paper's §2.3.
//!
//! The half-price architecture is motivated by *operand-granularity*
//! statistics, so this module implements the exact classification the paper
//! uses for Figures 2 and 3:
//!
//! * [`FormatClass`]: how many source **register fields** the instruction
//!   format carries (stores are their own category — they have 2-source
//!   format but are handled as address-generation + data-move internally);
//! * [`Inst::unique_sources`]: the set of *unique, non-zero-register*
//!   sources, which is what actually creates dependences in the out-of-order
//!   core. An instruction with exactly two of these is a **2-source
//!   instruction** in the paper's terminology;
//! * [`Inst::is_nop`]: 2-source-format alignment nops that the decoder
//!   eliminates without execution.

use crate::inst::{Inst, RegOrLit};
use crate::reg::ArchReg;

/// Number of source register fields in an instruction's *format*
/// (the paper's Figure 2 taxonomy).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FormatClass {
    /// No source register fields (`br`, `halt`).
    ZeroSrc,
    /// One source register field (literal operates, loads, branches, jumps).
    OneSrc,
    /// Two source register fields (register-form operates, FP operates).
    TwoSrc,
    /// Stores: two source register fields, but scheduled as an
    /// address-generation with the data value consumed by the store queue
    /// (paper §2.3), so they are reported separately.
    Store,
}

/// The unique, non-zero-register sources of one instruction: zero, one or
/// two architectural register names.
///
/// Construct it with [`Inst::unique_sources`]. The order of entries follows
/// the instruction format: index 0 is the *left* operand (`ra`/`fa`) and
/// index 1 the *right* operand (`rb`/`fb`), which is the left/right
/// distinction used by the paper's Table 3 and the last-arriving-operand
/// predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SourceSet {
    regs: [Option<ArchReg>; 2],
}

impl SourceSet {
    fn of(raw: [Option<ArchReg>; 2]) -> SourceSet {
        // Drop zero registers: they read as constant zero and create no
        // dependence.
        let mut a = raw[0].filter(|r| !r.is_zero());
        let mut b = raw[1].filter(|r| !r.is_zero());
        // Drop a duplicated name: `add r1 <- r2, r2` has one unique source.
        if a == b {
            b = None;
        }
        // Keep the set left-packed so len/slot indexing is simple, while
        // remembering that a sole right operand is still "right".
        if a.is_none() && b.is_some() {
            a = b.take();
        }
        SourceSet { regs: [a, b] }
    }

    /// Number of unique non-zero sources, `0..=2`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.iter().filter(|r| r.is_some()).count()
    }

    /// Whether there are no register sources.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs[0].is_none()
    }

    /// The source in the given slot (0 = left, 1 = right), if any.
    #[must_use]
    pub fn get(&self, slot: usize) -> Option<ArchReg> {
        self.regs.get(slot).copied().flatten()
    }

    /// Iterates over the present sources.
    pub fn iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.regs.iter().filter_map(|r| *r)
    }
}

impl Inst {
    /// The instruction's format class (paper Figure 2).
    #[must_use]
    pub fn format_class(&self) -> FormatClass {
        match self {
            Inst::Op { rb: RegOrLit::Reg(_), .. } | Inst::FpOp { .. } | Inst::BranchCmp { .. } => {
                FormatClass::TwoSrc
            }
            Inst::Op { rb: RegOrLit::Lit(_), .. }
            | Inst::Op1 { .. }
            | Inst::Itof { .. }
            | Inst::Ftoi { .. }
            | Inst::Load { .. }
            | Inst::FLoad { .. }
            | Inst::Branch { .. }
            | Inst::FBranch { .. }
            | Inst::Jump { .. } => FormatClass::OneSrc,
            Inst::Store { .. } | Inst::FStore { .. } => FormatClass::Store,
            Inst::Br { .. } | Inst::Halt => FormatClass::ZeroSrc,
        }
    }

    /// The raw source register fields in format order (left, right),
    /// including zero registers and duplicates. Store data registers are
    /// included here (they are format sources) — use
    /// [`Inst::scheduler_sources`] for what the issue queue actually tracks.
    #[must_use]
    pub fn format_sources(&self) -> [Option<ArchReg>; 2] {
        match *self {
            Inst::Op { ra, rb, .. } => {
                let right = match rb {
                    RegOrLit::Reg(r) => Some(ArchReg::from(r)),
                    RegOrLit::Lit(_) => None,
                };
                [Some(ArchReg::from(ra)), right]
            }
            Inst::Op1 { ra, .. } => [Some(ArchReg::from(ra)), None],
            Inst::FpOp { fa, fb, .. } => [Some(ArchReg::from(fa)), Some(ArchReg::from(fb))],
            Inst::Itof { ra, .. } => [Some(ArchReg::from(ra)), None],
            Inst::Ftoi { fa, .. } => [Some(ArchReg::from(fa)), None],
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => [Some(ArchReg::from(base)), None],
            Inst::Store { rt, base, .. } => [Some(ArchReg::from(base)), Some(ArchReg::from(rt))],
            Inst::FStore { ft, base, .. } => [Some(ArchReg::from(base)), Some(ArchReg::from(ft))],
            Inst::Branch { ra, .. } => [Some(ArchReg::from(ra)), None],
            Inst::FBranch { fa, .. } => [Some(ArchReg::from(fa)), None],
            Inst::BranchCmp { ra, rb, .. } => [Some(ArchReg::from(ra)), Some(ArchReg::from(rb))],
            Inst::Br { .. } | Inst::Halt => [None, None],
            Inst::Jump { base, .. } => [Some(ArchReg::from(base)), None],
        }
    }

    /// The unique, non-zero-register sources — the operands that create
    /// dependences (paper Figure 3). Instructions with two of these are
    /// **2-source instructions**.
    #[must_use]
    pub fn unique_sources(&self) -> SourceSet {
        SourceSet::of(self.format_sources())
    }

    /// The sources tracked by the *scheduler* (issue queue). Identical to
    /// [`Inst::unique_sources`] except for stores, which wake up on the
    /// address operand only: the data value is consumed by the store queue
    /// at commit time, not by the scheduler (paper §2.3).
    #[must_use]
    pub fn scheduler_sources(&self) -> SourceSet {
        match self {
            Inst::Store { base, .. } | Inst::FStore { base, .. } => {
                SourceSet::of([Some(ArchReg::from(*base)), None])
            }
            _ => self.unique_sources(),
        }
    }

    /// The store's data register, if this is a store whose data register is
    /// not a zero register.
    #[must_use]
    pub fn store_data_source(&self) -> Option<ArchReg> {
        match *self {
            Inst::Store { rt, .. } => Some(ArchReg::from(rt)).filter(|r| !r.is_zero()),
            Inst::FStore { ft, .. } => Some(ArchReg::from(ft)).filter(|r| !r.is_zero()),
            _ => None,
        }
    }

    /// The destination register name, if the instruction writes a non-zero
    /// register. Writes to `r31`/`f31` are discarded and create no
    /// dependence, so they return `None`.
    #[must_use]
    pub fn dest(&self) -> Option<ArchReg> {
        let d: Option<ArchReg> = match *self {
            Inst::Op { rc, .. } | Inst::Op1 { rc, .. } | Inst::Ftoi { rc, .. } => Some(rc.into()),
            Inst::FpOp { fc, .. } | Inst::Itof { fc, .. } => Some(fc.into()),
            Inst::Load { rt, .. } => Some(rt.into()),
            Inst::FLoad { ft, .. } => Some(ft.into()),
            Inst::Br { ra, .. } => Some(ra.into()),
            Inst::Jump { rt, .. } => Some(rt.into()),
            Inst::Store { .. }
            | Inst::FStore { .. }
            | Inst::Branch { .. }
            | Inst::FBranch { .. }
            | Inst::BranchCmp { .. }
            | Inst::Halt => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// Whether this is an alignment/padding no-op that the decoder
    /// eliminates without execution: an operate instruction whose
    /// destination is a zero register and that cannot fault.
    #[must_use]
    pub fn is_nop(&self) -> bool {
        match self {
            Inst::Op { rc, .. } | Inst::Op1 { rc, .. } => rc.is_zero(),
            Inst::FpOp { fc, .. } => fc.is_zero(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, BranchCond, MemWidth};
    use crate::reg::{FReg, Reg};

    fn add(ra: Reg, rb: RegOrLit, rc: Reg) -> Inst {
        Inst::Op { op: AluOp::Add, ra, rb, rc }
    }

    #[test]
    fn format_classes() {
        assert_eq!(
            add(Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3).format_class(),
            FormatClass::TwoSrc
        );
        assert_eq!(add(Reg::R1, RegOrLit::Lit(4), Reg::R3).format_class(), FormatClass::OneSrc);
        assert_eq!(
            Inst::Load { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 }
                .format_class(),
            FormatClass::OneSrc
        );
        assert_eq!(
            Inst::Store { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 }
                .format_class(),
            FormatClass::Store
        );
        assert_eq!(Inst::Br { ra: Reg::ZERO, disp: 0 }.format_class(), FormatClass::ZeroSrc);
        assert_eq!(
            Inst::Branch { cond: BranchCond::Eq, ra: Reg::R1, disp: 0 }.format_class(),
            FormatClass::OneSrc
        );
        // Two-register compare branches are true 2-source instructions.
        use crate::op::CmpCond;
        let cb = Inst::BranchCmp { cmp: CmpCond::Lt, ra: Reg::R1, rb: Reg::R2, disp: 4 };
        assert_eq!(cb.format_class(), FormatClass::TwoSrc);
        assert_eq!(cb.unique_sources().len(), 2);
        assert_eq!(cb.dest(), None);
        let cb0 = Inst::BranchCmp { cmp: CmpCond::Lt, ra: Reg::R1, rb: Reg::ZERO, disp: 4 };
        assert_eq!(cb0.unique_sources().len(), 1);
    }

    #[test]
    fn unique_sources_drop_zero_and_dups() {
        // Two distinct sources.
        let s = add(Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3).unique_sources();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Some(Reg::R1.into()));
        assert_eq!(s.get(1), Some(Reg::R2.into()));

        // Zero register drops out: add r1 <- r2, r31.
        let s = add(Reg::R2, RegOrLit::Reg(Reg::ZERO), Reg::R1).unique_sources();
        assert_eq!(s.len(), 1);

        // Duplicate drops out: add r1 <- r2, r2.
        let s = add(Reg::R2, RegOrLit::Reg(Reg::R2), Reg::R1).unique_sources();
        assert_eq!(s.len(), 1);

        // Both zero: nothing.
        let s = Inst::nop().unique_sources();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn int_and_fp_namespaces_do_not_collide() {
        // fadd f1 <- f2, f2 and add r1 <- r2, r2 share numbers, not names.
        let s = Inst::FpOp { op: crate::FpBinOp::Add, fa: FReg::F2, fb: FReg::F2, fc: FReg::F1 }
            .unique_sources();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Some(FReg::F2.into()));
        assert_ne!(s.get(0), Some(Reg::R2.into()));
    }

    #[test]
    fn stores_schedule_on_address_only() {
        let st = Inst::Store { width: MemWidth::Quad, rt: Reg::R7, base: Reg::R8, disp: 8 };
        assert_eq!(st.unique_sources().len(), 2);
        assert_eq!(st.scheduler_sources().len(), 1);
        assert_eq!(st.scheduler_sources().get(0), Some(Reg::R8.into()));
        assert_eq!(st.store_data_source(), Some(Reg::R7.into()));
        assert_eq!(st.dest(), None);

        // Store of the zero register has no data dependence.
        let st0 = Inst::Store { width: MemWidth::Quad, rt: Reg::ZERO, base: Reg::R8, disp: 8 };
        assert_eq!(st0.store_data_source(), None);
    }

    #[test]
    fn dest_of_zero_register_is_none() {
        assert_eq!(add(Reg::R1, RegOrLit::Reg(Reg::R2), Reg::ZERO).dest(), None);
        assert_eq!(Inst::Br { ra: Reg::ZERO, disp: 0 }.dest(), None);
        assert_eq!(Inst::Br { ra: Reg::R26, disp: 0 }.dest(), Some(Reg::R26.into()));
    }

    #[test]
    fn nop_detection() {
        assert!(Inst::nop().is_nop());
        assert!(add(Reg::R1, RegOrLit::Reg(Reg::R2), Reg::ZERO).is_nop());
        assert!(!add(Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3).is_nop());
        assert!(!Inst::Halt.is_nop());
        // A load to r31 is NOT a decoder-eliminated nop (it may fault /
        // prefetch on a real machine), mirroring Alpha semantics.
        assert!(
            !Inst::Load { width: MemWidth::Quad, rt: Reg::ZERO, base: Reg::R1, disp: 0 }.is_nop()
        );
    }

    #[test]
    fn sole_right_operand_packs_left() {
        // Store with zero base: only the data reg remains.
        let st = Inst::Store { width: MemWidth::Quad, rt: Reg::R7, base: Reg::ZERO, disp: 8 };
        let s = st.unique_sources();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(0), Some(Reg::R7.into()));
    }
}
