//! Architectural register newtypes.

use std::fmt;

/// Number of integer (or floating-point) architectural registers.
pub const NUM_REGS: u8 = 32;

/// An integer architectural register, `r0`–`r31`.
///
/// `r31` is the hard-wired zero register: it reads as zero and writes to it
/// are discarded, so naming it creates no data dependence (paper §2.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

/// A floating-point architectural register, `f0`–`f31`.
///
/// `f31` is the floating-point zero register, analogous to [`Reg::ZERO`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

macro_rules! named_regs {
    ($ty:ident, $($name:ident = $n:expr),+ $(,)?) => {
        impl $ty {
            $(
                #[doc = concat!("Register ", stringify!($n), ".")]
                pub const $name: $ty = $ty($n);
            )+
        }
    };
}

named_regs!(
    Reg,
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
    R16 = 16,
    R17 = 17,
    R18 = 18,
    R19 = 19,
    R20 = 20,
    R21 = 21,
    R22 = 22,
    R23 = 23,
    R24 = 24,
    R25 = 25,
    R26 = 26,
    R27 = 27,
    R28 = 28,
    R29 = 29,
    R30 = 30,
    R31 = 31,
);

named_regs!(
    FReg,
    F0 = 0,
    F1 = 1,
    F2 = 2,
    F3 = 3,
    F4 = 4,
    F5 = 5,
    F6 = 6,
    F7 = 7,
    F8 = 8,
    F9 = 9,
    F10 = 10,
    F11 = 11,
    F12 = 12,
    F13 = 13,
    F14 = 14,
    F15 = 15,
    F16 = 16,
    F17 = 17,
    F18 = 18,
    F19 = 19,
    F20 = 20,
    F21 = 21,
    F22 = 22,
    F23 = 23,
    F24 = 24,
    F25 = 25,
    F26 = 26,
    F27 = 27,
    F28 = 28,
    F29 = 29,
    F30 = 30,
    F31 = 31,
);

impl Reg {
    /// The hard-wired integer zero register (`r31`).
    pub const ZERO: Reg = Reg::R31;

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn new(n: u8) -> Reg {
        assert!(n < NUM_REGS, "integer register number {n} out of range");
        Reg(n)
    }

    /// The register number, `0..32`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the zero register `r31`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl FReg {
    /// The hard-wired floating-point zero register (`f31`).
    pub const ZERO: FReg = FReg::F31;

    /// Creates a floating-point register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn new(n: u8) -> FReg {
        assert!(n < NUM_REGS, "floating-point register number {n} out of range");
        FReg(n)
    }

    /// The register number, `0..32`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Whether this is the zero register `f31`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 31
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A register in the *unified* architectural namespace used by rename and
/// scheduling logic: integer registers occupy indices `0..32` and
/// floating-point registers indices `32..64`.
///
/// Dependence tracking in the out-of-order core does not care whether an
/// operand is an integer or floating-point value, only which architectural
/// name it carries; `ArchReg` gives every name a single dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

/// Total number of unified architectural register names.
pub const NUM_ARCH_REGS: usize = 64;

impl ArchReg {
    /// The unified index, `0..64`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this name is one of the zero registers (`r31` or `f31`).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 31 || self.0 == 63
    }

    /// Whether this is an integer register name.
    #[must_use]
    pub fn is_int(self) -> bool {
        self.0 < 32
    }
}

impl From<Reg> for ArchReg {
    fn from(r: Reg) -> ArchReg {
        ArchReg(r.0)
    }
}

impl From<FReg> for ArchReg {
    fn from(f: FReg) -> ArchReg {
        ArchReg(f.0 + 32)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 32 {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

impl fmt::Debug for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_registers() {
        assert!(Reg::ZERO.is_zero());
        assert!(FReg::ZERO.is_zero());
        assert!(!Reg::R0.is_zero());
        assert!(ArchReg::from(Reg::R31).is_zero());
        assert!(ArchReg::from(FReg::F31).is_zero());
        assert!(!ArchReg::from(FReg::F30).is_zero());
    }

    #[test]
    fn unified_indices_are_disjoint() {
        for n in 0..NUM_REGS {
            let i = ArchReg::from(Reg::new(n)).index();
            let fi = ArchReg::from(FReg::new(n)).index();
            assert_eq!(i, n as usize);
            assert_eq!(fi, n as usize + 32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R5.to_string(), "r5");
        assert_eq!(FReg::F7.to_string(), "f7");
        assert_eq!(ArchReg::from(FReg::F7).to_string(), "f7");
        assert_eq!(format!("{:?}", Reg::R5), "r5");
    }
}
