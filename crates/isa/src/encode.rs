//! Packed 32-bit binary encoding.
//!
//! Every instruction encodes into one 32-bit word, mirroring Alpha's fixed
//! 32-bit format. The top six bits select a major opcode; conditional
//! branches get one major opcode per condition so that, as on Alpha, a full
//! 21-bit slot displacement fits, and literal-form operates get one major
//! opcode per ALU operation so that a 16-bit literal fits.

use crate::inst::{Inst, RegOrLit};
use crate::op::{AluOp, BranchCond, CmpCond, FpBinOp, JumpKind, MemWidth, UnaryOp};
use crate::reg::{FReg, Reg};
use std::fmt;

/// Error returned by [`decode`] for words that do not correspond to any
/// instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Major opcodes.
const MAJ_HALT: u32 = 0;
const MAJ_OP_REG: u32 = 1;
const MAJ_OP1: u32 = 2;
const MAJ_FPOP: u32 = 3;
const MAJ_ITOF: u32 = 4;
const MAJ_FTOI: u32 = 5;
const MAJ_LOAD_B: u32 = 6; // 6,7,8 = byte/long/quad
const MAJ_STORE_B: u32 = 9; // 9,10,11
const MAJ_FLOAD: u32 = 12;
const MAJ_FSTORE: u32 = 13;
const MAJ_LOAD2: u32 = 14; // RV-extension widths, 2-bit width field
const MAJ_STORE2: u32 = 15;
const MAJ_BR_INT: u32 = 16; // 16..24: one per BranchCond
const MAJ_BR_FP: u32 = 24; // 24..32
const MAJ_BR: u32 = 32;
const MAJ_JMP: u32 = 33; // 33,34,35 = jmp/jsr/ret
const MAJ_OP_LIT: u32 = 36; // 36..36+19: one per legacy AluOp
const MAJ_OP2_REG: u32 = 55; // extension ops, 5-bit function field
const MAJ_OP2_LIT: u32 = 56; // 56..60: addw/sllw/srlw/sraw literal forms
const MAJ_BCMP: u32 = 60; // two-register compare-and-branch

/// How many extension ops have literal-form majors (the first
/// `OP2_LIT_COUNT` entries after [`AluOp::LEGACY`] in [`AluOp::ALL`]).
const OP2_LIT_COUNT: u32 = 4;

const DISP21_MAX: i32 = (1 << 20) - 1;
const DISP21_MIN: i32 = -(1 << 20);
const DISP13_MAX: i32 = (1 << 12) - 1;
const DISP13_MIN: i32 = -(1 << 12);

fn major(word: u32) -> u32 {
    word >> 26
}

fn field(word: u32, lsb: u32, bits: u32) -> u32 {
    (word >> lsb) & ((1 << bits) - 1)
}

fn reg_at(word: u32, lsb: u32) -> Reg {
    Reg::new(field(word, lsb, 5) as u8)
}

fn freg_at(word: u32, lsb: u32) -> FReg {
    FReg::new(field(word, lsb, 5) as u8)
}

fn width_of(index: u32) -> MemWidth {
    match index {
        0 => MemWidth::Byte,
        1 => MemWidth::Long,
        _ => MemWidth::Quad,
    }
}

/// Legacy-width index under `MAJ_LOAD_B`/`MAJ_STORE_B`; `None` for the
/// extension widths, which encode under `MAJ_LOAD2`/`MAJ_STORE2`.
fn width_index(w: MemWidth) -> Option<u32> {
    match w {
        MemWidth::Byte => Some(0),
        MemWidth::Long => Some(1),
        MemWidth::Quad => Some(2),
        MemWidth::SByte | MemWidth::Half | MemWidth::SHalf | MemWidth::ULong => None,
    }
}

fn width2_of(index: u32) -> MemWidth {
    match index {
        0 => MemWidth::SByte,
        1 => MemWidth::Half,
        2 => MemWidth::SHalf,
        _ => MemWidth::ULong,
    }
}

fn width2_index(w: MemWidth) -> u32 {
    match w {
        MemWidth::SByte => 0,
        MemWidth::Half => 1,
        MemWidth::SHalf => 2,
        MemWidth::ULong => 3,
        MemWidth::Byte | MemWidth::Long | MemWidth::Quad => unreachable!("legacy width"),
    }
}

/// Packs an extension-width memory word: `rt`/`ft` at 21, base at 16, the
/// 2-bit width index at 14 and a signed 13-bit byte displacement at 0
/// (covers RV64I's ±2 KiB immediate with room to spare).
fn encode_mem2(major: u32, rt: u32, base: Reg, width: MemWidth, disp: i16) -> u32 {
    let d = i32::from(disp);
    assert!(
        (DISP13_MIN..=DISP13_MAX).contains(&d),
        "memory displacement {d} out of 13-bit range for extension width"
    );
    (major << 26)
        | (rt << 21)
        | (u32::from(base.number()) << 16)
        | (width2_index(width) << 14)
        | (d as u32 & 0x1FFF)
}

fn alu_index(op: AluOp) -> u32 {
    AluOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32
}

/// Encodes one instruction into its 32-bit word.
///
/// # Panics
///
/// Panics if a branch displacement exceeds its encodable range (21 bits
/// for the classic branch forms, 13 for [`Inst::BranchCmp`] and the
/// extension-width memory displacements) — the assembler and the `hpa-rv`
/// translator are responsible for staying within them — or if a
/// literal-form operate uses an operation without a literal encoding (see
/// [`AluOp::has_lit_form`]).
#[must_use]
pub fn encode(inst: &Inst) -> u32 {
    let maj = |m: u32| m << 26;
    match *inst {
        Inst::Halt => maj(MAJ_HALT),
        Inst::Op { op, ra, rb: RegOrLit::Reg(rb), rc } => {
            let (major, f) = match alu_index(op) {
                i if i < AluOp::LEGACY as u32 => (MAJ_OP_REG, i),
                i => (MAJ_OP2_REG, i - AluOp::LEGACY as u32),
            };
            maj(major)
                | (f << 21)
                | (u32::from(ra.number()) << 16)
                | (u32::from(rb.number()) << 11)
                | (u32::from(rc.number()) << 6)
        }
        Inst::Op { op, ra, rb: RegOrLit::Lit(lit), rc } => {
            let major = match alu_index(op) {
                i if i < AluOp::LEGACY as u32 => MAJ_OP_LIT + i,
                i if i < AluOp::LEGACY as u32 + OP2_LIT_COUNT => {
                    MAJ_OP2_LIT + (i - AluOp::LEGACY as u32)
                }
                _ => panic!("{op} has no literal-form encoding"),
            };
            maj(major)
                | (u32::from(ra.number()) << 21)
                | (u32::from(rc.number()) << 16)
                | u32::from(lit as u16)
        }
        Inst::Op1 { op, ra, rc } => {
            let f = UnaryOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32;
            maj(MAJ_OP1)
                | (f << 21)
                | (u32::from(ra.number()) << 16)
                | (u32::from(rc.number()) << 11)
        }
        Inst::FpOp { op, fa, fb, fc } => {
            let f = FpBinOp::ALL.iter().position(|&o| o == op).expect("op in ALL") as u32;
            maj(MAJ_FPOP)
                | (f << 21)
                | (u32::from(fa.number()) << 16)
                | (u32::from(fb.number()) << 11)
                | (u32::from(fc.number()) << 6)
        }
        Inst::Itof { ra, fc } => {
            maj(MAJ_ITOF) | (u32::from(ra.number()) << 21) | (u32::from(fc.number()) << 16)
        }
        Inst::Ftoi { fa, rc } => {
            maj(MAJ_FTOI) | (u32::from(fa.number()) << 21) | (u32::from(rc.number()) << 16)
        }
        Inst::Load { width, rt, base, disp } => match width_index(width) {
            Some(i) => {
                maj(MAJ_LOAD_B + i)
                    | (u32::from(rt.number()) << 21)
                    | (u32::from(base.number()) << 16)
                    | u32::from(disp as u16)
            }
            None => encode_mem2(MAJ_LOAD2, u32::from(rt.number()), base, width, disp),
        },
        Inst::Store { width, rt, base, disp } => match width_index(width) {
            Some(i) => {
                maj(MAJ_STORE_B + i)
                    | (u32::from(rt.number()) << 21)
                    | (u32::from(base.number()) << 16)
                    | u32::from(disp as u16)
            }
            None => encode_mem2(MAJ_STORE2, u32::from(rt.number()), base, width, disp),
        },
        Inst::FLoad { ft, base, disp } => {
            maj(MAJ_FLOAD)
                | (u32::from(ft.number()) << 21)
                | (u32::from(base.number()) << 16)
                | u32::from(disp as u16)
        }
        Inst::FStore { ft, base, disp } => {
            maj(MAJ_FSTORE)
                | (u32::from(ft.number()) << 21)
                | (u32::from(base.number()) << 16)
                | u32::from(disp as u16)
        }
        Inst::Branch { cond, ra, disp } => {
            let c = BranchCond::ALL.iter().position(|&x| x == cond).expect("cond") as u32;
            assert!(
                (DISP21_MIN..=DISP21_MAX).contains(&disp),
                "branch displacement {disp} out of 21-bit range"
            );
            maj(MAJ_BR_INT + c) | (u32::from(ra.number()) << 21) | (disp as u32 & 0x1F_FFFF)
        }
        Inst::FBranch { cond, fa, disp } => {
            let c = BranchCond::ALL.iter().position(|&x| x == cond).expect("cond") as u32;
            assert!(
                (DISP21_MIN..=DISP21_MAX).contains(&disp),
                "branch displacement {disp} out of 21-bit range"
            );
            maj(MAJ_BR_FP + c) | (u32::from(fa.number()) << 21) | (disp as u32 & 0x1F_FFFF)
        }
        Inst::Br { ra, disp } => {
            assert!(
                (DISP21_MIN..=DISP21_MAX).contains(&disp),
                "branch displacement {disp} out of 21-bit range"
            );
            maj(MAJ_BR) | (u32::from(ra.number()) << 21) | (disp as u32 & 0x1F_FFFF)
        }
        Inst::Jump { kind, rt, base, disp } => {
            let k = match kind {
                JumpKind::Jmp => 0,
                JumpKind::Jsr => 1,
                JumpKind::Ret => 2,
            };
            maj(MAJ_JMP + k)
                | (u32::from(rt.number()) << 21)
                | (u32::from(base.number()) << 16)
                | u32::from(disp as u16)
        }
        Inst::BranchCmp { cmp, ra, rb, disp } => {
            let c = CmpCond::ALL.iter().position(|&x| x == cmp).expect("cmp") as u32;
            assert!(
                (DISP13_MIN..=DISP13_MAX).contains(&disp),
                "compare-branch displacement {disp} out of 13-bit range"
            );
            maj(MAJ_BCMP)
                | (c << 23)
                | (u32::from(ra.number()) << 18)
                | (u32::from(rb.number()) << 13)
                | (disp as u32 & 0x1FFF)
        }
    }
}

fn sext21(raw: u32) -> i32 {
    ((raw << 11) as i32) >> 11
}

fn sext13(raw: u32) -> i32 {
    ((raw << 19) as i32) >> 19
}

/// Decodes one 32-bit word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word's major opcode or function field does
/// not correspond to any instruction.
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    let err = DecodeError { word };
    let m = major(word);
    Ok(match m {
        MAJ_HALT => Inst::Halt,
        MAJ_OP_REG => {
            let op = *AluOp::ALL
                .get(field(word, 21, 5) as usize)
                .filter(|_| (field(word, 21, 5) as usize) < AluOp::LEGACY)
                .ok_or(err)?;
            Inst::Op {
                op,
                ra: reg_at(word, 16),
                rb: RegOrLit::Reg(reg_at(word, 11)),
                rc: reg_at(word, 6),
            }
        }
        MAJ_OP2_REG => {
            let op = *AluOp::ALL.get(AluOp::LEGACY + field(word, 21, 5) as usize).ok_or(err)?;
            Inst::Op {
                op,
                ra: reg_at(word, 16),
                rb: RegOrLit::Reg(reg_at(word, 11)),
                rc: reg_at(word, 6),
            }
        }
        MAJ_OP1 => {
            let op = *UnaryOp::ALL.get(field(word, 21, 5) as usize).ok_or(err)?;
            Inst::Op1 { op, ra: reg_at(word, 16), rc: reg_at(word, 11) }
        }
        MAJ_FPOP => {
            let op = *FpBinOp::ALL.get(field(word, 21, 5) as usize).ok_or(err)?;
            Inst::FpOp { op, fa: freg_at(word, 16), fb: freg_at(word, 11), fc: freg_at(word, 6) }
        }
        MAJ_ITOF => Inst::Itof { ra: reg_at(word, 21), fc: freg_at(word, 16) },
        MAJ_FTOI => Inst::Ftoi { fa: freg_at(word, 21), rc: reg_at(word, 16) },
        m @ MAJ_LOAD_B..=8 => Inst::Load {
            width: width_of(m - MAJ_LOAD_B),
            rt: reg_at(word, 21),
            base: reg_at(word, 16),
            disp: field(word, 0, 16) as u16 as i16,
        },
        m @ MAJ_STORE_B..=11 => Inst::Store {
            width: width_of(m - MAJ_STORE_B),
            rt: reg_at(word, 21),
            base: reg_at(word, 16),
            disp: field(word, 0, 16) as u16 as i16,
        },
        MAJ_FLOAD => Inst::FLoad {
            ft: freg_at(word, 21),
            base: reg_at(word, 16),
            disp: field(word, 0, 16) as u16 as i16,
        },
        MAJ_FSTORE => Inst::FStore {
            ft: freg_at(word, 21),
            base: reg_at(word, 16),
            disp: field(word, 0, 16) as u16 as i16,
        },
        MAJ_LOAD2 => Inst::Load {
            width: width2_of(field(word, 14, 2)),
            rt: reg_at(word, 21),
            base: reg_at(word, 16),
            disp: sext13(field(word, 0, 13)) as i16,
        },
        MAJ_STORE2 => Inst::Store {
            width: width2_of(field(word, 14, 2)),
            rt: reg_at(word, 21),
            base: reg_at(word, 16),
            disp: sext13(field(word, 0, 13)) as i16,
        },
        m @ MAJ_BR_INT..=23 => Inst::Branch {
            cond: BranchCond::ALL[(m - MAJ_BR_INT) as usize],
            ra: reg_at(word, 21),
            disp: sext21(field(word, 0, 21)),
        },
        m @ MAJ_BR_FP..=31 => Inst::FBranch {
            cond: BranchCond::ALL[(m - MAJ_BR_FP) as usize],
            fa: freg_at(word, 21),
            disp: sext21(field(word, 0, 21)),
        },
        MAJ_BR => Inst::Br { ra: reg_at(word, 21), disp: sext21(field(word, 0, 21)) },
        m @ MAJ_JMP..=35 => Inst::Jump {
            kind: match m - MAJ_JMP {
                0 => JumpKind::Jmp,
                1 => JumpKind::Jsr,
                _ => JumpKind::Ret,
            },
            rt: reg_at(word, 21),
            base: reg_at(word, 16),
            disp: field(word, 0, 16) as u16 as i16,
        },
        MAJ_BCMP => Inst::BranchCmp {
            cmp: *CmpCond::ALL.get(field(word, 23, 3) as usize).ok_or(err)?,
            ra: reg_at(word, 18),
            rb: reg_at(word, 13),
            disp: sext13(field(word, 0, 13)),
        },
        m if (MAJ_OP_LIT..MAJ_OP_LIT + AluOp::LEGACY as u32).contains(&m) => {
            let op = AluOp::ALL[(m - MAJ_OP_LIT) as usize];
            Inst::Op {
                op,
                ra: reg_at(word, 21),
                rb: RegOrLit::Lit(field(word, 0, 16) as u16 as i16),
                rc: reg_at(word, 16),
            }
        }
        m if (MAJ_OP2_LIT..MAJ_OP2_LIT + OP2_LIT_COUNT).contains(&m) => {
            let op = AluOp::ALL[AluOp::LEGACY + (m - MAJ_OP2_LIT) as usize];
            Inst::Op {
                op,
                ra: reg_at(word, 21),
                rb: RegOrLit::Lit(field(word, 0, 16) as u16 as i16),
                rc: reg_at(word, 16),
            }
        }
        _ => return Err(err),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sample_insts() -> Vec<Inst> {
        let mut v = Vec::new();
        for &op in &AluOp::ALL {
            v.push(Inst::Op { op, ra: Reg::R1, rb: RegOrLit::Reg(Reg::R30), rc: Reg::R17 });
            if op.has_lit_form() {
                v.push(Inst::Op { op, ra: Reg::R31, rb: RegOrLit::Lit(-1234), rc: Reg::R0 });
                v.push(Inst::Op { op, ra: Reg::R9, rb: RegOrLit::Lit(i16::MAX), rc: Reg::R9 });
            }
        }
        for &op in &UnaryOp::ALL {
            v.push(Inst::Op1 { op, ra: Reg::R13, rc: Reg::R14 });
        }
        for &op in &FpBinOp::ALL {
            v.push(Inst::FpOp { op, fa: FReg::F1, fb: FReg::F2, fc: FReg::F3 });
        }
        v.push(Inst::Itof { ra: Reg::R4, fc: FReg::F5 });
        v.push(Inst::Ftoi { fa: FReg::F6, rc: Reg::R7 });
        for w in [MemWidth::Byte, MemWidth::Long, MemWidth::Quad] {
            v.push(Inst::Load { width: w, rt: Reg::R1, base: Reg::R2, disp: -8 });
            v.push(Inst::Store { width: w, rt: Reg::R3, base: Reg::R4, disp: 32 });
        }
        for w in [MemWidth::SByte, MemWidth::Half, MemWidth::SHalf, MemWidth::ULong] {
            v.push(Inst::Load { width: w, rt: Reg::R1, base: Reg::R2, disp: DISP13_MIN as i16 });
            v.push(Inst::Store { width: w, rt: Reg::R3, base: Reg::R4, disp: DISP13_MAX as i16 });
        }
        v.push(Inst::FLoad { ft: FReg::F8, base: Reg::R9, disp: 16 });
        v.push(Inst::FStore { ft: FReg::F10, base: Reg::R11, disp: -16 });
        for &cond in &BranchCond::ALL {
            v.push(Inst::Branch { cond, ra: Reg::R5, disp: -100 });
            v.push(Inst::FBranch { cond, fa: FReg::F5, disp: 100 });
        }
        v.push(Inst::Br { ra: Reg::R26, disp: 12345 });
        v.push(Inst::Br { ra: Reg::ZERO, disp: -12345 });
        for kind in [JumpKind::Jmp, JumpKind::Jsr, JumpKind::Ret] {
            v.push(Inst::Jump { kind, rt: Reg::R26, base: Reg::R27, disp: 0 });
        }
        v.push(Inst::Jump { kind: JumpKind::Jsr, rt: Reg::R0, base: Reg::R5, disp: -4 });
        v.push(Inst::Jump { kind: JumpKind::Jmp, rt: Reg::R31, base: Reg::R5, disp: i16::MAX });
        for &cmp in &CmpCond::ALL {
            v.push(Inst::BranchCmp { cmp, ra: Reg::R2, rb: Reg::R7, disp: -6 });
        }
        v.push(Inst::BranchCmp {
            cmp: CmpCond::Ltu,
            ra: Reg::ZERO,
            rb: Reg::R30,
            disp: DISP13_MAX,
        });
        v.push(Inst::BranchCmp {
            cmp: CmpCond::Geu,
            ra: Reg::R30,
            rb: Reg::ZERO,
            disp: DISP13_MIN,
        });
        v.push(Inst::Halt);
        v.push(Inst::nop());
        v
    }

    #[test]
    fn round_trip_every_form() {
        for inst in all_sample_insts() {
            let word = encode(&inst);
            let back = decode(word).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    fn branch_displacement_extremes_round_trip() {
        for disp in [super::DISP21_MIN, super::DISP21_MAX, 0, -1, 1] {
            let b = Inst::Branch { cond: BranchCond::Ne, ra: Reg::R3, disp };
            assert_eq!(decode(encode(&b)).unwrap(), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of 21-bit range")]
    fn branch_displacement_overflow_panics() {
        let _ = encode(&Inst::Br { ra: Reg::ZERO, disp: 1 << 20 });
    }

    #[test]
    #[should_panic(expected = "out of 13-bit range")]
    fn compare_branch_displacement_overflow_panics() {
        let _ = encode(&Inst::BranchCmp {
            cmp: CmpCond::Eq,
            ra: Reg::R1,
            rb: Reg::R2,
            disp: DISP13_MAX + 1,
        });
    }

    #[test]
    #[should_panic(expected = "out of 13-bit range")]
    fn extension_width_displacement_overflow_panics() {
        let _ = encode(&Inst::Load {
            width: MemWidth::SHalf,
            rt: Reg::R1,
            base: Reg::R2,
            disp: (DISP13_MIN - 1) as i16,
        });
    }

    #[test]
    #[should_panic(expected = "no literal-form encoding")]
    fn lit_form_of_extension_op_panics() {
        let _ =
            encode(&Inst::Op { op: AluOp::MulH, ra: Reg::R1, rb: RegOrLit::Lit(1), rc: Reg::R2 });
    }

    #[test]
    fn invalid_words_are_rejected() {
        // Unused major opcode.
        assert!(decode(63 << 26).is_err());
        // OP_REG with out-of-range function field (extension ops live under
        // their own major and must not decode here).
        assert!(decode((MAJ_OP_REG << 26) | (31 << 21)).is_err());
        assert!(decode((MAJ_OP_REG << 26) | ((AluOp::LEGACY as u32) << 21)).is_err());
        // OP2_REG with a function field past the extension op count.
        assert!(decode((MAJ_OP2_REG << 26) | (31 << 21)).is_err());
        // BCMP with an out-of-range condition field.
        assert!(decode((MAJ_BCMP << 26) | (7 << 23)).is_err());
        // Error type displays the word.
        let e = decode(63 << 26).unwrap_err();
        assert!(e.to_string().contains("0xfc000000"));
    }

    #[test]
    fn distinct_instructions_encode_distinctly() {
        let insts = all_sample_insts();
        let mut words: Vec<u32> = insts.iter().map(encode).collect();
        let n = words.len();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), n);
    }
}
