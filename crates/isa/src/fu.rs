//! Functional-unit classification and execution latencies (paper Table 1).

use crate::inst::Inst;
use crate::op::{AluOp, FpBinOp};

/// The functional-unit class an instruction executes on.
///
/// The classes and their counts/latencies follow the paper's Table 1:
/// integer ALUs (1-cycle), floating ALUs (2-cycle), integer multiply/divide
/// units (3/20), floating multiply/divide units (4/12) and memory ports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FuClass {
    /// Integer ALU; also executes branches, jumps and conversions.
    IntAlu,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Floating-point ALU (add/sub/compare).
    FpAlu,
    /// Floating-point multiply/divide unit.
    FpMulDiv,
    /// Memory port: address generation and cache access for loads/stores.
    MemPort,
}

impl FuClass {
    /// All functional-unit classes.
    pub const ALL: [FuClass; 5] =
        [FuClass::IntAlu, FuClass::IntMulDiv, FuClass::FpAlu, FuClass::FpMulDiv, FuClass::MemPort];
}

/// Execution latency and pipelining behavior of one instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpLatency {
    /// Cycles from the start of execution to the result being available for
    /// bypass. For loads this covers address generation only — the cache
    /// access time is added by the memory model.
    pub cycles: u32,
    /// Whether the functional unit accepts a new operation every cycle.
    /// Divide units are not pipelined and busy the unit for the full
    /// latency.
    pub pipelined: bool,
}

impl OpLatency {
    const fn pipe(cycles: u32) -> OpLatency {
        OpLatency { cycles, pipelined: true }
    }
    const fn block(cycles: u32) -> OpLatency {
        OpLatency { cycles, pipelined: false }
    }
}

impl Inst {
    /// The functional-unit class this instruction executes on.
    #[must_use]
    pub fn fu_class(&self) -> FuClass {
        match self {
            Inst::Op { op, .. } => match op {
                AluOp::Mul
                | AluOp::Div
                | AluOp::Rem
                | AluOp::MulW
                | AluOp::MulH
                | AluOp::MulHU
                | AluOp::MulHSU
                | AluOp::DivW
                | AluOp::DivUW
                | AluOp::RemW
                | AluOp::RemUW
                | AluOp::DivU
                | AluOp::RemU => FuClass::IntMulDiv,
                _ => FuClass::IntAlu,
            },
            Inst::Op1 { .. } => FuClass::IntAlu,
            Inst::FpOp { op, .. } => match op {
                FpBinOp::Mul | FpBinOp::Div => FuClass::FpMulDiv,
                _ => FuClass::FpAlu,
            },
            Inst::Itof { .. } | Inst::Ftoi { .. } => FuClass::FpAlu,
            Inst::Load { .. } | Inst::FLoad { .. } | Inst::Store { .. } | Inst::FStore { .. } => {
                FuClass::MemPort
            }
            Inst::Branch { .. }
            | Inst::FBranch { .. }
            | Inst::BranchCmp { .. }
            | Inst::Br { .. }
            | Inst::Jump { .. }
            | Inst::Halt => FuClass::IntAlu,
        }
    }

    /// The execution latency of this instruction (paper Table 1).
    ///
    /// Loads report address-generation latency only; the cache hierarchy
    /// adds its access time on top.
    #[must_use]
    pub fn latency(&self) -> OpLatency {
        match self {
            Inst::Op { op, .. } => match op {
                AluOp::Mul | AluOp::MulW | AluOp::MulH | AluOp::MulHU | AluOp::MulHSU => {
                    OpLatency::pipe(3)
                }
                AluOp::Div
                | AluOp::Rem
                | AluOp::DivW
                | AluOp::DivUW
                | AluOp::RemW
                | AluOp::RemUW
                | AluOp::DivU
                | AluOp::RemU => OpLatency::block(20),
                _ => OpLatency::pipe(1),
            },
            Inst::Op1 { .. } => OpLatency::pipe(1),
            Inst::FpOp { op, .. } => match op {
                FpBinOp::Mul => OpLatency::pipe(4),
                FpBinOp::Div => OpLatency::block(12),
                _ => OpLatency::pipe(2),
            },
            Inst::Itof { .. } | Inst::Ftoi { .. } => OpLatency::pipe(2),
            // Address generation; memory model adds cache time.
            Inst::Load { .. } | Inst::FLoad { .. } | Inst::Store { .. } | Inst::FStore { .. } => {
                OpLatency::pipe(1)
            }
            Inst::Branch { .. }
            | Inst::FBranch { .. }
            | Inst::BranchCmp { .. }
            | Inst::Br { .. }
            | Inst::Jump { .. }
            | Inst::Halt => OpLatency::pipe(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{FReg, Reg};
    use crate::RegOrLit;

    #[test]
    fn table1_latencies() {
        let add = Inst::op(AluOp::Add, Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3);
        assert_eq!(add.fu_class(), FuClass::IntAlu);
        assert_eq!(add.latency(), OpLatency { cycles: 1, pipelined: true });

        let mul = Inst::op(AluOp::Mul, Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3);
        assert_eq!(mul.fu_class(), FuClass::IntMulDiv);
        assert_eq!(mul.latency().cycles, 3);
        assert!(mul.latency().pipelined);

        let div = Inst::op(AluOp::Div, Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3);
        assert_eq!(div.fu_class(), FuClass::IntMulDiv);
        assert_eq!(div.latency().cycles, 20);
        assert!(!div.latency().pipelined);

        let fadd = Inst::FpOp { op: FpBinOp::Add, fa: FReg::F1, fb: FReg::F2, fc: FReg::F3 };
        assert_eq!(fadd.fu_class(), FuClass::FpAlu);
        assert_eq!(fadd.latency().cycles, 2);

        let fmul = Inst::FpOp { op: FpBinOp::Mul, fa: FReg::F1, fb: FReg::F2, fc: FReg::F3 };
        assert_eq!(fmul.fu_class(), FuClass::FpMulDiv);
        assert_eq!(fmul.latency().cycles, 4);

        let fdiv = Inst::FpOp { op: FpBinOp::Div, fa: FReg::F1, fb: FReg::F2, fc: FReg::F3 };
        assert_eq!(fdiv.latency().cycles, 12);
        assert!(!fdiv.latency().pipelined);
    }

    #[test]
    fn memory_ops_use_mem_port() {
        use crate::op::MemWidth;
        let ld = Inst::Load { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 };
        assert_eq!(ld.fu_class(), FuClass::MemPort);
        assert_eq!(ld.latency().cycles, 1);
        let st = Inst::Store { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 };
        assert_eq!(st.fu_class(), FuClass::MemPort);
    }

    #[test]
    fn branches_use_int_alu() {
        use crate::op::{BranchCond, CmpCond};
        let b = Inst::Branch { cond: BranchCond::Eq, ra: Reg::R1, disp: 4 };
        assert_eq!(b.fu_class(), FuClass::IntAlu);
        assert_eq!(b.latency().cycles, 1);
        let cb = Inst::BranchCmp { cmp: CmpCond::Ltu, ra: Reg::R1, rb: Reg::R2, disp: 4 };
        assert_eq!(cb.fu_class(), FuClass::IntAlu);
        assert_eq!(cb.latency().cycles, 1);
    }

    #[test]
    fn extension_ops_classify_like_their_legacy_kin() {
        let mulh = Inst::op(AluOp::MulH, Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3);
        assert_eq!(mulh.fu_class(), FuClass::IntMulDiv);
        assert_eq!(mulh.latency(), OpLatency { cycles: 3, pipelined: true });
        let remuw = Inst::op(AluOp::RemUW, Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3);
        assert_eq!(remuw.fu_class(), FuClass::IntMulDiv);
        assert_eq!(remuw.latency(), OpLatency { cycles: 20, pipelined: false });
        let addw = Inst::op(AluOp::AddW, Reg::R1, RegOrLit::Reg(Reg::R2), Reg::R3);
        assert_eq!(addw.fu_class(), FuClass::IntAlu);
        assert_eq!(addw.latency().cycles, 1);
    }
}
