//! Operation kinds: ALU operations, branch conditions, memory widths.

use std::fmt;

/// Two-operand integer ALU operations (`rc <- ra OP rb|lit`).
///
/// The set mirrors the Alpha operate class: arithmetic, scaled adds used for
/// address arithmetic, logic, shifts and comparisons that write `0`/`1`.
/// Division is included as a long-latency functional-unit exercise (the
/// paper's Table 1 lists 20-cycle integer divide units).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    /// `rc <- (ra << 2) + rb`, Alpha `s4addq`.
    S4Add,
    /// `rc <- (ra << 3) + rb`, Alpha `s8addq`.
    S8Add,
    Mul,
    /// Signed division; division by zero yields zero (the emulator traps are
    /// out of scope for a user-level timing study).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    And,
    Or,
    Xor,
    /// `rc <- ra & !rb`, Alpha `bic`.
    Andnot,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// `rc <- (ra == rb) as u64`.
    CmpEq,
    /// Signed `rc <- (ra < rb) as u64`.
    CmpLt,
    /// Signed `rc <- (ra <= rb) as u64`.
    CmpLe,
    /// Unsigned `rc <- (ra < rb) as u64`.
    CmpUlt,
    /// Unsigned `rc <- (ra <= rb) as u64`.
    CmpUle,
    // --- RV64-oriented extension (the `hpa-rv` real-binary frontend) ---
    // The remaining operations mirror RV64I W-forms and the M extension so
    // translated guest instructions stay 1:1 ALU ops instead of multi-
    // instruction scratch-register sequences. Division semantics follow
    // RISC-V (divide by zero is all-ones / the dividend), which differs
    // deliberately from the Alpha-flavored `Div`/`Rem` above.
    /// 32-bit add, result sign-extended (RV64 `addw`/`addiw`).
    AddW,
    /// 32-bit logical shift left, sign-extended (RV64 `sllw`; shift mod 32).
    SllW,
    /// 32-bit logical shift right, sign-extended (RV64 `srlw`).
    SrlW,
    /// 32-bit arithmetic shift right, sign-extended (RV64 `sraw`).
    SraW,
    /// 32-bit subtract, sign-extended (RV64 `subw`).
    SubW,
    /// 32-bit multiply, sign-extended (RV64M `mulw`).
    MulW,
    /// 32-bit signed division, sign-extended; by zero yields −1 (RV64M
    /// `divw`).
    DivW,
    /// 32-bit unsigned division, sign-extended; by zero yields 2³²−1
    /// (RV64M `divuw`).
    DivUW,
    /// 32-bit signed remainder, sign-extended; by zero yields the dividend
    /// (RV64M `remw`).
    RemW,
    /// 32-bit unsigned remainder, sign-extended (RV64M `remuw`).
    RemUW,
    /// 64-bit unsigned division; by zero yields all ones (RV64M `divu`).
    DivU,
    /// 64-bit unsigned remainder; by zero yields the dividend (RV64M
    /// `remu`).
    RemU,
    /// High 64 bits of the signed 128-bit product (RV64M `mulh`).
    MulH,
    /// High 64 bits of the unsigned 128-bit product (RV64M `mulhu`).
    MulHU,
    /// High 64 bits of the signed×unsigned product (RV64M `mulhsu`).
    MulHSU,
}

/// Sign-extends the low 32 bits of `v` — the RV64 W-form result rule.
fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

impl AluOp {
    /// Number of legacy (pre-`hpa-rv`) operations: the first
    /// [`AluOp::LEGACY`] entries of [`AluOp::ALL`] keep their original
    /// one-major-per-op literal encodings, so existing program words are
    /// stable.
    pub const LEGACY: usize = 19;

    /// All ALU operations, in encoding order. The first [`AluOp::LEGACY`]
    /// are the original Alpha-flavored set; the rest are the RV64
    /// extension, with the literal-capable W-immediates first.
    pub const ALL: [AluOp; 34] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::S4Add,
        AluOp::S8Add,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Andnot,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::CmpEq,
        AluOp::CmpLt,
        AluOp::CmpLe,
        AluOp::CmpUlt,
        AluOp::CmpUle,
        AluOp::AddW,
        AluOp::SllW,
        AluOp::SrlW,
        AluOp::SraW,
        AluOp::SubW,
        AluOp::MulW,
        AluOp::DivW,
        AluOp::DivUW,
        AluOp::RemW,
        AluOp::RemUW,
        AluOp::DivU,
        AluOp::RemU,
        AluOp::MulH,
        AluOp::MulHU,
        AluOp::MulHSU,
    ];

    /// Whether the operation has a literal-form encoding (`rc <- ra OP
    /// #lit`). True for every legacy operation and for the four W-form
    /// operations with RV64 immediate variants (`addiw`/`slliw`/`srliw`/
    /// `sraiw`); the remaining extension ops are register-form only.
    #[must_use]
    pub fn has_lit_form(self) -> bool {
        let idx = AluOp::ALL.iter().position(|&o| o == self).expect("op in ALL");
        idx < AluOp::LEGACY || matches!(self, AluOp::AddW | AluOp::SllW | AluOp::SrlW | AluOp::SraW)
    }

    /// The mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::S4Add => "s4add",
            AluOp::S8Add => "s8add",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Andnot => "andnot",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpLe => "cmple",
            AluOp::CmpUlt => "cmpult",
            AluOp::CmpUle => "cmpule",
            AluOp::AddW => "addw",
            AluOp::SllW => "sllw",
            AluOp::SrlW => "srlw",
            AluOp::SraW => "sraw",
            AluOp::SubW => "subw",
            AluOp::MulW => "mulw",
            AluOp::DivW => "divw",
            AluOp::DivUW => "divuw",
            AluOp::RemW => "remw",
            AluOp::RemUW => "remuw",
            AluOp::DivU => "divu",
            AluOp::RemU => "remu",
            AluOp::MulH => "mulh",
            AluOp::MulHU => "mulhu",
            AluOp::MulHSU => "mulhsu",
        }
    }

    /// Evaluates the operation on two 64-bit values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::S4Add => (a << 2).wrapping_add(b),
            AluOp::S8Add => (a << 3).wrapping_add(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b) as u64
                }
            }
            AluOp::Rem => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    a as u64
                } else {
                    a.wrapping_rem(b) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Andnot => a & !b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::CmpEq => u64::from(a == b),
            AluOp::CmpLt => u64::from((a as i64) < (b as i64)),
            AluOp::CmpLe => u64::from((a as i64) <= (b as i64)),
            AluOp::CmpUlt => u64::from(a < b),
            AluOp::CmpUle => u64::from(a <= b),
            AluOp::AddW => sext32(a.wrapping_add(b)),
            AluOp::SubW => sext32(a.wrapping_sub(b)),
            AluOp::SllW => sext32(u64::from((a as u32) << (b & 31))),
            AluOp::SrlW => sext32(u64::from((a as u32) >> (b & 31))),
            AluOp::SraW => ((a as u32 as i32) >> (b & 31)) as i64 as u64,
            AluOp::MulW => (a as i32).wrapping_mul(b as i32) as i64 as u64,
            AluOp::DivW => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    u64::MAX
                } else {
                    a.wrapping_div(b) as i64 as u64
                }
            }
            AluOp::DivUW => {
                let (a, b) = (a as u32, b as u32);
                a.checked_div(b).map_or(u64::MAX, |q| q as i32 as i64 as u64)
            }
            AluOp::RemW => {
                let (a, b) = (a as i32, b as i32);
                if b == 0 {
                    a as i64 as u64
                } else {
                    a.wrapping_rem(b) as i64 as u64
                }
            }
            AluOp::RemUW => {
                let (a, b) = (a as u32, b as u32);
                if b == 0 {
                    a as i32 as i64 as u64
                } else {
                    (a % b) as i32 as i64 as u64
                }
            }
            AluOp::DivU => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::RemU => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
            AluOp::MulH => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            AluOp::MulHU => (((a as u128) * (b as u128)) >> 64) as u64,
            AluOp::MulHSU => (((a as i64 as i128) * (i128::from(b))) >> 64) as u64,
        }
    }
}

/// One-operand integer operations (`rc <- OP(ra)`), Alpha CIX/BWX style.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum UnaryOp {
    /// Population count (Alpha `ctpop`).
    Popcnt,
    /// Count leading zeros (Alpha `ctlz`).
    Ctlz,
    /// Count trailing zeros (Alpha `cttz`).
    Cttz,
    /// Sign-extend the low byte (Alpha `sextb`).
    Sextb,
    /// Sign-extend the low 32 bits (Alpha `addl`-style canonicalization).
    Sextl,
}

impl UnaryOp {
    /// All unary operations, in encoding order.
    pub const ALL: [UnaryOp; 5] =
        [UnaryOp::Popcnt, UnaryOp::Ctlz, UnaryOp::Cttz, UnaryOp::Sextb, UnaryOp::Sextl];

    /// The mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Popcnt => "popcnt",
            UnaryOp::Ctlz => "ctlz",
            UnaryOp::Cttz => "cttz",
            UnaryOp::Sextb => "sextb",
            UnaryOp::Sextl => "sextl",
        }
    }

    /// Evaluates the operation.
    #[must_use]
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnaryOp::Popcnt => u64::from(a.count_ones()),
            UnaryOp::Ctlz => u64::from(a.leading_zeros()),
            UnaryOp::Cttz => u64::from(a.trailing_zeros()),
            UnaryOp::Sextb => a as i8 as i64 as u64,
            UnaryOp::Sextl => a as i32 as i64 as u64,
        }
    }
}

/// Floating-point two-operand operations (`fc <- fa OP fb`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FpBinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `fc <- if fa == fb { 1.0 } else { 0.0 }`.
    CmpEq,
    /// `fc <- if fa < fb { 1.0 } else { 0.0 }`.
    CmpLt,
    /// `fc <- if fa <= fb { 1.0 } else { 0.0 }`.
    CmpLe,
}

impl FpBinOp {
    /// All floating-point operations, in encoding order.
    pub const ALL: [FpBinOp; 7] = [
        FpBinOp::Add,
        FpBinOp::Sub,
        FpBinOp::Mul,
        FpBinOp::Div,
        FpBinOp::CmpEq,
        FpBinOp::CmpLt,
        FpBinOp::CmpLe,
    ];

    /// The mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::Add => "fadd",
            FpBinOp::Sub => "fsub",
            FpBinOp::Mul => "fmul",
            FpBinOp::Div => "fdiv",
            FpBinOp::CmpEq => "fcmpeq",
            FpBinOp::CmpLt => "fcmplt",
            FpBinOp::CmpLe => "fcmple",
        }
    }

    /// Evaluates the operation. Division by zero yields zero, matching the
    /// trap-free user-level model.
    #[must_use]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpBinOp::Add => a + b,
            FpBinOp::Sub => a - b,
            FpBinOp::Mul => a * b,
            FpBinOp::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            FpBinOp::CmpEq => f64::from(a == b),
            FpBinOp::CmpLt => f64::from(a < b),
            FpBinOp::CmpLe => f64::from(a <= b),
        }
    }
}

/// Conditions for conditional branches, testing one register against zero
/// (Alpha `beq/bne/blt/ble/bgt/bge` style — note the single source operand).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Low bit clear (Alpha `blbc`).
    Lbc,
    /// Low bit set (Alpha `blbs`).
    Lbs,
}

impl BranchCond {
    /// All branch conditions, in encoding order.
    pub const ALL: [BranchCond; 8] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Gt,
        BranchCond::Ge,
        BranchCond::Lbc,
        BranchCond::Lbs,
    ];

    /// The mnemonic suffix (`beq`, `bne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
            BranchCond::Ge => "bge",
            BranchCond::Lbc => "blbc",
            BranchCond::Lbs => "blbs",
        }
    }

    /// Evaluates the condition on an integer register value.
    #[must_use]
    pub fn eval(self, a: u64) -> bool {
        let s = a as i64;
        match self {
            BranchCond::Eq => s == 0,
            BranchCond::Ne => s != 0,
            BranchCond::Lt => s < 0,
            BranchCond::Le => s <= 0,
            BranchCond::Gt => s > 0,
            BranchCond::Ge => s >= 0,
            BranchCond::Lbc => a & 1 == 0,
            BranchCond::Lbs => a & 1 == 1,
        }
    }

    /// Evaluates the condition on a floating-point register value
    /// (used by `fbeq` etc.; `Lbc`/`Lbs` test the sign bit instead).
    #[must_use]
    pub fn eval_fp(self, a: f64) -> bool {
        match self {
            BranchCond::Eq => a == 0.0,
            BranchCond::Ne => a != 0.0,
            BranchCond::Lt => a < 0.0,
            BranchCond::Le => a <= 0.0,
            BranchCond::Gt => a > 0.0,
            BranchCond::Ge => a >= 0.0,
            BranchCond::Lbc => !a.is_sign_negative(),
            BranchCond::Lbs => a.is_sign_negative(),
        }
    }
}

/// Conditions for two-register compare-and-branch instructions
/// ([`crate::Inst::BranchCmp`]): the RV64 branch set, added for the
/// `hpa-rv` real-binary frontend so guest branches translate 1:1 instead
/// of needing a compare into a scratch register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CmpCond {
    Eq,
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl CmpCond {
    /// All compare-branch conditions, in encoding order.
    pub const ALL: [CmpCond; 6] =
        [CmpCond::Eq, CmpCond::Ne, CmpCond::Lt, CmpCond::Ge, CmpCond::Ltu, CmpCond::Geu];

    /// The mnemonic (`cbeq`, `cbne`, ...; the `cb` prefix keeps the
    /// single-register `beq` family unambiguous in assembly).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpCond::Eq => "cbeq",
            CmpCond::Ne => "cbne",
            CmpCond::Lt => "cblt",
            CmpCond::Ge => "cbge",
            CmpCond::Ltu => "cbltu",
            CmpCond::Geu => "cbgeu",
        }
    }

    /// Evaluates the condition on two integer register values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            CmpCond::Eq => a == b,
            CmpCond::Ne => a != b,
            CmpCond::Lt => (a as i64) < (b as i64),
            CmpCond::Ge => (a as i64) >= (b as i64),
            CmpCond::Ltu => a < b,
            CmpCond::Geu => a >= b,
        }
    }
}

/// Widths of memory accesses.
///
/// The first three are the original Alpha-flavored set and keep their
/// encodings; the last four were added for the `hpa-rv` frontend to cover
/// the full RV64I load/store matrix (all sizes × both extension rules).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// One byte, zero-extended on load (Alpha `ldbu`/`stb`, RV `lbu`/`sb`).
    Byte,
    /// Four bytes, sign-extended on load (Alpha `ldl`/`stl`, RV `lw`/`sw`).
    Long,
    /// Eight bytes (Alpha `ldq`/`stq`, RV `ld`/`sd`).
    Quad,
    /// One byte, sign-extended on load (RV `lb`).
    SByte,
    /// Two bytes, zero-extended on load (RV `lhu`/`sh`).
    Half,
    /// Two bytes, sign-extended on load (RV `lh`).
    SHalf,
    /// Four bytes, zero-extended on load (RV `lwu`).
    ULong,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte | MemWidth::SByte => 1,
            MemWidth::Half | MemWidth::SHalf => 2,
            MemWidth::Long | MemWidth::ULong => 4,
            MemWidth::Quad => 8,
        }
    }
}

/// Flavors of register-indirect jumps. All share the same dataflow
/// (`rt <- return address; pc <- base`); the kind is a hint that steers the
/// return-address-stack in the branch predictor, as on Alpha.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JumpKind {
    /// Plain indirect jump; no RAS action.
    Jmp,
    /// Subroutine call; pushes the return address on the RAS.
    Jsr,
    /// Subroutine return; pops the RAS.
    Ret,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for FpBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), u64::MAX);
        assert_eq!(AluOp::S4Add.eval(2, 1), 9);
        assert_eq!(AluOp::S8Add.eval(2, 1), 17);
        assert_eq!(AluOp::Div.eval((-9i64) as u64, 2), (-4i64) as u64);
        assert_eq!(AluOp::Div.eval(9, 0), 0);
        assert_eq!(AluOp::Rem.eval(9, 0), 9);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Srl.eval((-8i64) as u64, 1), (u64::MAX - 7) >> 1);
        assert_eq!(AluOp::CmpLt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::CmpUlt.eval((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Andnot.eval(0b1111, 0b0101), 0b1010);
    }

    #[test]
    fn shift_amount_is_masked() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1);
        assert_eq!(AluOp::Sll.eval(1, 65), 2);
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Popcnt.eval(0b1011), 3);
        assert_eq!(UnaryOp::Ctlz.eval(1), 63);
        assert_eq!(UnaryOp::Cttz.eval(8), 3);
        assert_eq!(UnaryOp::Sextb.eval(0xFF), u64::MAX);
        assert_eq!(UnaryOp::Sextl.eval(0x8000_0000), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(0));
        assert!(BranchCond::Ne.eval(5));
        assert!(BranchCond::Lt.eval((-1i64) as u64));
        assert!(!BranchCond::Lt.eval(1));
        assert!(BranchCond::Ge.eval(0));
        assert!(BranchCond::Lbs.eval(3));
        assert!(BranchCond::Lbc.eval(2));
    }

    #[test]
    fn fp_semantics() {
        assert_eq!(FpBinOp::Add.eval(1.5, 2.0), 3.5);
        assert_eq!(FpBinOp::Div.eval(1.0, 0.0), 0.0);
        assert_eq!(FpBinOp::CmpLt.eval(1.0, 2.0), 1.0);
        assert!(BranchCond::Ne.eval_fp(1.0));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = AluOp::ALL.iter().map(|o| o.mnemonic()).collect();
        names.extend(UnaryOp::ALL.iter().map(|o| o.mnemonic()));
        names.extend(FpBinOp::ALL.iter().map(|o| o.mnemonic()));
        names.extend(BranchCond::ALL.iter().map(|c| c.mnemonic()));
        names.extend(CmpCond::ALL.iter().map(|c| c.mnemonic()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn w_form_semantics() {
        // Results are always the sign-extension of a 32-bit value.
        assert_eq!(AluOp::AddW.eval(0x7FFF_FFFF, 1), 0xFFFF_FFFF_8000_0000);
        assert_eq!(AluOp::SubW.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::SllW.eval(1, 31), 0xFFFF_FFFF_8000_0000);
        // W-form shifts mask the amount to 5 bits and ignore the upper
        // source bits entirely.
        assert_eq!(AluOp::SrlW.eval(0xFFFF_FFFF_8000_0000, 31), 1);
        assert_eq!(AluOp::SraW.eval(0x8000_0000, 31), u64::MAX);
        assert_eq!(AluOp::SllW.eval(1, 32), 1);
        assert_eq!(AluOp::MulW.eval(0x1_0000_0003, 5), 15);
    }

    #[test]
    fn riscv_division_semantics() {
        // RISC-V defines division by zero as all-ones (quotient) / the
        // dividend (remainder), and MIN/-1 wraps.
        assert_eq!(AluOp::DivU.eval(9, 0), u64::MAX);
        assert_eq!(AluOp::RemU.eval(9, 0), 9);
        assert_eq!(AluOp::DivU.eval(9, 2), 4);
        assert_eq!(AluOp::RemU.eval(9, 2), 1);
        assert_eq!(AluOp::DivW.eval(9, 0), u64::MAX);
        assert_eq!(AluOp::RemW.eval((-9i64) as u64, 0), (-9i64) as u64);
        assert_eq!(AluOp::DivW.eval(0x8000_0000, u64::MAX), 0xFFFF_FFFF_8000_0000);
        assert_eq!(AluOp::DivUW.eval(8, 0), u64::MAX);
        assert_eq!(AluOp::RemUW.eval(0x9000_0001, 0), 0xFFFF_FFFF_9000_0001);
        assert_eq!(AluOp::DivUW.eval(0x8000_0000, 2), 0x4000_0000);
        assert_eq!(AluOp::RemW.eval((-9i64) as u64, 2), (-1i64) as u64);
    }

    #[test]
    fn mulh_semantics() {
        assert_eq!(AluOp::MulH.eval((-1i64) as u64, (-1i64) as u64), 0);
        assert_eq!(AluOp::MulHU.eval(u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(AluOp::MulHSU.eval((-1i64) as u64, u64::MAX), (-1i64) as u64);
        assert_eq!(AluOp::MulH.eval(1 << 40, 1 << 40), 1 << 16);
    }

    #[test]
    fn lit_form_coverage() {
        for (i, &op) in AluOp::ALL.iter().enumerate() {
            let expect = i < AluOp::LEGACY
                || matches!(op, AluOp::AddW | AluOp::SllW | AluOp::SrlW | AluOp::SraW);
            assert_eq!(op.has_lit_form(), expect, "{op}");
        }
    }

    #[test]
    fn cmp_cond_semantics() {
        let neg = (-1i64) as u64;
        assert!(CmpCond::Eq.eval(3, 3) && !CmpCond::Eq.eval(3, 4));
        assert!(CmpCond::Ne.eval(3, 4));
        assert!(CmpCond::Lt.eval(neg, 0) && !CmpCond::Ltu.eval(neg, 0));
        assert!(CmpCond::Ge.eval(0, neg) && !CmpCond::Geu.eval(0, neg));
        assert!(CmpCond::Ltu.eval(0, neg));
        assert!(CmpCond::Geu.eval(neg, neg));
    }

    #[test]
    fn new_mem_widths() {
        assert_eq!(MemWidth::SByte.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::SHalf.bytes(), 2);
        assert_eq!(MemWidth::ULong.bytes(), 4);
    }
}
