//! Operation kinds: ALU operations, branch conditions, memory widths.

use std::fmt;

/// Two-operand integer ALU operations (`rc <- ra OP rb|lit`).
///
/// The set mirrors the Alpha operate class: arithmetic, scaled adds used for
/// address arithmetic, logic, shifts and comparisons that write `0`/`1`.
/// Division is included as a long-latency functional-unit exercise (the
/// paper's Table 1 lists 20-cycle integer divide units).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    /// `rc <- (ra << 2) + rb`, Alpha `s4addq`.
    S4Add,
    /// `rc <- (ra << 3) + rb`, Alpha `s8addq`.
    S8Add,
    Mul,
    /// Signed division; division by zero yields zero (the emulator traps are
    /// out of scope for a user-level timing study).
    Div,
    /// Signed remainder; remainder by zero yields the dividend.
    Rem,
    And,
    Or,
    Xor,
    /// `rc <- ra & !rb`, Alpha `bic`.
    Andnot,
    /// Logical shift left (shift amount taken modulo 64).
    Sll,
    /// Logical shift right (shift amount taken modulo 64).
    Srl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Sra,
    /// `rc <- (ra == rb) as u64`.
    CmpEq,
    /// Signed `rc <- (ra < rb) as u64`.
    CmpLt,
    /// Signed `rc <- (ra <= rb) as u64`.
    CmpLe,
    /// Unsigned `rc <- (ra < rb) as u64`.
    CmpUlt,
    /// Unsigned `rc <- (ra <= rb) as u64`.
    CmpUle,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 19] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::S4Add,
        AluOp::S8Add,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Andnot,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::CmpEq,
        AluOp::CmpLt,
        AluOp::CmpLe,
        AluOp::CmpUlt,
        AluOp::CmpUle,
    ];

    /// The mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::S4Add => "s4add",
            AluOp::S8Add => "s8add",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Andnot => "andnot",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLt => "cmplt",
            AluOp::CmpLe => "cmple",
            AluOp::CmpUlt => "cmpult",
            AluOp::CmpUle => "cmpule",
        }
    }

    /// Evaluates the operation on two 64-bit values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::S4Add => (a << 2).wrapping_add(b),
            AluOp::S8Add => (a << 3).wrapping_add(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b) as u64
                }
            }
            AluOp::Rem => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    a as u64
                } else {
                    a.wrapping_rem(b) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Andnot => a & !b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::CmpEq => u64::from(a == b),
            AluOp::CmpLt => u64::from((a as i64) < (b as i64)),
            AluOp::CmpLe => u64::from((a as i64) <= (b as i64)),
            AluOp::CmpUlt => u64::from(a < b),
            AluOp::CmpUle => u64::from(a <= b),
        }
    }
}

/// One-operand integer operations (`rc <- OP(ra)`), Alpha CIX/BWX style.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum UnaryOp {
    /// Population count (Alpha `ctpop`).
    Popcnt,
    /// Count leading zeros (Alpha `ctlz`).
    Ctlz,
    /// Count trailing zeros (Alpha `cttz`).
    Cttz,
    /// Sign-extend the low byte (Alpha `sextb`).
    Sextb,
    /// Sign-extend the low 32 bits (Alpha `addl`-style canonicalization).
    Sextl,
}

impl UnaryOp {
    /// All unary operations, in encoding order.
    pub const ALL: [UnaryOp; 5] =
        [UnaryOp::Popcnt, UnaryOp::Ctlz, UnaryOp::Cttz, UnaryOp::Sextb, UnaryOp::Sextl];

    /// The mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Popcnt => "popcnt",
            UnaryOp::Ctlz => "ctlz",
            UnaryOp::Cttz => "cttz",
            UnaryOp::Sextb => "sextb",
            UnaryOp::Sextl => "sextl",
        }
    }

    /// Evaluates the operation.
    #[must_use]
    pub fn eval(self, a: u64) -> u64 {
        match self {
            UnaryOp::Popcnt => u64::from(a.count_ones()),
            UnaryOp::Ctlz => u64::from(a.leading_zeros()),
            UnaryOp::Cttz => u64::from(a.trailing_zeros()),
            UnaryOp::Sextb => a as i8 as i64 as u64,
            UnaryOp::Sextl => a as i32 as i64 as u64,
        }
    }
}

/// Floating-point two-operand operations (`fc <- fa OP fb`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FpBinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `fc <- if fa == fb { 1.0 } else { 0.0 }`.
    CmpEq,
    /// `fc <- if fa < fb { 1.0 } else { 0.0 }`.
    CmpLt,
    /// `fc <- if fa <= fb { 1.0 } else { 0.0 }`.
    CmpLe,
}

impl FpBinOp {
    /// All floating-point operations, in encoding order.
    pub const ALL: [FpBinOp; 7] = [
        FpBinOp::Add,
        FpBinOp::Sub,
        FpBinOp::Mul,
        FpBinOp::Div,
        FpBinOp::CmpEq,
        FpBinOp::CmpLt,
        FpBinOp::CmpLe,
    ];

    /// The mnemonic used by the assembler and disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FpBinOp::Add => "fadd",
            FpBinOp::Sub => "fsub",
            FpBinOp::Mul => "fmul",
            FpBinOp::Div => "fdiv",
            FpBinOp::CmpEq => "fcmpeq",
            FpBinOp::CmpLt => "fcmplt",
            FpBinOp::CmpLe => "fcmple",
        }
    }

    /// Evaluates the operation. Division by zero yields zero, matching the
    /// trap-free user-level model.
    #[must_use]
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            FpBinOp::Add => a + b,
            FpBinOp::Sub => a - b,
            FpBinOp::Mul => a * b,
            FpBinOp::Div => {
                if b == 0.0 {
                    0.0
                } else {
                    a / b
                }
            }
            FpBinOp::CmpEq => f64::from(a == b),
            FpBinOp::CmpLt => f64::from(a < b),
            FpBinOp::CmpLe => f64::from(a <= b),
        }
    }
}

/// Conditions for conditional branches, testing one register against zero
/// (Alpha `beq/bne/blt/ble/bgt/bge` style — note the single source operand).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Low bit clear (Alpha `blbc`).
    Lbc,
    /// Low bit set (Alpha `blbs`).
    Lbs,
}

impl BranchCond {
    /// All branch conditions, in encoding order.
    pub const ALL: [BranchCond; 8] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Le,
        BranchCond::Gt,
        BranchCond::Ge,
        BranchCond::Lbc,
        BranchCond::Lbs,
    ];

    /// The mnemonic suffix (`beq`, `bne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Le => "ble",
            BranchCond::Gt => "bgt",
            BranchCond::Ge => "bge",
            BranchCond::Lbc => "blbc",
            BranchCond::Lbs => "blbs",
        }
    }

    /// Evaluates the condition on an integer register value.
    #[must_use]
    pub fn eval(self, a: u64) -> bool {
        let s = a as i64;
        match self {
            BranchCond::Eq => s == 0,
            BranchCond::Ne => s != 0,
            BranchCond::Lt => s < 0,
            BranchCond::Le => s <= 0,
            BranchCond::Gt => s > 0,
            BranchCond::Ge => s >= 0,
            BranchCond::Lbc => a & 1 == 0,
            BranchCond::Lbs => a & 1 == 1,
        }
    }

    /// Evaluates the condition on a floating-point register value
    /// (used by `fbeq` etc.; `Lbc`/`Lbs` test the sign bit instead).
    #[must_use]
    pub fn eval_fp(self, a: f64) -> bool {
        match self {
            BranchCond::Eq => a == 0.0,
            BranchCond::Ne => a != 0.0,
            BranchCond::Lt => a < 0.0,
            BranchCond::Le => a <= 0.0,
            BranchCond::Gt => a > 0.0,
            BranchCond::Ge => a >= 0.0,
            BranchCond::Lbc => !a.is_sign_negative(),
            BranchCond::Lbs => a.is_sign_negative(),
        }
    }
}

/// Widths of memory accesses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// One byte, zero-extended on load (Alpha `ldbu`/`stb`).
    Byte,
    /// Four bytes, sign-extended on load (Alpha `ldl`/`stl`).
    Long,
    /// Eight bytes (Alpha `ldq`/`stq`).
    Quad,
}

impl MemWidth {
    /// Access size in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Long => 4,
            MemWidth::Quad => 8,
        }
    }
}

/// Flavors of register-indirect jumps. All share the same dataflow
/// (`rt <- return address; pc <- base`); the kind is a hint that steers the
/// return-address-stack in the branch predictor, as on Alpha.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum JumpKind {
    /// Plain indirect jump; no RAS action.
    Jmp,
    /// Subroutine call; pushes the return address on the RAS.
    Jsr,
    /// Subroutine return; pops the RAS.
    Ret,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for FpBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(3, 4), 7);
        assert_eq!(AluOp::Sub.eval(3, 4), u64::MAX);
        assert_eq!(AluOp::S4Add.eval(2, 1), 9);
        assert_eq!(AluOp::S8Add.eval(2, 1), 17);
        assert_eq!(AluOp::Div.eval((-9i64) as u64, 2), (-4i64) as u64);
        assert_eq!(AluOp::Div.eval(9, 0), 0);
        assert_eq!(AluOp::Rem.eval(9, 0), 9);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Srl.eval((-8i64) as u64, 1), (u64::MAX - 7) >> 1);
        assert_eq!(AluOp::CmpLt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::CmpUlt.eval((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Andnot.eval(0b1111, 0b0101), 0b1010);
    }

    #[test]
    fn shift_amount_is_masked() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1);
        assert_eq!(AluOp::Sll.eval(1, 65), 2);
    }

    #[test]
    fn unary_semantics() {
        assert_eq!(UnaryOp::Popcnt.eval(0b1011), 3);
        assert_eq!(UnaryOp::Ctlz.eval(1), 63);
        assert_eq!(UnaryOp::Cttz.eval(8), 3);
        assert_eq!(UnaryOp::Sextb.eval(0xFF), u64::MAX);
        assert_eq!(UnaryOp::Sextl.eval(0x8000_0000), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchCond::Eq.eval(0));
        assert!(BranchCond::Ne.eval(5));
        assert!(BranchCond::Lt.eval((-1i64) as u64));
        assert!(!BranchCond::Lt.eval(1));
        assert!(BranchCond::Ge.eval(0));
        assert!(BranchCond::Lbs.eval(3));
        assert!(BranchCond::Lbc.eval(2));
    }

    #[test]
    fn fp_semantics() {
        assert_eq!(FpBinOp::Add.eval(1.5, 2.0), 3.5);
        assert_eq!(FpBinOp::Div.eval(1.0, 0.0), 0.0);
        assert_eq!(FpBinOp::CmpLt.eval(1.0, 2.0), 1.0);
        assert!(BranchCond::Ne.eval_fp(1.0));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = AluOp::ALL.iter().map(|o| o.mnemonic()).collect();
        names.extend(UnaryOp::ALL.iter().map(|o| o.mnemonic()));
        names.extend(FpBinOp::ALL.iter().map(|o| o.mnemonic()));
        names.extend(BranchCond::ALL.iter().map(|c| c.mnemonic()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
