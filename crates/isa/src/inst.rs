//! The instruction type.

use crate::op::{AluOp, BranchCond, CmpCond, FpBinOp, JumpKind, MemWidth, UnaryOp};
use crate::reg::{FReg, Reg};
use std::fmt;

/// The second operand of an operate instruction: either a register (the
/// 2-source *register form*) or an immediate literal (the 1-source *literal
/// form*). The distinction drives the paper's Figure 2/3 format taxonomy.
///
/// The literal is a 16-bit signed immediate — wider than Alpha's 8-bit
/// unsigned literal so that hand-written kernels need fewer constant-building
/// sequences; the operand-count semantics are identical.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegOrLit {
    /// Register form: the operand is read from a register.
    Reg(Reg),
    /// Literal form: the operand is an immediate; no register is read.
    Lit(i16),
}

impl From<Reg> for RegOrLit {
    fn from(r: Reg) -> RegOrLit {
        RegOrLit::Reg(r)
    }
}

impl From<i16> for RegOrLit {
    fn from(l: i16) -> RegOrLit {
        RegOrLit::Lit(l)
    }
}

impl fmt::Display for RegOrLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegOrLit::Reg(r) => write!(f, "{r}"),
            RegOrLit::Lit(l) => write!(f, "#{l}"),
        }
    }
}

/// One decoded instruction.
///
/// Branch and call displacements are in *instruction slots* relative to the
/// instruction following the branch, exactly like Alpha's 21-bit branch
/// displacement field: `target = pc + 4 + 4*disp`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    /// Integer operate: `rc <- ra OP rb|lit`.
    Op {
        /// The operation.
        op: AluOp,
        /// First source register.
        ra: Reg,
        /// Second operand: register or literal.
        rb: RegOrLit,
        /// Destination register.
        rc: Reg,
    },
    /// Integer unary operate: `rc <- OP(ra)`.
    Op1 {
        /// The operation.
        op: UnaryOp,
        /// Source register.
        ra: Reg,
        /// Destination register.
        rc: Reg,
    },
    /// Floating-point operate: `fc <- fa OP fb`.
    FpOp {
        /// The operation.
        op: FpBinOp,
        /// First source register.
        fa: FReg,
        /// Second source register.
        fb: FReg,
        /// Destination register.
        fc: FReg,
    },
    /// Move an integer register into a floating-point register, converting
    /// to `f64` (Alpha `itoft`+`cvtqt` folded into one op).
    Itof {
        /// Integer source.
        ra: Reg,
        /// Floating-point destination.
        fc: FReg,
    },
    /// Truncate a floating-point register into an integer register
    /// (Alpha `cvttq`+`ftoit` folded into one op).
    Ftoi {
        /// Floating-point source.
        fa: FReg,
        /// Integer destination.
        rc: Reg,
    },
    /// Integer load: `rt <- MEM[base + disp]`.
    Load {
        /// Access width and extension rule.
        width: MemWidth,
        /// Destination register.
        rt: Reg,
        /// Base address register (the only source).
        base: Reg,
        /// Byte displacement.
        disp: i16,
    },
    /// Integer store: `MEM[base + disp] <- rt`.
    ///
    /// Two source registers in *format*, but handled specially throughout
    /// the pipeline (paper §2.3): address generation needs only `base`, and
    /// the data value is consumed by the store queue, not the scheduler.
    Store {
        /// Access width.
        width: MemWidth,
        /// Data register.
        rt: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i16,
    },
    /// Floating-point load: `ft <- MEM[base + disp]` (8 bytes).
    FLoad {
        /// Destination register.
        ft: FReg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i16,
    },
    /// Floating-point store: `MEM[base + disp] <- ft` (8 bytes).
    FStore {
        /// Data register.
        ft: FReg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        disp: i16,
    },
    /// Conditional branch testing an integer register against zero.
    Branch {
        /// The condition.
        cond: BranchCond,
        /// The tested register (the only source).
        ra: Reg,
        /// Displacement in instruction slots from the next instruction.
        disp: i32,
    },
    /// Conditional branch comparing two integer registers (the RV64 branch
    /// shape, added for the `hpa-rv` frontend). A 2-source-format
    /// instruction with no destination.
    BranchCmp {
        /// The comparison.
        cmp: CmpCond,
        /// Left source register.
        ra: Reg,
        /// Right source register.
        rb: Reg,
        /// Displacement in instruction slots from the next instruction.
        disp: i32,
    },
    /// Conditional branch testing a floating-point register against zero.
    FBranch {
        /// The condition.
        cond: BranchCond,
        /// The tested register.
        fa: FReg,
        /// Displacement in instruction slots from the next instruction.
        disp: i32,
    },
    /// Unconditional branch; writes the return address into `ra`
    /// (`br` when `ra` is `r31`, `bsr` otherwise).
    Br {
        /// Return-address destination (`r31` to discard).
        ra: Reg,
        /// Displacement in instruction slots from the next instruction.
        disp: i32,
    },
    /// Register-indirect jump:
    /// `rt <- return address; pc <- base + disp`.
    ///
    /// The byte displacement is 0 for the classic Alpha forms; the `hpa-rv`
    /// frontend uses it for RV64 `jalr`'s immediate.
    Jump {
        /// RAS hint.
        kind: JumpKind,
        /// Return-address destination (`r31` to discard).
        rt: Reg,
        /// Target address register (the only source).
        base: Reg,
        /// Byte displacement added to the target address.
        disp: i16,
    },
    /// Stops the machine (stands in for the `call_pal halt` exit path).
    Halt,
}

impl Inst {
    /// Convenience constructor for an integer operate instruction.
    #[must_use]
    pub fn op(op: AluOp, ra: Reg, rb: impl Into<RegOrLit>, rc: Reg) -> Inst {
        Inst::Op { op, ra, rb: rb.into(), rc }
    }

    /// The canonical no-op: `or r31, r31 -> r31`, a 2-source-format operate
    /// writing the zero register, exactly the padding nop flavor whose
    /// decode-time elimination the paper notes in §2.3.
    #[must_use]
    pub fn nop() -> Inst {
        Inst::Op { op: AluOp::Or, ra: Reg::ZERO, rb: RegOrLit::Reg(Reg::ZERO), rc: Reg::ZERO }
    }

    /// Register move pseudo-instruction (`or ra, r31 -> rc`).
    #[must_use]
    pub fn mov(ra: Reg, rc: Reg) -> Inst {
        Inst::Op { op: AluOp::Or, ra, rb: RegOrLit::Reg(Reg::ZERO), rc }
    }

    /// Load-immediate pseudo-instruction (`add r31, #lit -> rc`).
    #[must_use]
    pub fn li(lit: i16, rc: Reg) -> Inst {
        Inst::Op { op: AluOp::Add, ra: Reg::ZERO, rb: RegOrLit::Lit(lit), rc }
    }

    /// Whether this instruction is a conditional or unconditional transfer
    /// of control (loads of the PC, branches, jumps), i.e. anything the
    /// front end must predict.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. }
                | Inst::BranchCmp { .. }
                | Inst::FBranch { .. }
                | Inst::Br { .. }
                | Inst::Jump { .. }
        )
    }

    /// Whether this is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. } | Inst::BranchCmp { .. } | Inst::FBranch { .. })
    }

    /// Whether this is a memory load (integer or floating-point).
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FLoad { .. })
    }

    /// Whether this is a memory store (integer or floating-point).
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::FStore { .. })
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn mem_mnemonic(width: MemWidth, store: bool) -> &'static str {
            match (width, store) {
                (MemWidth::Byte, false) => "ldbu",
                (MemWidth::SByte, false) => "ldb",
                (MemWidth::Half, false) => "ldhu",
                (MemWidth::SHalf, false) => "ldh",
                (MemWidth::Long, false) => "ldl",
                (MemWidth::ULong, false) => "ldlu",
                (MemWidth::Quad, false) => "ldq",
                (MemWidth::Byte, true) => "stb",
                (MemWidth::Long, true) => "stl",
                (MemWidth::Quad, true) => "stq",
                (MemWidth::Half, true) => "sth",
                // Extension rules are meaningless for stores; these exist
                // only so every (width, store) pair stays printable and
                // re-parseable. Canonical code uses stb/sth/stl/stq.
                (MemWidth::SByte, true) => "stsb",
                (MemWidth::SHalf, true) => "stsh",
                (MemWidth::ULong, true) => "stlu",
            }
        }
        match *self {
            Inst::Op { op, ra, rb, rc } => write!(f, "{op} {ra}, {rb}, {rc}"),
            Inst::Op1 { op, ra, rc } => write!(f, "{op} {ra}, {rc}"),
            Inst::FpOp { op, fa, fb, fc } => write!(f, "{op} {fa}, {fb}, {fc}"),
            Inst::Itof { ra, fc } => write!(f, "itof {ra}, {fc}"),
            Inst::Ftoi { fa, rc } => write!(f, "ftoi {fa}, {rc}"),
            Inst::Load { width, rt, base, disp } => {
                write!(f, "{} {rt}, {disp}({base})", mem_mnemonic(width, false))
            }
            Inst::Store { width, rt, base, disp } => {
                write!(f, "{} {rt}, {disp}({base})", mem_mnemonic(width, true))
            }
            Inst::FLoad { ft, base, disp } => write!(f, "ldt {ft}, {disp}({base})"),
            Inst::FStore { ft, base, disp } => write!(f, "stt {ft}, {disp}({base})"),
            Inst::Branch { cond, ra, disp } => {
                write!(f, "{} {ra}, {disp:+}", cond.mnemonic())
            }
            Inst::BranchCmp { cmp, ra, rb, disp } => {
                write!(f, "{} {ra}, {rb}, {disp:+}", cmp.mnemonic())
            }
            Inst::FBranch { cond, fa, disp } => {
                write!(f, "f{} {fa}, {disp:+}", cond.mnemonic())
            }
            Inst::Br { ra, disp } => {
                if ra.is_zero() {
                    write!(f, "br {disp:+}")
                } else {
                    write!(f, "bsr {ra}, {disp:+}")
                }
            }
            Inst::Jump { kind, rt, base, disp } => {
                let m = match kind {
                    JumpKind::Jmp => "jmp",
                    JumpKind::Jsr => "jsr",
                    JumpKind::Ret => "ret",
                };
                if disp == 0 {
                    write!(f, "{m} {rt}, ({base})")
                } else {
                    write!(f, "{m} {rt}, {disp}({base})")
                }
            }
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R3).to_string(), "add r1, r2, r3");
        assert_eq!(Inst::op(AluOp::Add, Reg::R1, -5, Reg::R3).to_string(), "add r1, #-5, r3");
        assert_eq!(
            Inst::Load { width: MemWidth::Quad, rt: Reg::R4, base: Reg::R5, disp: 16 }.to_string(),
            "ldq r4, 16(r5)"
        );
        assert_eq!(
            Inst::Branch { cond: BranchCond::Eq, ra: Reg::R1, disp: -3 }.to_string(),
            "beq r1, -3"
        );
        assert_eq!(Inst::Br { ra: Reg::ZERO, disp: 7 }.to_string(), "br +7");
        assert_eq!(Inst::nop().to_string(), "or r31, r31, r31");
        assert_eq!(
            Inst::BranchCmp { cmp: CmpCond::Ltu, ra: Reg::R1, rb: Reg::R2, disp: -3 }.to_string(),
            "cbltu r1, r2, -3"
        );
        assert_eq!(
            Inst::Load { width: MemWidth::SHalf, rt: Reg::R4, base: Reg::R5, disp: -2 }.to_string(),
            "ldh r4, -2(r5)"
        );
        assert_eq!(
            Inst::Store { width: MemWidth::Half, rt: Reg::R4, base: Reg::R5, disp: 6 }.to_string(),
            "sth r4, 6(r5)"
        );
        let jmp = |disp| Inst::Jump { kind: JumpKind::Jmp, rt: Reg::ZERO, base: Reg::R5, disp };
        assert_eq!(jmp(0).to_string(), "jmp r31, (r5)");
        assert_eq!(jmp(8).to_string(), "jmp r31, 8(r5)");
        assert_eq!(jmp(-4).to_string(), "jmp r31, -4(r5)");
    }

    #[test]
    fn predicates() {
        assert!(Inst::Branch { cond: BranchCond::Eq, ra: Reg::R1, disp: 0 }.is_control());
        assert!(Inst::Branch { cond: BranchCond::Eq, ra: Reg::R1, disp: 0 }.is_cond_branch());
        assert!(!Inst::Br { ra: Reg::ZERO, disp: 0 }.is_cond_branch());
        let cb = Inst::BranchCmp { cmp: CmpCond::Eq, ra: Reg::R1, rb: Reg::R2, disp: 0 };
        assert!(cb.is_control() && cb.is_cond_branch());
        assert!(Inst::Load { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 0 }.is_load());
        assert!(Inst::FStore { ft: FReg::F1, base: Reg::R2, disp: 0 }.is_store());
        assert!(!Inst::Halt.is_control());
    }
}
