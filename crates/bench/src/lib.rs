//! # hpa-bench — shared plumbing for the experiment harness binaries
//!
//! Each `src/bin/*` binary regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the index). All binaries accept:
//!
//! ```text
//! --scale tiny|default|large|long   simulation length per benchmark
//! --width 4|8|both             machine width(s) to simulate
//! --bench <name>...            subset of benchmarks (default: all 12)
//! --jobs N                     worker threads for matrix sweeps
//!                              (default: host parallelism)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hpa_core::sim::SimStats;
use hpa_core::workloads::{Scale, WORKLOAD_NAMES};
use hpa_core::{run_workload, MachineWidth, RunResult, Scheme};

pub mod microbench;

/// Parsed command-line options shared by every harness binary.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Simulation scale.
    pub scale: Scale,
    /// Widths to simulate.
    pub widths: Vec<MachineWidth>,
    /// Benchmarks to run.
    pub benches: Vec<&'static str>,
    /// Worker threads for `benchmarks × schemes` sweeps.
    pub jobs: usize,
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with a usage message on errors.
    #[must_use]
    pub fn parse() -> HarnessArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        HarnessArgs::parse_from(&argv)
    }

    /// Parses an explicit argument list (see [`HarnessArgs::parse`]).
    #[must_use]
    pub fn parse_from(argv: &[String]) -> HarnessArgs {
        let mut args = HarnessArgs {
            scale: Scale::Default,
            widths: vec![MachineWidth::Four, MachineWidth::Eight],
            benches: WORKLOAD_NAMES.to_vec(),
            jobs: hpa_core::default_jobs(),
        };
        let mut it = argv.iter().map(String::as_str);
        let mut benches: Vec<&'static str> = Vec::new();
        while let Some(a) = it.next() {
            match a {
                "--scale" => {
                    args.scale = match it.next() {
                        Some("tiny") => Scale::Tiny,
                        Some("default") => Scale::Default,
                        Some("large") => Scale::Large,
                        Some("long") => Scale::Long,
                        other => usage(&format!("bad --scale {other:?}")),
                    }
                }
                "--width" => {
                    args.widths = match it.next() {
                        Some("4") => vec![MachineWidth::Four],
                        Some("8") => vec![MachineWidth::Eight],
                        Some("both") => vec![MachineWidth::Four, MachineWidth::Eight],
                        other => usage(&format!("bad --width {other:?}")),
                    }
                }
                "--bench" => {
                    let name = it.next().unwrap_or_default();
                    match WORKLOAD_NAMES.iter().find(|n| **n == name) {
                        Some(n) => benches.push(n),
                        None => usage(&format!("unknown benchmark `{name}`")),
                    }
                }
                "--jobs" => {
                    args.jobs = match it.next().and_then(|v| v.parse().ok()) {
                        Some(n) if n >= 1 => n,
                        _ => usage("bad --jobs (want an integer >= 1)"),
                    }
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown option `{other}`")),
            }
        }
        if !benches.is_empty() {
            args.benches = benches;
        }
        args
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--scale tiny|default|large|long] [--width 4|8|both] [--bench NAME]... [--jobs N]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Runs the base machine over the selected benchmarks at one width,
/// returning `(name, stats)` pairs for the characterization figures.
#[must_use]
pub fn base_runs(args: &HarnessArgs, width: MachineWidth) -> Vec<(&'static str, SimStats)> {
    args.benches
        .iter()
        .map(|name| {
            eprint!("  {name} ({})...", width.label());
            let r = run_once(name, args.scale, width, Scheme::Base);
            eprintln!(" ipc {:.3}", r.stats.ipc());
            (*name, r.stats)
        })
        .collect()
}

/// Runs one workload/scheme, panicking on harness-level errors (bad name,
/// checksum mismatch) since those are not recoverable mid-experiment.
#[must_use]
pub fn run_once(name: &str, scale: Scale, width: MachineWidth, scheme: Scheme) -> RunResult {
    run_workload(name, scale, width, scheme).unwrap_or_else(|e| panic!("{e}"))
}

/// Borrows `(name, stats)` pairs in the form the report functions take.
#[must_use]
pub fn as_refs<'a>(runs: &'a [(&'a str, SimStats)]) -> Vec<(&'a str, &'a SimStats)> {
    runs.iter().map(|(n, s)| (*n, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn defaults_cover_everything() {
        let a = HarnessArgs::parse_from(&[]);
        assert_eq!(a.scale, Scale::Default);
        assert_eq!(a.widths, vec![MachineWidth::Four, MachineWidth::Eight]);
        assert_eq!(a.benches.len(), 12);
    }

    #[test]
    fn scale_width_and_bench_filters() {
        let a = HarnessArgs::parse_from(&sv(&[
            "--scale", "tiny", "--width", "8", "--bench", "mcf", "--bench", "gcc",
        ]));
        assert_eq!(a.scale, Scale::Tiny);
        assert_eq!(a.widths, vec![MachineWidth::Eight]);
        assert_eq!(a.benches, vec!["mcf", "gcc"]);
        let b = HarnessArgs::parse_from(&sv(&["--width", "both", "--scale", "large"]));
        assert_eq!(b.widths.len(), 2);
        assert_eq!(b.scale, Scale::Large);
    }

    #[test]
    fn jobs_flag_overrides_host_parallelism() {
        let a = HarnessArgs::parse_from(&sv(&["--jobs", "3"]));
        assert_eq!(a.jobs, 3);
        assert!(HarnessArgs::parse_from(&[]).jobs >= 1);
    }

    #[test]
    fn as_refs_preserves_order() {
        use hpa_core::sim::SimStats;
        let runs = vec![("a", SimStats::default()), ("b", SimStats::default())];
        let refs = as_refs(&runs);
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].0, "a");
        assert_eq!(refs[1].0, "b");
    }
}
