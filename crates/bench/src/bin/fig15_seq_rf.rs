//! Regenerates Figure 15: IPC of sequential register access, an extra RF
//! stage, and a half-ported crossbar register file, normalized to base.
use hpa_bench::HarnessArgs;
use hpa_core::{report, run_matrix_parallel, Scheme};

const SCHEMES: [Scheme; 4] =
    [Scheme::Base, Scheme::SeqRegAccess, Scheme::ExtraRfStage, Scheme::HalfPortsCrossbar];

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let m = run_matrix_parallel(&args.benches, args.scale, width, &SCHEMES, args.jobs, |r| {
            eprintln!("  {} / {} : ipc {:.3}", r.workload, r.scheme.label(), r.stats.ipc());
        })
        .unwrap_or_else(|e| panic!("{e}"));
        let title = format!("Figure 15: register file schemes [{}]", width.label());
        println!("{}", report::normalized_ipc_figure(&title, &m, &SCHEMES[1..]));
    }
}
