//! Regenerates Figure 2: percentage of 2-source-format instructions.
use hpa_bench::{as_refs, base_runs, HarnessArgs};
use hpa_core::{report, MachineWidth};

fn main() {
    let args = HarnessArgs::parse();
    // Program characteristics: machine-independent, one width suffices.
    let base = base_runs(&args, MachineWidth::Four);
    println!("{}", report::figure2(&as_refs(&base)));
}
