//! Regenerates Figure 14: IPC of sequential wakeup (with and without the
//! last-arriving predictor) and tag elimination, normalized to base.
use hpa_bench::HarnessArgs;
use hpa_core::{report, run_matrix_parallel, Scheme};

const SCHEMES: [Scheme; 4] =
    [Scheme::Base, Scheme::SeqWakeupPredictor, Scheme::TagElimination, Scheme::SeqWakeupStatic];

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let m = run_matrix_parallel(&args.benches, args.scale, width, &SCHEMES, args.jobs, |r| {
            eprintln!("  {} / {} : ipc {:.3}", r.workload, r.scheme.label(), r.stats.ipc());
        })
        .unwrap_or_else(|e| panic!("{e}"));
        let title = format!("Figure 14: sequential wakeup vs tag elimination [{}]", width.label());
        println!("{}", report::normalized_ipc_figure(&title, &m, &SCHEMES[1..]));
    }
}
