//! Extension experiment (paper §6 future work): half-price **register
//! renaming** and half-price **bypass logic**, the two directions the
//! paper names for its "operand-centric" end goal, evaluated with the
//! same methodology as Figures 14–16.
use hpa_bench::HarnessArgs;
use hpa_core::report::Table;
use hpa_core::sim::{BypassScheme, RenameScheme, Simulator};
use hpa_core::workloads::{workload, CHECKSUM_REG};

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let mut t = Table::new(
            format!("Future-work extensions: half-price rename & bypass [{}]", width.label()),
            &[
                "bench",
                "base IPC",
                "half rename",
                "half bypass",
                "all half-price",
                "rename stalls",
                "bypass defers",
            ],
        );
        for name in &args.benches {
            let w = workload(name, args.scale).expect("known name");
            let run = |cfg: hpa_core::sim::SimConfig| {
                let mut sim = Simulator::new(&w.program, cfg);
                sim.run();
                assert_eq!(sim.emulator().reg(CHECKSUM_REG), w.expected_checksum, "{name}");
                sim.stats().clone()
            };
            let base = run(width.base_config());
            let rename = run(width.base_config().with_rename(RenameScheme::HalfPorts));
            let bypass = run(width.base_config().with_bypass(BypassScheme::HalfPaths));
            // The full "operand-centric" machine: every 2-operand structure
            // halved at once (scheduling + RF + rename + bypass).
            let all = run(hpa_core::Scheme::Combined
                .configure(width)
                .with_rename(RenameScheme::HalfPorts)
                .with_bypass(BypassScheme::HalfPaths));
            t.push_row(vec![
                (*name).to_string(),
                format!("{:.3}", base.ipc()),
                format!("{:.3}", rename.ipc() / base.ipc()),
                format!("{:.3}", bypass.ipc() / base.ipc()),
                format!("{:.3}", all.ipc() / base.ipc()),
                rename.rename_port_stalls.to_string(),
                bypass.bypass_deferrals.to_string(),
            ]);
            eprintln!("  {name} done");
        }
        println!("{t}");
    }
}
