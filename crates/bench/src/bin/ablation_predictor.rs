//! Ablation: how the last-arriving predictor's table size translates into
//! sequential-wakeup IPC — extending Figure 7 (accuracy vs size) to the
//! bottom line, and quantifying the paper's claim that performance is
//! "relatively insensitive to the predictor accuracy".
use hpa_bench::HarnessArgs;
use hpa_core::report::Table;
use hpa_core::sim::{Simulator, WakeupScheme};
use hpa_core::workloads::{workload, CHECKSUM_REG};

const SIZES: [usize; 5] = [64, 256, 1024, 4096, 16384];

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let mut headers = vec!["bench".to_string(), "base IPC".to_string(), "static".to_string()];
        headers.extend(SIZES.iter().map(|s| format!("{s}-entry")));
        let mut t = Table {
            title: format!(
                "Sequential wakeup IPC vs last-arrival predictor size [{}]",
                width.label()
            ),
            headers,
            rows: Vec::new(),
        };
        for name in &args.benches {
            let w = workload(name, args.scale).expect("known name");
            let run = |wakeup: WakeupScheme| {
                let mut sim = Simulator::new(&w.program, width.base_config().with_wakeup(wakeup));
                sim.run();
                assert_eq!(sim.emulator().reg(CHECKSUM_REG), w.expected_checksum, "{name}");
                sim.stats().ipc()
            };
            let base = run(WakeupScheme::Conventional);
            let mut row = vec![(*name).to_string(), format!("{base:.3}")];
            let stat = run(WakeupScheme::SequentialWakeup { predictor_entries: None });
            row.push(format!("{:.3}", stat / base));
            for &entries in &SIZES {
                let ipc = run(WakeupScheme::SequentialWakeup { predictor_entries: Some(entries) });
                row.push(format!("{:.3}", ipc / base));
            }
            t.push_row(row);
            eprintln!("  {name} done");
        }
        println!("{t}");
    }
}
