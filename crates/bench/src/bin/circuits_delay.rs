//! Regenerates the circuit-delay claims of sections 3.3 and 4, plus
//! ablation sweeps of the analytic models.
use hpa_core::circuits::{EnergyModel, RegFileDelayModel, WakeupDelayModel};
use hpa_core::report;

fn main() {
    println!("{}", report::circuit_claims());

    let w = WakeupDelayModel::calibrated_018um();
    println!("Wakeup delay sweep (ps): window x width, conventional -> sequential");
    for entries in [32u32, 64, 128, 256] {
        for width in [4u32, 8] {
            println!(
                "  {entries:>3} entries, {width}-wide: {:>6.0} -> {:>6.0}  ({:.1}% speedup)",
                w.conventional(entries, width),
                w.sequential_wakeup(entries, width),
                w.speedup(entries, width) * 100.0
            );
        }
    }

    let r = RegFileDelayModel::calibrated_018um();
    println!("\nRegister file access time sweep (ns): entries x ports");
    for entries in [80u32, 160, 320] {
        for ports in [8u32, 12, 16, 24, 32] {
            print!("  {:>5.2}", r.access_time(entries, ports) / 1000.0);
        }
        println!("   ({entries} entries; ports 8/12/16/24/32)");
    }

    let e = EnergyModel::calibrated_018um();
    println!("\nPer-event dynamic energy (first-order, 0.18um):");
    println!(
        "  wakeup broadcast, 64-entry: {:.1} pJ -> {:.1} pJ (fast bus)",
        e.wakeup_broadcast(64, 2),
        e.wakeup_broadcast(64, 1)
    );
    println!(
        "  RF access, 160 entries: {:.1} pJ (24 ports) -> {:.1} pJ (16 ports)",
        e.rf_access(160, 24),
        e.rf_access(160, 16)
    );
    for (entries, width) in [(64u32, 4u32), (128, 8)] {
        let (w, rf) = e.half_price_savings(entries, width);
        println!(
            "  half-price savings at {entries}-entry/{width}-wide: wakeup {:.0}%, RF {:.0}%",
            w * 100.0,
            rf * 100.0
        );
    }
}
