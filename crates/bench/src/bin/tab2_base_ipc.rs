//! Regenerates Table 2: instruction counts and base IPC per benchmark.
use hpa_bench::{as_refs, base_runs, HarnessArgs};
use hpa_core::{report, MachineWidth};

fn main() {
    let mut args = HarnessArgs::parse();
    args.widths = vec![MachineWidth::Four, MachineWidth::Eight];
    let four = base_runs(&args, MachineWidth::Four);
    let eight = base_runs(&args, MachineWidth::Eight);
    println!("{}", report::table2(&as_refs(&four), &as_refs(&eight)));
}
