//! Regenerates Figure 7: last-arriving predictor accuracy vs table size
//! (128/512/1024/4096 entries, trained as shadow predictors in one run).
use hpa_bench::{as_refs, base_runs, HarnessArgs};
use hpa_core::report;

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let base = base_runs(&args, width);
        let mut t = report::figure7(&as_refs(&base));
        t.title = format!("{} [{}]", t.title, width.label());
        println!("{t}");
    }
}
