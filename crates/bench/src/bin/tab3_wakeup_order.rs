//! Regenerates Table 3: wakeup-order stability and last-arriving side.
use hpa_bench::{as_refs, base_runs, HarnessArgs};
use hpa_core::{report, MachineWidth};

fn main() {
    let args = HarnessArgs::parse();
    let four = base_runs(&args, MachineWidth::Four);
    let eight = base_runs(&args, MachineWidth::Eight);
    println!("{}", report::table3(&as_refs(&four), &as_refs(&eight)));
}
