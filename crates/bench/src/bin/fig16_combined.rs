//! Regenerates Figure 16: the combined half-price architecture
//! (sequential wakeup + sequential register access), normalized to base.
use hpa_bench::HarnessArgs;
use hpa_core::{report, run_matrix_parallel, Scheme};

const SCHEMES: [Scheme; 2] = [Scheme::Base, Scheme::Combined];

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let m = run_matrix_parallel(&args.benches, args.scale, width, &SCHEMES, args.jobs, |r| {
            eprintln!("  {} / {} : ipc {:.3}", r.workload, r.scheme.label(), r.stats.ipc());
        })
        .unwrap_or_else(|e| panic!("{e}"));
        let title = format!("Figure 16: combined half-price architecture [{}]", width.label());
        println!("{}", report::normalized_ipc_figure(&title, &m, &SCHEMES[1..]));
        println!(
            "average degradation {:.1}%, worst {} {:.1}%\n",
            m.average_degradation(Scheme::Combined) * 100.0,
            m.worst_degradation(Scheme::Combined).map(|(n, _)| n).unwrap_or("-"),
            m.worst_degradation(Scheme::Combined).map(|(_, d)| d * 100.0).unwrap_or(0.0),
        );
    }
}
