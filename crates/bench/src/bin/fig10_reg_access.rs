//! Regenerates Figure 10: register-read categorization of 2-source insts.
use hpa_bench::{as_refs, base_runs, HarnessArgs};
use hpa_core::report;

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let base = base_runs(&args, width);
        let mut t = report::figure10(&as_refs(&base));
        t.title = format!("{} [{}]", t.title, width.label());
        println!("{t}");
    }
}
