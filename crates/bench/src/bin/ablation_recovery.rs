//! Ablation: selective (Figure 5 dependence-matrix) vs non-selective
//! recovery on the base machine, quantifying how much replay scope costs —
//! the design-space point the paper's Section 3.1 discussion turns on.
use hpa_bench::HarnessArgs;
use hpa_core::report::Table;
use hpa_core::sim::{RecoveryKind, Simulator};
use hpa_core::workloads::{workload, CHECKSUM_REG};

fn main() {
    let args = HarnessArgs::parse();
    for &width in &args.widths {
        let mut t = Table::new(
            format!("Recovery ablation [{}]", width.label()),
            &["bench", "IPC non-sel", "IPC selective", "replays non-sel", "replays selective"],
        );
        for name in &args.benches {
            let w = workload(name, args.scale).expect("known name");
            let mut row = vec![(*name).to_string()];
            let mut replays = Vec::new();
            for kind in [RecoveryKind::NonSelective, RecoveryKind::Selective] {
                let cfg = width.base_config().with_recovery(kind);
                let mut sim = Simulator::new(&w.program, cfg);
                sim.run();
                assert_eq!(sim.emulator().reg(CHECKSUM_REG), w.expected_checksum);
                row.push(format!("{:.3}", sim.stats().ipc()));
                replays.push(sim.stats().replayed_insts.to_string());
            }
            row.extend(replays);
            t.push_row(row);
            eprintln!("  {name} done");
        }
        println!("{t}");
    }
}
