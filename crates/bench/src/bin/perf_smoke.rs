//! Offline performance smoke test: simulated Mcycles/sec per scheme and
//! serial-vs-parallel experiment-matrix wall time, written as JSON so the
//! perf trajectory is tracked from PR to PR (`BENCH_1.json` onward).
//!
//! ```text
//! cargo run --release -p hpa-bench --bin perf_smoke
//! ```
//!
//! By default every scale in [`DEFAULT_SCALES`] is measured (tiny then
//! default); the headline `aggregate_mcycles_per_sec` and the matrix
//! comparison come from the first scale, so successive `BENCH_*.json`
//! artifacts stay comparable.
//!
//! Since v4 the artifact also carries a `phase_timings` section: the same
//! headline workloads run once with per-phase stopwatches on (counters off
//! and counters on), so a throughput regression is attributable to a
//! pipeline phase — wakeup, select, events, commit, fetch, insert, obs —
//! from the JSON alone. The timed runs are separate from the headline
//! throughput runs; stopwatch reads never touch the headline numbers.
//!
//! Since v5 it also carries the functional emulator's throughput
//! (`emu_minsts_per_sec`, the fast-forward engine of the sampled mode)
//! and a `sampled` section: two long-running workloads measured full
//! detailed vs SMARTS-style sampled, with wall-clock speedup, mean IPC ±
//! 95% CI, and the relative IPC error. The sampled section always runs at
//! `--scale long` so successive artifacts stay comparable.
//!
//! Options:
//!
//! * `--scale tiny|default|large|long` — restrict to one workload size;
//! * `--jobs N` — worker threads for the parallel matrix (default: host
//!   parallelism);
//! * `--out FILE` — JSON output path (default `BENCH_5.json`);
//! * `--baseline FILE` — a previous `perf_smoke` JSON to embed verbatim
//!   under `"baseline"`, for before/after comparisons in one artifact.
//!
//! No external dependencies: wall time via [`std::time::Instant`], JSON
//! emitted by hand.

use hpa_core::emu::Emulator;
use hpa_core::sim::{PhaseTimes, SampleUnits, SampledEstimate};
use hpa_core::workloads::{workload, Scale, Workload};
use hpa_core::{
    default_jobs, run_matrix, run_matrix_parallel, run_prepared, run_prepared_observed,
    run_prepared_phase_timed, run_workload, run_workload_sampled, MachineWidth, Scheme,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Workloads for the per-scheme cycle-loop throughput measurement: one
/// compute-bound, one memory-bound, one branchy.
const THROUGHPUT_WORKLOADS: [&str; 3] = ["gap", "mcf", "perl"];

/// Schemes timed in the serial-vs-parallel matrix comparison.
const MATRIX_SCHEMES: [Scheme; 2] = [Scheme::Base, Scheme::Combined];

/// Long-running workloads for the sampled-vs-full comparison: one
/// compute-bound, one memory-bound.
const SAMPLED_WORKLOADS: [&str; 2] = ["gap", "mcf"];

/// Sampling units for the comparison: 2k warmup, 10k measured detail,
/// 488k fast-forward (period 500k — a few dozen samples per long run).
const SAMPLED_UNITS: (u64, u64, u64) = (2_000, 10_000, 488_000);

/// Fixed seed for the sampled comparison, so the artifact reproduces.
const SAMPLED_SEED: u64 = 42;

/// Scales measured when `--scale` is not given. The first entry is the
/// headline scale (aggregate throughput and matrix comparison).
const DEFAULT_SCALES: [(Scale, &str); 2] = [(Scale::Tiny, "tiny"), (Scale::Default, "default")];

struct Args {
    scales: Vec<(Scale, &'static str)>,
    jobs: usize,
    out: String,
    baseline: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scales: DEFAULT_SCALES.to_vec(),
        jobs: default_jobs(),
        out: "BENCH_5.json".to_string(),
        baseline: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--scale" => {
                args.scales = match it.next() {
                    Some("tiny") => vec![(Scale::Tiny, "tiny")],
                    Some("default") => vec![(Scale::Default, "default")],
                    Some("large") => vec![(Scale::Large, "large")],
                    Some("long") => vec![(Scale::Long, "long")],
                    other => usage(&format!("bad --scale {other:?}")),
                }
            }
            "--jobs" => {
                args.jobs =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage("bad --jobs"));
            }
            "--out" => args.out = it.next().unwrap_or_else(|| usage("bad --out")).to_string(),
            "--baseline" => {
                args.baseline =
                    Some(it.next().unwrap_or_else(|| usage("bad --baseline")).to_string());
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown option `{other}`")),
        }
    }
    args
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: perf_smoke [--scale tiny|default|large|long] [--jobs N] [--out FILE] [--baseline FILE]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Per-scheme throughput of the cycle loop itself, measured over full
/// workload runs (checksum-verified, so nothing is optimized away).
struct SchemeRate {
    scheme: &'static str,
    mcycles: f64,
    minsts: f64,
    wall_s: f64,
}

impl SchemeRate {
    fn mcycles_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.mcycles / self.wall_s
        } else {
            0.0
        }
    }
}

/// One scale's measurements: per-scheme rates and their aggregate.
struct ScaleRun {
    scale_name: &'static str,
    rates: Vec<SchemeRate>,
}

impl ScaleRun {
    fn aggregate_mcycles_per_sec(&self) -> f64 {
        let mcycles: f64 = self.rates.iter().map(|r| r.mcycles).sum();
        let wall: f64 = self.rates.iter().map(|r| r.wall_s).sum();
        if wall > 0.0 {
            mcycles / wall
        } else {
            0.0
        }
    }
}

fn scheme_throughput(ws: &[Workload], scale: Scale) -> Vec<SchemeRate> {
    let width = MachineWidth::Four;
    Scheme::ALL
        .into_iter()
        .map(|scheme| {
            let t0 = Instant::now();
            let mut cycles = 0u64;
            let mut insts = 0u64;
            for w in ws {
                let r = run_prepared(w, scheme.configure(width), scheme, width)
                    .unwrap_or_else(|e| panic!("{e}"));
                cycles += r.stats.cycles;
                insts += r.stats.committed;
            }
            let wall_s = t0.elapsed().as_secs_f64();
            let rate = SchemeRate {
                scheme: scheme.label(),
                mcycles: cycles as f64 / 1e6,
                minsts: insts as f64 / 1e6,
                wall_s,
            };
            eprintln!(
                "  {:22} {:8.2} Mcycles in {:6.2}s = {:6.2} Mcycles/s ({scale:?})",
                rate.scheme,
                rate.mcycles,
                wall_s,
                rate.mcycles_per_sec(),
                scale = scale
            );
            rate
        })
        .collect()
}

/// Functional-emulator throughput over full (checksum-verified) runs —
/// the fast-forward engine the sampled mode spends most of its time in.
fn emu_throughput(ws: &[Workload]) -> f64 {
    let t0 = Instant::now();
    let mut insts = 0u64;
    for w in ws {
        let mut emu = Emulator::new(&w.program);
        match emu.run(w.budget) {
            Ok(hpa_core::emu::RunOutcome::Halted { .. }) => {}
            other => panic!("emu run of `{}` did not halt cleanly: {other:?}", w.name),
        }
        assert_eq!(
            emu.reg(hpa_core::workloads::CHECKSUM_REG),
            w.expected_checksum,
            "`{}` checksum",
            w.name
        );
        insts += emu.executed();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let minsts_per_sec = if wall_s > 0.0 { insts as f64 / 1e6 / wall_s } else { 0.0 };
    eprintln!(
        "  emulator: {:.2} Minsts in {wall_s:.2}s = {minsts_per_sec:.2} Minsts/s",
        insts as f64 / 1e6
    );
    minsts_per_sec
}

/// One workload measured both ways: full detailed simulation vs the
/// sampled runner, same program, same machine (4-wide base).
struct SampledCompare {
    name: &'static str,
    full_ipc: f64,
    full_wall_s: f64,
    sampled_wall_s: f64,
    est: SampledEstimate,
}

impl SampledCompare {
    fn speedup(&self) -> f64 {
        if self.sampled_wall_s > 0.0 {
            self.full_wall_s / self.sampled_wall_s
        } else {
            0.0
        }
    }
}

fn sampled_vs_full() -> Vec<SampledCompare> {
    let (w, d, f) = SAMPLED_UNITS;
    let units = SampleUnits::new(w, d, f).expect("valid units");
    let width = MachineWidth::Four;
    SAMPLED_WORKLOADS
        .iter()
        .map(|&name| {
            let t0 = Instant::now();
            let full = run_workload(name, Scale::Long, width, Scheme::Base)
                .unwrap_or_else(|e| panic!("{e}"));
            let full_wall_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let sampled =
                run_workload_sampled(name, Scale::Long, width, Scheme::Base, units, SAMPLED_SEED)
                    .unwrap_or_else(|e| panic!("{e}"));
            let sampled_wall_s = t0.elapsed().as_secs_f64();
            let c = SampledCompare {
                name,
                full_ipc: full.stats.ipc(),
                full_wall_s,
                sampled_wall_s,
                est: sampled.sampled.expect("sampled run records an estimate"),
            };
            eprintln!(
                "  {name:8} full {:.3} IPC in {:6.2}s; sampled {:.3} ± {:.3} in {:5.2}s \
                 ({:.1}x, {:.2}% error)",
                c.full_ipc,
                c.full_wall_s,
                c.est.mean_ipc,
                c.est.ci_half_width,
                c.sampled_wall_s,
                c.speedup(),
                c.est.rel_error(c.full_ipc) * 100.0,
            );
            c
        })
        .collect()
}

/// Wall-time cost of the observability layer: the same workloads run with
/// `Counters::disabled()` (the headline path, compiled out of the hot loop)
/// and again with counters enabled. The stats must be bit-identical either
/// way; only wall time may move.
struct ObsOverhead {
    off_wall_s: f64,
    on_wall_s: f64,
}

impl ObsOverhead {
    fn ratio(&self) -> f64 {
        if self.off_wall_s > 0.0 {
            self.on_wall_s / self.off_wall_s
        } else {
            0.0
        }
    }
}

fn counters_overhead(ws: &[Workload]) -> ObsOverhead {
    let width = MachineWidth::Four;
    let scheme = Scheme::Combined;
    let run = |observe: bool| -> (f64, u64) {
        let t0 = Instant::now();
        let mut digest = 0u64;
        for w in ws {
            let r = run_prepared_observed(w, scheme.configure(width), scheme, width, observe)
                .unwrap_or_else(|e| panic!("{e}"));
            digest = digest.wrapping_mul(0x100_0000_01b3).wrapping_add(r.stats.cycles);
        }
        (t0.elapsed().as_secs_f64(), digest)
    };
    let (off_wall_s, off_digest) = run(false);
    let (on_wall_s, on_digest) = run(true);
    assert_eq!(off_digest, on_digest, "enabling counters must not perturb timing");
    let o = ObsOverhead { off_wall_s, on_wall_s };
    eprintln!(
        "  counters off {:6.2}s, on {:6.2}s = {:.3}x (bit-identical cycles)",
        o.off_wall_s,
        o.on_wall_s,
        o.ratio()
    );
    o
}

/// One per-phase-timed sweep over the headline workloads: the combined
/// scheme with stopwatches between phases, counters off or on. The `obs`
/// phase is only nonzero with counters on, so the off/on pair attributes
/// the observability overhead to a phase as well.
struct PhaseProfile {
    times: PhaseTimes,
    wall_s: f64,
}

fn phase_profile(ws: &[Workload], observe: bool) -> PhaseProfile {
    let width = MachineWidth::Four;
    let scheme = Scheme::Combined;
    let t0 = Instant::now();
    let mut times = PhaseTimes::default();
    for w in ws {
        let (_, t) = run_prepared_phase_timed(w, scheme.configure(width), scheme, width, observe)
            .unwrap_or_else(|e| panic!("{e}"));
        times.accumulate(&t);
    }
    let p = PhaseProfile { times, wall_s: t0.elapsed().as_secs_f64() };
    let state = if observe { "on " } else { "off" };
    let shares: Vec<String> = p
        .times
        .entries()
        .iter()
        .map(|(name, ns)| format!("{name} {:.1}%", 100.0 * p.times.share(*ns)))
        .collect();
    eprintln!("  counters {state}: {}", shares.join(", "));
    p
}

/// Emits one phase profile as a JSON object with flat, grep-able keys
/// (`phase_<name>_ns`, `phase_<name>_ns_per_cycle`, `phase_<name>_share`)
/// so check.sh can compare phases across artifacts with no JSON parser.
fn write_phase_profile(json: &mut String, key: &str, p: &PhaseProfile, last: bool) {
    let t = &p.times;
    let cyc = t.cycles.max(1) as f64;
    let _ = writeln!(json, "    \"{key}\": {{");
    let _ = writeln!(json, "      \"cycles\": {},", t.cycles);
    let _ = writeln!(json, "      \"wall_s\": {:.4},", p.wall_s);
    let _ = writeln!(json, "      \"total_ns\": {},", t.total_ns());
    let _ = writeln!(json, "      \"ns_per_cycle\": {:.2},", t.total_ns() as f64 / cyc);
    for (name, ns) in t.entries() {
        let _ = writeln!(json, "      \"phase_{name}_ns\": {ns},");
        let _ = writeln!(json, "      \"phase_{name}_ns_per_cycle\": {:.3},", ns as f64 / cyc);
        let _ = writeln!(json, "      \"phase_{name}_share\": {:.4},", t.share(ns));
    }
    let _ = writeln!(json, "      \"scheme\": \"combined\"");
    let _ = writeln!(json, "    }}{}", if last { "" } else { "," });
}

fn main() {
    let args = parse_args();
    let names: Vec<&str> = hpa_core::workloads::WORKLOAD_NAMES.to_vec();

    let mut runs: Vec<ScaleRun> = Vec::new();
    for &(scale, scale_name) in &args.scales {
        eprintln!(
            "== cycle-loop throughput per scheme ({} workloads, {scale_name}) ==",
            THROUGHPUT_WORKLOADS.len()
        );
        let ws: Vec<Workload> = THROUGHPUT_WORKLOADS
            .iter()
            .map(|n| workload(n, scale).expect("known workload"))
            .collect();
        runs.push(ScaleRun { scale_name, rates: scheme_throughput(&ws, scale) });
    }

    // The matrix comparison runs on the first (headline) scale only.
    let (matrix_scale, matrix_scale_name) = args.scales[0];
    eprintln!(
        "== matrix wall time: serial vs parallel (jobs={}, {matrix_scale_name}) ==",
        args.jobs
    );
    let t0 = Instant::now();
    let serial = run_matrix(&names, matrix_scale, MachineWidth::Four, &MATRIX_SCHEMES, |_| {})
        .unwrap_or_else(|e| panic!("{e}"));
    let serial_s = t0.elapsed().as_secs_f64();
    eprintln!("  serial:   {serial_s:.2}s");
    let t0 = Instant::now();
    let parallel = run_matrix_parallel(
        &names,
        matrix_scale,
        MachineWidth::Four,
        &MATRIX_SCHEMES,
        args.jobs,
        |_| {},
    )
    .unwrap_or_else(|e| panic!("{e}"));
    let parallel_s = t0.elapsed().as_secs_f64();
    let speedup = if parallel_s > 0.0 { serial_s / parallel_s } else { 0.0 };
    eprintln!(
        "  parallel: {parallel_s:.2}s ({speedup:.2}x, bit-identical: {})",
        serial == parallel
    );
    assert_eq!(serial, parallel, "parallel matrix must be bit-identical to serial");

    // Observability overhead: pins the `Counters::disabled()` fast path.
    // Measured on the headline scale's throughput workloads, combined scheme.
    eprintln!("== observability overhead: counters off vs on ({matrix_scale_name}) ==");
    let obs_ws: Vec<Workload> = THROUGHPUT_WORKLOADS
        .iter()
        .map(|n| workload(n, matrix_scale).expect("known workload"))
        .collect();
    let obs = counters_overhead(&obs_ws);

    // Per-phase attribution: where the cycle loop's wall time actually
    // goes, counters off and on. Timed separately so the stopwatch reads
    // never contaminate the headline throughput above.
    eprintln!("== per-phase wall time (combined scheme, {matrix_scale_name}) ==");
    let phases_off = phase_profile(&obs_ws, false);
    let phases_on = phase_profile(&obs_ws, true);

    // Functional-emulator throughput: the fast-forward engine of the
    // sampled mode, measured over the same headline workloads.
    eprintln!("== functional emulator throughput ({matrix_scale_name}) ==");
    let emu_minsts = emu_throughput(&obs_ws);

    // Sampled vs full detailed, always at the long scale so the speedup
    // number means the same thing in every artifact.
    eprintln!("== sampled vs full detailed (long scale, 4-wide base) ==");
    let sampled = sampled_vs_full();
    let min_speedup = sampled.iter().map(SampledCompare::speedup).fold(f64::INFINITY, f64::min);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"hpa-perf-smoke-v5\",");
    let scale_names: Vec<String> = args.scales.iter().map(|(_, n)| format!("\"{n}\"")).collect();
    let _ = writeln!(json, "  \"scales\": [{}],", scale_names.join(", "));
    let _ = writeln!(json, "  \"host_parallelism\": {},", default_jobs());
    // Headline aggregate (first scale), before the per-scale sections so a
    // `grep -m1 aggregate_mcycles_per_sec` picks it up.
    let _ = writeln!(
        json,
        "  \"aggregate_mcycles_per_sec\": {:.3},",
        runs[0].aggregate_mcycles_per_sec()
    );
    let _ = writeln!(json, "  \"emu_minsts_per_sec\": {emu_minsts:.3},");
    let _ = writeln!(json, "  \"sampled_min_speedup\": {min_speedup:.3},");
    let _ = writeln!(json, "  \"runs\": [");
    for (j, run) in runs.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"scale\": \"{}\",", run.scale_name);
        let _ = writeln!(
            json,
            "      \"aggregate_mcycles_per_sec\": {:.3},",
            run.aggregate_mcycles_per_sec()
        );
        let _ = writeln!(json, "      \"scheme_throughput\": [");
        for (k, r) in run.rates.iter().enumerate() {
            let comma = if k + 1 == run.rates.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "        {{\"scheme\": \"{}\", \"mcycles\": {:.3}, \"minsts\": {:.3}, \
                 \"wall_s\": {:.4}, \"mcycles_per_sec\": {:.3}}}{comma}",
                r.scheme,
                r.mcycles,
                r.minsts,
                r.wall_s,
                r.mcycles_per_sec()
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(json, "    }}{}", if j + 1 == runs.len() { "" } else { "," });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"matrix\": {{");
    let _ = writeln!(json, "    \"scale\": \"{matrix_scale_name}\",");
    let _ = writeln!(json, "    \"workloads\": {},", names.len());
    let _ = writeln!(json, "    \"schemes\": {},", MATRIX_SCHEMES.len());
    let _ = writeln!(json, "    \"jobs\": {},", args.jobs);
    let _ = writeln!(json, "    \"serial_wall_s\": {serial_s:.3},");
    let _ = writeln!(json, "    \"parallel_wall_s\": {parallel_s:.3},");
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"observability\": {{");
    let _ = writeln!(json, "    \"scale\": \"{matrix_scale_name}\",");
    let _ = writeln!(json, "    \"counters_off_wall_s\": {:.4},", obs.off_wall_s);
    let _ = writeln!(json, "    \"counters_on_wall_s\": {:.4},", obs.on_wall_s);
    let _ = writeln!(json, "    \"overhead_ratio\": {:.4},", obs.ratio());
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"phase_timings\": {{");
    let _ = writeln!(json, "    \"scale\": \"{matrix_scale_name}\",");
    write_phase_profile(&mut json, "counters_off", &phases_off, false);
    write_phase_profile(&mut json, "counters_on", &phases_on, true);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sampled\": {{");
    let _ = writeln!(json, "    \"scale\": \"long\",");
    let (uw, ud, uf) = SAMPLED_UNITS;
    let _ = writeln!(json, "    \"units\": \"{uw}:{ud}:{uf}\",");
    let _ = writeln!(json, "    \"seed\": {SAMPLED_SEED},");
    let _ = writeln!(json, "    \"min_speedup\": {min_speedup:.3},");
    let _ = writeln!(json, "    \"workloads\": [");
    for (k, c) in sampled.iter().enumerate() {
        let comma = if k + 1 == sampled.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "      {{\"name\": \"{}\", \"full_ipc\": {:.4}, \"full_wall_s\": {:.3}, \
             \"sampled_mean_ipc\": {:.4}, \"ci_half_width\": {:.4}, \
             \"sampled_wall_s\": {:.3}, \"speedup\": {:.3}, \"rel_error\": {:.5}, \
             \"within_ci\": {}, \"samples\": {}, \"detail_fraction\": {:.5}}}{comma}",
            c.name,
            c.full_ipc,
            c.full_wall_s,
            c.est.mean_ipc,
            c.est.ci_half_width,
            c.sampled_wall_s,
            c.speedup(),
            c.est.rel_error(c.full_ipc),
            c.est.within_ci(c.full_ipc),
            c.est.samples.len(),
            c.est.detail_fraction()
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = write!(json, "  }}");
    if let Some(path) = &args.baseline {
        let base = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading baseline {path}: {e}");
            std::process::exit(2);
        });
        let _ = writeln!(json, ",");
        let _ = write!(json, "  \"baseline\": {}", indent_json(base.trim()));
    }
    let _ = writeln!(json);
    let _ = writeln!(json, "}}");

    std::fs::write(&args.out, &json).unwrap_or_else(|e| panic!("writing {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
}

/// Re-indents an embedded JSON document two spaces so the merged artifact
/// stays readable.
fn indent_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for (k, line) in s.lines().enumerate() {
        if k > 0 {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str(line);
    }
    out
}
