//! Regenerates Figure 3: 2-source-format breakdown by unique sources.
use hpa_bench::{as_refs, base_runs, HarnessArgs};
use hpa_core::{report, MachineWidth};

fn main() {
    let args = HarnessArgs::parse();
    let base = base_runs(&args, MachineWidth::Four);
    println!("{}", report::figure3(&as_refs(&base)));
}
