//! A dependency-free microbenchmark harness.
//!
//! This environment cannot fetch crates.io dependencies, so the
//! `benches/` targets use this minimal stand-in for criterion: warmup,
//! repeated timed runs, and a median-of-runs report with throughput.
//!
//! ```text
//! cache/dl1_streaming_10k          412.3 us/iter   24.3 Melem/s
//! ```

use std::time::Instant;

/// Number of timed runs per benchmark (the median is reported).
const RUNS: usize = 7;
/// Warmup runs before timing starts.
const WARMUP: usize = 2;

/// One measured benchmark result.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median wall time per iteration, in seconds.
    pub secs_per_iter: f64,
    /// Work items per iteration (0 = unreported).
    pub elements: u64,
}

impl Measurement {
    /// Elements per second implied by the median iteration time.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.secs_per_iter > 0.0 {
            self.elements as f64 / self.secs_per_iter
        } else {
            0.0
        }
    }
}

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
pub struct Group<'a> {
    name: &'a str,
    elements: u64,
    results: Vec<Measurement>,
}

impl<'a> Group<'a> {
    /// Starts a group; `elements` is the per-iteration work count used
    /// for throughput reporting (0 to skip).
    #[must_use]
    pub fn new(name: &'a str, elements: u64) -> Group<'a> {
        Group { name, elements, results: Vec::new() }
    }

    /// Times `f` (warmup + [`RUNS`] timed runs) and prints the median.
    /// Return a value derived from the work so the optimizer keeps it.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..WARMUP {
            std::hint::black_box(f());
        }
        let mut times = Vec::with_capacity(RUNS);
        for _ in 0..RUNS {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed().as_secs_f64());
        }
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let m = Measurement {
            id: format!("{}/{}", self.name, name),
            secs_per_iter: median,
            elements: self.elements,
        };
        if m.elements > 0 {
            println!(
                "{:<44} {:>10.1} us/iter {:>9.2} Melem/s",
                m.id,
                median * 1e6,
                m.throughput() / 1e6
            );
        } else {
            println!("{:<44} {:>10.1} us/iter", m.id, median * 1e6);
        }
        self.results.push(m);
    }

    /// The measurements collected so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_median_and_throughput() {
        let mut g = Group::new("t", 1000);
        let mut n = 0u64;
        g.bench("count", || {
            n += 1;
            n
        });
        assert_eq!(g.results().len(), 1);
        let m = &g.results()[0];
        assert_eq!(m.id, "t/count");
        assert!(m.secs_per_iter >= 0.0);
        assert!(m.throughput() >= 0.0);
        // Warmup + timed runs all executed.
        assert_eq!(n, (WARMUP + RUNS) as u64);
    }
}
