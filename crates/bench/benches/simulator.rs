//! Microbenchmarks of the cycle-level simulator: simulated-cycle
//! throughput per scheme and per workload class. One iteration simulates a
//! 20k-instruction slice of a workload under a given configuration, so
//! these both track simulator performance and exercise every scheme's
//! scheduling path end to end. Runs on the dependency-free harness in
//! `hpa_bench::microbench` (criterion is unavailable offline).

use hpa_bench::microbench::Group;
use hpa_core::sim::Simulator;
use hpa_core::workloads::{workload, Scale};
use hpa_core::{MachineWidth, Scheme};
use std::hint::black_box;

const SLICE: u64 = 20_000;

fn scheme_throughput() {
    let w = workload("gcc", Scale::Tiny).expect("gcc builds");
    let mut g = Group::new("simulate_gcc_20k", SLICE);
    for scheme in Scheme::ALL {
        let cfg = scheme.configure(MachineWidth::Four).with_max_insts(SLICE);
        g.bench(&scheme.label().replace(' ', "_"), || {
            let mut sim = Simulator::new(&w.program, cfg.clone());
            sim.run();
            black_box(sim.stats().cycles)
        });
    }
}

fn workload_class_throughput() {
    let mut g = Group::new("simulate_base_20k", SLICE);
    // One compute-bound, one memory-bound, one branchy workload.
    for name in ["gap", "mcf", "perl"] {
        let w = workload(name, Scale::Tiny).expect("workload builds");
        let cfg = Scheme::Base.configure(MachineWidth::Four).with_max_insts(SLICE);
        g.bench(name, || {
            let mut sim = Simulator::new(&w.program, cfg.clone());
            sim.run();
            black_box(sim.stats().ipc())
        });
    }
}

fn width_scaling() {
    let w = workload("crafty", Scale::Tiny).expect("crafty builds");
    let mut g = Group::new("simulate_crafty_width", SLICE);
    for width in MachineWidth::ALL {
        let cfg = Scheme::Combined.configure(width).with_max_insts(SLICE);
        g.bench(width.label(), || {
            let mut sim = Simulator::new(&w.program, cfg.clone());
            sim.run();
            black_box(sim.stats().cycles)
        });
    }
}

fn main() {
    scheme_throughput();
    workload_class_throughput();
    width_scaling();
}
