//! Criterion benchmarks of the cycle-level simulator: simulated-cycle
//! throughput per scheme and per workload class. One iteration simulates a
//! 20k-instruction slice of a workload under a given configuration, so
//! these both track simulator performance and exercise every scheme's
//! scheduling path end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpa_core::sim::Simulator;
use hpa_core::workloads::{workload, Scale};
use hpa_core::{MachineWidth, Scheme};
use std::hint::black_box;

const SLICE: u64 = 20_000;

fn scheme_throughput(c: &mut Criterion) {
    let w = workload("gcc", Scale::Tiny).expect("gcc builds");
    let mut g = c.benchmark_group("simulate_gcc_20k");
    g.throughput(Throughput::Elements(SLICE));
    g.sample_size(10);
    for scheme in Scheme::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.label().replace(' ', "_")),
            &scheme,
            |b, &scheme| {
                let cfg = scheme.configure(MachineWidth::Four).with_max_insts(SLICE);
                b.iter(|| {
                    let mut sim = Simulator::new(&w.program, cfg.clone());
                    sim.run();
                    black_box(sim.stats().cycles)
                })
            },
        );
    }
    g.finish();
}

fn workload_class_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_base_20k");
    g.throughput(Throughput::Elements(SLICE));
    g.sample_size(10);
    // One compute-bound, one memory-bound, one branchy workload.
    for name in ["gap", "mcf", "perl"] {
        let w = workload(name, Scale::Tiny).expect("workload builds");
        g.bench_with_input(BenchmarkId::from_parameter(name), &w, |b, w| {
            let cfg = Scheme::Base.configure(MachineWidth::Four).with_max_insts(SLICE);
            b.iter(|| {
                let mut sim = Simulator::new(&w.program, cfg.clone());
                sim.run();
                black_box(sim.stats().ipc())
            })
        });
    }
    g.finish();
}

fn width_scaling(c: &mut Criterion) {
    let w = workload("crafty", Scale::Tiny).expect("crafty builds");
    let mut g = c.benchmark_group("simulate_crafty_width");
    g.throughput(Throughput::Elements(SLICE));
    g.sample_size(10);
    for width in MachineWidth::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(width.label()), &width, |b, &width| {
            let cfg = Scheme::Combined.configure(width).with_max_insts(SLICE);
            b.iter(|| {
                let mut sim = Simulator::new(&w.program, cfg.clone());
                sim.run();
                black_box(sim.stats().cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, scheme_throughput, workload_class_throughput, width_scaling);
criterion_main!(benches);
