//! Microbenchmarks of the substrate components: emulator throughput,
//! cache accesses, branch/operand predictors, assembler and encoder.
//! These track the performance of the simulator itself (the tool),
//! complementing the `src/bin` harnesses that regenerate the paper's
//! figures (the results). Runs on the dependency-free harness in
//! `hpa_bench::microbench` (criterion is unavailable offline).

use hpa_bench::microbench::Group;
use hpa_core::asm::Asm;
use hpa_core::bpred::{Btb, CombinedPredictor, LastArrivalPredictor, Side};
use hpa_core::cache::{Hierarchy, HierarchyConfig};
use hpa_core::emu::Emulator;
use hpa_core::isa::{decode, encode, Reg};
use std::hint::black_box;

fn emulator_throughput() {
    // A mixed loop: ALU, memory, branch.
    let mut a = Asm::new();
    a.li(Reg::R1, 10_000);
    a.li(Reg::R2, 0x1_0000);
    a.label("loop");
    a.add(Reg::R3, Reg::R3, Reg::R1);
    a.stq(Reg::R3, Reg::R2, 0);
    a.ldq(Reg::R4, Reg::R2, 0);
    a.xor(Reg::R3, Reg::R3, Reg::R4);
    a.sub(Reg::R1, Reg::R1, 1);
    a.bgt(Reg::R1, "loop");
    a.halt();
    let program = a.assemble().unwrap();

    let mut g = Group::new("emulator", 60_000);
    g.bench("mixed_loop_60k_insts", || {
        let mut emu = Emulator::new(&program);
        emu.run(100_000).unwrap();
        black_box(emu.reg(Reg::R3))
    });
}

fn cache_accesses() {
    let mut g = Group::new("cache", 10_000);
    let mut h = Hierarchy::new(HierarchyConfig::table1());
    let mut addr = 0u64;
    g.bench("dl1_streaming_10k", || {
        let mut sum = 0u64;
        for _ in 0..10_000 {
            sum += u64::from(h.data_read(addr));
            addr = addr.wrapping_add(16);
        }
        black_box(sum)
    });
    let mut h = Hierarchy::new(HierarchyConfig::table1());
    g.bench("dl1_hot_set_10k", || {
        let mut sum = 0u64;
        for i in 0..10_000u64 {
            sum += u64::from(h.data_read((i % 64) * 16));
        }
        black_box(sum)
    });
}

fn predictors() {
    let mut g = Group::new("predictors", 10_000);
    let mut p = CombinedPredictor::table1();
    g.bench("combined_predict_update_10k", || {
        let mut hits = 0u32;
        for i in 0..10_000u64 {
            let pc = (i % 977) * 4;
            let taken = i % 3 != 0;
            hits += u32::from(p.predict(pc) == taken);
            p.update(pc, taken);
        }
        black_box(hits)
    });
    let mut btb = Btb::table1();
    g.bench("btb_lookup_update_10k", || {
        for i in 0..10_000u64 {
            let pc = (i % 3001) * 4;
            black_box(btb.lookup(pc));
            btb.update(pc, pc + 64);
        }
    });
    let mut p = LastArrivalPredictor::new(1024);
    g.bench("last_arrival_10k", || {
        for i in 0..10_000u64 {
            let pc = (i % 777) * 4;
            black_box(p.predict(pc));
            p.update(pc, if i % 2 == 0 { Side::Left } else { Side::Right });
        }
    });
}

fn assembler_and_codec() {
    let mut g = Group::new("isa", 0);
    g.bench("assemble_1k_inst_program", || {
        let mut a = Asm::new();
        a.label("top");
        for i in 0..333 {
            a.add(Reg::new((i % 30) as u8), Reg::R1, i % 100);
            a.ldq(Reg::R2, Reg::R3, (i % 128) as i16);
            a.bne(Reg::R2, "top");
        }
        a.halt();
        black_box(a.assemble().unwrap().len())
    });
    let mut a = Asm::new();
    for i in 0..200 {
        a.add(Reg::new((i % 30) as u8), Reg::R1, Reg::R2);
        a.stb(Reg::R4, Reg::R5, i as i16);
    }
    a.halt();
    let insts = a.assemble().unwrap().insts().to_vec();
    g.bench("encode_decode_roundtrip", || {
        let mut acc = 0u64;
        for inst in &insts {
            let w = encode(inst);
            acc = acc.wrapping_add(u64::from(w));
            black_box(decode(w).unwrap());
        }
        black_box(acc)
    });
}

fn main() {
    emulator_throughput();
    cache_accesses();
    predictors();
    assembler_and_codec();
}
