//! Criterion microbenchmarks of the substrate components: emulator
//! throughput, cache accesses, branch/operand predictors, assembler and
//! encoder. These track the performance of the simulator itself (the tool),
//! complementing the `src/bin` harnesses that regenerate the paper's
//! figures (the results).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpa_core::asm::Asm;
use hpa_core::bpred::{Btb, CombinedPredictor, LastArrivalPredictor, Side};
use hpa_core::cache::{Hierarchy, HierarchyConfig};
use hpa_core::emu::Emulator;
use hpa_core::isa::{encode, decode, Reg};
use std::hint::black_box;

fn emulator_throughput(c: &mut Criterion) {
    // A mixed loop: ALU, memory, branch.
    let mut a = Asm::new();
    a.li(Reg::R1, 10_000);
    a.li(Reg::R2, 0x1_0000);
    a.label("loop");
    a.add(Reg::R3, Reg::R3, Reg::R1);
    a.stq(Reg::R3, Reg::R2, 0);
    a.ldq(Reg::R4, Reg::R2, 0);
    a.xor(Reg::R3, Reg::R3, Reg::R4);
    a.sub(Reg::R1, Reg::R1, 1);
    a.bgt(Reg::R1, "loop");
    a.halt();
    let program = a.assemble().unwrap();

    let mut g = c.benchmark_group("emulator");
    g.throughput(Throughput::Elements(60_000));
    g.bench_function("mixed_loop_60k_insts", |b| {
        b.iter(|| {
            let mut emu = Emulator::new(&program);
            emu.run(100_000).unwrap();
            black_box(emu.reg(Reg::R3))
        })
    });
    g.finish();
}

fn cache_accesses(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("dl1_streaming_10k", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        let mut addr = 0u64;
        b.iter(|| {
            let mut sum = 0u64;
            for _ in 0..10_000 {
                sum += u64::from(h.data_read(addr));
                addr = addr.wrapping_add(16);
            }
            black_box(sum)
        })
    });
    g.bench_function("dl1_hot_set_10k", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::table1());
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..10_000u64 {
                sum += u64::from(h.data_read((i % 64) * 16));
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("combined_predict_update_10k", |b| {
        let mut p = CombinedPredictor::table1();
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..10_000u64 {
                let pc = (i % 977) * 4;
                let taken = i % 3 != 0;
                hits += u32::from(p.predict(pc) == taken);
                p.update(pc, taken);
            }
            black_box(hits)
        })
    });
    g.bench_function("btb_lookup_update_10k", |b| {
        let mut btb = Btb::table1();
        b.iter(|| {
            for i in 0..10_000u64 {
                let pc = (i % 3001) * 4;
                black_box(btb.lookup(pc));
                btb.update(pc, pc + 64);
            }
        })
    });
    g.bench_function("last_arrival_10k", |b| {
        let mut p = LastArrivalPredictor::new(1024);
        b.iter(|| {
            for i in 0..10_000u64 {
                let pc = (i % 777) * 4;
                black_box(p.predict(pc));
                p.update(pc, if i % 2 == 0 { Side::Left } else { Side::Right });
            }
        })
    });
    g.finish();
}

fn assembler_and_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa");
    g.bench_function("assemble_1k_inst_program", |b| {
        b.iter(|| {
            let mut a = Asm::new();
            a.label("top");
            for i in 0..333 {
                a.add(Reg::new((i % 30) as u8), Reg::R1, i % 100);
                a.ldq(Reg::R2, Reg::R3, (i % 128) as i16);
                a.bne(Reg::R2, "top");
            }
            a.halt();
            black_box(a.assemble().unwrap().len())
        })
    });
    g.bench_function("encode_decode_roundtrip", |b| {
        let mut a = Asm::new();
        for i in 0..200 {
            a.add(Reg::new((i % 30) as u8), Reg::R1, Reg::R2);
            a.stb(Reg::R4, Reg::R5, i as i16);
        }
        a.halt();
        let insts = a.assemble().unwrap().insts().to_vec();
        b.iter(|| {
            let mut acc = 0u64;
            for inst in &insts {
                let w = encode(inst);
                acc = acc.wrapping_add(u64::from(w));
                black_box(decode(w).unwrap());
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    emulator_throughput,
    cache_accesses,
    predictors,
    assembler_and_codec
);
criterion_main!(benches);
