//! The line-oriented text assembler and the disassembler.
//!
//! The accepted syntax is exactly what the disassembler prints (operands in
//! source…destination order, `;` comments, `label:` definitions), so
//! `parse_program(&disassemble(p))` reproduces `p`.

use crate::{Asm, AsmError, Program};
use hpa_isa::{
    AluOp, BranchCond, CmpCond, FReg, FpBinOp, Inst, JumpKind, MemWidth, Reg, RegOrLit, UnaryOp,
};

/// Renders a program as assembly text that [`parse_program`] accepts.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    program.to_string()
}

/// Parses assembly text into a program.
///
/// Besides instructions and `label:` definitions, three data directives
/// are accepted: `.org ADDR` positions the data cursor, and `.byte v, ...`
/// / `.quad v, ...` emit little-endian initialized data there.
///
/// # Errors
///
/// Returns [`AsmError::Parse`] with a line number for syntax errors, and
/// label-resolution errors from the underlying builder.
///
/// # Example
///
/// ```
/// let p = hpa_asm::parse_program(
///     "
///     .org 65536
///     .quad 41, 1
///     li r1, #5          ; counter
/// loop:
///     sub r1, #1, r1
///     bgt r1, loop
///     halt
/// ",
/// )?;
/// assert_eq!(p.len(), 4);
/// assert_eq!(p.data_segments().len(), 1);
/// # Ok::<(), hpa_asm::AsmError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, AsmError> {
    let mut asm = Asm::new();
    let mut data_cursor: u64 = 0;
    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(directive) = line.strip_prefix('.') {
            parse_directive(&mut asm, &mut data_cursor, directive, lineno)?;
            continue;
        }
        let mut rest = line;
        // Leading labels, possibly several on one line.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if asm.assemble_labels_contains(name) {
                return Err(AsmError::DuplicateLabel { label: name.to_string() });
            }
            asm.label(name);
            rest = tail[1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        parse_inst(&mut asm, rest, lineno)?;
    }
    asm.assemble()
}

impl Asm {
    fn assemble_labels_contains(&self, _name: &str) -> bool {
        // The builder panics on duplicates; pre-checking keeps text input
        // error-returning instead. Probe by address lookup on a throwaway
        // assemble is too costly; expose through a crate-private hook.
        self.has_label(_name)
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError::Parse { line, message: message.into() }
}

/// Handles `.org`, `.byte` and `.quad`.
fn parse_directive(
    asm: &mut Asm,
    cursor: &mut u64,
    directive: &str,
    line: usize,
) -> Result<(), AsmError> {
    let mut parts = directive.splitn(2, char::is_whitespace);
    let name = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    let values = || -> Result<Vec<i64>, AsmError> {
        rest.split(',')
            .map(str::trim)
            .filter(|v| !v.is_empty())
            .map(|v| v.parse::<i64>().map_err(|_| err(line, format!("bad value `{v}`"))))
            .collect()
    };
    match name {
        "org" => {
            *cursor =
                rest.parse::<u64>().map_err(|_| err(line, format!("bad address `{rest}`")))?;
        }
        "byte" => {
            let bytes: Vec<u8> = values()?.into_iter().map(|v| v as u8).collect();
            let n = bytes.len() as u64;
            asm.data_bytes(*cursor, &bytes);
            *cursor += n;
        }
        "quad" => {
            let words: Vec<u64> = values()?.into_iter().map(|v| v as u64).collect();
            let n = words.len() as u64;
            asm.data_u64s(*cursor, &words);
            *cursor += 8 * n;
        }
        other => return Err(err(line, format!("unknown directive `.{other}`"))),
    }
    Ok(())
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let n: u8 = tok
        .strip_prefix('r')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected integer register, got `{tok}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(Reg::new(n))
}

fn parse_freg(tok: &str, line: usize) -> Result<FReg, AsmError> {
    let n: u8 = tok
        .strip_prefix('f')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected fp register, got `{tok}`")))?;
    if n >= 32 {
        return Err(err(line, format!("register `{tok}` out of range")));
    }
    Ok(FReg::new(n))
}

fn parse_operand(tok: &str, line: usize) -> Result<RegOrLit, AsmError> {
    if let Some(lit) = tok.strip_prefix('#') {
        let v: i64 = lit.parse().map_err(|_| err(line, format!("bad literal `{tok}`")))?;
        let v = i16::try_from(v)
            .map_err(|_| err(line, format!("literal `{tok}` does not fit in 16 bits")))?;
        Ok(RegOrLit::Lit(v))
    } else {
        Ok(RegOrLit::Reg(parse_reg(tok, line)?))
    }
}

/// Parses `disp(base)`.
fn parse_mem(tok: &str, line: usize) -> Result<(i16, Reg), AsmError> {
    let open =
        tok.find('(').ok_or_else(|| err(line, format!("expected disp(base), got `{tok}`")))?;
    let close = tok
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line, format!("unbalanced parens in `{tok}`")))?;
    let disp_str = &tok[..open];
    let disp: i16 = if disp_str.is_empty() {
        0
    } else {
        disp_str.parse().map_err(|_| err(line, format!("bad displacement in `{tok}`")))?
    };
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((disp, base))
}

enum Target {
    Label(String),
    Slots(i32),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, AsmError> {
    if tok.starts_with('+') || tok.starts_with('-') || tok.chars().all(|c| c.is_ascii_digit()) {
        let slots: i32 =
            tok.parse().map_err(|_| err(line, format!("bad branch target `{tok}`")))?;
        Ok(Target::Slots(slots))
    } else if tok.chars().all(|c| c.is_alphanumeric() || c == '_') {
        Ok(Target::Label(tok.to_string()))
    } else {
        Err(err(line, format!("bad branch target `{tok}`")))
    }
}

fn lookup_alu(m: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|o| o.mnemonic() == m)
}

fn lookup_unary(m: &str) -> Option<UnaryOp> {
    UnaryOp::ALL.iter().copied().find(|o| o.mnemonic() == m)
}

fn lookup_fp(m: &str) -> Option<FpBinOp> {
    FpBinOp::ALL.iter().copied().find(|o| o.mnemonic() == m)
}

fn lookup_branch(m: &str) -> Option<BranchCond> {
    BranchCond::ALL.iter().copied().find(|c| c.mnemonic() == m)
}

fn lookup_cmp_branch(m: &str) -> Option<CmpCond> {
    CmpCond::ALL.iter().copied().find(|c| c.mnemonic() == m)
}

fn parse_inst(asm: &mut Asm, text: &str, line: usize) -> Result<(), AsmError> {
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().unwrap();
    let operands: Vec<&str> =
        parts.next().unwrap_or("").split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let want = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operands, got {}", operands.len())))
        }
    };

    // Three-operand integer operate: `add ra, rb|#lit, rc`.
    if let Some(op) = lookup_alu(mnemonic) {
        want(3)?;
        let ra = parse_reg(operands[0], line)?;
        let rb = parse_operand(operands[1], line)?;
        let rc = parse_reg(operands[2], line)?;
        asm.raw(Inst::Op { op, ra, rb, rc });
        return Ok(());
    }
    // Unary operate: `popcnt ra, rc`.
    if let Some(op) = lookup_unary(mnemonic) {
        want(2)?;
        let ra = parse_reg(operands[0], line)?;
        let rc = parse_reg(operands[1], line)?;
        asm.raw(Inst::Op1 { op, ra, rc });
        return Ok(());
    }
    // FP operate: `fadd fa, fb, fc`.
    if let Some(op) = lookup_fp(mnemonic) {
        want(3)?;
        let fa = parse_freg(operands[0], line)?;
        let fb = parse_freg(operands[1], line)?;
        let fc = parse_freg(operands[2], line)?;
        asm.raw(Inst::FpOp { op, fa, fb, fc });
        return Ok(());
    }
    // Integer conditional branch: `beq ra, target`.
    if let Some(cond) = lookup_branch(mnemonic) {
        want(2)?;
        let ra = parse_reg(operands[0], line)?;
        match parse_target(operands[1], line)? {
            Target::Label(l) => {
                asm.branch_to(cond, ra, l);
            }
            Target::Slots(disp) => {
                asm.raw(Inst::Branch { cond, ra, disp });
            }
        }
        return Ok(());
    }
    // Two-register compare branch: `cbeq ra, rb, target`.
    if let Some(cmp) = lookup_cmp_branch(mnemonic) {
        want(3)?;
        let ra = parse_reg(operands[0], line)?;
        let rb = parse_reg(operands[1], line)?;
        match parse_target(operands[2], line)? {
            Target::Label(l) => {
                asm.cbranch_to(cmp, ra, rb, l);
            }
            Target::Slots(disp) => {
                asm.raw(Inst::BranchCmp { cmp, ra, rb, disp });
            }
        }
        return Ok(());
    }
    // FP conditional branch: `fbeq fa, target`.
    if let Some(cond) = mnemonic.strip_prefix('f').and_then(lookup_branch) {
        want(2)?;
        let fa = parse_freg(operands[0], line)?;
        match parse_target(operands[1], line)? {
            Target::Label(l) => {
                asm.fbranch_to(cond, fa, l);
            }
            Target::Slots(disp) => {
                asm.raw(Inst::FBranch { cond, fa, disp });
            }
        }
        return Ok(());
    }

    match mnemonic {
        "ldbu" | "ldb" | "ldhu" | "ldh" | "ldl" | "ldlu" | "ldq" | "stb" | "stsb" | "sth"
        | "stsh" | "stl" | "stlu" | "stq" => {
            want(2)?;
            let rt = parse_reg(operands[0], line)?;
            let (disp, base) = parse_mem(operands[1], line)?;
            let width = match mnemonic {
                "ldbu" | "stb" => MemWidth::Byte,
                "ldb" | "stsb" => MemWidth::SByte,
                "ldhu" | "sth" => MemWidth::Half,
                "ldh" | "stsh" => MemWidth::SHalf,
                "ldl" | "stl" => MemWidth::Long,
                "ldlu" | "stlu" => MemWidth::ULong,
                _ => MemWidth::Quad,
            };
            if mnemonic.starts_with("ld") {
                asm.raw(Inst::Load { width, rt, base, disp });
            } else {
                asm.raw(Inst::Store { width, rt, base, disp });
            }
        }
        "ldt" | "stt" => {
            want(2)?;
            let ft = parse_freg(operands[0], line)?;
            let (disp, base) = parse_mem(operands[1], line)?;
            if mnemonic == "ldt" {
                asm.raw(Inst::FLoad { ft, base, disp });
            } else {
                asm.raw(Inst::FStore { ft, base, disp });
            }
        }
        "itof" => {
            want(2)?;
            let ra = parse_reg(operands[0], line)?;
            let fc = parse_freg(operands[1], line)?;
            asm.raw(Inst::Itof { ra, fc });
        }
        "ftoi" => {
            want(2)?;
            let fa = parse_freg(operands[0], line)?;
            let rc = parse_reg(operands[1], line)?;
            asm.raw(Inst::Ftoi { fa, rc });
        }
        "br" => {
            want(1)?;
            match parse_target(operands[0], line)? {
                Target::Label(l) => {
                    asm.br(l);
                }
                Target::Slots(disp) => {
                    asm.raw(Inst::Br { ra: Reg::ZERO, disp });
                }
            }
        }
        "bsr" => {
            want(2)?;
            let ra = parse_reg(operands[0], line)?;
            match parse_target(operands[1], line)? {
                Target::Label(l) => {
                    asm.bsr(ra, l);
                }
                Target::Slots(disp) => {
                    asm.raw(Inst::Br { ra, disp });
                }
            }
        }
        "jmp" | "jsr" | "ret" => {
            want(2)?;
            let rt = parse_reg(operands[0], line)?;
            let (disp, base) = parse_mem(operands[1], line)?;
            let kind = match mnemonic {
                "jmp" => JumpKind::Jmp,
                "jsr" => JumpKind::Jsr,
                _ => JumpKind::Ret,
            };
            asm.raw(Inst::Jump { kind, rt, base, disp });
        }
        "li" => {
            want(2)?;
            let rc = parse_reg(operands[0], line)?;
            let lit = operands[1]
                .strip_prefix('#')
                .unwrap_or(operands[1])
                .parse::<i64>()
                .map_err(|_| err(line, format!("bad literal `{}`", operands[1])))?;
            asm.li(rc, lit);
        }
        "mov" => {
            want(2)?;
            let ra = parse_reg(operands[0], line)?;
            let rc = parse_reg(operands[1], line)?;
            asm.mov(rc, ra);
        }
        "nop" => {
            want(0)?;
            asm.nop();
        }
        "halt" => {
            want(0)?;
            asm.halt();
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_program() {
        let p = parse_program(
            "
            ; sum 1..10
            li r1, 10
            li r2, 0
        loop:
            add r2, r1, r2
            sub r1, #1, r1
            bgt r1, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.label_addr("loop"), Some(8));
        assert!(matches!(p.insts()[5], Inst::Halt));
    }

    #[test]
    fn parse_memory_and_jumps() {
        let p = parse_program(
            "
            ldq r1, 16(r2)
            stb r3, -1(r4)
            ldt f1, (r5)
            jsr r26, (r27)
            ret r31, (r26)
            br +2
            bsr r26, -4
            fbne f1, +1
        ",
        )
        .unwrap();
        assert_eq!(
            p.insts()[0],
            Inst::Load { width: MemWidth::Quad, rt: Reg::R1, base: Reg::R2, disp: 16 }
        );
        assert_eq!(p.insts()[2], Inst::FLoad { ft: FReg::F1, base: Reg::R5, disp: 0 });
        assert_eq!(
            p.insts()[3],
            Inst::Jump { kind: JumpKind::Jsr, rt: Reg::R26, base: Reg::R27, disp: 0 }
        );
        assert_eq!(p.insts()[5], Inst::Br { ra: Reg::ZERO, disp: 2 });
        assert_eq!(p.insts()[7], Inst::FBranch { cond: BranchCond::Ne, fa: FReg::F1, disp: 1 });
    }

    #[test]
    fn parse_extension_widths_and_compare_branches() {
        use hpa_isa::CmpCond;
        let p = parse_program(
            "
            ldh r1, -2(r2)
            ldhu r3, 2(r4)
            ldb r5, (r6)
            ldlu r7, 4(r8)
            sth r1, -2(r2)
            stsb r5, 1(r6)
            stlu r7, 4(r8)
            cbltu r1, r3, +2
            cbeq r1, r3, back
        back:
            jmp r31, 8(r9)
            halt
        ",
        )
        .unwrap();
        assert_eq!(
            p.insts()[0],
            Inst::Load { width: MemWidth::SHalf, rt: Reg::R1, base: Reg::R2, disp: -2 }
        );
        assert_eq!(
            p.insts()[1],
            Inst::Load { width: MemWidth::Half, rt: Reg::R3, base: Reg::R4, disp: 2 }
        );
        assert_eq!(
            p.insts()[2],
            Inst::Load { width: MemWidth::SByte, rt: Reg::R5, base: Reg::R6, disp: 0 }
        );
        assert_eq!(
            p.insts()[3],
            Inst::Load { width: MemWidth::ULong, rt: Reg::R7, base: Reg::R8, disp: 4 }
        );
        assert_eq!(
            p.insts()[4],
            Inst::Store { width: MemWidth::Half, rt: Reg::R1, base: Reg::R2, disp: -2 }
        );
        assert_eq!(
            p.insts()[5],
            Inst::Store { width: MemWidth::SByte, rt: Reg::R5, base: Reg::R6, disp: 1 }
        );
        assert_eq!(
            p.insts()[6],
            Inst::Store { width: MemWidth::ULong, rt: Reg::R7, base: Reg::R8, disp: 4 }
        );
        assert_eq!(
            p.insts()[7],
            Inst::BranchCmp { cmp: CmpCond::Ltu, ra: Reg::R1, rb: Reg::R3, disp: 2 }
        );
        assert_eq!(
            p.insts()[8],
            Inst::BranchCmp { cmp: CmpCond::Eq, ra: Reg::R1, rb: Reg::R3, disp: 0 }
        );
        assert_eq!(
            p.insts()[9],
            Inst::Jump { kind: JumpKind::Jmp, rt: Reg::R31, base: Reg::R9, disp: 8 }
        );
        // And the whole thing survives a disassemble/parse cycle.
        let p2 = parse_program(&disassemble(&p)).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }

    #[test]
    fn disassemble_parse_round_trip() {
        let src = "
            li r1, 100
            and r1, #255, r2
            popcnt r2, r3
            fadd f1, f2, f3
            itof r3, f4
            ftoi f4, r5
            ldq r6, 8(r7)
            stq r6, 8(r7)
            beq r6, +1
            nop
            jmp r31, (r6)
            halt
        ";
        let p = parse_program(src).unwrap();
        let text = disassemble(&p);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse_program("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e, AsmError::Parse { line: 2, message: "unknown mnemonic `bogus`".into() });
        let e = parse_program("add r1, r2\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = parse_program("ldq r1, r2\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = parse_program("add r1, #99999, r2\n").unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = parse_program("x:\nx:\n").unwrap_err();
        assert_eq!(e, AsmError::DuplicateLabel { label: "x".into() });
    }

    #[test]
    fn data_directives() {
        let p = parse_program(
            "
            .org 4096
            .byte 1, 2, 255
            .quad 500, -1
            .org 8192
            .byte 7
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.len(), 1);
        let segs = p.data_segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (4096, vec![1, 2, 255]));
        let mut q = 500u64.to_le_bytes().to_vec();
        q.extend_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(segs[1], (4099, q)); // follows the .byte emission
        assert_eq!(segs[2], (8192, vec![7]));

        let e = parse_program(
            ".bogus 1
",
        )
        .unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = parse_program(
            ".org xyz
",
        )
        .unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
        let e = parse_program(
            ".byte 1, nope
",
        )
        .unwrap_err();
        assert!(matches!(e, AsmError::Parse { line: 1, .. }));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let p = parse_program("; nothing\n\n   \nhalt ; stop\n").unwrap();
        assert_eq!(p.len(), 1);
    }
}
