//! # hpa-asm — assemblers for the Half-Price Architecture ISA
//!
//! Two front ends produce [`Program`]s for the [`hpa_isa`] instruction set:
//!
//! * [`Asm`], a programmatic builder with labels and forward references,
//!   used by the `hpa-workloads` benchmark kernels;
//! * [`parse_program`], a line-oriented text assembler (`.s` syntax) used by
//!   examples and tests.
//!
//! # Example
//!
//! ```
//! use hpa_asm::Asm;
//! use hpa_isa::Reg;
//!
//! # fn main() -> Result<(), hpa_asm::AsmError> {
//! let mut a = Asm::new();
//! a.li(Reg::R1, 10);          // counter
//! a.li(Reg::R2, 0);           // accumulator
//! a.label("loop");
//! a.add(Reg::R2, Reg::R2, Reg::R1);
//! a.sub(Reg::R1, Reg::R1, 1);
//! a.bgt(Reg::R1, "loop");
//! a.halt();
//! let program = a.assemble()?;
//! assert_eq!(program.len(), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod program;
mod text;

pub use builder::Asm;
pub use program::Program;
pub use text::{disassemble, parse_program};

use std::fmt;

/// Errors produced while assembling.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch or call referenced a label that was never defined.
    UndefinedLabel {
        /// The label name.
        label: String,
    },
    /// The same label was defined twice.
    DuplicateLabel {
        /// The label name.
        label: String,
    },
    /// A branch target is further away than the 21-bit displacement reaches.
    BranchOutOfRange {
        /// The label name.
        label: String,
        /// The displacement in instruction slots that would be needed.
        slots: i64,
    },
    /// The text assembler could not parse a line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel { label } => write!(f, "undefined label `{label}`"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label `{label}`"),
            AsmError::BranchOutOfRange { label, slots } => {
                write!(f, "branch to `{label}` out of range ({slots} slots)")
            }
            AsmError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for AsmError {}
