//! Assembled programs.

use hpa_isa::{Inst, INST_BYTES};
use std::collections::HashMap;
use std::fmt;

/// An assembled program: a contiguous text segment of decoded instructions
/// plus initial data-memory contents.
///
/// Instruction addresses start at zero and advance by [`INST_BYTES`]; the
/// data segments live in the same flat 64-bit address space and are applied
/// to memory before execution starts. Keeping text and data in disjoint
/// ranges is the program author's responsibility (the workloads place data
/// at `0x1_0000` and above).
#[derive(Clone, Debug, Default)]
pub struct Program {
    insts: Vec<Inst>,
    data: Vec<(u64, Vec<u8>)>,
    labels: HashMap<String, u64>,
}

impl Program {
    /// Creates a program from raw parts.
    #[must_use]
    pub fn new(insts: Vec<Inst>) -> Program {
        Program { insts, data: Vec::new(), labels: HashMap::new() }
    }

    /// Adds an initial data segment at the given byte address.
    pub fn add_data(&mut self, addr: u64, bytes: Vec<u8>) {
        self.data.push((addr, bytes));
    }

    /// Records a label for debugging/disassembly.
    pub(crate) fn add_label(&mut self, name: String, pc: u64) {
        self.labels.insert(name, pc);
    }

    /// The instructions in program order.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The initial data segments as `(address, bytes)` pairs.
    #[must_use]
    pub fn data_segments(&self) -> &[(u64, Vec<u8>)] {
        &self.data
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at a byte address, if it falls inside the text
    /// segment (addresses must be 4-byte aligned).
    #[must_use]
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if !pc.is_multiple_of(INST_BYTES) {
            return None;
        }
        self.insts.get((pc / INST_BYTES) as usize)
    }

    /// The byte address of a label, if defined.
    #[must_use]
    pub fn label_addr(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Iterates over `(pc, inst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Inst)> + '_ {
        self.insts.iter().enumerate().map(|(i, inst)| (i as u64 * INST_BYTES, inst))
    }

    /// Encodes the whole text segment into binary words.
    #[must_use]
    pub fn to_words(&self) -> Vec<u32> {
        self.insts.iter().map(hpa_isa::encode).collect()
    }

    /// Decodes a program from binary words.
    ///
    /// # Errors
    ///
    /// Returns the first [`hpa_isa::DecodeError`] encountered.
    pub fn from_words(words: &[u32]) -> Result<Program, hpa_isa::DecodeError> {
        let insts = words.iter().map(|&w| hpa_isa::decode(w)).collect::<Result<_, _>>()?;
        Ok(Program::new(insts))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Data segments first, as the directives the parser accepts, so
        // `parse_program(&p.to_string())` reproduces data as well as text.
        for (addr, bytes) in &self.data {
            writeln!(f, ".org {addr}")?;
            for chunk in bytes.chunks(16) {
                write!(f, ".byte ")?;
                for (i, b) in chunk.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                writeln!(f)?;
            }
        }
        let mut by_addr: Vec<(&str, u64)> =
            self.labels.iter().map(|(n, &a)| (n.as_str(), a)).collect();
        // Co-located labels tie-break by name so rendering is
        // deterministic (the label map iterates in hash order).
        by_addr.sort_by_key(|&(n, a)| (a, n));
        let mut next_label = by_addr.iter().peekable();
        for (pc, inst) in self.iter() {
            while let Some(&&(name, addr)) = next_label.peek() {
                if addr <= pc {
                    writeln!(f, "{name}:")?;
                    next_label.next();
                } else {
                    break;
                }
            }
            writeln!(f, "  {pc:#06x}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpa_isa::{AluOp, Reg};

    #[test]
    fn fetch_and_roundtrip() {
        let insts = vec![Inst::op(AluOp::Add, Reg::R1, Reg::R2, Reg::R3), Inst::Halt];
        let p = Program::new(insts.clone());
        assert_eq!(p.len(), 2);
        assert_eq!(p.fetch(0), Some(&insts[0]));
        assert_eq!(p.fetch(4), Some(&insts[1]));
        assert_eq!(p.fetch(8), None);
        assert_eq!(p.fetch(2), None, "misaligned fetch");

        let words = p.to_words();
        let back = Program::from_words(&words).unwrap();
        assert_eq!(back.insts(), p.insts());
    }

    #[test]
    fn display_includes_labels() {
        let mut p = Program::new(vec![Inst::nop(), Inst::Halt]);
        p.add_label("start".into(), 0);
        p.add_label("end".into(), 4);
        let s = p.to_string();
        assert!(s.contains("start:"));
        assert!(s.contains("end:"));
        assert!(s.contains("halt"));
    }
}
