//! The programmatic assembler builder.

use crate::{AsmError, Program};
use hpa_isa::{
    AluOp, BranchCond, CmpCond, FReg, FpBinOp, Inst, JumpKind, MemWidth, Reg, RegOrLit, UnaryOp,
    INST_BYTES,
};
use std::collections::HashMap;

const DISP21_MAX: i64 = (1 << 20) - 1;
const DISP21_MIN: i64 = -(1 << 20);
const DISP13_MAX: i64 = (1 << 12) - 1;
const DISP13_MIN: i64 = -(1 << 12);

/// One assembly item; every item occupies exactly one instruction slot so
/// that label layout is known before resolution.
#[derive(Clone, Debug)]
enum Item {
    Inst(Inst),
    Branch {
        cond: BranchCond,
        ra: Reg,
        label: String,
    },
    FBranch {
        cond: BranchCond,
        fa: FReg,
        label: String,
    },
    BranchCmp {
        cmp: CmpCond,
        ra: Reg,
        rb: Reg,
        label: String,
    },
    Br {
        ra: Reg,
        label: String,
    },
    /// One slot of a 3-slot `la` expansion; `part` is 0, 1 or 2.
    La {
        rc: Reg,
        label: String,
        part: u8,
    },
}

/// A program builder with labels and forward references.
///
/// Register-writing methods take the **destination first** (`a.add(rc, ra,
/// rb)` computes `rc <- ra + rb`), which reads naturally when writing
/// kernels. The second ALU operand accepts a register or an immediate.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Clone, Debug, Default)]
pub struct Asm {
    items: Vec<Item>,
    labels: HashMap<String, u64>,
    data: Vec<(u64, Vec<u8>)>,
}

/// An immediate or register second operand, converted from [`Reg`], `i16`
/// or `i32` (the `i32` conversion panics if the value does not fit the
/// 16-bit literal field).
pub trait IntoOperand {
    /// Performs the conversion.
    fn into_operand(self) -> RegOrLit;
}

impl IntoOperand for Reg {
    fn into_operand(self) -> RegOrLit {
        RegOrLit::Reg(self)
    }
}

impl IntoOperand for i16 {
    fn into_operand(self) -> RegOrLit {
        RegOrLit::Lit(self)
    }
}

impl IntoOperand for i32 {
    fn into_operand(self) -> RegOrLit {
        let lit = i16::try_from(self)
            .unwrap_or_else(|_| panic!("literal {self} does not fit in 16 bits; use li"));
        RegOrLit::Lit(lit)
    }
}

impl IntoOperand for RegOrLit {
    fn into_operand(self) -> RegOrLit {
        self
    }
}

macro_rules! alu_methods {
    ($($(#[$doc:meta])* $name:ident => $op:expr),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rc: Reg, ra: Reg, rb: impl IntoOperand) -> &mut Asm {
                self.raw(Inst::Op { op: $op, ra, rb: rb.into_operand(), rc })
            }
        )+
    };
}

macro_rules! unary_methods {
    ($($(#[$doc:meta])* $name:ident => $op:expr),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rc: Reg, ra: Reg) -> &mut Asm {
                self.raw(Inst::Op1 { op: $op, ra, rc })
            }
        )+
    };
}

macro_rules! fp_methods {
    ($($(#[$doc:meta])* $name:ident => $op:expr),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, fc: FReg, fa: FReg, fb: FReg) -> &mut Asm {
                self.raw(Inst::FpOp { op: $op, fa, fb, fc })
            }
        )+
    };
}

macro_rules! branch_methods {
    ($($(#[$doc:meta])* $name:ident => $cond:expr),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, ra: Reg, label: impl Into<String>) -> &mut Asm {
                self.items.push(Item::Branch { cond: $cond, ra, label: label.into() });
                self
            }
        )+
    };
}

macro_rules! fbranch_methods {
    ($($(#[$doc:meta])* $name:ident => $cond:expr),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, fa: FReg, label: impl Into<String>) -> &mut Asm {
                self.items.push(Item::FBranch { cond: $cond, fa, label: label.into() });
                self
            }
        )+
    };
}

impl Asm {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Appends a raw instruction.
    pub fn raw(&mut self, inst: Inst) -> &mut Asm {
        self.items.push(Item::Inst(inst));
        self
    }

    /// The byte address of the next instruction to be emitted.
    #[must_use]
    pub fn here(&self) -> u64 {
        self.items.len() as u64 * INST_BYTES
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (caught again as
    /// [`AsmError::DuplicateLabel`] at [`Asm::assemble`] for text input).
    pub fn label(&mut self, name: impl Into<String>) -> &mut Asm {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), self.here());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    alu_methods! {
        /// `rc <- ra + rb`.
        add => AluOp::Add,
        /// `rc <- ra - rb`.
        sub => AluOp::Sub,
        /// `rc <- (ra << 2) + rb`.
        s4add => AluOp::S4Add,
        /// `rc <- (ra << 3) + rb`.
        s8add => AluOp::S8Add,
        /// `rc <- ra * rb`.
        mul => AluOp::Mul,
        /// `rc <- ra / rb` (signed; x/0 = 0).
        div => AluOp::Div,
        /// `rc <- ra % rb` (signed; x%0 = x).
        rem => AluOp::Rem,
        /// `rc <- ra & rb`.
        and_ => AluOp::And,
        /// `rc <- ra | rb`.
        or_ => AluOp::Or,
        /// `rc <- ra ^ rb`.
        xor => AluOp::Xor,
        /// `rc <- ra & !rb`.
        andnot => AluOp::Andnot,
        /// `rc <- ra << rb`.
        sll => AluOp::Sll,
        /// `rc <- ra >> rb` (logical).
        srl => AluOp::Srl,
        /// `rc <- ra >> rb` (arithmetic).
        sra => AluOp::Sra,
        /// `rc <- (ra == rb) as u64`.
        cmpeq => AluOp::CmpEq,
        /// `rc <- (ra < rb) as u64`, signed.
        cmplt => AluOp::CmpLt,
        /// `rc <- (ra <= rb) as u64`, signed.
        cmple => AluOp::CmpLe,
        /// `rc <- (ra < rb) as u64`, unsigned.
        cmpult => AluOp::CmpUlt,
        /// `rc <- (ra <= rb) as u64`, unsigned.
        cmpule => AluOp::CmpUle,
    }

    unary_methods! {
        /// `rc <- popcount(ra)`.
        popcnt => UnaryOp::Popcnt,
        /// `rc <- leading_zeros(ra)`.
        ctlz => UnaryOp::Ctlz,
        /// `rc <- trailing_zeros(ra)`.
        cttz => UnaryOp::Cttz,
        /// `rc <- sign_extend_byte(ra)`.
        sextb => UnaryOp::Sextb,
        /// `rc <- sign_extend_32(ra)`.
        sextl => UnaryOp::Sextl,
    }

    fp_methods! {
        /// `fc <- fa + fb`.
        fadd => FpBinOp::Add,
        /// `fc <- fa - fb`.
        fsub => FpBinOp::Sub,
        /// `fc <- fa * fb`.
        fmul => FpBinOp::Mul,
        /// `fc <- fa / fb` (x/0 = 0).
        fdiv => FpBinOp::Div,
        /// `fc <- (fa == fb) ? 1.0 : 0.0`.
        fcmpeq => FpBinOp::CmpEq,
        /// `fc <- (fa < fb) ? 1.0 : 0.0`.
        fcmplt => FpBinOp::CmpLt,
        /// `fc <- (fa <= fb) ? 1.0 : 0.0`.
        fcmple => FpBinOp::CmpLe,
    }

    /// `fc <- (f64)ra`.
    pub fn itof(&mut self, fc: FReg, ra: Reg) -> &mut Asm {
        self.raw(Inst::Itof { ra, fc })
    }

    /// `rc <- (i64)fa` (truncating).
    pub fn ftoi(&mut self, rc: Reg, fa: FReg) -> &mut Asm {
        self.raw(Inst::Ftoi { fa, rc })
    }

    /// `rt <- zext MEM8[base+disp]`.
    pub fn ldbu(&mut self, rt: Reg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::Load { width: MemWidth::Byte, rt, base, disp })
    }

    /// `rt <- sext MEM32[base+disp]`.
    pub fn ldl(&mut self, rt: Reg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::Load { width: MemWidth::Long, rt, base, disp })
    }

    /// `rt <- MEM64[base+disp]`.
    pub fn ldq(&mut self, rt: Reg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::Load { width: MemWidth::Quad, rt, base, disp })
    }

    /// `MEM8[base+disp] <- rt`.
    pub fn stb(&mut self, rt: Reg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::Store { width: MemWidth::Byte, rt, base, disp })
    }

    /// `MEM32[base+disp] <- rt`.
    pub fn stl(&mut self, rt: Reg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::Store { width: MemWidth::Long, rt, base, disp })
    }

    /// `MEM64[base+disp] <- rt`.
    pub fn stq(&mut self, rt: Reg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::Store { width: MemWidth::Quad, rt, base, disp })
    }

    /// `ft <- MEM64[base+disp]` as `f64`.
    pub fn ldt(&mut self, ft: FReg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::FLoad { ft, base, disp })
    }

    /// `MEM64[base+disp] <- ft`.
    pub fn stt(&mut self, ft: FReg, base: Reg, disp: i16) -> &mut Asm {
        self.raw(Inst::FStore { ft, base, disp })
    }

    branch_methods! {
        /// Branch if `ra == 0`.
        beq => BranchCond::Eq,
        /// Branch if `ra != 0`.
        bne => BranchCond::Ne,
        /// Branch if `ra < 0` (signed).
        blt => BranchCond::Lt,
        /// Branch if `ra <= 0` (signed).
        ble => BranchCond::Le,
        /// Branch if `ra > 0` (signed).
        bgt => BranchCond::Gt,
        /// Branch if `ra >= 0` (signed).
        bge => BranchCond::Ge,
        /// Branch if the low bit of `ra` is clear.
        blbc => BranchCond::Lbc,
        /// Branch if the low bit of `ra` is set.
        blbs => BranchCond::Lbs,
    }

    fbranch_methods! {
        /// Branch if `fa == 0.0`.
        fbeq => BranchCond::Eq,
        /// Branch if `fa != 0.0`.
        fbne => BranchCond::Ne,
        /// Branch if `fa < 0.0`.
        fblt => BranchCond::Lt,
        /// Branch if `fa <= 0.0`.
        fble => BranchCond::Le,
        /// Branch if `fa > 0.0`.
        fbgt => BranchCond::Gt,
        /// Branch if `fa >= 0.0`.
        fbge => BranchCond::Ge,
    }

    pub(crate) fn has_label(&self, name: &str) -> bool {
        self.labels.contains_key(name)
    }

    pub(crate) fn branch_to(&mut self, cond: BranchCond, ra: Reg, label: String) {
        self.items.push(Item::Branch { cond, ra, label });
    }

    pub(crate) fn fbranch_to(&mut self, cond: BranchCond, fa: FReg, label: String) {
        self.items.push(Item::FBranch { cond, fa, label });
    }

    /// Two-register compare branch to a label (13-bit displacement range).
    pub fn cbranch_to(&mut self, cmp: CmpCond, ra: Reg, rb: Reg, label: impl Into<String>) {
        self.items.push(Item::BranchCmp { cmp, ra, rb, label: label.into() });
    }

    /// Unconditional branch to a label.
    pub fn br(&mut self, label: impl Into<String>) -> &mut Asm {
        self.items.push(Item::Br { ra: Reg::ZERO, label: label.into() });
        self
    }

    /// Call: branch to a label, writing the return address into `ra`.
    pub fn bsr(&mut self, ra: Reg, label: impl Into<String>) -> &mut Asm {
        self.items.push(Item::Br { ra, label: label.into() });
        self
    }

    /// Indirect jump: `pc <- base`.
    pub fn jmp(&mut self, base: Reg) -> &mut Asm {
        self.raw(Inst::Jump { kind: JumpKind::Jmp, rt: Reg::ZERO, base, disp: 0 })
    }

    /// Indirect call: `rt <- return address; pc <- base`.
    pub fn jsr(&mut self, rt: Reg, base: Reg) -> &mut Asm {
        self.raw(Inst::Jump { kind: JumpKind::Jsr, rt, base, disp: 0 })
    }

    /// Return: `pc <- base` with a return-address-stack pop hint.
    pub fn ret(&mut self, base: Reg) -> &mut Asm {
        self.raw(Inst::Jump { kind: JumpKind::Ret, rt: Reg::ZERO, base, disp: 0 })
    }

    /// Register move.
    pub fn mov(&mut self, rc: Reg, ra: Reg) -> &mut Asm {
        self.raw(Inst::mov(ra, rc))
    }

    /// A 2-source-format alignment nop (`or r31, r31, r31`).
    pub fn nop(&mut self) -> &mut Asm {
        self.raw(Inst::nop())
    }

    /// Stops the machine.
    pub fn halt(&mut self) -> &mut Asm {
        self.raw(Inst::Halt)
    }

    /// Loads an arbitrary 64-bit constant, expanding to as many
    /// instructions as needed (one for values that fit the literal field).
    pub fn li(&mut self, rc: Reg, value: i64) -> &mut Asm {
        if let Ok(lit) = i16::try_from(value) {
            return self.raw(Inst::li(lit, rc));
        }
        // Build the positive image in 13-bit chunks; negatives are built as
        // their bitwise complement and flipped at the end.
        let negative = value < 0;
        let magnitude = if negative { !(value as u64) } else { value as u64 };
        let bits = 64 - magnitude.leading_zeros();
        let chunks = bits.div_ceil(13).max(1);
        let mut first = true;
        for i in (0..chunks).rev() {
            let chunk = ((magnitude >> (13 * i)) & 0x1FFF) as i16;
            if first {
                self.raw(Inst::li(chunk, rc));
                first = false;
            } else {
                self.sll(rc, rc, 13);
                if chunk != 0 {
                    self.or_(rc, rc, chunk);
                }
            }
        }
        if negative {
            self.xor(rc, rc, -1);
        }
        self
    }

    /// Loads the address of a label (e.g. a function entry for [`Asm::jsr`]).
    /// Always expands to exactly three instructions; supports addresses up
    /// to 2^26.
    pub fn la(&mut self, rc: Reg, label: impl Into<String>) -> &mut Asm {
        let label = label.into();
        for part in 0..3 {
            self.items.push(Item::La { rc, label: label.clone(), part });
        }
        self
    }

    /// Adds an initial data segment.
    pub fn data_bytes(&mut self, addr: u64, bytes: &[u8]) -> &mut Asm {
        self.data.push((addr, bytes.to_vec()));
        self
    }

    /// Adds an initial data segment of little-endian 64-bit words.
    pub fn data_u64s(&mut self, addr: u64, words: &[u64]) -> &mut Asm {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.data.push((addr, bytes));
        self
    }

    /// Resolves labels and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] for dangling references and
    /// [`AsmError::BranchOutOfRange`] for targets beyond the 21-bit
    /// displacement.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        let resolve = |label: &str| -> Result<u64, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel { label: label.to_string() })
        };
        let disp_to = |slot: usize, target: u64, label: &str| -> Result<i32, AsmError> {
            let next = (slot as i64 + 1) * INST_BYTES as i64;
            let slots = (target as i64 - next) / INST_BYTES as i64;
            if !(DISP21_MIN..=DISP21_MAX).contains(&slots) {
                return Err(AsmError::BranchOutOfRange { label: label.to_string(), slots });
            }
            Ok(slots as i32)
        };
        let mut insts = Vec::with_capacity(self.items.len());
        for (slot, item) in self.items.iter().enumerate() {
            let inst = match item {
                Item::Inst(i) => *i,
                Item::Branch { cond, ra, label } => Inst::Branch {
                    cond: *cond,
                    ra: *ra,
                    disp: disp_to(slot, resolve(label)?, label)?,
                },
                Item::FBranch { cond, fa, label } => Inst::FBranch {
                    cond: *cond,
                    fa: *fa,
                    disp: disp_to(slot, resolve(label)?, label)?,
                },
                Item::BranchCmp { cmp, ra, rb, label } => {
                    let disp = disp_to(slot, resolve(label)?, label)?;
                    if !(DISP13_MIN..=DISP13_MAX).contains(&i64::from(disp)) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.to_string(),
                            slots: i64::from(disp),
                        });
                    }
                    Inst::BranchCmp { cmp: *cmp, ra: *ra, rb: *rb, disp }
                }
                Item::Br { ra, label } => {
                    Inst::Br { ra: *ra, disp: disp_to(slot, resolve(label)?, label)? }
                }
                Item::La { rc, label, part } => {
                    let addr = resolve(label)?;
                    assert!(addr < (1 << 26), "la target beyond 2^26");
                    match part {
                        0 => Inst::li((addr >> 13) as i16, *rc),
                        1 => Inst::op(AluOp::Sll, *rc, RegOrLit::Lit(13), *rc),
                        _ => Inst::op(AluOp::Or, *rc, RegOrLit::Lit((addr & 0x1FFF) as i16), *rc),
                    }
                }
            };
            insts.push(inst);
        }
        let mut program = Program::new(insts);
        for (name, addr) in &self.labels {
            program.add_label(name.clone(), *addr);
        }
        for (addr, bytes) in &self.data {
            program.add_data(*addr, bytes.clone());
        }
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.label("top");
        a.beq(Reg::R1, "bottom"); // forward: slot 0 -> slot 2, disp +1
        a.nop();
        a.label("bottom");
        a.bne(Reg::R1, "top"); // backward: slot 2 -> slot 0, disp -3
        let p = a.assemble().unwrap();
        assert_eq!(p.insts()[0], Inst::Branch { cond: BranchCond::Eq, ra: Reg::R1, disp: 1 });
        assert_eq!(p.insts()[2], Inst::Branch { cond: BranchCond::Ne, ra: Reg::R1, disp: -3 });
        assert_eq!(p.label_addr("bottom"), Some(8));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.br("nowhere");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UndefinedLabel { label: "nowhere".into() });
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x").label("x");
    }

    #[test]
    fn li_small_is_one_inst() {
        let mut a = Asm::new();
        a.li(Reg::R1, 42);
        a.li(Reg::R2, -42);
        assert_eq!(a.assemble().unwrap().len(), 2);
    }

    #[test]
    fn li_values_round_trip_through_the_emulated_semantics() {
        // Interpret the generated sequence directly with AluOp::eval.
        for value in [
            0i64,
            42,
            -42,
            0x1234,
            0x7FFF,
            0x8000,
            -0x8000,
            -0x8001,
            0x1234_5678,
            -0x1234_5678,
            i64::MAX,
            i64::MIN,
            0x0123_4567_89AB_CDEF,
            -0x0123_4567_89AB_CDEF,
        ] {
            let mut a = Asm::new();
            a.li(Reg::R1, value);
            let p = a.assemble().unwrap();
            let mut r1: u64 = 0xDEAD_BEEF;
            for inst in p.insts() {
                match *inst {
                    Inst::Op { op, ra, rb, rc } => {
                        assert_eq!(rc, Reg::R1);
                        let av = if ra.is_zero() { 0 } else { r1 };
                        let bv = match rb {
                            RegOrLit::Reg(r) if r.is_zero() => 0,
                            RegOrLit::Reg(_) => r1,
                            RegOrLit::Lit(l) => l as i64 as u64,
                        };
                        r1 = op.eval(av, bv);
                    }
                    ref other => panic!("unexpected {other}"),
                }
            }
            assert_eq!(r1, value as u64, "li {value}");
        }
    }

    #[test]
    fn la_is_three_slots_and_resolves() {
        let mut a = Asm::new();
        a.la(Reg::R1, "fn");
        a.halt();
        for _ in 0..100 {
            a.nop();
        }
        a.label("fn");
        let p = a.assemble().unwrap();
        assert_eq!(p.insts().len(), 104);
        // Evaluate the 3-inst sequence.
        let addr = p.label_addr("fn").unwrap();
        let mut r1 = 0u64;
        for inst in &p.insts()[0..3] {
            if let Inst::Op { op, ra, rb, .. } = *inst {
                let av = if ra.is_zero() { 0 } else { r1 };
                let bv = match rb {
                    RegOrLit::Lit(l) => l as i64 as u64,
                    RegOrLit::Reg(r) if r.is_zero() => 0,
                    RegOrLit::Reg(_) => r1,
                };
                r1 = op.eval(av, bv);
            }
        }
        assert_eq!(r1, addr);
    }

    #[test]
    fn out_of_range_branch_is_reported() {
        // A branch whose target is too far away; build via raw items to
        // avoid materializing 2^20 instructions: use data-driven check of
        // the error type with a crafted long program instead.
        let mut a = Asm::new();
        a.br("far");
        for _ in 0..8 {
            a.nop();
        }
        a.label("far");
        assert!(a.assemble().is_ok());
    }
}
