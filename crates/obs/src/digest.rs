//! The repo's digest machinery: FNV-1a over bytes or debug formatting.
//!
//! One digest function serves every equivalence check in the workspace:
//! the golden-stats tests pin [`debug_digest`] of full `SimStats` /
//! `Counters` values, and the serve-layer result cache keys entries by
//! [`fnv1a`] of a canonical request encoding. Keeping both on the same
//! primitive means "two results are bit-identical" and "two requests are
//! the same work" are literally the same 64-bit comparison.

/// FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over the debug formatting of a value — the golden-digest
/// convention: every field of the value participates, so any counter
/// moving is as visible as a timing change.
#[must_use]
pub fn debug_digest(value: &impl std::fmt::Debug) -> u64 {
    fnv1a(format!("{value:?}").as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn debug_digest_sees_every_field() {
        #[derive(Debug)]
        struct S(#[allow(dead_code)] u64, #[allow(dead_code)] u64);
        assert_ne!(debug_digest(&S(1, 2)), debug_digest(&S(1, 3)));
        assert_eq!(debug_digest(&S(1, 2)), debug_digest(&S(1, 2)));
    }
}
