//! The counter/histogram registry: cheap when disabled, rich when on.
//!
//! The pipeline carries one [`Counters`] value. In the default
//! [`Counters::disabled`] state every recording site reduces to a single
//! branch on [`Counters::is_enabled`], so the hot cycle loop pays nothing
//! measurable (pinned by the perf-smoke comparison). Enabling the
//! registry must never perturb timing: recording reads simulator state
//! but writes only into this struct, and the differential suite asserts
//! bit-identical `SimStats` and retire streams either way.

use crate::cpi::{CpiCategory, CpiStack};
use std::fmt;
use std::fmt::Write as _;

/// Number of buckets in a [`Histogram`]; values at or above
/// `BUCKETS - 1` land in the last (overflow) bucket.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A small fixed-bucket histogram of non-negative integer samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of the *unclamped* samples, so the mean stays exact even when
    /// samples overflow into the last bucket.
    sum: u64,
}

impl Histogram {
    /// Records one sample (clamped into the overflow bucket).
    pub fn record(&mut self, value: u64) {
        let ix = (value as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[ix] += 1;
        self.sum += value;
    }

    /// The count in bucket `ix` (callers index `0..HISTOGRAM_BUCKETS`).
    #[must_use]
    pub fn bucket(&self, ix: usize) -> u64 {
        self.buckets[ix]
    }

    /// Total recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean of the recorded samples (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.samples();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Zeroes the histogram in place.
    pub fn reset_in_place(&mut self) {
        *self = Histogram::default();
    }

    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (k, b) in self.buckets.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push(']');
    }
}

/// The per-run observability registry: a CPI stack plus the penalty
/// counters and distributions the half-price analysis needs.
///
/// Construct with [`Counters::enabled`] or [`Counters::disabled`]; the
/// flag is immutable for the life of the value so a run is either fully
/// observed or fully unobserved.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Counters {
    on: bool,
    /// Issue-slot attribution (see [`CpiStack`] for the invariant).
    pub cpi: CpiStack,
    /// Cycles between an instruction's last operand wakeup (its effective
    /// ready cycle) and the cycle it was finally selected — the
    /// issue-to-wakeup delay distribution.
    pub wakeup_to_select: Histogram,
    /// Per-cycle count of operand wakeups delivered on the slow bus
    /// (recorded only under sequential wakeup): slow-bus occupancy.
    pub slow_bus_occupancy: Histogram,
    /// Sequential-register-access issues that needed the second port read
    /// (read-port re-reads; mirrors `SimStats::seq_rf_accesses` from the
    /// registry side so the differential suite can cross-check).
    pub rf_rereads: u64,
}

impl Default for Counters {
    fn default() -> Counters {
        Counters::disabled()
    }
}

impl Counters {
    /// A recording registry.
    #[must_use]
    pub fn enabled() -> Counters {
        Counters {
            on: true,
            cpi: CpiStack::default(),
            wakeup_to_select: Histogram::default(),
            slow_bus_occupancy: Histogram::default(),
            rf_rereads: 0,
        }
    }

    /// The zero-overhead path: recording sites see `is_enabled() ==
    /// false` and skip all work.
    #[must_use]
    pub fn disabled() -> Counters {
        Counters { on: false, ..Counters::enabled() }
    }

    /// Whether recording sites should do any work.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Zeroes every counter in place (warmup boundary), preserving the
    /// enabled flag.
    pub fn reset_in_place(&mut self) {
        self.cpi.reset_in_place();
        self.wakeup_to_select.reset_in_place();
        self.slow_bus_occupancy.reset_in_place();
        self.rf_rereads = 0;
    }

    /// Renders the registry as a JSON object (hand-rolled; the workspace
    /// carries no serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n  \"enabled\": ");
        let _ = write!(out, "{}", self.on);
        out.push_str(",\n  \"cpi_stack\": {");
        for (k, cat) in CpiCategory::ALL.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", cat.key(), self.cpi.get(*cat));
        }
        out.push_str("\n  },\n  \"cpi_total_slots\": ");
        let _ = write!(out, "{}", self.cpi.total());
        out.push_str(",\n  \"wakeup_to_select\": ");
        self.wakeup_to_select.json_into(&mut out);
        out.push_str(",\n  \"wakeup_to_select_mean\": ");
        let _ = write!(out, "{:.4}", self.wakeup_to_select.mean());
        out.push_str(",\n  \"slow_bus_occupancy\": ");
        self.slow_bus_occupancy.json_into(&mut out);
        out.push_str(",\n  \"rf_rereads\": ");
        let _ = write!(out, "{}", self.rf_rereads);
        out.push_str("\n}\n");
        out
    }
}

/// Text rendering: one line per CPI category with percentages, then the
/// registry counters — the `hpa counters` / `hpa sim --counters` view.
impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.on {
            return writeln!(f, "counters disabled");
        }
        writeln!(f, "CPI stack ({} issue slots attributed):", self.cpi.total())?;
        for cat in CpiCategory::ALL {
            let slots = self.cpi.get(cat);
            if slots == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<24} {:>12}  {:>6.2}%",
                cat.label(),
                slots,
                100.0 * self.cpi.fraction(cat)
            )?;
        }
        writeln!(
            f,
            "wakeup-to-select delay: mean {:.3} cycles over {} issues",
            self.wakeup_to_select.mean(),
            self.wakeup_to_select.samples()
        )?;
        writeln!(
            f,
            "slow-bus occupancy:     mean {:.3} wakeups/cycle over {} cycles",
            self.slow_bus_occupancy.mean(),
            self.slow_bus_occupancy.samples()
        )?;
        writeln!(f, "RF re-reads:            {}", self.rf_rereads)
    }
}

/// The simulation-service observability registry: cache effectiveness,
/// queue pressure and job latency for one `hpa serve` daemon.
///
/// Deliberately a separate struct from [`Counters`]: that registry's
/// debug formatting is pinned by golden digests per simulated run, while
/// this one aggregates over the daemon's lifetime and is free to grow.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ServeCounters {
    /// Result-cache hits: job cells served from the content-addressed
    /// store without simulating.
    pub cache_hits: u64,
    /// Result-cache misses: job cells that had to simulate.
    pub cache_misses: u64,
    /// Jobs that reached `done`.
    pub jobs_done: u64,
    /// Jobs that reached `failed`.
    pub jobs_failed: u64,
    /// Jobs that reached `expired`.
    pub jobs_expired: u64,
    /// Submissions bounced by admission control (`--max-queue`) with 429.
    pub jobs_rejected: u64,
    /// Result-cache entries evicted by the entry/byte bounds.
    pub cache_evictions: u64,
    /// Corrupt/truncated journal records skipped during startup replay.
    pub journal_records_skipped: u64,
    /// Incomplete journaled jobs re-enqueued during startup replay.
    pub journal_jobs_requeued: u64,
    /// Terminal journaled jobs rehydrated into the table during replay.
    pub journal_jobs_rehydrated: u64,
    /// Queue depth observed at each submission (pressure distribution).
    pub queue_depth: Histogram,
    /// Submit-to-terminal-state latency per job, as `log2(1 + ms)` — the
    /// 16 buckets then span 1 ms to ~9 hours.
    pub job_latency_log2_ms: Histogram,
    /// Exact sum of per-job latencies, so `retry_after_ms` hints can use
    /// a true mean rather than a log-bucket approximation.
    pub latency_ms_total: u64,
}

impl ServeCounters {
    /// Records a finished job's submit-to-terminal latency.
    pub fn record_latency_ms(&mut self, ms: u64) {
        self.job_latency_log2_ms.record(u64::from(64 - (ms + 1).leading_zeros() - 1));
        self.latency_ms_total = self.latency_ms_total.saturating_add(ms);
    }

    /// Mean observed job latency in ms (`None` before any job finishes).
    #[must_use]
    pub fn mean_latency_ms(&self) -> Option<u64> {
        let n = self.job_latency_log2_ms.samples();
        (n > 0).then(|| self.latency_ms_total / n)
    }

    /// Cache hit rate in `[0, 1]` (`0.0` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the registry as a JSON object (hand-rolled, like
    /// [`Counters::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"serve_cache_hits\":");
        let _ = write!(out, "{}", self.cache_hits);
        out.push_str(",\"serve_cache_misses\":");
        let _ = write!(out, "{}", self.cache_misses);
        out.push_str(",\"hit_rate\":");
        let _ = write!(out, "{:.4}", self.hit_rate());
        out.push_str(",\"jobs_done\":");
        let _ = write!(out, "{}", self.jobs_done);
        out.push_str(",\"jobs_failed\":");
        let _ = write!(out, "{}", self.jobs_failed);
        out.push_str(",\"jobs_expired\":");
        let _ = write!(out, "{}", self.jobs_expired);
        out.push_str(",\"jobs_rejected\":");
        let _ = write!(out, "{}", self.jobs_rejected);
        out.push_str(",\"cache_evictions\":");
        let _ = write!(out, "{}", self.cache_evictions);
        out.push_str(",\"journal_records_skipped\":");
        let _ = write!(out, "{}", self.journal_records_skipped);
        out.push_str(",\"journal_jobs_requeued\":");
        let _ = write!(out, "{}", self.journal_jobs_requeued);
        out.push_str(",\"journal_jobs_rehydrated\":");
        let _ = write!(out, "{}", self.journal_jobs_rehydrated);
        out.push_str(",\"mean_latency_ms\":");
        let _ = write!(out, "{}", self.mean_latency_ms().unwrap_or(0));
        out.push_str(",\"queue_depth\":");
        self.queue_depth.json_into(&mut out);
        out.push_str(",\"queue_depth_mean\":");
        let _ = write!(out, "{:.4}", self.queue_depth.mean());
        out.push_str(",\"job_latency_log2_ms\":");
        self.job_latency_log2_ms.json_into(&mut out);
        out.push('}');
        out
    }
}

impl fmt::Display for ServeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cache: {} hit(s) / {} miss(es) ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate()
        )?;
        writeln!(
            f,
            "jobs:  {} done, {} failed, {} expired, {} rejected",
            self.jobs_done, self.jobs_failed, self.jobs_expired, self.jobs_rejected
        )?;
        writeln!(f, "cache evictions:        {}", self.cache_evictions)?;
        writeln!(
            f,
            "journal replay:         {} requeued, {} rehydrated, {} skipped",
            self.journal_jobs_requeued, self.journal_jobs_rehydrated, self.journal_records_skipped
        )?;
        writeln!(
            f,
            "queue depth at submit:  mean {:.2} over {} submission(s)",
            self.queue_depth.mean(),
            self.queue_depth.samples()
        )?;
        write!(
            f,
            "job latency:            mean log2(ms) {:.2} over {} job(s)",
            self.job_latency_log2_ms.mean(),
            self.job_latency_log2_ms.samples()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_clamps_and_keeps_exact_mean() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(3);
        h.record(100); // overflow bucket
        assert_eq!(h.samples(), 3);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(HISTOGRAM_BUCKETS - 1), 1);
        assert!((h.mean() - 103.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_is_default_and_reset_preserves_flag() {
        let mut c = Counters::default();
        assert!(!c.is_enabled());
        c = Counters::enabled();
        c.cpi.add(CpiCategory::Committing, 4);
        c.rf_rereads = 7;
        c.reset_in_place();
        assert!(c.is_enabled());
        assert_eq!(c.cpi.total(), 0);
        assert_eq!(c.rf_rereads, 0);
    }

    #[test]
    fn json_contains_every_category_key() {
        let mut c = Counters::enabled();
        c.cpi.add(CpiCategory::SeqWakeupDelay, 2);
        c.wakeup_to_select.record(1);
        let j = c.to_json();
        for cat in CpiCategory::ALL {
            assert!(j.contains(&format!("\"{}\"", cat.key())), "{j}");
        }
        assert!(j.contains("\"cpi_total_slots\": 2"), "{j}");
        assert!(j.contains("\"rf_rereads\": 0"), "{j}");
    }

    #[test]
    fn display_skips_empty_categories() {
        let mut c = Counters::enabled();
        c.cpi.add(CpiCategory::Committing, 10);
        let s = c.to_string();
        assert!(s.contains("issued"), "{s}");
        assert!(!s.contains("squash restart"), "{s}");
    }

    #[test]
    fn serve_counters_latency_buckets_are_logarithmic() {
        let mut s = ServeCounters::default();
        s.record_latency_ms(0); // log2(1) = 0
        s.record_latency_ms(1); // log2(2) = 1
        s.record_latency_ms(1023); // log2(1024) = 10
        s.record_latency_ms(u64::MAX / 2); // clamps into the overflow bucket
        assert_eq!(s.job_latency_log2_ms.bucket(0), 1);
        assert_eq!(s.job_latency_log2_ms.bucket(1), 1);
        assert_eq!(s.job_latency_log2_ms.bucket(10), 1);
        assert_eq!(s.job_latency_log2_ms.bucket(HISTOGRAM_BUCKETS - 1), 1);
    }

    #[test]
    fn serve_counters_hit_rate_and_json() {
        let mut s = ServeCounters::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.cache_hits = 3;
        s.cache_misses = 1;
        s.jobs_done = 4;
        s.queue_depth.record(2);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        let j = s.to_json();
        assert!(j.contains("\"serve_cache_hits\":3"), "{j}");
        assert!(j.contains("\"serve_cache_misses\":1"), "{j}");
        assert!(j.contains("\"jobs_done\":4"), "{j}");
        assert!(j.contains("\"queue_depth_mean\":2.0000"), "{j}");
        assert!(j.contains("\"jobs_rejected\":0"), "{j}");
        assert!(j.contains("\"journal_records_skipped\":0"), "{j}");
    }

    #[test]
    fn serve_counters_mean_latency_is_exact_not_bucketed() {
        let mut s = ServeCounters::default();
        assert_eq!(s.mean_latency_ms(), None, "no samples yet");
        s.record_latency_ms(100);
        s.record_latency_ms(300);
        assert_eq!(s.mean_latency_ms(), Some(200));
        assert!(s.to_json().contains("\"mean_latency_ms\":200"));
    }
}
