//! Chrome trace-event export of per-instruction lifetime spans.
//!
//! [`render`] turns a list of [`InstSpan`]s into the Chrome trace-event
//! JSON format (`chrome://tracing` / Perfetto "X" complete events, one
//! per retired instruction, timestamps in cycles), and [`parse`] reads
//! that exact format back — the round-trip the export test relies on.
//! Both are hand-rolled on [`crate::json`]: the workspace carries no
//! JSON dependency.

use crate::json::{self, escape_into, Json};
use std::fmt::Write as _;

/// The lifetime of one retired instruction, as stage timestamps in
/// cycles. Stage order is monotone: `fetch ≤ dispatch ≤ wakeup ≤ select ≤
/// complete ≤ commit`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstSpan {
    /// Global sequence number.
    pub seq: u64,
    /// Fetch address.
    pub pc: u64,
    /// Display name (the disassembled instruction).
    pub name: String,
    /// Cycle fetch started (dispatch minus the front-end depth).
    pub fetch: u64,
    /// Cycle the instruction entered the window.
    pub dispatch: u64,
    /// Effective cycle of the last operand wakeup.
    pub wakeup: u64,
    /// Cycle the scheduler selected (issued) the instruction.
    pub select: u64,
    /// Cycle execution completed.
    pub complete: u64,
    /// Commit cycle.
    pub commit: u64,
    /// Squash/replay count.
    pub replays: u32,
    /// Whether the final issue used a sequential register access.
    pub seq_rf: bool,
}

/// Number of display lanes (Chrome `tid`s) the spans are spread over.
const LANES: u64 = 16;

/// Renders spans as a Chrome trace-event JSON document. Timestamps are in
/// cycles (the viewer displays them as microseconds; only relative scale
/// matters).
#[must_use]
pub fn render(spans: &[InstSpan]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 256);
    out.push_str("{\"traceEvents\":[");
    for (k, s) in spans.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_into(&mut out, &s.name);
        let dur = s.commit.saturating_sub(s.fetch).max(1);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{dur},\"args\":{{",
            s.seq % LANES,
            s.fetch
        );
        let _ = write!(
            out,
            "\"seq\":{},\"pc\":{},\"fetch\":{},\"dispatch\":{},\"wakeup\":{},\"select\":{},\"exec\":{},\"commit\":{},\"replays\":{},\"seq_rf\":{}}}}}",
            s.seq, s.pc, s.fetch, s.dispatch, s.wakeup, s.select, s.complete, s.commit,
            s.replays, s.seq_rf
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

// ------------------------------------------------------------- parsing --

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("trace JSON: missing field `{key}`"))
}

fn num(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("trace JSON: field `{key}` is not an unsigned integer"))
}

/// Parses a document produced by [`render`] back into spans (commit
/// order is the emitted order).
///
/// # Errors
///
/// A description of the first malformed construct.
pub fn parse(text: &str) -> Result<Vec<InstSpan>, String> {
    let doc = json::parse(text).map_err(|e| format!("trace {e}"))?;
    let Some(events) = field(&doc, "traceEvents")?.as_arr() else {
        return Err(String::from("trace JSON: `traceEvents` is not an array"));
    };
    let mut spans = Vec::with_capacity(events.len());
    for ev in events {
        let name = field(ev, "name")?
            .as_str()
            .ok_or_else(|| String::from("trace JSON: event `name` is not a string"))?;
        let args = field(ev, "args")?;
        if args.as_obj().is_none() {
            return Err(String::from("trace JSON: event `args` is not an object"));
        }
        let seq_rf = field(args, "seq_rf")?
            .as_bool()
            .ok_or_else(|| String::from("trace JSON: `seq_rf` is not a bool"))?;
        spans.push(InstSpan {
            seq: num(args, "seq")?,
            pc: num(args, "pc")?,
            name: name.to_string(),
            fetch: num(args, "fetch")?,
            dispatch: num(args, "dispatch")?,
            wakeup: num(args, "wakeup")?,
            select: num(args, "select")?,
            complete: num(args, "exec")?,
            commit: num(args, "commit")?,
            replays: u32::try_from(num(args, "replays")?)
                .map_err(|_| String::from("trace JSON: `replays` out of range"))?,
            seq_rf,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> InstSpan {
        InstSpan {
            seq,
            pc: seq * 4,
            name: format!("add r{seq}, r2, r3"),
            fetch: 10 + seq,
            dispatch: 13 + seq,
            wakeup: 14 + seq,
            select: 15 + seq,
            complete: 17 + seq,
            commit: 19 + seq,
            replays: (seq % 2) as u32,
            seq_rf: seq.is_multiple_of(3),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let spans: Vec<_> = (0..20).map(span).collect();
        let json = render(&spans);
        let back = parse(&json).expect("parses");
        assert_eq!(back, spans);
    }

    #[test]
    fn renders_escapes_and_reparses() {
        let mut s = span(1);
        s.name = String::from("weird \"name\" \\ tab\there");
        let back = parse(&render(std::slice::from_ref(&s))).expect("parses");
        assert_eq!(back[0].name, s.name);
    }

    #[test]
    fn multi_byte_utf8_names_round_trip() {
        let mut s = span(2);
        s.name = String::from("μops — 半価 ✓");
        let back = parse(&render(std::slice::from_ref(&s))).expect("parses");
        assert_eq!(back[0].name, s.name);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(parse(&render(&[])).expect("parses"), Vec::<InstSpan>::new());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"traceEvents\": 3}").is_err());
        assert!(parse("{}").is_err());
    }
}
