//! Chrome trace-event export of per-instruction lifetime spans.
//!
//! [`render`] turns a list of [`InstSpan`]s into the Chrome trace-event
//! JSON format (`chrome://tracing` / Perfetto "X" complete events, one
//! per retired instruction, timestamps in cycles), and [`parse`] reads
//! that exact format back — the round-trip the export test relies on.
//! Both are hand-rolled: the workspace carries no JSON dependency.

use std::fmt::Write as _;

/// The lifetime of one retired instruction, as stage timestamps in
/// cycles. Stage order is monotone: `fetch ≤ dispatch ≤ wakeup ≤ select ≤
/// complete ≤ commit`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstSpan {
    /// Global sequence number.
    pub seq: u64,
    /// Fetch address.
    pub pc: u64,
    /// Display name (the disassembled instruction).
    pub name: String,
    /// Cycle fetch started (dispatch minus the front-end depth).
    pub fetch: u64,
    /// Cycle the instruction entered the window.
    pub dispatch: u64,
    /// Effective cycle of the last operand wakeup.
    pub wakeup: u64,
    /// Cycle the scheduler selected (issued) the instruction.
    pub select: u64,
    /// Cycle execution completed.
    pub complete: u64,
    /// Commit cycle.
    pub commit: u64,
    /// Squash/replay count.
    pub replays: u32,
    /// Whether the final issue used a sequential register access.
    pub seq_rf: bool,
}

/// Number of display lanes (Chrome `tid`s) the spans are spread over.
const LANES: u64 = 16;

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders spans as a Chrome trace-event JSON document. Timestamps are in
/// cycles (the viewer displays them as microseconds; only relative scale
/// matters).
#[must_use]
pub fn render(spans: &[InstSpan]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 256);
    out.push_str("{\"traceEvents\":[");
    for (k, s) in spans.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("\n{\"name\":\"");
        escape_into(&mut out, &s.name);
        let dur = s.commit.saturating_sub(s.fetch).max(1);
        let _ = write!(
            out,
            "\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{dur},\"args\":{{",
            s.seq % LANES,
            s.fetch
        );
        let _ = write!(
            out,
            "\"seq\":{},\"pc\":{},\"fetch\":{},\"dispatch\":{},\"wakeup\":{},\"select\":{},\"exec\":{},\"commit\":{},\"replays\":{},\"seq_rf\":{}}}}}",
            s.seq, s.pc, s.fetch, s.dispatch, s.wakeup, s.select, s.complete, s.commit,
            s.replays, s.seq_rf
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

// ------------------------------------------------------------- parsing --

/// A minimal JSON value, sufficient for the trace documents [`render`]
/// emits (numbers are parsed as `u64`; the exporter writes no fractions
/// or negatives).
#[derive(Clone, PartialEq, Debug)]
enum Json {
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("trace JSON: {what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'0'..=b'9' => self.number(),
            c => Err(self.err(&format!("unexpected `{}`", c as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<u64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                _ if b < 0x80 => out.push(b as char),
                _ => {
                    // Decode one multi-byte UTF-8 character from a bounded
                    // window (validating the whole tail here would make
                    // parsing quadratic).
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..self.bytes.len().min(start + 4)];
                    let valid = match std::str::from_utf8(rest) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()]).expect("validated prefix")
                        }
                        Err(_) => return Err(self.err("bad utf-8")),
                    };
                    let ch = valid.chars().next().expect("nonempty");
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("trace JSON: missing field `{key}`"))
}

fn num(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match field(obj, key)? {
        Json::Num(n) => Ok(*n),
        _ => Err(format!("trace JSON: field `{key}` is not a number")),
    }
}

/// Parses a document produced by [`render`] back into spans (commit
/// order is the emitted order).
///
/// # Errors
///
/// A description of the first malformed construct.
pub fn parse(json: &str) -> Result<Vec<InstSpan>, String> {
    let mut p = Parser::new(json);
    let doc = p.value()?;
    let Json::Obj(doc) = doc else {
        return Err(String::from("trace JSON: document is not an object"));
    };
    let Json::Arr(events) = field(&doc, "traceEvents")? else {
        return Err(String::from("trace JSON: `traceEvents` is not an array"));
    };
    let mut spans = Vec::with_capacity(events.len());
    for ev in events {
        let Json::Obj(ev) = ev else {
            return Err(String::from("trace JSON: event is not an object"));
        };
        let Json::Str(name) = field(ev, "name")? else {
            return Err(String::from("trace JSON: event `name` is not a string"));
        };
        let Json::Obj(args) = field(ev, "args")? else {
            return Err(String::from("trace JSON: event `args` is not an object"));
        };
        let Json::Bool(seq_rf) = field(args, "seq_rf")? else {
            return Err(String::from("trace JSON: `seq_rf` is not a bool"));
        };
        spans.push(InstSpan {
            seq: num(args, "seq")?,
            pc: num(args, "pc")?,
            name: name.clone(),
            fetch: num(args, "fetch")?,
            dispatch: num(args, "dispatch")?,
            wakeup: num(args, "wakeup")?,
            select: num(args, "select")?,
            complete: num(args, "exec")?,
            commit: num(args, "commit")?,
            replays: u32::try_from(num(args, "replays")?)
                .map_err(|_| String::from("trace JSON: `replays` out of range"))?,
            seq_rf: *seq_rf,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> InstSpan {
        InstSpan {
            seq,
            pc: seq * 4,
            name: format!("add r{seq}, r2, r3"),
            fetch: 10 + seq,
            dispatch: 13 + seq,
            wakeup: 14 + seq,
            select: 15 + seq,
            complete: 17 + seq,
            commit: 19 + seq,
            replays: (seq % 2) as u32,
            seq_rf: seq.is_multiple_of(3),
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let spans: Vec<_> = (0..20).map(span).collect();
        let json = render(&spans);
        let back = parse(&json).expect("parses");
        assert_eq!(back, spans);
    }

    #[test]
    fn renders_escapes_and_reparses() {
        let mut s = span(1);
        s.name = String::from("weird \"name\" \\ tab\there");
        let back = parse(&render(std::slice::from_ref(&s))).expect("parses");
        assert_eq!(back[0].name, s.name);
    }

    #[test]
    fn multi_byte_utf8_names_round_trip() {
        let mut s = span(2);
        s.name = String::from("μops — 半価 ✓");
        let back = parse(&render(std::slice::from_ref(&s))).expect("parses");
        assert_eq!(back[0].name, s.name);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(parse(&render(&[])).expect("parses"), Vec::<InstSpan>::new());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"traceEvents\": 3}").is_err());
        assert!(parse("{}").is_err());
    }
}
